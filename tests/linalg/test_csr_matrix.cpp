#include "linalg/csr_matrix.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace spar::linalg {
namespace {

CSRMatrix small_matrix() {
  // [1 2 0]
  // [0 3 4]
  // [5 0 6]
  return CSRMatrix::from_triplets(3, 3,
                                  {{0, 0, 1},
                                   {0, 1, 2},
                                   {1, 1, 3},
                                   {1, 2, 4},
                                   {2, 0, 5},
                                   {2, 2, 6}});
}

TEST(CSRMatrix, FromTripletsSumsDuplicates) {
  const CSRMatrix m =
      CSRMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  const Vector y = m.multiply(Vector{0.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.5);
}

TEST(CSRMatrix, FromTripletsDropsExactZeros) {
  const CSRMatrix m =
      CSRMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {1, 1, 2.0}});
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(CSRMatrix, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(CSRMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), spar::Error);
}

TEST(CSRMatrix, MultiplyMatchesDenseComputation) {
  const CSRMatrix m = small_matrix();
  const Vector y = m.multiply(Vector{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 18.0);
  EXPECT_DOUBLE_EQ(y[2], 23.0);
}

TEST(CSRMatrix, MultiplyAddWithBeta) {
  const CSRMatrix m = small_matrix();
  Vector y = {1.0, 1.0, 1.0};
  m.multiply_add(Vector{1.0, 2.0, 3.0}, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
  EXPECT_DOUBLE_EQ(y[2], 25.0);
}

TEST(CSRMatrix, MultiplySizeMismatchThrows) {
  const CSRMatrix m = small_matrix();
  Vector y(3);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0}, y), spar::Error);
}

TEST(CSRMatrix, IdentityActsTrivially) {
  const CSRMatrix eye = CSRMatrix::identity(4);
  const Vector x = {1, 2, 3, 4};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(CSRMatrix, DiagonalMatrixScales) {
  const Vector d = {2.0, 3.0};
  const CSRMatrix m = CSRMatrix::diagonal(d);
  const Vector y = m.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CSRMatrix, SpGEMMMatchesManualSquare) {
  const CSRMatrix m = small_matrix();
  const CSRMatrix sq = m.multiply(m);
  // Row 0 of M^2: [1 2 0]*M = [1*row0 + 2*row1] = [1, 2+6, 8] = [1, 8, 8].
  const Vector y = sq.multiply(Vector{1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  const Vector e1 = sq.multiply(Vector{0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(e1[0], 8.0);
}

TEST(CSRMatrix, SpGEMMAgainstDenseOnRandom) {
  // Pseudo-random sparse matrices; compare SpGEMM with the O(n^3) product.
  const std::size_t n = 24;
  std::vector<Triplet> ta, tb;
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = 0; j < n; ++j) {
      if ((i * 7 + j * 13) % 5 == 0) ta.push_back({i, j, double(i + j + 1)});
      if ((i * 3 + j * 11) % 4 == 0) tb.push_back({i, j, double(i) - double(j) + 0.5});
    }
  const CSRMatrix a = CSRMatrix::from_triplets(n, n, ta);
  const CSRMatrix b = CSRMatrix::from_triplets(n, n, tb);
  const CSRMatrix c = a.multiply(b);
  for (std::size_t col = 0; col < n; ++col) {
    Vector e(n, 0.0);
    e[col] = 1.0;
    const Vector via_c = c.multiply(e);
    const Vector via_ab = a.multiply(b.multiply(e));
    for (std::size_t row = 0; row < n; ++row)
      EXPECT_NEAR(via_c[row], via_ab[row], 1e-9) << row << "," << col;
  }
}

TEST(CSRMatrix, SpGEMMShapeMismatchThrows) {
  const CSRMatrix a = CSRMatrix::identity(3);
  const CSRMatrix b = CSRMatrix::identity(4);
  EXPECT_THROW(a.multiply(b), spar::Error);
}

TEST(CSRMatrix, DiagonalVectorExtracts) {
  const CSRMatrix m = small_matrix();
  const Vector d = m.diagonal_vector();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 6.0);
}

TEST(CSRMatrix, ScaledSymmetric) {
  const CSRMatrix m = small_matrix();
  const Vector s = {1.0, 2.0, 3.0};
  const CSRMatrix scaled = m.scaled_symmetric(s);
  // entry (1,2): 2 * 4 * 3 = 24.
  const Vector y = scaled.multiply(Vector{0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(CSRMatrix, TransposeSwapsAction) {
  const CSRMatrix m = small_matrix();
  const CSRMatrix t = m.transpose();
  const Vector x = {1.0, 2.0, 3.0};
  const Vector e0 = {1.0, 0.0, 0.0};
  // (M^T x)_0 == column 0 of M dotted with x == 1*1 + 5*3.
  EXPECT_DOUBLE_EQ(t.multiply(x)[0], 16.0);
  EXPECT_DOUBLE_EQ(m.multiply(e0)[2], 5.0);
}

TEST(CSRMatrix, SymmetryGapZeroForSymmetric) {
  const CSRMatrix m = CSRMatrix::from_triplets(
      2, 2, {{0, 1, 3.0}, {1, 0, 3.0}, {0, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.symmetry_gap(), 0.0);
}

TEST(CSRMatrix, SymmetryGapDetectsAsymmetry) {
  const CSRMatrix m = CSRMatrix::from_triplets(2, 2, {{0, 1, 3.0}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.symmetry_gap(), 2.0);
}

TEST(CSRMatrix, AddWithScalar) {
  const CSRMatrix a = CSRMatrix::identity(2);
  const CSRMatrix b = CSRMatrix::from_triplets(2, 2, {{0, 1, 1.0}});
  const CSRMatrix c = a.add(b, 2.0);
  const Vector y = c.multiply(Vector{0.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(CSRMatrix, FrobeniusNorm) {
  const CSRMatrix m = CSRMatrix::from_triplets(2, 2, {{0, 0, 3.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

}  // namespace
}  // namespace spar::linalg
