#include "linalg/cg.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "support/rng.hpp"

namespace spar::linalg {
namespace {

LinearOperator spd_operator(const CSRMatrix& m) {
  return {m.rows(), [&m](std::span<const double> x, std::span<double> y) {
            m.multiply(x, y);
          }};
}

TEST(ConjugateGradient, SolvesDiagonalSystem) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{2.0, 4.0, 8.0});
  Vector x(3, 0.0);
  const Vector b = {2.0, 4.0, 8.0};
  const auto report = conjugate_gradient(spd_operator(m), b, x);
  EXPECT_TRUE(report.converged);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 1e-7);
}

TEST(ConjugateGradient, ZeroRhsGivesZero) {
  const CSRMatrix m = CSRMatrix::identity(3);
  Vector x = {5.0, 5.0, 5.0};
  const auto report = conjugate_gradient(spd_operator(m), Vector(3, 0.0), x);
  EXPECT_TRUE(report.converged);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0);
}

TEST(ConjugateGradient, ExactInAtMostNIterations) {
  // CG terminates in <= n steps in exact arithmetic; small system, tight tol.
  support::Rng rng(3);
  const std::size_t n = 10;
  std::vector<Triplet> t;
  for (std::uint32_t i = 0; i < n; ++i) t.push_back({i, i, 2.0 + rng.uniform()});
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    const double v = 0.3 * rng.uniform();
    t.push_back({i, i + 1, v});
    t.push_back({static_cast<std::uint32_t>(i + 1), i, v});
  }
  const CSRMatrix m = CSRMatrix::from_triplets(n, n, t);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  Vector x(n, 0.0);
  CGOptions opt;
  opt.tolerance = 1e-12;
  const auto report = conjugate_gradient(spd_operator(m), b, x, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.iterations, n + 1);
}

TEST(ConjugateGradient, SingularLaplacianWithProjection) {
  const auto g = graph::connected_erdos_renyi(80, 0.1, 5);
  const LaplacianOperator lap(g);
  const LinearOperator op{g.num_vertices(),
                          [&lap](std::span<const double> x, std::span<double> y) {
                            lap.apply(x, y);
                          }};
  support::Rng rng(7);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();
  remove_mean(b);
  Vector x(g.num_vertices(), 0.0);
  CGOptions opt;
  opt.project_constant = true;
  const auto report = conjugate_gradient(op, b, x, opt);
  EXPECT_TRUE(report.converged);
  // Verify L x = b on the range.
  const Vector back = lap.apply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-5);
  // Solution is mean-free (pseudoinverse solution).
  EXPECT_NEAR(mean(x), 0.0, 1e-10);
}

TEST(ConjugateGradient, WarmStartReducesIterations) {
  const auto g = graph::grid2d(15, 15);
  const CSRMatrix l = laplacian_matrix(g);
  // Shift to SPD: L + I.
  const CSRMatrix m = l.add(CSRMatrix::identity(g.num_vertices()));
  support::Rng rng(9);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();

  Vector cold(g.num_vertices(), 0.0);
  const auto cold_rep = conjugate_gradient(spd_operator(m), b, cold);
  Vector warm = cold;  // exact solution as initial guess
  const auto warm_rep = conjugate_gradient(spd_operator(m), b, warm);
  EXPECT_TRUE(cold_rep.converged);
  EXPECT_LE(warm_rep.iterations, 1u);
}

TEST(ConjugateGradient, MaxIterationsRespected) {
  const auto g = graph::grid2d(30, 30);
  const CSRMatrix l = laplacian_matrix(g);
  const CSRMatrix m = l.add(CSRMatrix::identity(g.num_vertices()), 1e-9);
  support::Rng rng(11);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();
  Vector x(g.num_vertices(), 0.0);
  CGOptions opt;
  opt.max_iterations = 3;
  opt.tolerance = 1e-15;
  const auto report = conjugate_gradient(spd_operator(m), b, x, opt);
  EXPECT_FALSE(report.converged);
  EXPECT_LE(report.iterations, 3u);
}

TEST(PreconditionedCg, ExactPreconditionerConvergesInstantly) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{2.0, 5.0, 10.0});
  const Vector inv_d = {0.5, 0.2, 0.1};
  const LinearOperator precond{3, [&inv_d](std::span<const double> r,
                                           std::span<double> z) {
                                 for (std::size_t i = 0; i < 3; ++i)
                                   z[i] = inv_d[i] * r[i];
                               }};
  Vector x(3, 0.0);
  const Vector b = {1.0, 1.0, 1.0};
  const auto report = preconditioned_cg(spd_operator(m), precond, b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.iterations, 2u);
  EXPECT_NEAR(x[2], 0.1, 1e-9);
}

TEST(PreconditionedCg, JacobiBeatsPlainOnIllConditioned) {
  // Strongly varying diagonal: Jacobi rescaling helps a lot.
  const std::size_t n = 200;
  std::vector<Triplet> t;
  for (std::uint32_t i = 0; i < n; ++i)
    t.push_back({i, i, std::pow(10.0, double(i % 7))});
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.push_back({i, i + 1, 0.1});
    t.push_back({static_cast<std::uint32_t>(i + 1), i, 0.1});
  }
  const CSRMatrix m = CSRMatrix::from_triplets(n, n, t);
  const Vector d = m.diagonal_vector();
  const LinearOperator precond{n, [&d](std::span<const double> r, std::span<double> z) {
                                 for (std::size_t i = 0; i < d.size(); ++i)
                                   z[i] = r[i] / d[i];
                               }};
  support::Rng rng(13);
  Vector b(n);
  for (double& v : b) v = rng.normal();

  Vector x1(n, 0.0), x2(n, 0.0);
  const auto plain = conjugate_gradient(spd_operator(m), b, x1);
  const auto pcg = preconditioned_cg(spd_operator(m), precond, b, x2);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, plain.iterations);
}

TEST(ConjugateGradient, ReportsMatvecCount) {
  const CSRMatrix m = CSRMatrix::identity(4);
  Vector x(4, 0.0);
  const auto report = conjugate_gradient(spd_operator(m), Vector{1, 2, 3, 4}, x);
  EXPECT_GE(report.matvec_count, report.iterations);
}

}  // namespace
}  // namespace spar::linalg
