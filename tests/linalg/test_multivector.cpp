// MultiVector and the blocked kernels built on it: row-interleaved layout,
// fused per-column reductions, blocked CSR SpMM, blocked (P)CG with
// convergence masking, blocked Chebyshev. The load-bearing property
// throughout is BIT-identity: a blocked operation's column j must equal the
// corresponding single-vector operation on that column exactly (not
// approximately), for any thread count -- that is the contract
// solve_sdd_multi and the batched effective-resistance sketch rely on.
#include "linalg/multivector.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "graph/generators.hpp"
#include "linalg/cg.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/laplacian.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::linalg {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed, bool mean_free = false) {
  support::Rng rng(seed);
  Vector v(n);
  for (double& x : v) x = rng.normal();
  if (mean_free) remove_mean(v);
  return v;
}

MultiVector random_block(std::size_t n, std::size_t k, std::uint64_t seed,
                         bool mean_free = false) {
  std::vector<Vector> cols;
  for (std::size_t j = 0; j < k; ++j)
    cols.push_back(random_vector(n, support::mix64(seed, j), mean_free));
  return MultiVector::from_columns(cols);
}

/// Exact (bitwise) equality of two double sequences.
bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(MultiVector, LayoutAndAccessors) {
  MultiVector m(4, 3, 1.5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.data().size(), 12u);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(m.at(i, j), 1.5);
  m.at(2, 1) = -7.0;
  // Row-interleaved layout: entry (i, j) lives at data[i*cols + j], and a
  // row is a contiguous span of the k column values.
  EXPECT_EQ(m.data()[2 * 3 + 1], -7.0);
  EXPECT_EQ(m.row(2)[1], -7.0);
  EXPECT_EQ(m.row(2).data(), m.data().data() + 6);
  m.fill_all(0.0);
  EXPECT_EQ(m.at(2, 1), 0.0);
}

TEST(MultiVector, FromColumnsCopiesAndColumnCopyRoundTrips) {
  const Vector a = random_vector(5, 1), b = random_vector(5, 2);
  const std::vector<Vector> cols = {a, b};
  const MultiVector m = MultiVector::from_columns(cols);
  EXPECT_TRUE(bits_equal(m.column_copy(0), a));
  EXPECT_TRUE(bits_equal(m.column_copy(1), b));
  MultiVector m2(5, 2, 0.0);
  m2.set_column(0, a);
  m2.set_column(1, b);
  EXPECT_TRUE(bits_equal(m2.data(), m.data()));
}

TEST(MultiVector, FromColumnsRejectsRaggedInput) {
  const std::vector<Vector> cols = {Vector(4, 1.0), Vector(5, 1.0)};
  EXPECT_THROW(MultiVector::from_columns(cols), spar::Error);
}

TEST(MultiVector, FusedReductionsMatchSingleVectorOps) {
  // Sizes straddling the parallel threshold of the vector_ops primitives:
  // the fused kernels must match bitwise on both sides of it.
  for (const std::size_t n : {3000u, 20000u}) {
    const MultiVector a = random_block(n, 4, 3), b = random_block(n, 4, 4);
    const Vector dots = column_dots(a, b);
    const Vector norms = column_norms(a);
    const Vector means = column_means(a);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dots[j], dot(a.column_copy(j), b.column_copy(j))) << n;
      EXPECT_EQ(norms[j], norm2(a.column_copy(j))) << n;
      EXPECT_EQ(means[j], mean(a.column_copy(j))) << n;
    }
    MultiVector c = a;
    remove_mean_columns(c);
    for (std::size_t j = 0; j < 4; ++j) {
      Vector single = a.column_copy(j);
      remove_mean(single);
      EXPECT_TRUE(bits_equal(c.column_copy(j), single)) << n;
    }
  }
}

TEST(MultiVector, FusedReductionsBitIdenticalAcrossThreads) {
  const MultiVector a = random_block(20000, 3, 7), b = random_block(20000, 3, 8);
  Vector reference;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const Vector dots = column_dots(a, b);
    if (reference.empty()) reference = dots;
    EXPECT_TRUE(bits_equal(dots, reference)) << "threads " << threads;
  }
}

TEST(MultiVector, ColumnAxpyHonorsMask) {
  const MultiVector x = random_block(64, 3, 5);
  MultiVector y = random_block(64, 3, 6);
  const MultiVector y0 = y;
  const Vector alpha = {2.0, -1.0, 0.5};
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  column_axpy(alpha, x, y, mask);
  for (std::size_t j : {0u, 2u}) {
    Vector expect = y0.column_copy(j);
    axpy(alpha[j], x.column_copy(j), expect);
    EXPECT_TRUE(bits_equal(y.column_copy(j), expect));
  }
  EXPECT_TRUE(bits_equal(y.column_copy(1), y0.column_copy(1)));  // masked: untouched
}

TEST(BlockedSpmv, BitIdenticalToPerColumnMultiply) {
  // Large enough to cross the kernel's parallel threshold; width 37 makes
  // the column tiling take the partial-tile path too.
  const graph::Graph g = graph::connected_erdos_renyi(800, 0.05, 11);
  const CSRMatrix l = laplacian_matrix(g);
  const MultiVector x = random_block(l.cols(), 37, 21);
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    MultiVector y(l.rows(), x.cols());
    l.multiply(x, y);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      Vector single(l.rows());
      l.multiply(x.column_copy(j), single);
      EXPECT_TRUE(bits_equal(y.column_copy(j), single)) << "col " << j
                                                        << " threads " << threads;
    }
  }
}

TEST(BlockedSpmv, RejectsShapeMismatch) {
  const CSRMatrix eye = CSRMatrix::identity(4);
  MultiVector x(5, 2), y(4, 2), y_narrow(4, 1);
  EXPECT_THROW(eye.multiply(x, y), spar::Error);
  MultiVector x_ok(4, 2);
  EXPECT_THROW(eye.multiply(x_ok, y_narrow), spar::Error);
}

/// L + s I as a single-vector / blocked operator pair over the same CSR.
struct TestSystem {
  CSRMatrix matrix;
  LinearOperator op;
  BlockOperator block_op;
  explicit TestSystem(const graph::Graph& g, double shift) {
    CSRMatrix l = laplacian_matrix(g);
    matrix = l.add(CSRMatrix::identity(l.rows()), shift);
    op = {matrix.rows(), [this](std::span<const double> x, std::span<double> y) {
            matrix.multiply(x, y);
          }};
    block_op = {matrix.rows(), [this](const MultiVector& x, MultiVector& y) {
                  matrix.multiply(x, y);
                }};
  }
};

TEST(BlockedCg, BitIdenticalToSingleRhsCg) {
  const graph::Graph g = graph::grid2d(14, 14);
  TestSystem sys(g, 0.4);
  const std::size_t n = sys.matrix.rows();
  const MultiVector b = random_block(n, 5, 31);
  CGOptions opt;
  opt.tolerance = 1e-9;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    MultiVector x(n, b.cols(), 0.0);
    const auto block = blocked_conjugate_gradient(sys.block_op, b, x, opt);
    ASSERT_EQ(block.columns.size(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const Vector bj = b.column_copy(j);
      Vector xs(n, 0.0);
      const auto single = conjugate_gradient(sys.op, bj, xs, opt);
      EXPECT_TRUE(bits_equal(x.column_copy(j), xs)) << "col " << j;
      EXPECT_EQ(block.columns[j].iterations, single.iterations);
      EXPECT_EQ(block.columns[j].relative_residual, single.relative_residual);
      EXPECT_EQ(block.columns[j].converged, single.converged);
      EXPECT_TRUE(single.converged);
    }
  }
}

TEST(BlockedCg, MaskingFreezesColumnsAtTheirOwnConvergence) {
  // Columns with very different scales converge at different iterations; the
  // masked block must reproduce each single-RHS trajectory regardless.
  const graph::Graph g = graph::grid2d(10, 10);
  TestSystem sys(g, 0.7);
  const std::size_t n = sys.matrix.rows();
  std::vector<Vector> cols;
  cols.push_back(random_vector(n, 1));
  cols.push_back(Vector(n, 0.0));  // zero rhs: converges instantly, x = 0
  Vector tiny = random_vector(n, 2);
  scale(1e-12, tiny);
  cols.push_back(tiny);
  const MultiVector b = MultiVector::from_columns(cols);
  MultiVector x(n, b.cols(), 0.0);
  const auto block = blocked_conjugate_gradient(sys.block_op, b, x, {});
  std::size_t distinct = 0;
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector xs(n, 0.0);
    const auto single = conjugate_gradient(sys.op, b.column_copy(j), xs, {});
    EXPECT_TRUE(bits_equal(x.column_copy(j), xs)) << "col " << j;
    EXPECT_EQ(block.columns[j].iterations, single.iterations);
    distinct += block.columns[j].iterations != block.columns[0].iterations ? 1u : 0u;
  }
  EXPECT_TRUE(block.all_converged());
  EXPECT_GE(distinct, 1u);  // the masking actually exercised
  for (double v : x.column_copy(1)) EXPECT_EQ(v, 0.0);
}

TEST(BlockedCg, ProjectedSingularLaplacianMatchesSingleRhs) {
  const graph::Graph g = graph::connected_erdos_renyi(120, 0.06, 9);
  const CSRMatrix l = laplacian_matrix(g);
  const LinearOperator op{
      l.rows(), [&l](std::span<const double> x, std::span<double> y) {
        l.multiply(x, y);
      }};
  const BlockOperator bop{l.rows(), [&l](const MultiVector& x, MultiVector& y) {
                            l.multiply(x, y);
                          }};
  const MultiVector b = random_block(l.rows(), 4, 17, /*mean_free=*/true);
  CGOptions opt;
  opt.project_constant = true;
  MultiVector x(l.rows(), b.cols(), 0.0);
  const auto block = blocked_conjugate_gradient(bop, b, x, opt);
  EXPECT_TRUE(block.all_converged());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector xs(l.rows(), 0.0);
    conjugate_gradient(op, b.column_copy(j), xs, opt);
    EXPECT_TRUE(bits_equal(x.column_copy(j), xs)) << "col " << j;
  }
}

TEST(BlockedPcg, JacobiPreconditionedBitIdenticalToSingleRhs) {
  const graph::Graph g = graph::grid2d(12, 12);
  TestSystem sys(g, 0.3);
  const std::size_t n = sys.matrix.rows();
  const Vector d = sys.matrix.diagonal_vector();
  Vector inv_d(n);
  for (std::size_t i = 0; i < n; ++i) inv_d[i] = 1.0 / d[i];
  const LinearOperator jacobi{
      n, [&inv_d](std::span<const double> r, std::span<double> z) {
        for (std::size_t i = 0; i < inv_d.size(); ++i) z[i] = inv_d[i] * r[i];
      }};
  const BlockOperator jacobi_block = column_block_operator(jacobi);
  const MultiVector b = random_block(n, 3, 41);
  MultiVector x(n, b.cols(), 0.0);
  const auto block = blocked_pcg(sys.block_op, jacobi_block, b, x, {});
  EXPECT_TRUE(block.all_converged());
  EXPECT_GT(block.block_applies, 0u);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector xs(n, 0.0);
    const auto single = preconditioned_cg(sys.op, jacobi, b.column_copy(j), xs, {});
    EXPECT_TRUE(bits_equal(x.column_copy(j), xs)) << "col " << j;
    EXPECT_EQ(block.columns[j].iterations, single.iterations);
  }
}

TEST(BlockedCg, EmptyBlockAndShapeChecks) {
  TestSystem sys(graph::path_graph(4), 0.5);
  MultiVector empty_b(sys.matrix.rows(), 0), empty_x(sys.matrix.rows(), 0);
  const auto report = blocked_conjugate_gradient(sys.block_op, empty_b, empty_x, {});
  EXPECT_TRUE(report.columns.empty());
  EXPECT_FALSE(report.all_converged());  // vacuously unconverged by contract
  MultiVector bad_b(sys.matrix.rows() + 1, 2), x(sys.matrix.rows(), 2);
  EXPECT_THROW(blocked_conjugate_gradient(sys.block_op, bad_b, x, {}), spar::Error);
}

TEST(BlockedChebyshev, BitIdenticalToSingleRhs) {
  const graph::Graph g = graph::grid2d(9, 9);
  TestSystem sys(g, 0.5);
  const std::size_t n = sys.matrix.rows();
  ChebyshevOptions opt;
  opt.lambda_min = 0.5;  // shift guarantees lambda_min >= 0.5
  opt.lambda_max = 8.5;  // Laplacian degree bound + shift
  opt.iterations = 40;
  std::vector<Vector> cols = {random_vector(n, 51), Vector(n, 0.0),
                              random_vector(n, 52)};
  const MultiVector b = MultiVector::from_columns(cols);
  MultiVector x(n, b.cols(), 0.0);
  const auto reports = chebyshev_solve(sys.block_op, b, x, opt);
  ASSERT_EQ(reports.size(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector xs(n, 0.0);
    const auto single = chebyshev_solve(sys.op, b.column_copy(j), xs, opt);
    EXPECT_TRUE(bits_equal(x.column_copy(j), xs)) << "col " << j;
    EXPECT_EQ(reports[j].relative_residual, single.relative_residual);
  }
  for (double v : x.column_copy(1)) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace spar::linalg
