#include "linalg/eigen_iterative.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"

namespace spar::linalg {
namespace {

LinearOperator csr_operator(const CSRMatrix& m) {
  return {m.rows(), [&m](std::span<const double> x, std::span<double> y) {
            m.multiply(x, y);
          }};
}

TEST(PowerIteration, DominantEigenvalueOfDiagonal) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{1.0, 5.0, 3.0});
  const auto result = power_iteration(csr_operator(m), 42);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 5.0, 1e-5);
}

TEST(PowerIteration, CompleteGraphLaplacian) {
  // K_n Laplacian has lambda_max = n.
  const auto g = graph::complete_graph(10);
  const CSRMatrix l = laplacian_matrix(g);
  const auto result = power_iteration(csr_operator(l), 7, 1e-10, 5000);
  EXPECT_NEAR(result.eigenvalue, 10.0, 1e-4);
}

TEST(PowerIteration, ProjectionSkipsNullspaceDirection) {
  // With projection the iterate stays orthogonal to 1; for K_n every
  // non-null eigenvalue is n, so the answer is unchanged but converges in
  // one step.
  const auto g = graph::complete_graph(8);
  const CSRMatrix l = laplacian_matrix(g);
  const auto result = power_iteration(csr_operator(l), 7, 1e-10, 100, true);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 8.0, 1e-6);
}

TEST(LanczosExtreme, DiagonalSpectrumEnds) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{-2.0, 0.5, 7.0, 3.0});
  const auto result = lanczos_extreme(csr_operator(m), 3, 4);
  EXPECT_NEAR(result.min_eigenvalue, -2.0, 1e-8);
  EXPECT_NEAR(result.max_eigenvalue, 7.0, 1e-8);
}

TEST(LanczosExtreme, PathLaplacianMatchesClosedForm) {
  const std::size_t n = 40;
  const auto g = graph::path_graph(n);
  const CSRMatrix l = laplacian_matrix(g);
  const auto result = lanczos_extreme(csr_operator(l), 5, 40, true);
  const double lambda_max = 2.0 - 2.0 * std::cos(M_PI * double(n - 1) / double(n));
  const double lambda_2 = 2.0 - 2.0 * std::cos(M_PI / double(n));
  EXPECT_NEAR(result.max_eigenvalue, lambda_max, 1e-6);
  // With projection the smallest Ritz value approximates lambda_2, not 0.
  EXPECT_NEAR(result.min_eigenvalue, lambda_2, 1e-6);
}

TEST(LanczosExtreme, RitzValuesAreInnerBounds) {
  const auto g = graph::connected_erdos_renyi(120, 0.08, 3);
  const CSRMatrix l = laplacian_matrix(g);
  const auto exact =
      symmetric_eigen(DenseMatrix::from_csr(l));
  const auto ritz = lanczos_extreme(csr_operator(l), 11, 60);
  EXPECT_LE(ritz.max_eigenvalue, exact.eigenvalues.back() + 1e-6);
  EXPECT_GE(ritz.min_eigenvalue, exact.eigenvalues.front() - 1e-6);
  // And with a decent budget they are close.
  EXPECT_NEAR(ritz.max_eigenvalue, exact.eigenvalues.back(), 1e-3);
}

TEST(LanczosExtreme, StepsCappedByDimension) {
  const CSRMatrix m = CSRMatrix::identity(5);
  const auto result = lanczos_extreme(csr_operator(m), 1, 50);
  EXPECT_LE(result.steps, 5u);
  EXPECT_NEAR(result.max_eigenvalue, 1.0, 1e-10);
}

}  // namespace
}  // namespace spar::linalg
