#include "linalg/chebyshev.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/cg.hpp"
#include "linalg/eigen_iterative.hpp"
#include "linalg/laplacian.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::linalg {
namespace {

LinearOperator csr_operator(const CSRMatrix& m) {
  return {m.rows(), [&m](std::span<const double> x, std::span<double> y) {
            m.multiply(x, y);
          }};
}

TEST(Chebyshev, SolvesDiagonalWithExactBounds) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{1.0, 2.0, 4.0});
  Vector x(3, 0.0);
  const Vector b = {1.0, 2.0, 4.0};
  ChebyshevOptions opt;
  opt.lambda_min = 1.0;
  opt.lambda_max = 4.0;
  opt.iterations = 40;
  const auto report = chebyshev_solve(csr_operator(m), b, x, opt);
  EXPECT_LT(report.relative_residual, 1e-8);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 1e-7);
}

TEST(Chebyshev, ZeroRhsReturnsZero) {
  const CSRMatrix m = CSRMatrix::identity(4);
  Vector x = {1, 2, 3, 4};
  ChebyshevOptions opt;
  opt.lambda_min = 1.0;
  opt.lambda_max = 1.0;
  chebyshev_solve(csr_operator(m), Vector(4, 0.0), x, opt);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0);
}

TEST(Chebyshev, RejectsBadBounds) {
  const CSRMatrix m = CSRMatrix::identity(2);
  Vector x(2, 0.0);
  const Vector b = {1.0, 1.0};
  ChebyshevOptions opt;
  opt.lambda_min = 0.0;
  opt.lambda_max = 1.0;
  EXPECT_THROW(chebyshev_solve(csr_operator(m), b, x, opt), spar::Error);
  opt.lambda_min = 2.0;
  EXPECT_THROW(chebyshev_solve(csr_operator(m), b, x, opt), spar::Error);
}

TEST(Chebyshev, ConvergesAtTheoreticalRate) {
  // kappa = 4 => factor (2-1)/(2+1) = 1/3 per iteration; after 20 iterations
  // error <= (1/3)^20 ~ 3e-10 of the initial.
  const CSRMatrix m = CSRMatrix::diagonal(Vector{1.0, 2.0, 3.0, 4.0});
  Vector x(4, 0.0);
  const Vector b = {1.0, 1.0, 1.0, 1.0};
  ChebyshevOptions opt;
  opt.lambda_min = 1.0;
  opt.lambda_max = 4.0;
  opt.iterations = 20;
  const auto report = chebyshev_solve(csr_operator(m), b, x, opt);
  EXPECT_LT(report.relative_residual, 1e-7);
}

TEST(Chebyshev, SingularLaplacianWithProjection) {
  const auto g = graph::grid2d(10, 10);
  const CSRMatrix l = laplacian_matrix(g);
  const auto op = csr_operator(l);
  // Spectral bounds from Lanczos (projected).
  const auto ritz = lanczos_extreme(op, 3, 60, true);
  support::Rng rng(5);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();
  remove_mean(b);
  Vector x(g.num_vertices(), 0.0);
  ChebyshevOptions opt;
  // Ritz values converge from inside the spectrum, so pad generously: the
  // min must be a true lower bound for Chebyshev to damp every mode.
  opt.lambda_min = ritz.min_eigenvalue * 0.25;
  opt.lambda_max = ritz.max_eigenvalue * 1.1;
  opt.iterations = 800;
  opt.project_constant = true;
  const auto report = chebyshev_solve(op, b, x, opt);
  EXPECT_LT(report.relative_residual, 1e-5);
}

TEST(Chebyshev, MatchesCgSolution) {
  const auto g = graph::connected_erdos_renyi(60, 0.2, 7);
  const CSRMatrix l = laplacian_matrix(g);
  const CSRMatrix m = l.add(CSRMatrix::identity(g.num_vertices()));
  const auto op = csr_operator(m);
  support::Rng rng(9);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();

  Vector via_cg(g.num_vertices(), 0.0);
  CGOptions cg;
  cg.tolerance = 1e-12;
  conjugate_gradient(op, b, via_cg, cg);

  const auto ritz = lanczos_extreme(op, 3, 60);
  Vector via_cheb(g.num_vertices(), 0.0);
  ChebyshevOptions opt;
  opt.lambda_min = std::max(ritz.min_eigenvalue * 0.9, 1e-6);
  opt.lambda_max = ritz.max_eigenvalue * 1.1;
  opt.iterations = 600;
  chebyshev_solve(op, b, via_cheb, opt);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(via_cheb[i], via_cg[i], 1e-4);
}

TEST(Chebyshev, MoreIterationsReduceResidual) {
  const CSRMatrix m = CSRMatrix::diagonal(Vector{1.0, 5.0, 10.0});
  const Vector b = {1.0, 1.0, 1.0};
  ChebyshevOptions opt;
  opt.lambda_min = 1.0;
  opt.lambda_max = 10.0;
  opt.iterations = 5;
  Vector x1(3, 0.0), x2(3, 0.0);
  const auto short_run = chebyshev_solve(csr_operator(m), b, x1, opt);
  opt.iterations = 30;
  const auto long_run = chebyshev_solve(csr_operator(m), b, x2, opt);
  EXPECT_LT(long_run.relative_residual, short_run.relative_residual);
}

}  // namespace
}  // namespace spar::linalg
