#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spar::linalg {
namespace {

TEST(VectorOps, DotProduct) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(VectorOps, DotOfLargeVectorsParallelPathMatchesSerial) {
  const std::size_t n = 1 << 16;  // above the parallel threshold
  Vector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1.0 / static_cast<double>(i + 1);
    b[i] = static_cast<double>(i % 7);
  }
  double expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += a[i] * b[i];
  EXPECT_NEAR(dot(a, b), expected, 1e-9 * std::abs(expected));
}

TEST(VectorOps, Norm2) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOps, AxpyAccumulates) {
  const Vector x = {1, 2};
  Vector y = {10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, ScaleMultiplies) {
  Vector x = {1, -2, 3};
  scale(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(VectorOps, CopyAndFill) {
  const Vector x = {1, 2, 3};
  Vector y(3);
  copy(x, y);
  EXPECT_EQ(y, x);
  fill(y, 7.0);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(VectorOps, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(VectorOps, MeanComputes) {
  const Vector x = {1, 2, 3, 6};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
}

TEST(VectorOps, RemoveMeanCentersExactly) {
  Vector x = {5, 7, 9};
  remove_mean(x);
  EXPECT_DOUBLE_EQ(x[0] + x[1] + x[2], 0.0);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, RemoveMeanIsIdempotent) {
  Vector x = {1, 4, -2, 6};
  remove_mean(x);
  const Vector once = x;
  remove_mean(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], once[i], 1e-15);
}

}  // namespace
}  // namespace spar::linalg
