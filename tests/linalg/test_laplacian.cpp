#include "linalg/laplacian.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace spar::linalg {
namespace {

using graph::Graph;

TEST(Laplacian, MatrixEntriesMatchDefinition) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const CSRMatrix l = laplacian_matrix(g);
  // Check action on basis vectors: L e_1 = [-2, 5, -3].
  const Vector y = l.multiply(Vector{0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
}

TEST(Laplacian, AnnihilatesConstants) {
  const Graph g = graph::randomize_weights(graph::connected_erdos_renyi(50, 0.2, 3), 1.5, 4);
  const CSRMatrix l = laplacian_matrix(g);
  const Vector ones(g.num_vertices(), 1.0);
  const Vector y = l.multiply(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, MatrixIsSymmetric) {
  const Graph g = graph::randomize_weights(graph::grid2d(6, 7), 1.0, 9);
  EXPECT_DOUBLE_EQ(laplacian_matrix(g).symmetry_gap(), 0.0);
}

TEST(Laplacian, OperatorMatchesMatrix) {
  const Graph g = graph::randomize_weights(graph::connected_erdos_renyi(60, 0.2, 5), 2.0, 7);
  const CSRMatrix l = laplacian_matrix(g);
  const LaplacianOperator op(g);
  support::Rng rng(11);
  Vector x(g.num_vertices());
  for (double& v : x) v = rng.normal();
  const Vector via_matrix = l.multiply(x);
  const Vector via_operator = op.apply(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(via_matrix[i], via_operator[i], 1e-10);
}

TEST(Laplacian, QuadraticFormMatchesEdgeSum) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 0.5);
  const Vector x = {1.0, 3.0, 0.0};
  // 2*(1-3)^2 + 0.5*(3-0)^2 = 8 + 4.5
  EXPECT_DOUBLE_EQ(laplacian_quadratic_form(g, x), 12.5);
}

TEST(Laplacian, QuadraticFormEqualsXtLx) {
  const Graph g = graph::randomize_weights(graph::grid2d(8, 8), 1.0, 13);
  const CSRMatrix l = laplacian_matrix(g);
  support::Rng rng(3);
  Vector x(g.num_vertices());
  for (double& v : x) v = rng.normal();
  EXPECT_NEAR(laplacian_quadratic_form(g, x), dot(x, l.multiply(x)), 1e-9);
}

TEST(Laplacian, QuadraticFormNonnegative) {
  const Graph g = graph::preferential_attachment(100, 2, 5);
  support::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x(g.num_vertices());
    for (double& v : x) v = rng.normal();
    EXPECT_GE(laplacian_quadratic_form(g, x), 0.0);
  }
}

TEST(DegreeVector, MatchesWeightedDegrees) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  const Vector d = degree_vector(g);
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(AdjacencyMatrix, OffDiagonalPositive) {
  Graph g(2);
  g.add_edge(0, 1, 4.0);
  const CSRMatrix a = adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(a.multiply(Vector{0.0, 1.0})[0], 4.0);
  EXPECT_DOUBLE_EQ(a.multiply(Vector{1.0, 0.0})[1], 4.0);
}

TEST(AdjacencyMatrix, LaplacianIsDegreeMinusAdjacency) {
  const Graph g = graph::randomize_weights(graph::cycle_graph(20), 1.0, 17);
  const CSRMatrix l = laplacian_matrix(g);
  const CSRMatrix a = adjacency_matrix(g);
  const CSRMatrix d = CSRMatrix::diagonal(degree_vector(g));
  const CSRMatrix reconstructed = d.add(a, -1.0);
  support::Rng rng(23);
  Vector x(g.num_vertices());
  for (double& v : x) v = rng.normal();
  const Vector y1 = l.multiply(x);
  const Vector y2 = reconstructed.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-10);
}

}  // namespace
}  // namespace spar::linalg
