#include "linalg/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::linalg {
namespace {

TEST(DenseMatrix, FromCsrSumsDuplicates) {
  const CSRMatrix m =
      CSRMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.0}}, false);
  const DenseMatrix d = DenseMatrix::from_csr(m);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 3.0);
}

TEST(DenseMatrix, MultiplyVector) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  const Vector y = m.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseMatrix, MatrixProductAgainstIdentity) {
  DenseMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m.at(i, j) = double(3 * i + j);
  const DenseMatrix p = m.multiply(DenseMatrix::identity(3));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(p.at(i, j), m.at(i, j));
}

TEST(DenseMatrix, TransposeInvolution) {
  DenseMatrix m(2, 3);
  m.at(0, 2) = 5.0;
  m.at(1, 0) = -2.0;
  const DenseMatrix tt = m.transpose().transpose();
  EXPECT_DOUBLE_EQ(tt.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(tt.at(1, 0), -2.0);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  DenseMatrix m(3, 3);
  m.at(0, 0) = 3.0;
  m.at(1, 1) = 1.0;
  m.at(2, 2) = 2.0;
  const auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, TwoByTwoKnownSpectrum) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 2.0;
  m.at(1, 1) = 2.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  const auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V diag(lambda) V^T must reproduce the input.
  support::Rng rng(5);
  const std::size_t n = 12;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.normal();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  const auto eig = symmetric_eigen(a);
  DenseMatrix recon(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto vk = eig.eigenvectors.column(k);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        recon.at(i, j) += eig.eigenvalues[k] * vk[i] * vk[j];
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(recon.at(i, j), a.at(i, j), 1e-8);
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  support::Rng rng(9);
  const std::size_t n = 10;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  const auto eig = symmetric_eigen(a);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      const double ip = dot(eig.eigenvectors.column(p), eig.eigenvectors.column(q));
      EXPECT_NEAR(ip, p == q ? 1.0 : 0.0, 1e-9);
    }
}

TEST(SymmetricEigen, PathLaplacianSpectrumKnown) {
  // Path P_n Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
  const std::size_t n = 8;
  const DenseMatrix l =
      DenseMatrix::from_csr(laplacian_matrix(graph::path_graph(n)));
  const auto eig = symmetric_eigen(l);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(M_PI * double(k) / double(n));
    EXPECT_NEAR(eig.eigenvalues[k], expected, 1e-9) << "k=" << k;
  }
}

TEST(Cholesky, FactorizationSolvesSystem) {
  DenseMatrix a(3, 3);
  // SPD matrix: A = M M^T + I.
  support::Rng rng(3);
  DenseMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m.at(i, j) = rng.normal();
  const DenseMatrix mt = m.transpose();
  a = m.multiply(mt);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) += 1.0;

  const DenseMatrix lower = cholesky(a);
  const Vector b = {1.0, -2.0, 0.5};
  const Vector x = cholesky_solve(lower, b);
  const Vector back = a.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -1.0;
  EXPECT_THROW(cholesky(a), spar::Error);
}

TEST(SymmetricPinv, InvertsOnRange) {
  // Laplacian of a triangle: pinv(L) L = projection onto 1^perp.
  const DenseMatrix l =
      DenseMatrix::from_csr(laplacian_matrix(graph::complete_graph(3)));
  const DenseMatrix p = symmetric_pinv(l);
  const DenseMatrix pl = p.multiply(l);
  // P L should equal I - (1/3) J.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      const double expected = (i == j ? 1.0 : 0.0) - 1.0 / 3.0;
      EXPECT_NEAR(pl.at(i, j), expected, 1e-9);
    }
}

TEST(SymmetricPinv, NullspaceMapsToZero) {
  const DenseMatrix l =
      DenseMatrix::from_csr(laplacian_matrix(graph::cycle_graph(6)));
  const DenseMatrix p = symmetric_pinv(l);
  const Vector ones(6, 1.0);
  const Vector y = p.multiply(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace spar::linalg
