#include "spanner/stretch.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "support/error.hpp"

namespace spar::spanner {
namespace {

using graph::Graph;

TEST(Stretch, TriangleHandComputed) {
  // Remove the direct edge {0,2} (w=2, resistance .5); the path 0-1-2 has
  // resistance 1 + 1 = 2 => stretch = w * dist = 2 * 2 = 4.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const graph::EdgeId direct = g.add_edge(0, 2, 2.0);
  std::vector<bool> mask(g.num_edges(), true);
  mask[direct] = false;
  const StretchReport report = stretch_over_subgraph(g, mask);
  EXPECT_EQ(report.checked_edges, 1u);
  EXPECT_DOUBLE_EQ(report.max_stretch, 4.0);
  EXPECT_DOUBLE_EQ(report.mean_stretch, 4.0);
}

TEST(Stretch, SubgraphEdgesSkipped) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const StretchReport report = stretch_over_subgraph(g, {true, true});
  EXPECT_EQ(report.checked_edges, 0u);
  EXPECT_DOUBLE_EQ(report.max_stretch, 0.0);
}

TEST(Stretch, DisconnectedPairsCounted) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  const graph::EdgeId cut = g.add_edge(2, 3, 1.0);
  std::vector<bool> mask(g.num_edges(), true);
  mask[cut] = false;
  const StretchReport report = stretch_over_subgraph(g, mask);
  EXPECT_EQ(report.disconnected_pairs, 1u);
}

TEST(Stretch, MaskSizeValidated) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(stretch_over_subgraph(g, {true, false}), spar::Error);
}

TEST(Stretch, OverStandaloneGraph) {
  // Stretch of cycle edges over its own MST (path): the removed edge has
  // stretch = (n-1) on a unit cycle.
  const Graph g = graph::cycle_graph(10);
  const Graph t = graph::mst(g);
  const StretchReport report = stretch_over_graph(g, t);
  EXPECT_EQ(report.checked_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(report.max_stretch, 9.0);
}

TEST(Stretch, VertexCountMismatchThrows) {
  EXPECT_THROW(stretch_over_graph(graph::path_graph(3), graph::path_graph(4)),
               spar::Error);
}

TEST(Stretch, MeanLeqMax) {
  const Graph g = graph::randomize_weights(graph::complete_graph(24), 1.0, 3);
  const Graph t = graph::mst(g);
  const StretchReport report = stretch_over_graph(g, t);
  EXPECT_LE(report.mean_stretch, report.max_stretch);
  EXPECT_GE(report.mean_stretch, 0.0);
}

TEST(Stretch, TreeEdgesHaveStretchAtMostOneOverSelf) {
  // Every edge of H over H itself has stretch <= 1 (the edge is its own path)
  // -- for unit weights exactly 1.
  const Graph t = graph::binary_tree(15);
  const StretchReport report = stretch_over_graph(t, t);
  EXPECT_NEAR(report.max_stretch, 1.0, 1e-12);
}

}  // namespace
}  // namespace spar::spanner
