#include "spanner/baswana_sen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "spanner/stretch.hpp"

namespace spar::spanner {
namespace {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;

TEST(AutoSpannerK, MatchesCeilLog2) {
  EXPECT_EQ(auto_spanner_k(2), 1u);
  EXPECT_EQ(auto_spanner_k(3), 2u);
  EXPECT_EQ(auto_spanner_k(4), 2u);
  EXPECT_EQ(auto_spanner_k(5), 3u);
  EXPECT_EQ(auto_spanner_k(1024), 10u);
  EXPECT_EQ(auto_spanner_k(1025), 11u);
}

TEST(BaswanaSen, TreeInputIsFullyKept) {
  // A spanner of a tree must keep every edge (removing any disconnects).
  const Graph g = graph::binary_tree(31);
  const Graph h = spanner(g, {.k = 0, .seed = 3});
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(BaswanaSen, KeepsGraphConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::connected_erdos_renyi(150, 0.1, seed);
    const Graph h = spanner(g, {.k = 0, .seed = seed});
    EXPECT_TRUE(graph::is_connected(CSRGraph(h))) << "seed " << seed;
  }
}

TEST(BaswanaSen, K1ReturnsWholeGraph) {
  const Graph g = graph::complete_graph(12);
  const Graph h = spanner(g, {.k = 1, .seed = 1});
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(BaswanaSen, RespectsAliveMask) {
  const Graph g = graph::complete_graph(20);
  std::vector<bool> alive(g.num_edges(), false);
  // Only a spanning cycle is alive.
  std::vector<EdgeId> cycle_ids;
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const auto& e = g.edge(id);
    if (e.v == e.u + 1 || (e.u == 0 && e.v == 19)) {
      alive[id] = true;
      cycle_ids.push_back(id);
    }
  }
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, &alive, {.k = 0, .seed = 5});
  for (EdgeId id : ids) EXPECT_TRUE(alive[id]) << "spanner used a dead edge";
}

TEST(BaswanaSen, DeterministicForFixedSeed) {
  const Graph g = graph::connected_erdos_renyi(100, 0.15, 9);
  const CSRGraph csr(g);
  const auto a = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 77});
  const auto b = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 77});
  EXPECT_EQ(a, b);
}

TEST(BaswanaSen, DifferentSeedsGiveDifferentSpanners) {
  const Graph g = graph::complete_graph(40);
  const CSRGraph csr(g);
  const auto a = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 1});
  const auto b = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 2});
  EXPECT_NE(a, b);
}

TEST(BaswanaSen, WorkCounterAccumulates) {
  support::WorkCounter work;
  const Graph g = graph::connected_erdos_renyi(100, 0.2, 3);
  const CSRGraph csr(g);
  baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 1, .work = &work});
  // At least one scan of all arcs must be accounted.
  EXPECT_GE(work.total(), 2 * g.num_edges());
}

TEST(BaswanaSen, HandlesDisconnectedInput) {
  Graph g(10);
  for (graph::Vertex v = 0; v < 4; ++v)
    for (graph::Vertex u = v + 1; u < 5; ++u) g.add_edge(v, u, 1.0);
  for (graph::Vertex v = 5; v < 9; ++v)
    for (graph::Vertex u = v + 1; u < 10; ++u) g.add_edge(v, u, 1.0);
  const Graph h = spanner(g, {.k = 0, .seed = 3});
  // Each clique stays internally connected.
  graph::Vertex components = 0;
  graph::connected_components(CSRGraph(h + Graph(10)), &components);
  EXPECT_EQ(components, 2u);
}

TEST(BaswanaSen, EmptyGraph) {
  const Graph g(5);
  const Graph h = spanner(g, {.k = 0, .seed = 1});
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(BaswanaSen, MultigraphKeepsOnlyUsefulParallels) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  const Graph h = spanner(g, {.k = 2, .seed = 1});
  EXPECT_GE(h.num_edges(), 1u);
  EXPECT_LE(h.num_edges(), 3u);
  // The heaviest (lowest-resistance) parallel edge is always kept.
  bool has_heavy = false;
  for (const auto& e : h.edges()) has_heavy |= e.w == 5.0;
  EXPECT_TRUE(has_heavy);
}

// ---- Property sweep: stretch and size guarantees across families ----------

struct SpannerCase {
  std::string name;
  Graph graph;
};

class SpannerProperty : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static Graph family_graph(int family, std::uint64_t seed) {
    switch (family) {
      case 0:
        return graph::connected_erdos_renyi(180, 0.08, seed);
      case 1:
        return graph::randomize_weights(graph::connected_erdos_renyi(150, 0.1, seed),
                                        2.0, seed + 1);
      case 2:
        return graph::grid2d(14, 14);
      case 3:
        return graph::randomize_weights(graph::complete_graph(60), 1.5, seed);
      case 4:
        return graph::dumbbell(40, 0.01, seed);
      case 5:
        return graph::preferential_attachment(200, 3, seed);
      default:
        return graph::watts_strogatz(160, 3, 0.2, seed);
    }
  }
};

TEST_P(SpannerProperty, StretchBoundHolds) {
  const auto [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const std::size_t k = auto_spanner_k(g.num_vertices());
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = seed});
  std::vector<bool> mask(g.num_edges(), false);
  for (EdgeId id : ids) mask[id] = true;
  const StretchReport report = stretch_over_subgraph(g, mask);
  EXPECT_EQ(report.disconnected_pairs, 0u);
  EXPECT_LE(report.max_stretch, double(2 * k - 1) + 1e-9)
      << "family " << family << " seed " << seed;
}

TEST_P(SpannerProperty, SizeWithinTheoryEnvelope) {
  const auto [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const std::size_t n = g.num_vertices();
  const std::size_t k = auto_spanner_k(n);
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = seed});
  // Expected size O(k n^{1+1/k}) <= 2kn for auto-k; allow a generous 4x
  // envelope over the expectation for single-sample runs.
  const double envelope = 8.0 * double(k) * double(n);
  EXPECT_LE(double(ids.size()), envelope) << "family " << family;
  EXPECT_LE(ids.size(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpannerProperty,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "family" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Stretch bound with explicitly small k (loose spanners).
class SpannerSmallK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpannerSmallK, StretchRespects2kMinus1) {
  const std::size_t k = GetParam();
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(120, 0.12, k), 1.0, k);
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, nullptr, {.k = k, .seed = 31});
  std::vector<bool> mask(g.num_edges(), false);
  for (EdgeId id : ids) mask[id] = true;
  const StretchReport report = stretch_over_subgraph(g, mask);
  EXPECT_EQ(report.disconnected_pairs, 0u);
  EXPECT_LE(report.max_stretch, double(2 * k - 1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KSweep, SpannerSmallK, ::testing::Values(2, 3, 4, 6));

TEST(BaswanaSen, LargerKGivesSparserSpanners) {
  const Graph g = graph::complete_graph(128);
  const CSRGraph csr(g);
  const auto k2 = baswana_sen_spanner(csr, nullptr, {.k = 2, .seed = 5});
  const auto k7 = baswana_sen_spanner(csr, nullptr, {.k = 7, .seed = 5});
  EXPECT_LT(k7.size(), k2.size());
}

}  // namespace
}  // namespace spar::spanner
