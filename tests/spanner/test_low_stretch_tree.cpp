#include "spanner/low_stretch_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"
#include "spanner/stretch.hpp"
#include "support/error.hpp"

namespace spar::spanner {
namespace {

using graph::Graph;

TEST(LowStretchTree, SpansConnectedGraph) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = graph::connected_erdos_renyi(120, 0.08, seed);
    const Graph t = low_stretch_tree(g, {.seed = seed});
    EXPECT_EQ(t.num_edges(), g.num_vertices() - 1u) << "seed " << seed;
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(t)));
  }
}

TEST(LowStretchTree, IsAcyclic) {
  const Graph g = graph::randomize_weights(graph::complete_graph(50), 2.0, 3);
  const auto ids = low_stretch_tree_ids(g, {.seed = 9});
  graph::UnionFind uf(g.num_vertices());
  for (graph::EdgeId id : ids)
    EXPECT_TRUE(uf.unite(g.edge(id).u, g.edge(id).v)) << "cycle detected";
}

TEST(LowStretchTree, ForestOnDisconnectedGraph) {
  Graph g(7);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  const Graph t = low_stretch_tree(g, {.seed = 1});
  EXPECT_EQ(t.num_edges(), 4u);  // 2 + 2 edges; vertex 6 isolated
}

TEST(LowStretchTree, EmptyAndTrivialInputs) {
  EXPECT_EQ(low_stretch_tree(Graph(0), {}).num_edges(), 0u);
  EXPECT_EQ(low_stretch_tree(Graph(5), {}).num_edges(), 0u);
}

TEST(LowStretchTree, TreeInputReturnedWhole) {
  const Graph g = graph::binary_tree(31);
  const Graph t = low_stretch_tree(g, {.seed = 5});
  EXPECT_EQ(t.num_edges(), g.num_edges());
}

TEST(LowStretchTree, Deterministic) {
  const Graph g = graph::connected_erdos_renyi(80, 0.1, 7);
  const auto a = low_stretch_tree_ids(g, {.seed = 42});
  const auto b = low_stretch_tree_ids(g, {.seed = 42});
  EXPECT_EQ(a, b);
}

TEST(LowStretchTree, RejectsBadGrowth) {
  const Graph g = graph::path_graph(4);
  EXPECT_THROW(low_stretch_tree_ids(g, {.seed = 1, .class_growth = 1.0}),
               spar::Error);
}

TEST(LowStretchTree, AverageStretchBeatsWorstCaseEnvelope) {
  // On a sqrt(n) x sqrt(n) grid the MST-style worst tree has average stretch
  // ~sqrt(n); a low-stretch tree should stay well below that.
  const std::size_t side = 16;
  const Graph g = graph::grid2d(side, side);
  const Graph t = low_stretch_tree(g, {.seed = 3});
  const StretchReport report = stretch_over_graph(g, t);
  EXPECT_EQ(report.disconnected_pairs, 0u);
  const double n = double(g.num_vertices());
  EXPECT_LT(report.mean_stretch, std::sqrt(n));
}

TEST(LowStretchTree, RespectsWeightClasses) {
  // A graph with one very heavy (low-resistance) backbone: the tree should
  // strongly prefer heavy edges (they are in the earliest class).
  Graph g(6);
  for (graph::Vertex v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, 100.0);
  g.add_edge(0, 5, 0.001);
  g.add_edge(1, 4, 0.001);
  const Graph t = low_stretch_tree(g, {.seed = 1});
  ASSERT_EQ(t.num_edges(), 5u);
  for (const auto& e : t.edges()) EXPECT_DOUBLE_EQ(e.w, 100.0);
}

}  // namespace
}  // namespace spar::spanner
