#include "spanner/bundle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"
#include "resistance/effective_resistance.hpp"
#include "spanner/stretch.hpp"
#include "support/error.hpp"

namespace spar::spanner {
namespace {

using graph::EdgeId;
using graph::Graph;

TEST(Bundle, ComponentsAreEdgeDisjoint) {
  const Graph g = graph::complete_graph(40);
  const Bundle b = t_bundle(g, {.t = 3, .seed = 7});
  std::vector<int> seen(g.num_edges(), 0);
  for (const auto& component : b.components)
    for (EdgeId id : component) ++seen[id];
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST(Bundle, CountsAreConsistent) {
  const Graph g = graph::complete_graph(40);
  const Bundle b = t_bundle(g, {.t = 3, .seed = 7});
  std::size_t from_components = 0;
  for (const auto& component : b.components) from_components += component.size();
  EXPECT_EQ(b.bundle_edge_count, from_components);
  EXPECT_EQ(b.bundle_edge_count + b.off_bundle_edge_count, g.num_edges());
  std::size_t mask_count = 0;
  for (bool in : b.in_bundle) mask_count += in;
  EXPECT_EQ(mask_count, b.bundle_edge_count);
}

TEST(Bundle, EachComponentIsSpannerOfRemainder) {
  // Component i must have stretch <= 2k-1 for all edges alive when it was
  // peeled (Definition 1).
  const Graph g =
      graph::randomize_weights(graph::complete_graph(48), 1.0, 3);
  const std::size_t k = auto_spanner_k(g.num_vertices());
  const Bundle b = t_bundle(g, {.t = 3, .seed = 11});

  std::vector<bool> removed(g.num_edges(), false);
  for (const auto& component : b.components) {
    // Graph visible to this component: everything not yet removed.
    std::vector<bool> in_spanner(g.num_edges(), false);
    for (EdgeId id : component) in_spanner[id] = true;
    // Build the visible graph and the spanner mask on it.
    Graph visible(g.num_vertices());
    std::vector<bool> visible_mask;
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      if (removed[id]) continue;
      visible.add_edge(g.edge(id).u, g.edge(id).v, g.edge(id).w);
      visible_mask.push_back(in_spanner[id]);
    }
    const StretchReport report = stretch_over_subgraph(visible, visible_mask);
    EXPECT_EQ(report.disconnected_pairs, 0u);
    EXPECT_LE(report.max_stretch, double(2 * k - 1) + 1e-9);
    for (EdgeId id : component) removed[id] = true;
  }
}

TEST(Bundle, StopsEarlyWhenEdgesExhausted) {
  const Graph g = graph::path_graph(20);
  const Bundle b = t_bundle(g, {.t = 10, .seed = 3});
  // A tree is consumed by the first spanner.
  EXPECT_EQ(b.components.size(), 1u);
  EXPECT_EQ(b.bundle_edge_count, g.num_edges());
  EXPECT_EQ(b.off_bundle_edge_count, 0u);
}

TEST(Bundle, RejectsZeroT) {
  const Graph g = graph::path_graph(4);
  EXPECT_THROW(t_bundle(g, {.t = 0, .seed = 1}), spar::Error);
}

TEST(Bundle, GraphViewsPartitionEdges) {
  const Graph g = graph::complete_graph(30);
  const Bundle b = t_bundle(g, {.t = 2, .seed = 9});
  const Graph bundle_part = b.bundle_graph(g);
  const Graph rest = b.remainder_graph(g);
  EXPECT_EQ(bundle_part.num_edges() + rest.num_edges(), g.num_edges());
  EXPECT_NEAR(bundle_part.total_weight() + rest.total_weight(), g.total_weight(),
              1e-9);
}

// ---- Lemma 1: off-bundle leverage scores ----------------------------------

class Lemma1Property
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(Lemma1Property, OffBundleLeverageBounded) {
  const auto [t, seed] = GetParam();
  const Graph g =
      graph::randomize_weights(graph::complete_graph(56), 1.0, seed);
  const Bundle b = t_bundle(g, {.t = t, .seed = seed});
  if (b.off_bundle_edge_count == 0) GTEST_SKIP() << "bundle ate the graph";

  const auto resistances = resistance::exact_effective_resistances(g);
  const double log2n = std::log2(double(g.num_vertices()));
  // Lemma 1 with the proof's constant: w_e R_e <= 2 log n / t.
  const double bound = 2.0 * log2n / double(t);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (b.in_bundle[id]) continue;
    const double leverage = g.edge(id).w * resistances[id];
    EXPECT_LE(leverage, bound + 1e-9)
        << "edge " << id << " t=" << t << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TSweep, Lemma1Property,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Bundle, BiggerTLeavesFewerOffBundleEdges) {
  const Graph g = graph::complete_graph(64);
  const Bundle b1 = t_bundle(g, {.t = 1, .seed = 5});
  const Bundle b3 = t_bundle(g, {.t = 3, .seed = 5});
  EXPECT_GT(b1.off_bundle_edge_count, b3.off_bundle_edge_count);
}

TEST(Bundle, WorksOnPrebuiltCsr) {
  const Graph g = graph::complete_graph(24);
  const graph::CSRGraph csr(g);
  const Bundle a = t_bundle(g, csr, {.t = 2, .seed = 3});
  const Bundle b = t_bundle(g, {.t = 2, .seed = 3});
  EXPECT_EQ(a.in_bundle, b.in_bundle);
}

// ---- Tree bundles (Remark 2) ----------------------------------------------

TEST(TreeBundle, ComponentsAreForests) {
  const Graph g = graph::complete_graph(40);
  const Bundle b = tree_bundle(g, {.t = 3, .seed = 5});
  for (const auto& component : b.components) {
    graph::UnionFind uf(g.num_vertices());
    for (EdgeId id : component)
      EXPECT_TRUE(uf.unite(g.edge(id).u, g.edge(id).v)) << "cycle in tree bundle";
  }
}

TEST(TreeBundle, ComponentsSpanTheirRemainder) {
  // Each component is a spanning forest of the graph left after the previous
  // components (which may be disconnected, e.g. peeling a star from K_n
  // isolates the hub): edge count = n - (#components of the remainder).
  const Graph g = graph::complete_graph(30);
  const Bundle b = tree_bundle(g, {.t = 2, .seed = 7});
  std::vector<bool> removed(g.num_edges(), false);
  for (const auto& component : b.components) {
    Graph remainder(g.num_vertices());
    for (graph::EdgeId id = 0; id < g.num_edges(); ++id)
      if (!removed[id])
        remainder.add_edge(g.edge(id).u, g.edge(id).v, g.edge(id).w);
    graph::Vertex pieces = 0;
    graph::connected_components(graph::CSRGraph(remainder), &pieces);
    EXPECT_EQ(component.size(), g.num_vertices() - pieces);
    for (graph::EdgeId id : component) removed[id] = true;
  }
}

TEST(TreeBundle, MuchSmallerThanSpannerBundle) {
  const Graph g = graph::complete_graph(128);
  const Bundle trees = tree_bundle(g, {.t = 3, .seed = 9});
  const Bundle spanners = t_bundle(g, {.t = 3, .seed = 9});
  EXPECT_LT(trees.bundle_edge_count, spanners.bundle_edge_count);
}

TEST(TreeBundle, EdgeDisjointComponents) {
  const Graph g = graph::complete_graph(32);
  const Bundle b = tree_bundle(g, {.t = 4, .seed = 3});
  std::vector<int> seen(g.num_edges(), 0);
  for (const auto& component : b.components)
    for (EdgeId id : component) ++seen[id];
  for (int count : seen) EXPECT_LE(count, 1);
}

}  // namespace
}  // namespace spar::spanner
