#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace spar::graph {
namespace {

TEST(BfsHops, PathDistances) {
  const CSRGraph csr(path_graph(5));
  const auto hops = bfs_hops(csr, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(hops[v], v);
}

TEST(BfsHops, UnreachableMarked) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto hops = bfs_hops(CSRGraph(g), 0);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], static_cast<std::size_t>(-1));
}

TEST(ConnectedComponents, CountsAndLabels) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  Vertex count = 0;
  const auto comp = connected_components(CSRGraph(g), &count);
  EXPECT_EQ(count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(IsConnected, PositiveAndNegativeCases) {
  EXPECT_TRUE(is_connected(CSRGraph(cycle_graph(5))));
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_connected(CSRGraph(g)));
}

TEST(IsConnected, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(CSRGraph(Graph(0))));
}

TEST(Dijkstra, UsesResistanceLengths) {
  // Weight 4 edge = resistance 0.25.
  Graph g(3);
  g.add_edge(0, 1, 4.0);
  g.add_edge(1, 2, 2.0);
  const auto dist = dijkstra(CSRGraph(g), 0);
  EXPECT_DOUBLE_EQ(dist[1], 0.25);
  EXPECT_DOUBLE_EQ(dist[2], 0.75);
}

TEST(Dijkstra, PrefersLighterMultiHopPath) {
  Graph g(3);
  g.add_edge(0, 2, 0.1);   // resistance 10 direct
  g.add_edge(0, 1, 1.0);   // resistance 1 + 1 = 2 via middle
  g.add_edge(1, 2, 1.0);
  const auto dist = dijkstra(CSRGraph(g), 0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
}

TEST(Dijkstra, RespectsAliveMask) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  std::vector<bool> alive(g.num_edges(), true);
  alive[direct] = false;
  const auto dist = dijkstra(CSRGraph(g), 0, &alive);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);  // forced through the middle
}

TEST(Dijkstra, CutoffLeavesFarVerticesInfinite) {
  const auto dist = dijkstra(CSRGraph(path_graph(10)), 0, nullptr, 3.5);
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
  EXPECT_EQ(dist[9], kInfDist);
}

TEST(Dijkstra, DisconnectedVertexIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto dist = dijkstra(CSRGraph(g), 0);
  EXPECT_EQ(dist[2], kInfDist);
}

TEST(Dijkstra, GridMatchesManhattanOnUnitWeights) {
  const CSRGraph csr(grid2d(4, 4));
  const auto dist = dijkstra(csr, 0);
  // Vertex (r, c) = 4r + c has distance r + c on a unit grid.
  for (Vertex r = 0; r < 4; ++r)
    for (Vertex c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(dist[4 * r + c], r + c);
}

}  // namespace
}  // namespace spar::graph
