#include "graph/union_find.hpp"

#include <gtest/gtest.h>

namespace spar::graph {
namespace {

TEST(UnionFind, SingletonsInitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_TRUE(uf.connected(2, 2));
}

TEST(UnionFind, UniteConnects) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
}

TEST(UnionFind, UniteReturnsFalseWhenAlreadyJoined) {
  UnionFind uf(4);
  uf.unite(0, 1);
  EXPECT_FALSE(uf.unite(1, 0));
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(2, 3));
}

TEST(UnionFind, ComponentSizeTracksMerges) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(0, 2);
  EXPECT_EQ(uf.component_size(3), 4u);
  EXPECT_EQ(uf.component_size(5), 1u);
}

TEST(UnionFind, ChainOfUnionsFullyConnects) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  for (std::size_t i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_TRUE(uf.connected(0, n - 1));
  EXPECT_EQ(uf.component_size(0), n);
}

}  // namespace
}  // namespace spar::graph
