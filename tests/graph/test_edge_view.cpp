// EdgeArena/EdgeView: the SoA storage under the sparsification round
// pipeline. The contracts pinned here are what the round loop's bit-identity
// rests on: Graph round-trips preserve edge order, compaction is stable and
// deterministic across thread counts, and reweight-on-compact applies the
// exact factor.
#include "graph/edge_view.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "support/parallel.hpp"

namespace spar::graph {
namespace {

Graph weighted_fixture() {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.5);
  g.add_edge(2, 3, 0.5);
  g.add_edge(3, 4, 4.0);
  g.add_edge(0, 4, 3.0);
  g.add_edge(1, 3, 1.5);
  return g;
}

TEST(EdgeArena, GraphRoundTripPreservesOrderAndWeights) {
  const Graph g = weighted_fixture();
  EdgeArena arena(g);
  EXPECT_EQ(arena.num_vertices(), g.num_vertices());
  ASSERT_EQ(arena.size(), g.num_edges());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(arena.u(i), g.edge(i).u);
    EXPECT_EQ(arena.v(i), g.edge(i).v);
    EXPECT_EQ(arena.weight(i), g.edge(i).w);
  }
  const Graph back = arena.to_graph();
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(back.edge(i), g.edge(i));  // order, not just multiset
}

TEST(EdgeArena, ViewExposesSoASlabs) {
  const Graph g = weighted_fixture();
  const EdgeArena arena(g);
  const EdgeView view = arena.view();
  ASSERT_EQ(view.size, g.num_edges());
  EXPECT_EQ(view.num_vertices, g.num_vertices());
  for (std::size_t i = 0; i < view.size; ++i) {
    EXPECT_EQ(view.u[i], g.edge(i).u);
    EXPECT_EQ(view.v[i], g.edge(i).v);
    EXPECT_EQ(view.w[i], g.edge(i).w);
  }
  const EdgeView sub = view.slab(2, 5);
  ASSERT_EQ(sub.size, 3u);
  EXPECT_EQ(sub.u[0], g.edge(2).u);
  EXPECT_EQ(sub.w[2], g.edge(4).w);
}

TEST(EdgeArena, CompactIsStableAndReweights) {
  const Graph g = weighted_fixture();
  EdgeArena arena(g);
  // Keep even ids; double the weight of id 2 as it lands.
  const std::size_t kept = arena.compact(
      [](std::size_t i) { return i % 2 == 0; },
      [&](std::size_t i) { return i == 2 ? arena.weight(i) * 2.0 : arena.weight(i); });
  ASSERT_EQ(kept, 3u);
  ASSERT_EQ(arena.size(), 3u);
  EXPECT_EQ(arena.u(0), g.edge(0).u);
  EXPECT_EQ(arena.weight(0), g.edge(0).w);
  EXPECT_EQ(arena.u(1), g.edge(2).u);
  EXPECT_EQ(arena.weight(1), g.edge(2).w * 2.0);
  EXPECT_EQ(arena.u(2), g.edge(4).u);
  EXPECT_EQ(arena.weight(2), g.edge(4).w);
}

TEST(EdgeArena, CompactToEmptyAndAssignReuse) {
  EdgeArena arena(weighted_fixture());
  EXPECT_EQ(arena.compact([](std::size_t) { return false; }), 0u);
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.to_graph().num_edges(), 0u);
  // Refill the same arena from a fresh Graph (buffer reuse path).
  const Graph g2 = connected_erdos_renyi(60, 0.2, 7);
  arena.assign(g2);
  EXPECT_TRUE(arena.to_graph().same_edges(g2));
}

TEST(EdgeArena, CompactDeterministicAcrossThreadCounts) {
  const Graph g = connected_erdos_renyi(500, 0.05, 11);
  Graph base;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    EdgeArena arena(g);
    arena.compact([](std::size_t i) { return i % 3 != 0; },
                  [&](std::size_t i) { return arena.weight(i) * 4.0; });
    const Graph got = arena.to_graph();
    if (threads == 1) {
      base = got;
    } else {
      ASSERT_EQ(base.num_edges(), got.num_edges());
      for (std::size_t i = 0; i < base.num_edges(); ++i)
        EXPECT_EQ(base.edge(i), got.edge(i)) << threads << " threads";
    }
  }
}

TEST(EdgeArena, InPlaceReweightThroughWeightsSpan) {
  EdgeArena arena(weighted_fixture());
  for (double& w : arena.weights()) w *= 4.0;
  EXPECT_EQ(arena.weight(3), 16.0);
  EXPECT_DOUBLE_EQ(arena.total_weight(), 4.0 * (1.0 + 2.5 + 0.5 + 4.0 + 3.0 + 1.5));
}

TEST(CSRGraph, RebuildFromViewMatchesGraphConstruction) {
  const Graph g = connected_erdos_renyi(200, 0.08, 3);
  const EdgeArena arena(g);
  const CSRGraph from_graph(g);
  CSRGraph from_view;
  from_view.rebuild(arena.view());
  ASSERT_EQ(from_view.num_vertices(), from_graph.num_vertices());
  ASSERT_EQ(from_view.num_arcs(), from_graph.num_arcs());
  for (Vertex v = 0; v < from_graph.num_vertices(); ++v) {
    const auto a = from_graph.neighbors(v);
    const auto b = from_view.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].w, b[i].w);
    }
  }
}

TEST(CSRGraph, RebuildReusesObjectAcrossShrinkingInputs) {
  // The round loop's pattern: one CSRGraph rebuilt from a shrinking arena.
  const Graph g = connected_erdos_renyi(150, 0.1, 9);
  EdgeArena arena(g);
  CSRGraph csr;
  csr.rebuild(arena.view());
  const std::size_t arcs_full = csr.num_arcs();
  arena.compact([](std::size_t i) { return i % 2 == 0; });
  csr.rebuild(arena.view());
  EXPECT_EQ(csr.num_arcs(), 2 * arena.size());
  EXPECT_LT(csr.num_arcs(), arcs_full);
  // Must equal a fresh build from the equivalent Graph.
  const CSRGraph fresh(arena.to_graph());
  ASSERT_EQ(fresh.num_arcs(), csr.num_arcs());
  for (Vertex v = 0; v < fresh.num_vertices(); ++v) {
    const auto a = fresh.neighbors(v);
    const auto b = csr.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].id, b[i].id);
    }
  }
}

}  // namespace
}  // namespace spar::graph
