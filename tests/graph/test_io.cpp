#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace spar::graph {
namespace {

TEST(EdgeListIO, RoundTripPreservesGraph) {
  const Graph g = randomize_weights(connected_erdos_renyi(40, 0.15, 3), 1.0, 5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(back.same_edges(g));
}

TEST(EdgeListIO, SkipsComments) {
  std::stringstream in("# a comment\n3 1\n# another\n0 2 1.5\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
}

TEST(EdgeListIO, DefaultWeightIsOne) {
  std::stringstream in("2 1\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.0);
}

TEST(EdgeListIO, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(EdgeListIO, RejectsTruncatedEdgeList) {
  std::stringstream in("3 2\n0 1 1.0\n");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(EdgeListIO, RejectsBadEdgeEndpoint) {
  std::stringstream in("2 1\n0 5 1.0\n");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(MatrixMarketIO, RoundTrip) {
  const Graph g = randomize_weights(grid2d(4, 5), 1.0, 11);
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const Graph back = read_matrix_market(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(back.coalesced().same_edges(g.coalesced()));
}

TEST(MatrixMarketIO, BannerRequired) {
  std::stringstream in("3 3 1\n1 2 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarketIO, DiagonalEntriesIgnored) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5.0\n2 1 1.5\n");
  const Graph g = read_matrix_market(in);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
}

TEST(MatrixMarketIO, RejectsRectangular) {
  std::stringstream in("%%MatrixMarket matrix coordinate real general\n3 4 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(FileIO, SaveAndLoad) {
  const Graph g = cycle_graph(8);
  const std::string path = testing::TempDir() + "/spar_io_test.txt";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_TRUE(back.same_edges(g));
}

TEST(FileIO, LoadMissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/definitely/missing.txt"), Error);
}

}  // namespace
}  // namespace spar::graph
