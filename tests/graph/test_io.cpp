#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io_binary.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::graph {
namespace {

/// EXPECT_THROW plus a substring check on the message (line numbers etc.).
template <typename F>
void expect_error_containing(F&& f, const std::string& needle) {
  try {
    f();
    FAIL() << "expected spar::Error containing \"" << needle << "\"";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << "message was: " << err.what();
  }
}

// --- edge lists ------------------------------------------------------------

TEST(EdgeListIO, RoundTripPreservesGraph) {
  const Graph g = randomize_weights(connected_erdos_renyi(40, 0.15, 3), 1.0, 5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(back.same_edges(g));
}

TEST(EdgeListIO, RoundTripIsBitExactAndOrderPreserving) {
  // max_digits10 output + from_chars input must reproduce every double bit
  // for bit, and the chunked parser must keep file order (ids are positional).
  Graph g(6);
  g.add_edge(0, 1, 0.1);
  g.add_edge(1, 2, 1.0 / 3.0);
  g.add_edge(2, 3, 1e-300);
  g.add_edge(3, 4, 1e300);
  g.add_edge(4, 5, std::nextafter(2.0, 3.0));
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i).u, g.edge(i).u);
    EXPECT_EQ(back.edge(i).v, g.edge(i).v);
    EXPECT_EQ(back.edge(i).w, g.edge(i).w);  // exact, not DOUBLE_EQ
  }
}

TEST(EdgeListIO, SkipsComments) {
  std::stringstream in("# a comment\n3 1\n# another\n0 2 1.5\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
}

TEST(EdgeListIO, AcceptsBlankLinesAndCrlf) {
  std::stringstream in("2 1\r\n\r\n  \r\n0 1 2.0\r\n");
  const Graph g = read_edge_list(in);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.0);
}

TEST(EdgeListIO, DefaultWeightIsOne) {
  std::stringstream in("2 1\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.0);
}

TEST(EdgeListIO, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(EdgeListIO, RejectsTruncatedEdgeList) {
  std::stringstream in("3 2\n0 1 1.0\n");
  expect_error_containing([&] { read_edge_list(in); }, "expected 2 edges, found 1");
}

TEST(EdgeListIO, RejectsTrailingData) {
  std::stringstream in("3 1\n0 1 1.0\n1 2 1.0\n");
  expect_error_containing([&] { read_edge_list(in); }, "trailing data");
}

TEST(EdgeListIO, RejectsBadEdgeEndpointWithLineNumber) {
  std::stringstream in("2 2\n0 1 1.0\n0 5 1.0\n");
  expect_error_containing([&] { read_edge_list(in); }, "line 3: endpoint out of range");
}

TEST(EdgeListIO, RejectsSelfLoopWithLineNumber) {
  std::stringstream in("# hi\n3 1\n2 2 1.0\n");
  expect_error_containing([&] { read_edge_list(in); }, "line 3: self-loop");
}

TEST(EdgeListIO, RejectsMalformedWeight) {
  std::stringstream in("2 1\n0 1 heavy\n");
  expect_error_containing([&] { read_edge_list(in); }, "line 2");
}

TEST(EdgeListIO, RejectsNonPositiveOrNonFiniteWeight) {
  std::stringstream in1("2 1\n0 1 0\n");
  EXPECT_THROW(read_edge_list(in1), Error);
  std::stringstream in2("2 1\n0 1 -3\n");
  EXPECT_THROW(read_edge_list(in2), Error);
  std::stringstream in3("2 1\n0 1 inf\n");
  EXPECT_THROW(read_edge_list(in3), Error);
}

TEST(EdgeListIO, RejectsTrailingTokens) {
  std::stringstream in("2 1\n0 1 1.0 extra\n");
  expect_error_containing([&] { read_edge_list(in); }, "trailing characters");
}

TEST(EdgeListIO, RejectsBadHeader) {
  std::stringstream in("nope nope\n");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(EdgeListIO, ParallelParseIsThreadCountInvariant) {
  const Graph g = randomize_weights(connected_erdos_renyi(500, 0.05, 7), 2.0, 9);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const std::string text = buffer.str();
  EdgeArena one, four;
  {
    support::par::ThreadLimit limit(1);
    parse_edge_list(text, one);
  }
  {
    support::par::ThreadLimit limit(4);
    parse_edge_list(text, four);
  }
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.u(i), four.u(i));
    EXPECT_EQ(one.v(i), four.v(i));
    EXPECT_EQ(one.weight(i), four.weight(i));
  }
}

// --- MatrixMarket ----------------------------------------------------------

TEST(MatrixMarketIO, RoundTrip) {
  const Graph g = randomize_weights(grid2d(4, 5), 1.0, 11);
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const Graph back = read_matrix_market(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(back.coalesced().same_edges(g.coalesced()));
}

TEST(MatrixMarketIO, BannerRequired) {
  std::stringstream in("3 3 1\n1 2 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarketIO, DiagonalEntriesIgnored) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5.0\n2 1 1.5\n");
  MatrixMarketInfo info;
  const Graph g = read_matrix_market(in, &info);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
  EXPECT_EQ(info.diagonal_dropped, 1u);
}

TEST(MatrixMarketIO, RejectsRectangular) {
  std::stringstream in("%%MatrixMarket matrix coordinate real general\n3 4 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

// Headline regression: a `general` file lists both (i,j) and (j,i). The old
// reader ignored the symmetry field and ran coalesced(), silently doubling
// every edge weight (1.5 became 3.0 here).
TEST(MatrixMarketIO, GeneralFileWithBothDirectionsIsNotDoubled) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n1 2 1.5\n2 1 1.5\n2 3 0.25\n3 2 0.25\n");
  MatrixMarketInfo info;
  const Graph g = read_matrix_market(in, &info);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 0.25);
  EXPECT_EQ(info.mirrored_merged, 2u);
  EXPECT_EQ(info.symmetry, "general");
}

TEST(MatrixMarketIO, GeneralFileWithSingleDirectionKeepsWeight) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 2.5\n");
  const Graph g = read_matrix_market(in);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
}

TEST(MatrixMarketIO, GeneralFileMismatchedMirrorRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 2.5\n2 1 2.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "mirrored entries disagree");
}

TEST(MatrixMarketIO, DuplicateEntryRejected) {
  std::stringstream in1(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n2 1 2.5\n2 1 2.5\n");
  expect_error_containing([&] { read_matrix_market(in1); }, "duplicate entry");
  std::stringstream in2(
      "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n2 1 1.0\n2 1 1.0\n");
  expect_error_containing([&] { read_matrix_market(in2); }, "duplicate entry");
}

TEST(MatrixMarketIO, SymmetricUpperTriangleRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n1 3 1.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "upper-triangle");
}

// Regression: blank lines and %-comments inside the entry body are legal
// MatrixMarket; the old reader threw "bad entry" on them.
TEST(MatrixMarketIO, BodyCommentsAndBlankLinesSkipped) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% header comment\n3 3 2\n\n% mid-body comment\n2 1 1.5\n\n3 2 2.5\n\n% tail\n");
  const Graph g = read_matrix_market(in);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 2.5);
}

// Regression: a 0-based (or otherwise out-of-range) index used to underflow
// `r - 1` into a huge Vertex and surface as a confusing add_edge assertion;
// now it is a line-numbered range error that mentions 1-based indexing.
TEST(MatrixMarketIO, ZeroBasedIndexGetsLineNumberedError) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n0 2 1.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "line 4");
  std::stringstream again(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n0 2 1.0\n");
  expect_error_containing([&] { read_matrix_market(again); }, "1-based");
}

TEST(MatrixMarketIO, OutOfRangeIndexRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 7 1.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "out of range");
}

// Regression: the old reader defaulted a missing weight to 1.0 for every
// field type. Only `pattern` files omit values by design.
TEST(MatrixMarketIO, PatternFileGetsUnitWeights) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 1\n");
  MatrixMarketInfo info;
  const Graph g = read_matrix_market(in, &info);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.0);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 1.0);
  EXPECT_EQ(info.field, "pattern");
}

TEST(MatrixMarketIO, RealFileMissingWeightRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n2 1\n");
  expect_error_containing([&] { read_matrix_market(in); }, "missing or malformed value");
}

TEST(MatrixMarketIO, MalformedWeightRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n2 1 heavy\n");
  expect_error_containing([&] { read_matrix_market(in); }, "line 3");
}

TEST(MatrixMarketIO, PatternFileWithValueTokenRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n2 1 5.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "trailing characters");
}

// Regression: negative values used to be std::abs-flipped with no trace; the
// flip is now recorded (Laplacian off-diagonal convention) per entry.
TEST(MatrixMarketIO, NegativeWeightsFlippedAndCounted) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 -1.5\n3 2 2.0\n");
  MatrixMarketInfo info;
  const Graph g = read_matrix_market(in, &info);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.5);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 2.0);
  EXPECT_EQ(info.negative_flipped, 1u);
}

TEST(MatrixMarketIO, ExplicitZeroEntriesDroppedAndCounted) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 0.0\n3 2 2.0\n");
  MatrixMarketInfo info;
  const Graph g = read_matrix_market(in, &info);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(info.zero_dropped, 1u);
}

TEST(MatrixMarketIO, UnsupportedFieldAndSymmetryRejected) {
  std::stringstream complex_in(
      "%%MatrixMarket matrix coordinate complex general\n2 2 0\n");
  expect_error_containing([&] { read_matrix_market(complex_in); }, "unsupported field");
  std::stringstream skew_in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 0\n");
  expect_error_containing([&] { read_matrix_market(skew_in); }, "unsupported symmetry");
}

TEST(MatrixMarketIO, IntegerFieldAccepted) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate integer symmetric\n3 3 1\n2 1 4\n");
  const Graph g = read_matrix_market(in);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 4.0);
}

TEST(MatrixMarketIO, TrailingDataRejected) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n2 1 1.0\n3 2 2.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "trailing data");
}

TEST(MatrixMarketIO, HostileNnzFailsCleanly) {
  // A hostile size line must produce a spar::Error (truncated body), not a
  // std::length_error from pre-reserving nnz entries.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n3 3 1000000000000000000\n2 1 1.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "truncated");
}

TEST(MatrixMarketIO, TruncatedBodyNamesCounts) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n2 1 1.0\n");
  expect_error_containing([&] { read_matrix_market(in); }, "expected 3 entries, found 1");
}

TEST(MatrixMarketIO, WriterCoalescesParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.0);  // parallel edge; one matrix entry of weight 3
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const Graph back = read_matrix_market(buffer);
  ASSERT_EQ(back.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(back.edge(0).w, 3.0);
}

// --- files + format dispatch -----------------------------------------------

TEST(FileIO, SaveAndLoad) {
  const Graph g = cycle_graph(8);
  const std::string path = testing::TempDir() + "/spar_io_test.txt";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_TRUE(back.same_edges(g));
}

TEST(FileIO, LoadMissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/definitely/missing.txt"), Error);
}

TEST(FormatDispatch, ExtensionMapping) {
  EXPECT_EQ(format_from_extension("g.mtx"), GraphFormat::kMatrixMarket);
  EXPECT_EQ(format_from_extension("dir.mtx/g"), GraphFormat::kEdgeList);
  EXPECT_EQ(format_from_extension("G.MM"), GraphFormat::kMatrixMarket);
  EXPECT_EQ(format_from_extension("g.spb"), GraphFormat::kBinary);
  EXPECT_EQ(format_from_extension("g.bin"), GraphFormat::kBinary);
  EXPECT_EQ(format_from_extension("g.txt"), GraphFormat::kEdgeList);
  EXPECT_EQ(format_from_extension("noext"), GraphFormat::kEdgeList);
}

TEST(FormatDispatch, ContentSniffingBeatsExtension) {
  const Graph g = randomize_weights(grid2d(3, 4), 1.0, 2);
  const std::string dir = testing::TempDir();
  // A MatrixMarket document saved with a misleading extension.
  const std::string mm_as_txt = dir + "/spar_sniff.txt";
  save_matrix_market(mm_as_txt, g);
  EXPECT_EQ(detect_format(mm_as_txt), GraphFormat::kMatrixMarket);
  EXPECT_TRUE(load_graph(mm_as_txt).same_edges(g));
  // A binary file with no extension at all.
  const std::string bin_plain = dir + "/spar_sniff_bin";
  save_binary(bin_plain, g);
  EXPECT_EQ(detect_format(bin_plain), GraphFormat::kBinary);
  EXPECT_TRUE(load_graph(bin_plain).same_edges(g));
}

TEST(FormatDispatch, SaveGraphByExtensionRoundTrips) {
  const Graph g = randomize_weights(connected_erdos_renyi(30, 0.2, 5), 1.0, 6);
  const std::string dir = testing::TempDir();
  for (const char* name : {"/spar_fmt.txt", "/spar_fmt.mtx", "/spar_fmt.spb"}) {
    const std::string path = dir + name;
    save_graph(path, g);
    EXPECT_TRUE(load_graph(path).coalesced().same_edges(g.coalesced())) << path;
  }
}

// --- batched edge streams --------------------------------------------------

namespace {

bool bit_identical(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges())
    return false;
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    if (!(a.edge(i) == b.edge(i))) return false;
  return true;
}

Graph drain(EdgeStream& stream, std::size_t batch_edges) {
  EdgeArena all;
  all.resize(stream.num_vertices(), 0);
  EdgeArena batch;
  while (stream.next_batch(batch, batch_edges) > 0) all.append(batch.view());
  return all.to_graph();
}

}  // namespace

TEST(MemoryEdgeStream, ServesSlabsInOrderForEveryBatchSize) {
  const Graph g = randomize_weights(connected_erdos_renyi(60, 0.15, 4), 2.0, 5);
  EdgeArena arena(g);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{13}, g.num_edges()}) {
    MemoryEdgeStream stream(arena.view());
    EXPECT_EQ(stream.num_edges(), g.num_edges());
    EXPECT_TRUE(bit_identical(drain(stream, batch), g)) << "batch " << batch;
  }
}

TEST(TextEdgeStream, BatchesConcatenateToLoadEdgeList) {
  const Graph g = randomize_weights(connected_erdos_renyi(80, 0.12, 9), 3.0, 10);
  const std::string path = testing::TempDir() + "/spar_stream.txt";
  save_edge_list(path, g);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{17}, std::size_t{256},
                                  g.num_edges() * 2}) {
    TextEdgeStream stream(path);
    EXPECT_EQ(stream.num_vertices(), g.num_vertices());
    EXPECT_EQ(stream.num_edges(), g.num_edges());
    EXPECT_TRUE(bit_identical(drain(stream, batch), g)) << "batch " << batch;
  }
  std::remove(path.c_str());
}

TEST(TextEdgeStream, CommentsAndBlankLinesSkippedMidStream) {
  const std::string path = testing::TempDir() + "/spar_stream_comments.txt";
  {
    std::ofstream out(path);
    out << "# header comment\n4 3\n0 1 2.0\n\n# middle\n1 2\n   \n2 3 0.5\n";
  }
  TextEdgeStream stream(path);
  const Graph g = drain(stream, 2);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(1).w, 1.0);  // default weight survives batching
  std::remove(path.c_str());
}

TEST(TextEdgeStream, TruncatedAndTrailingFilesDiagnosed) {
  const std::string dir = testing::TempDir();
  const std::string truncated = dir + "/spar_stream_trunc.txt";
  {
    std::ofstream out(truncated);
    out << "4 5\n0 1\n1 2\n";
  }
  expect_error_containing(
      [&] {
        TextEdgeStream stream(truncated);
        drain(stream, 2);
      },
      "truncated");
  std::remove(truncated.c_str());

  const std::string trailing = dir + "/spar_stream_trail.txt";
  {
    std::ofstream out(trailing);
    out << "4 2\n0 1\n1 2\n2 3\n";
  }
  expect_error_containing(
      [&] {
        TextEdgeStream stream(trailing);
        drain(stream, 2);
      },
      "trailing");
  std::remove(trailing.c_str());
}

TEST(TextEdgeStream, BadRowsKeepRealLineNumbers) {
  const std::string path = testing::TempDir() + "/spar_stream_badrow.txt";
  {
    std::ofstream out(path);
    out << "# c\n4 4\n0 1\n1 2\n2 9\n3 0\n";  // line 5 is out of range
  }
  expect_error_containing(
      [&] {
        TextEdgeStream stream(path);
        drain(stream, 2);  // the bad row lands in the second batch
      },
      "line 5");
  std::remove(path.c_str());
}

TEST(OpenEdgeStream, DispatchesAllThreeFormats) {
  const Graph g = randomize_weights(connected_erdos_renyi(40, 0.2, 7), 2.0, 8);
  const std::string dir = testing::TempDir();
  for (const char* name : {"/spar_open.txt", "/spar_open.spb", "/spar_open.mtx"}) {
    const std::string path = dir + name;
    save_graph(path, g);
    const auto stream = open_edge_stream(path);
    const Graph back = drain(*stream, 9);
    // MatrixMarket canonicalizes to the coalesced simple graph.
    EXPECT_TRUE(back.coalesced().same_edges(g.coalesced())) << path;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace spar::graph
