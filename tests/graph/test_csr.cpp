#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "support/parallel.hpp"

namespace spar::graph {
namespace {

TEST(CSRGraph, TriangleDegreesAndArcs) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const CSRGraph csr(g);
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_arcs(), 6u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 2u);
  EXPECT_EQ(csr.degree(2), 2u);
}

TEST(CSRGraph, ArcsCarryWeightsAndIds) {
  Graph g(2);
  const EdgeId id = g.add_edge(0, 1, 2.5);
  const CSRGraph csr(g);
  const auto nbrs = csr.neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].to, 1u);
  EXPECT_DOUBLE_EQ(nbrs[0].w, 2.5);
  EXPECT_EQ(nbrs[0].id, id);
}

TEST(CSRGraph, NeighborsSortedByTarget) {
  Graph g(5);
  g.add_edge(2, 4, 1.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(2, 1, 1.0);
  const CSRGraph csr(g);
  const auto nbrs = csr.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 1; i < nbrs.size(); ++i)
    EXPECT_LT(nbrs[i - 1].to, nbrs[i].to);
}

TEST(CSRGraph, ParallelEdgesKeptSeparately) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  const CSRGraph csr(g);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 2u);
}

TEST(CSRGraph, IsolatedVertexHasZeroDegree) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const CSRGraph csr(g);
  EXPECT_EQ(csr.degree(2), 0u);
  EXPECT_TRUE(csr.neighbors(2).empty());
}

TEST(CSRGraph, MaxDegreeOnStar) {
  const CSRGraph csr(star_graph(10));
  EXPECT_EQ(csr.max_degree(), 9u);
}

TEST(CSRGraph, ArcCountMatchesTwiceEdgesOnRandomGraph) {
  const Graph g = erdos_renyi(100, 0.1, 3);
  const CSRGraph csr(g);
  EXPECT_EQ(csr.num_arcs(), 2 * g.num_edges());
  std::size_t degree_sum = 0;
  for (Vertex v = 0; v < csr.num_vertices(); ++v) degree_sum += csr.degree(v);
  EXPECT_EQ(degree_sum, csr.num_arcs());
}

TEST(CSRGraph, EveryArcHasReverseTwin) {
  const Graph g = erdos_renyi(60, 0.15, 9);
  const CSRGraph csr(g);
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    for (const Arc& arc : csr.neighbors(v)) {
      bool found = false;
      for (const Arc& back : csr.neighbors(arc.to)) {
        if (back.id == arc.id && back.to == v) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "arc " << v << "->" << arc.to << " has no twin";
    }
  }
}

// --- build-path policy (PR 3: atomic scatter gated on work per thread) -----

namespace {
struct BuildPathGuard {
  CsrBuildPath saved = csr_build_path();
  ~BuildPathGuard() { set_csr_build_path(saved); }
};

bool same_structure(const CSRGraph& a, const CSRGraph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_arcs() != b.num_arcs())
    return false;
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (na.size() != nb.size()) return false;
    for (std::size_t i = 0; i < na.size(); ++i)
      if (na[i].to != nb[i].to || na[i].id != nb[i].id || na[i].w != nb[i].w)
        return false;
  }
  return true;
}
}  // namespace

TEST(CSRBuildPath, ForcedPathsProduceIdenticalStructure) {
  BuildPathGuard guard;
  const Graph g = randomize_weights(connected_erdos_renyi(300, 0.05, 21), 1.5, 4);
  support::par::ThreadLimit limit(4);
  set_csr_build_path(CsrBuildPath::kSerial);
  const CSRGraph serial(g);
  set_csr_build_path(CsrBuildPath::kParallel);
  const CSRGraph atomic(g);
  set_csr_build_path(CsrBuildPath::kAuto);
  const CSRGraph auto_built(g);
  EXPECT_TRUE(same_structure(serial, atomic));
  EXPECT_TRUE(same_structure(serial, auto_built));
}

TEST(CSRBuildPath, AutoGatesOnWorkPerEffectiveThread) {
  BuildPathGuard guard;
  set_csr_build_path(CsrBuildPath::kAuto);
  // Small builds must take the serial path at any thread budget: the atomic
  // scatter was measured ~2.5x slower there (BENCH_pr2 -> BENCH_pr3).
  support::par::ThreadLimit limit(4);
  EXPECT_FALSE(csr_parallel_build_enabled(1000));
  // Oversubscription (budget above the core count) must not enable it either.
  if (support::par::hardware_threads() == 1) {
    EXPECT_FALSE(csr_parallel_build_enabled(std::size_t{1} << 22));
  }
}

TEST(CSRBuildPath, ForcedModesOverrideTheGate) {
  BuildPathGuard guard;
  set_csr_build_path(CsrBuildPath::kSerial);
  EXPECT_FALSE(csr_parallel_build_enabled(std::size_t{1} << 22));
  set_csr_build_path(CsrBuildPath::kParallel);
  EXPECT_EQ(csr_parallel_build_enabled(std::size_t{1} << 22),
            support::par::openmp_enabled());
}

}  // namespace
}  // namespace spar::graph
