// Algebraic identities from Section 2 of the paper, tested as properties:
// L_{G1+G2} = L_{G1} + L_{G2}, L_{aG} = a L_G, quadratic-form linearity,
// and the Laplacian ordering G2 <= G1 for subgraphs.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "support/rng.hpp"

namespace spar::graph {
namespace {

using linalg::Vector;

class GraphAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph(std::uint64_t salt) const {
    return randomize_weights(connected_erdos_renyi(40, 0.2, GetParam() + salt),
                             1.5, GetParam() + salt + 100);
  }

  Vector random_vector(std::size_t n, std::uint64_t salt) const {
    support::Rng rng(GetParam() * 31 + salt);
    Vector x(n);
    for (double& v : x) v = rng.normal();
    return x;
  }
};

TEST_P(GraphAlgebra, SumOfGraphsIsSumOfLaplacians) {
  const Graph g1 = random_graph(1);
  const Graph g2 = random_graph(2);
  const Graph sum = g1 + g2;
  const Vector x = random_vector(g1.num_vertices(), 7);
  EXPECT_NEAR(linalg::laplacian_quadratic_form(sum, x),
              linalg::laplacian_quadratic_form(g1, x) +
                  linalg::laplacian_quadratic_form(g2, x),
              1e-9);
}

TEST_P(GraphAlgebra, ScalingScalesQuadraticForm) {
  const Graph g = random_graph(3);
  const Vector x = random_vector(g.num_vertices(), 9);
  const double a = 2.5;
  EXPECT_NEAR(linalg::laplacian_quadratic_form(g.scaled(a), x),
              a * linalg::laplacian_quadratic_form(g, x), 1e-9);
}

TEST_P(GraphAlgebra, CoalescingPreservesQuadraticForm) {
  const Graph g1 = random_graph(4);
  const Graph doubled = g1 + g1;  // parallel edges everywhere
  const Graph merged = doubled.coalesced();
  const Vector x = random_vector(g1.num_vertices(), 11);
  EXPECT_NEAR(linalg::laplacian_quadratic_form(doubled, x),
              linalg::laplacian_quadratic_form(merged, x), 1e-9);
  EXPECT_NEAR(linalg::laplacian_quadratic_form(merged, x),
              2.0 * linalg::laplacian_quadratic_form(g1, x), 1e-9);
}

TEST_P(GraphAlgebra, SubgraphOrderingHolds) {
  // Dropping edges can only decrease the quadratic form: L_H <= L_G for
  // every subgraph H (the paper's "G2 preceq G1" relation).
  const Graph g = random_graph(5);
  std::vector<bool> keep(g.num_edges(), true);
  support::Rng rng(GetParam() * 17 + 5);
  for (std::size_t id = 0; id < keep.size(); ++id) keep[id] = rng.bernoulli(0.6);
  const Graph h = g.filtered(keep);
  for (int trial = 0; trial < 8; ++trial) {
    const Vector x = random_vector(g.num_vertices(), 13 + trial);
    EXPECT_LE(linalg::laplacian_quadratic_form(h, x),
              linalg::laplacian_quadratic_form(g, x) + 1e-9);
  }
}

TEST_P(GraphAlgebra, MatrixAndEdgeFormsAgreeOnSums) {
  const Graph g1 = random_graph(6);
  const Graph g2 = random_graph(7);
  const auto l1 = linalg::laplacian_matrix(g1);
  const auto l2 = linalg::laplacian_matrix(g2);
  const auto lsum = linalg::laplacian_matrix(g1 + g2);
  const Vector x = random_vector(g1.num_vertices(), 15);
  const Vector via_sum = lsum.multiply(x);
  Vector via_parts = l1.multiply(x);
  const Vector y2 = l2.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) via_parts[i] += y2[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(via_sum[i], via_parts[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphAlgebra, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace spar::graph
