#include "graph/io_binary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::graph {
namespace {

bool identical(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges())
    return false;
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    if (!(a.edge(i) == b.edge(i))) return false;  // exact, order included
  return true;
}

std::string serialized(const Graph& g) {
  std::stringstream buffer;
  write_binary(buffer, g);
  return buffer.str();
}

Graph deserialize(const std::string& bytes) {
  std::stringstream buffer(bytes);
  return read_binary(buffer);
}

template <typename F>
void expect_error(F&& f, const std::string& needle) {
  try {
    f();
    FAIL() << "expected spar::Error containing \"" << needle << "\"";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << "message was: " << err.what();
  }
}

TEST(BinaryIO, RoundTripIsBitExact) {
  const Graph g = randomize_weights(connected_erdos_renyi(200, 0.05, 17), 3.0, 4);
  EXPECT_TRUE(identical(deserialize(serialized(g)), g));
}

TEST(BinaryIO, RoundTripExtremeWeights) {
  Graph g(6);
  g.add_edge(0, 1, std::numeric_limits<double>::min());      // smallest normal
  g.add_edge(1, 2, std::numeric_limits<double>::denorm_min());
  g.add_edge(2, 3, std::numeric_limits<double>::max());
  g.add_edge(3, 4, 0.1);
  g.add_edge(4, 5, std::nextafter(1.0, 2.0));
  EXPECT_TRUE(identical(deserialize(serialized(g)), g));
}

TEST(BinaryIO, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(identical(deserialize(serialized(Graph(0))), Graph(0)));
  EXPECT_TRUE(identical(deserialize(serialized(Graph(5))), Graph(5)));
}

TEST(BinaryIO, FileSizeMatchesFormula) {
  const Graph g = grid2d(6, 6);
  EXPECT_EQ(serialized(g).size(), binary_file_size(g.num_edges()));
}

TEST(BinaryIO, ArenaLoadReusesBuffers) {
  const Graph big = grid2d(10, 10);
  const Graph small = grid2d(3, 3);
  EdgeArena arena;
  std::stringstream b1(serialized(big));
  read_binary(b1, arena);
  EXPECT_EQ(arena.size(), big.num_edges());
  std::stringstream b2(serialized(small));
  read_binary(b2, arena);
  EXPECT_EQ(arena.size(), small.num_edges());
  EXPECT_TRUE(identical(arena.to_graph(), small));
}

TEST(BinaryIO, HasBinaryMagicSniffsWithoutConsuming) {
  std::stringstream buffer(serialized(grid2d(3, 3)));
  EXPECT_TRUE(has_binary_magic(buffer));
  EXPECT_TRUE(identical(read_binary(buffer), grid2d(3, 3)));  // stream untouched
  std::stringstream text("3 1\n0 1 1.0\n");
  EXPECT_FALSE(has_binary_magic(text));
}

// --- corruption: every header/payload field is validated --------------------

TEST(BinaryIOCorruption, BadMagic) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[0] = 'X';
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, UnsupportedVersion) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[8] = 99;  // version field
  try {
    deserialize(bytes);
    FAIL() << "expected version error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryIOCorruption, NonzeroFlags) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[12] = 1;  // reserved flags
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, TruncatedHeaderAndPayload) {
  const std::string bytes = serialized(grid2d(4, 4));
  EXPECT_THROW(deserialize(bytes.substr(0, 10)), Error);
  EXPECT_THROW(deserialize(bytes.substr(0, bytes.size() - 3)), Error);
}

TEST(BinaryIOCorruption, TrailingBytesRejected) {
  EXPECT_THROW(deserialize(serialized(grid2d(4, 4)) + "junk"), Error);
}

TEST(BinaryIOCorruption, ChecksumCatchesPayloadFlip) {
  std::string bytes = serialized(grid2d(4, 4));
  bytes[bytes.size() - 1] ^= 0x40;  // flip a bit inside the last weight
  try {
    deserialize(bytes);
    FAIL() << "expected checksum error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
  }
}

TEST(BinaryIOCorruption, ImplausibleEdgeCountRejected) {
  std::string bytes = serialized(grid2d(3, 3));
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + 24, &huge, sizeof(huge));  // m field
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, PlausibleButWrongEdgeCountFailsBeforeAllocating) {
  // An m below the global plausibility cap but inconsistent with the stream
  // length must be rejected by the size cross-check, not by attempting a
  // (possibly enormous) allocation and hitting a short read.
  std::string bytes = serialized(grid2d(3, 3));
  const std::uint64_t wrong = std::uint64_t{1} << 32;
  std::memcpy(bytes.data() + 24, &wrong, sizeof(wrong));  // m field
  expect_error([&] { deserialize(bytes); }, "stream length");
}

TEST(BinaryIOCorruption, HeaderPatchTripsChecksum) {
  // The checksum seed covers (n, m), so even a header-only edit is caught.
  Graph g(4);
  g.add_edge(2, 3, 1.0);
  std::string bytes = serialized(g);
  const std::uint64_t small_n = 2;
  std::memcpy(bytes.data() + 16, &small_n, sizeof(small_n));  // n field
  try {
    deserialize(bytes);
    FAIL() << "expected checksum error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
  }
}

// A well-formed file (magic, version, checksum all valid) whose payload
// violates the edge invariants must still be rejected by validate().
TEST(BinaryIOCorruption, InvalidEdgesRejectedDespiteValidChecksum) {
  const auto write_bad = [](Vertex u, Vertex v, double w) {
    EdgeArena arena;
    arena.resize(4, 1);
    arena.mutable_u()[0] = u;
    arena.mutable_v()[0] = v;
    arena.weights()[0] = w;
    std::stringstream buffer;
    write_binary(buffer, arena.view());  // writer does not validate
    return buffer.str();
  };
  expect_error([&] { deserialize(write_bad(9, 1, 1.0)); }, "out of range");
  expect_error([&] { deserialize(write_bad(2, 2, 1.0)); }, "self-loop");
  expect_error([&] { deserialize(write_bad(0, 1, -1.0)); }, "positive");
  expect_error([&] { deserialize(write_bad(0, 1, std::nan(""))); }, "positive");
}

// --- fuzz-style hostile-input sweeps ---------------------------------------
//
// Every malformed byte stream must surface as a diagnosed spar::Error --
// never a crash, a std::bad_alloc from trusting a hostile header, or a
// silent wrong graph. The format has no don't-care bytes (header fields are
// all checked, the payload is checksummed), so EVERY corruption must throw.

TEST(BinaryIOFuzz, EveryTruncationLengthRejected) {
  const std::string bytes = serialized(grid2d(4, 3));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(deserialize(bytes.substr(0, len)), Error) << "prefix " << len;
}

TEST(BinaryIOFuzz, EverySingleByteCorruptionRejected) {
  const std::string bytes = serialized(randomize_weights(grid2d(5, 4), 2.0, 3));
  support::Rng rng(99);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::string corrupt = bytes;
    const auto at = static_cast<std::size_t>(rng.below(corrupt.size()));
    const auto flip = static_cast<char>(1 + rng.below(255));  // guaranteed change
    corrupt[at] = static_cast<char>(corrupt[at] ^ flip);
    EXPECT_THROW(deserialize(corrupt), Error) << "byte " << at << " trial " << trial;
  }
}

TEST(BinaryIOFuzz, RandomGarbageRejected) {
  support::Rng rng(1234);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    std::string junk(static_cast<std::size_t>(rng.below(4096)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.below(256));
    EXPECT_THROW(deserialize(junk), Error) << "trial " << trial;
  }
  EXPECT_THROW(deserialize(std::string(4096, '\0')), Error);
  EXPECT_THROW(deserialize(std::string()), Error);
}

TEST(BinaryIOFuzz, AbsurdHeaderCountsRejectedWithoutAllocating) {
  // Hostile n / m header fields must fail on the plausibility or
  // length-consistency checks before the reader sizes any buffer: none of
  // these may turn into a multi-terabyte allocation attempt.
  const std::string bytes = serialized(grid2d(3, 3));
  const auto patched = [&](std::size_t offset, std::uint64_t value) {
    std::string out = bytes;
    std::memcpy(out.data() + offset, &value, sizeof(value));
    return out;
  };
  // n beyond 32-bit vertex ids (offset 16).
  expect_error([&] { deserialize(patched(16, std::uint64_t{1} << 40)); }, "32-bit");
  // m beyond the global plausibility cap (offset 24).
  expect_error([&] { deserialize(patched(24, std::uint64_t{1} << 50)); }, "implausible");
  expect_error([&] { deserialize(patched(24, ~std::uint64_t{0})); }, "implausible");
  // m plausible but absurd vs the actual stream length.
  expect_error([&] { deserialize(patched(24, std::uint64_t{1} << 36)); }, "stream length");
  // m = 0 with payload still present.
  expect_error([&] { deserialize(patched(24, 0)); }, "stream length");
}

// --- BinaryEdgeStream: the batched loader shares every validation ----------

namespace {

std::string temp_binary_file(const std::string& bytes, const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

Graph drain_stream(EdgeStream& stream, std::size_t batch_edges) {
  EdgeArena all;
  all.resize(stream.num_vertices(), 0);
  EdgeArena batch;
  while (stream.next_batch(batch, batch_edges) > 0) all.append(batch.view());
  return all.to_graph();
}

}  // namespace

TEST(BinaryEdgeStream, BatchesConcatenateToTheWholeGraph) {
  const Graph g = randomize_weights(connected_erdos_renyi(150, 0.07, 11), 3.0, 12);
  const std::string path = temp_binary_file(serialized(g), "stream_ok.spb");
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  g.num_edges(), g.num_edges() * 2}) {
    BinaryEdgeStream stream(path);
    EXPECT_EQ(stream.num_vertices(), g.num_vertices());
    EXPECT_EQ(stream.num_edges(), g.num_edges());
    EXPECT_TRUE(identical(drain_stream(stream, batch), g)) << "batch " << batch;
  }
  std::remove(path.c_str());
}

TEST(BinaryEdgeStream, IncrementalChecksumCatchesPayloadCorruption) {
  std::string bytes = serialized(grid2d(6, 6));
  bytes[bytes.size() - 5] ^= 0x10;  // inside the last weight
  const std::string path = temp_binary_file(bytes, "stream_corrupt.spb");
  for (const std::size_t batch : {std::size_t{8}, std::size_t{1000}}) {
    BinaryEdgeStream stream(path);
    expect_error(
        [&] {
          EdgeArena out;
          while (stream.next_batch(out, batch) > 0) {
          }
        },
        "checksum");
  }
  std::remove(path.c_str());
}

TEST(BinaryEdgeStream, EdgelessFileServesZeroBatchesAndChecksHeader) {
  const std::string path = temp_binary_file(serialized(Graph(9)), "stream_empty.spb");
  BinaryEdgeStream stream(path);
  EXPECT_EQ(stream.num_vertices(), 9u);
  EXPECT_EQ(stream.num_edges(), 0u);
  EdgeArena out;
  EXPECT_EQ(stream.next_batch(out, 16), 0u);
  std::remove(path.c_str());

  // A patched n in an edgeless file must still trip the (empty-payload)
  // checksum, at construction time.
  std::string bytes = serialized(Graph(9));
  const std::uint64_t other_n = 5;
  std::memcpy(bytes.data() + 16, &other_n, sizeof(other_n));
  const std::string bad = temp_binary_file(bytes, "stream_empty_bad.spb");
  expect_error([&] { BinaryEdgeStream stream2(bad); }, "checksum");
  std::remove(bad.c_str());
}

TEST(BinaryEdgeStream, HostileHeaderRejectedAtOpen) {
  std::string bytes = serialized(grid2d(4, 4));
  const std::uint64_t huge = std::uint64_t{1} << 36;
  std::memcpy(bytes.data() + 24, &huge, sizeof(huge));  // m field
  const std::string path = temp_binary_file(bytes, "stream_hostile.spb");
  expect_error([&] { BinaryEdgeStream stream(path); }, "stream length");
  std::remove(path.c_str());

  const std::string truncated =
      temp_binary_file(serialized(grid2d(4, 4)).substr(0, 21), "stream_trunc.spb");
  expect_error([&] { BinaryEdgeStream stream(truncated); }, "header");
  std::remove(truncated.c_str());
}

TEST(BinaryEdgeStream, InvalidEdgesRejectedPerBatch) {
  EdgeArena arena;
  arena.resize(4, 2);
  arena.mutable_u()[0] = 0;
  arena.mutable_v()[0] = 1;
  arena.weights()[0] = 1.0;
  arena.mutable_u()[1] = 2;
  arena.mutable_v()[1] = 2;  // self-loop, checksum still valid
  arena.weights()[1] = 1.0;
  std::stringstream buffer;
  write_binary(buffer, arena.view());
  const std::string path = temp_binary_file(buffer.str(), "stream_badedge.spb");
  BinaryEdgeStream stream(path);
  expect_error(
      [&] {
        EdgeArena out;
        while (stream.next_batch(out, 1) > 0) {
        }
      },
      "self-loop");
  std::remove(path.c_str());
}

// --- cross-format round trips (the tentpole contract) ----------------------

// edge list <-> binary <-> MatrixMarket must agree bit-for-bit on the edge
// multiset for arbitrary graphs, including weights at max_digits10 extremes.
TEST(CrossFormatRoundTrip, AllThreeFormatsAgreeBitForBit) {
  const std::uint64_t seeds[] = {1, 2, 3};
  for (const std::uint64_t seed : seeds) {
    const Graph g = randomize_weights(
        connected_erdos_renyi(120, 0.06, seed), 6.0, seed + 10);

    // text
    std::stringstream text;
    write_edge_list(text, g);
    const Graph via_text = read_edge_list(text);
    EXPECT_TRUE(identical(via_text, g)) << "seed " << seed;

    // binary
    const Graph via_bin = deserialize(serialized(g));
    EXPECT_TRUE(identical(via_bin, g)) << "seed " << seed;

    // MatrixMarket (canonical simple graph: coalesced, (lo,hi) orientation)
    std::stringstream mm;
    write_matrix_market(mm, g);
    const Graph via_mm = read_matrix_market(mm);
    EXPECT_TRUE(via_mm.same_edges(g.coalesced())) << "seed " << seed;

    // and the composition binary(text(mm(g))) stays exact
    std::stringstream mm2;
    write_matrix_market(mm2, via_bin);
    std::stringstream text2;
    write_edge_list(text2, read_matrix_market(mm2));
    const Graph chained = deserialize(serialized(read_edge_list(text2)));
    EXPECT_TRUE(chained.same_edges(g.coalesced())) << "seed " << seed;
  }
}

TEST(CrossFormatRoundTrip, ExtremeWeightsSurviveTextAndMm) {
  Graph g(5);
  g.add_edge(0, 1, 1e-300);
  g.add_edge(1, 2, 1e300);
  g.add_edge(2, 3, 0.1 * 0.1 * 0.1);  // not exactly representable in decimal
  g.add_edge(3, 4, std::nextafter(0.5, 1.0));
  std::stringstream text;
  write_edge_list(text, g);
  EXPECT_TRUE(identical(read_edge_list(text), g));
  std::stringstream mm;
  write_matrix_market(mm, g);
  const Graph via_mm = read_matrix_market(mm);
  ASSERT_EQ(via_mm.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(via_mm.edge(i).w, g.edge(i).w);  // exact
}

TEST(CrossFormatRoundTrip, ChecksumIsThreadCountInvariant) {
  const Graph g = randomize_weights(grid2d(20, 20), 2.0, 8);
  std::string one, four;
  {
    support::par::ThreadLimit limit(1);
    one = serialized(g);
  }
  {
    support::par::ThreadLimit limit(4);
    four = serialized(g);
  }
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace spar::graph
