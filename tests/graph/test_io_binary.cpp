#include "graph/io_binary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::graph {
namespace {

bool identical(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges())
    return false;
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    if (!(a.edge(i) == b.edge(i))) return false;  // exact, order included
  return true;
}

std::string serialized(const Graph& g) {
  std::stringstream buffer;
  write_binary(buffer, g);
  return buffer.str();
}

Graph deserialize(const std::string& bytes) {
  std::stringstream buffer(bytes);
  return read_binary(buffer);
}

template <typename F>
void expect_error(F&& f, const std::string& needle) {
  try {
    f();
    FAIL() << "expected spar::Error containing \"" << needle << "\"";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << "message was: " << err.what();
  }
}

TEST(BinaryIO, RoundTripIsBitExact) {
  const Graph g = randomize_weights(connected_erdos_renyi(200, 0.05, 17), 3.0, 4);
  EXPECT_TRUE(identical(deserialize(serialized(g)), g));
}

TEST(BinaryIO, RoundTripExtremeWeights) {
  Graph g(6);
  g.add_edge(0, 1, std::numeric_limits<double>::min());      // smallest normal
  g.add_edge(1, 2, std::numeric_limits<double>::denorm_min());
  g.add_edge(2, 3, std::numeric_limits<double>::max());
  g.add_edge(3, 4, 0.1);
  g.add_edge(4, 5, std::nextafter(1.0, 2.0));
  EXPECT_TRUE(identical(deserialize(serialized(g)), g));
}

TEST(BinaryIO, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(identical(deserialize(serialized(Graph(0))), Graph(0)));
  EXPECT_TRUE(identical(deserialize(serialized(Graph(5))), Graph(5)));
}

TEST(BinaryIO, FileSizeMatchesFormula) {
  const Graph g = grid2d(6, 6);
  EXPECT_EQ(serialized(g).size(), binary_file_size(g.num_edges()));
}

TEST(BinaryIO, ArenaLoadReusesBuffers) {
  const Graph big = grid2d(10, 10);
  const Graph small = grid2d(3, 3);
  EdgeArena arena;
  std::stringstream b1(serialized(big));
  read_binary(b1, arena);
  EXPECT_EQ(arena.size(), big.num_edges());
  std::stringstream b2(serialized(small));
  read_binary(b2, arena);
  EXPECT_EQ(arena.size(), small.num_edges());
  EXPECT_TRUE(identical(arena.to_graph(), small));
}

TEST(BinaryIO, HasBinaryMagicSniffsWithoutConsuming) {
  std::stringstream buffer(serialized(grid2d(3, 3)));
  EXPECT_TRUE(has_binary_magic(buffer));
  EXPECT_TRUE(identical(read_binary(buffer), grid2d(3, 3)));  // stream untouched
  std::stringstream text("3 1\n0 1 1.0\n");
  EXPECT_FALSE(has_binary_magic(text));
}

// --- corruption: every header/payload field is validated --------------------

TEST(BinaryIOCorruption, BadMagic) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[0] = 'X';
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, UnsupportedVersion) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[8] = 99;  // version field
  try {
    deserialize(bytes);
    FAIL() << "expected version error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryIOCorruption, NonzeroFlags) {
  std::string bytes = serialized(grid2d(3, 3));
  bytes[12] = 1;  // reserved flags
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, TruncatedHeaderAndPayload) {
  const std::string bytes = serialized(grid2d(4, 4));
  EXPECT_THROW(deserialize(bytes.substr(0, 10)), Error);
  EXPECT_THROW(deserialize(bytes.substr(0, bytes.size() - 3)), Error);
}

TEST(BinaryIOCorruption, TrailingBytesRejected) {
  EXPECT_THROW(deserialize(serialized(grid2d(4, 4)) + "junk"), Error);
}

TEST(BinaryIOCorruption, ChecksumCatchesPayloadFlip) {
  std::string bytes = serialized(grid2d(4, 4));
  bytes[bytes.size() - 1] ^= 0x40;  // flip a bit inside the last weight
  try {
    deserialize(bytes);
    FAIL() << "expected checksum error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
  }
}

TEST(BinaryIOCorruption, ImplausibleEdgeCountRejected) {
  std::string bytes = serialized(grid2d(3, 3));
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + 24, &huge, sizeof(huge));  // m field
  EXPECT_THROW(deserialize(bytes), Error);
}

TEST(BinaryIOCorruption, PlausibleButWrongEdgeCountFailsBeforeAllocating) {
  // An m below the global plausibility cap but inconsistent with the stream
  // length must be rejected by the size cross-check, not by attempting a
  // (possibly enormous) allocation and hitting a short read.
  std::string bytes = serialized(grid2d(3, 3));
  const std::uint64_t wrong = std::uint64_t{1} << 32;
  std::memcpy(bytes.data() + 24, &wrong, sizeof(wrong));  // m field
  expect_error([&] { deserialize(bytes); }, "stream length");
}

TEST(BinaryIOCorruption, HeaderPatchTripsChecksum) {
  // The checksum seed covers (n, m), so even a header-only edit is caught.
  Graph g(4);
  g.add_edge(2, 3, 1.0);
  std::string bytes = serialized(g);
  const std::uint64_t small_n = 2;
  std::memcpy(bytes.data() + 16, &small_n, sizeof(small_n));  // n field
  try {
    deserialize(bytes);
    FAIL() << "expected checksum error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
  }
}

// A well-formed file (magic, version, checksum all valid) whose payload
// violates the edge invariants must still be rejected by validate().
TEST(BinaryIOCorruption, InvalidEdgesRejectedDespiteValidChecksum) {
  const auto write_bad = [](Vertex u, Vertex v, double w) {
    EdgeArena arena;
    arena.resize(4, 1);
    arena.mutable_u()[0] = u;
    arena.mutable_v()[0] = v;
    arena.weights()[0] = w;
    std::stringstream buffer;
    write_binary(buffer, arena.view());  // writer does not validate
    return buffer.str();
  };
  expect_error([&] { deserialize(write_bad(9, 1, 1.0)); }, "out of range");
  expect_error([&] { deserialize(write_bad(2, 2, 1.0)); }, "self-loop");
  expect_error([&] { deserialize(write_bad(0, 1, -1.0)); }, "positive");
  expect_error([&] { deserialize(write_bad(0, 1, std::nan(""))); }, "positive");
}

// --- cross-format round trips (the tentpole contract) ----------------------

// edge list <-> binary <-> MatrixMarket must agree bit-for-bit on the edge
// multiset for arbitrary graphs, including weights at max_digits10 extremes.
TEST(CrossFormatRoundTrip, AllThreeFormatsAgreeBitForBit) {
  const std::uint64_t seeds[] = {1, 2, 3};
  for (const std::uint64_t seed : seeds) {
    const Graph g = randomize_weights(
        connected_erdos_renyi(120, 0.06, seed), 6.0, seed + 10);

    // text
    std::stringstream text;
    write_edge_list(text, g);
    const Graph via_text = read_edge_list(text);
    EXPECT_TRUE(identical(via_text, g)) << "seed " << seed;

    // binary
    const Graph via_bin = deserialize(serialized(g));
    EXPECT_TRUE(identical(via_bin, g)) << "seed " << seed;

    // MatrixMarket (canonical simple graph: coalesced, (lo,hi) orientation)
    std::stringstream mm;
    write_matrix_market(mm, g);
    const Graph via_mm = read_matrix_market(mm);
    EXPECT_TRUE(via_mm.same_edges(g.coalesced())) << "seed " << seed;

    // and the composition binary(text(mm(g))) stays exact
    std::stringstream mm2;
    write_matrix_market(mm2, via_bin);
    std::stringstream text2;
    write_edge_list(text2, read_matrix_market(mm2));
    const Graph chained = deserialize(serialized(read_edge_list(text2)));
    EXPECT_TRUE(chained.same_edges(g.coalesced())) << "seed " << seed;
  }
}

TEST(CrossFormatRoundTrip, ExtremeWeightsSurviveTextAndMm) {
  Graph g(5);
  g.add_edge(0, 1, 1e-300);
  g.add_edge(1, 2, 1e300);
  g.add_edge(2, 3, 0.1 * 0.1 * 0.1);  // not exactly representable in decimal
  g.add_edge(3, 4, std::nextafter(0.5, 1.0));
  std::stringstream text;
  write_edge_list(text, g);
  EXPECT_TRUE(identical(read_edge_list(text), g));
  std::stringstream mm;
  write_matrix_market(mm, g);
  const Graph via_mm = read_matrix_market(mm);
  ASSERT_EQ(via_mm.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(via_mm.edge(i).w, g.edge(i).w);  // exact
}

TEST(CrossFormatRoundTrip, ChecksumIsThreadCountInvariant) {
  const Graph g = randomize_weights(grid2d(20, 20), 2.0, 8);
  std::string one, four;
  {
    support::par::ThreadLimit limit(1);
    one = serialized(g);
  }
  {
    support::par::ThreadLimit limit(4);
    four = serialized(g);
  }
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace spar::graph
