#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"

namespace spar::graph {
namespace {

TEST(Mst, TreeOnConnectedGraphHasNMinus1Edges) {
  const Graph g = connected_erdos_renyi(50, 0.2, 7);
  const Graph t = mst(g);
  EXPECT_EQ(t.num_edges(), g.num_vertices() - 1u);
  EXPECT_TRUE(is_connected(CSRGraph(t)));
}

TEST(Mst, ForestOnDisconnectedGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const Graph f = mst(g);
  EXPECT_EQ(f.num_edges(), 3u);
}

TEST(Mst, PrefersHighConductance) {
  // Triangle: the minimum-resistance tree keeps the two heaviest edges.
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(0, 2, 1.0);
  const Graph t = mst(g);
  ASSERT_EQ(t.num_edges(), 2u);
  for (const Edge& e : t.edges()) EXPECT_DOUBLE_EQ(e.w, 10.0);
}

TEST(Mst, CutPropertyHolds) {
  // For every non-tree edge, every tree edge on the cycle it closes has
  // resistance <= the non-tree edge's resistance (i.e. weight >=).
  const Graph g = randomize_weights(connected_erdos_renyi(30, 0.3, 11), 2.0, 5);
  const auto tree_ids = mst_edge_ids(g);
  std::vector<bool> in_tree(g.num_edges(), false);
  for (EdgeId id : tree_ids) in_tree[id] = true;
  const Graph t = g.filtered(in_tree);
  const CSRGraph tree_csr(t);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (in_tree[id]) continue;
    // max-weight-spanning-tree property: path between endpoints in the tree
    // uses only edges with weight >= this edge's weight. Check via Dijkstra
    // bottleneck: all distances on the path have resistance <= 1/w.
    const auto dist = dijkstra(tree_csr, g.edge(id).u);
    EXPECT_LT(dist[g.edge(id).v], kInfDist);
  }
}

TEST(MstEdgeIds, IdsAreValidAndDistinct) {
  const Graph g = connected_erdos_renyi(40, 0.2, 3);
  const auto ids = mst_edge_ids(g);
  EXPECT_EQ(ids.size(), g.num_vertices() - 1u);
  UnionFind uf(g.num_vertices());
  for (EdgeId id : ids) {
    ASSERT_LT(id, g.num_edges());
    EXPECT_TRUE(uf.unite(g.edge(id).u, g.edge(id).v)) << "cycle in MST output";
  }
}

}  // namespace
}  // namespace spar::graph
