#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "support/error.hpp"

namespace spar::graph {
namespace {

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 4, 4.0);
  const auto sub = induced_subgraph(g, {true, true, true, false, false});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(sub.graph.total_weight(), 3.0);
}

TEST(InducedSubgraph, MapsAreInverse) {
  const Graph g = connected_erdos_renyi(30, 0.2, 3);
  std::vector<bool> keep(30, false);
  for (Vertex v = 0; v < 30; v += 2) keep[v] = true;
  const auto sub = induced_subgraph(g, keep);
  for (Vertex nv = 0; nv < sub.graph.num_vertices(); ++nv) {
    const Vertex old = sub.new_to_old[nv];
    EXPECT_EQ(sub.old_to_new[old], nv);
    EXPECT_TRUE(keep[old]);
  }
  for (Vertex old = 0; old < 30; ++old) {
    if (!keep[old]) {
      EXPECT_EQ(sub.old_to_new[old], kInvalidVertex);
    }
  }
}

TEST(InducedSubgraph, EmptyMaskGivesEmptyGraph) {
  const Graph g = path_graph(4);
  const auto sub = induced_subgraph(g, std::vector<bool>(4, false));
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(InducedSubgraph, MaskSizeValidated) {
  const Graph g = path_graph(4);
  EXPECT_THROW(induced_subgraph(g, std::vector<bool>(3, true)), spar::Error);
}

TEST(LargestComponent, PicksBiggerSide) {
  Graph g(7);
  // Component A: 4 vertices; component B: 3 vertices.
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 6, 1.0);
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_TRUE(is_connected(CSRGraph(sub.graph)));
}

TEST(LargestComponent, ConnectedGraphUnchanged) {
  const Graph g = cycle_graph(10);
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_TRUE(sub.graph.same_edges(g));
}

TEST(LargestComponent, IsolatedVerticesDropped) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
}

TEST(LargestComponent, EmptyGraph) {
  const auto sub = largest_component(Graph(0));
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
}

TEST(LargestComponent, PreservesWeights) {
  Graph g(5);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 3.5);
  g.add_edge(3, 4, 1.0);
  const auto sub = largest_component(g);
  EXPECT_DOUBLE_EQ(sub.graph.total_weight(), 6.0);
}

}  // namespace
}  // namespace spar::graph
