#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "support/error.hpp"

namespace spar::graph {
namespace {

TEST(Generators, PathGraphShape) {
  const Graph g = path_graph(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, CycleGraphShape) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  const CSRGraph csr(g);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(csr.degree(v), 2u);
}

TEST(Generators, StarGraphShape) {
  const Graph g = star_graph(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(CSRGraph(g).degree(0), 6u);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = complete_graph(8);
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(Generators, CompleteBipartiteEdgeCount) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST(Generators, BinaryTreeIsTree) {
  const Graph g = binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, Grid2dShape) {
  const Graph g = grid2d(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, Grid3dShape) {
  const Graph g = grid3d(2, 3, 4);
  EXPECT_EQ(g.num_vertices(), 24u);
  // (nx-1)nynz + nx(ny-1)nz + nxny(nz-1) = 12 + 16 + 18
  EXPECT_EQ(g.num_edges(), 46u);
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const Vertex n = 300;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, 17);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4.0 * std::sqrt(expected));
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  const Graph a = erdos_renyi(100, 0.1, 5);
  const Graph b = erdos_renyi(100, 0.1, 5);
  EXPECT_TRUE(a.same_edges(b));
}

TEST(Generators, ErdosRenyiSeedsDiffer) {
  const Graph a = erdos_renyi(100, 0.1, 5);
  const Graph b = erdos_renyi(100, 0.1, 6);
  EXPECT_FALSE(a.same_edges(b));
}

TEST(Generators, ErdosRenyiZeroProbabilityIsEmpty) {
  EXPECT_EQ(erdos_renyi(50, 0.0, 1).num_edges(), 0u);
}

TEST(Generators, ErdosRenyiFullProbabilityIsComplete) {
  EXPECT_EQ(erdos_renyi(20, 1.0, 1).num_edges(), 190u);
}

TEST(Generators, ErdosRenyiNoSelfLoopsOrDuplicates) {
  const Graph g = erdos_renyi(80, 0.2, 9);
  EXPECT_EQ(g.coalesced().num_edges(), g.num_edges());
}

TEST(Generators, ConnectedErdosRenyiIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = connected_erdos_renyi(200, 0.01, seed);
    EXPECT_TRUE(is_connected(CSRGraph(g))) << "seed " << seed;
  }
}

// Switch-repaired stub pairing: the graph must be EXACTLY d-regular and
// simple (no self-loops, no parallel edges) for every seed -- the old
// pairing dropped collisions and only concentrated degrees near d.
TEST(Generators, RandomRegularExactDegreeAndSimpleOverSeedSweep) {
  const struct {
    Vertex n, d;
  } configs[] = {{8, 3}, {10, 4}, {30, 3}, {50, 7}, {64, 8}, {200, 8}};
  for (const auto& cfg : configs) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Graph g = random_regular(cfg.n, cfg.d, seed);
      EXPECT_EQ(g.num_edges(),
                static_cast<std::size_t>(cfg.n) * cfg.d / 2)
          << "n=" << cfg.n << " d=" << cfg.d << " seed=" << seed;
      std::vector<std::size_t> degree(cfg.n, 0);
      std::set<std::pair<Vertex, Vertex>> seen;
      for (const Edge& e : g.edges()) {
        EXPECT_NE(e.u, e.v) << "self-loop at seed " << seed;
        const auto lo = std::min(e.u, e.v);
        const auto hi = std::max(e.u, e.v);
        EXPECT_TRUE(seen.insert({lo, hi}).second)
            << "duplicate edge (" << lo << "," << hi << ") at seed " << seed;
        ++degree[e.u];
        ++degree[e.v];
      }
      for (Vertex v = 0; v < cfg.n; ++v)
        EXPECT_EQ(degree[v], cfg.d)
            << "vertex " << v << " n=" << cfg.n << " d=" << cfg.d << " seed=" << seed;
    }
  }
}

TEST(Generators, RandomRegularDeterministicPerSeed) {
  const Graph a = random_regular(40, 6, 9);
  const Graph b = random_regular(40, 6, 9);
  EXPECT_TRUE(a.same_edges(b));
}

TEST(Generators, RandomRegularDegreeZeroAndDenseEdge) {
  EXPECT_EQ(random_regular(12, 0, 3).num_edges(), 0u);
  // d = n - 1 forces the complete graph; the repair loop must still land it.
  const Graph g = random_regular(8, 7, 5);
  EXPECT_EQ(g.num_edges(), 8u * 7 / 2);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(random_regular(5, 3, 1), Error);
}

TEST(Generators, RandomRegularRejectsInfeasibleDegree) {
  EXPECT_THROW(random_regular(6, 6, 1), Error);  // d >= n: no simple graph
}

TEST(Generators, PreferentialAttachmentShape) {
  const Vertex n = 150, k = 3;
  const Graph g = preferential_attachment(n, k, 31);
  EXPECT_EQ(g.num_vertices(), n);
  // Seed clique + k per later vertex.
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(k * (k + 1) / 2 + (n - k - 1) * k));
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, PreferentialAttachmentHasHubs) {
  const Graph g = preferential_attachment(400, 2, 37);
  EXPECT_GT(CSRGraph(g).max_degree(), 20u);  // heavy tail vs. mean degree ~4
}

TEST(Generators, WattsStrogatzShape) {
  const Graph g = watts_strogatz(100, 3, 0.1, 41);
  EXPECT_EQ(g.num_vertices(), 100u);
  // Rewiring can only remove edges on failure to find a target; usually none.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 300.0, 10.0);
}

TEST(Generators, WattsStrogatzZeroBetaIsRingLattice) {
  const Graph g = watts_strogatz(50, 2, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 100u);
  const CSRGraph csr(g);
  for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(csr.degree(v), 4u);
}

TEST(Generators, DumbbellShape) {
  const Graph g = dumbbell(10);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 2u * 45 + 1);
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, DumbbellBridgeWeight) {
  const Graph g = dumbbell(5, 0.125);
  bool found = false;
  for (const Edge& e : g.edges()) {
    if ((e.u < 5) != (e.v < 5)) {
      EXPECT_DOUBLE_EQ(e.w, 0.125);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Generators, BarbellShape) {
  const Graph g = barbell(6, 4);
  EXPECT_EQ(g.num_vertices(), 2u * 6 + 3);
  EXPECT_EQ(g.num_edges(), 2u * 15 + 4);
  EXPECT_TRUE(is_connected(CSRGraph(g)));
}

TEST(Generators, RandomizeWeightsPreservesTopology) {
  const Graph g = grid2d(5, 5);
  const Graph w = randomize_weights(g, 2.0, 3);
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_EQ(w.edge(id).u, g.edge(id).u);
    EXPECT_EQ(w.edge(id).v, g.edge(id).v);
    EXPECT_GT(w.edge(id).w, 0.0);
  }
}

TEST(Generators, RandomizeWeightsBoundedByRange) {
  const Graph g = randomize_weights(complete_graph(12), 1.5, 7);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, std::exp(-1.5) - 1e-12);
    EXPECT_LE(e.w, std::exp(1.5) + 1e-12);
  }
}

TEST(Generators, RandomizeWeightsDeterministic) {
  const Graph a = randomize_weights(grid2d(4, 4), 1.0, 9);
  const Graph b = randomize_weights(grid2d(4, 4), 1.0, 9);
  EXPECT_TRUE(a.same_edges(b));
}

}  // namespace
}  // namespace spar::graph
