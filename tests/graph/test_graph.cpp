#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace spar::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddEdgeStoresEndpointsAndWeight) {
  Graph g(3);
  const EdgeId id = g.add_edge(0, 2, 2.5);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(g.edge(id).u, 0u);
  EXPECT_EQ(g.edge(id).v, 2u);
  EXPECT_DOUBLE_EQ(g.edge(id).w, 2.5);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), Error);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3, 1.0), Error);
}

TEST(Graph, RejectsNonPositiveWeight) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), Error);
  EXPECT_THROW(g.add_edge(0, 1, -2.0), Error);
}

TEST(Graph, ConstructorValidatesEdgeList) {
  EXPECT_THROW(Graph(2, {{0, 0, 1.0}}), Error);
  EXPECT_THROW(Graph(2, {{0, 5, 1.0}}), Error);
  EXPECT_THROW(Graph(2, {{0, 1, -1.0}}), Error);
  EXPECT_NO_THROW(Graph(2, {{0, 1, 1.0}}));
}

TEST(Graph, TotalWeightSums) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(Graph, CoalescedMergesParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.0);  // same pair, reversed order
  g.add_edge(1, 2, 3.0);
  const Graph c = g.coalesced();
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(c.total_weight(), 6.0);
}

TEST(Graph, CoalescedPreservesLaplacianWeightPerPair) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 4.0);
  const Graph c = g.coalesced();
  ASSERT_EQ(c.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(c.edge(0).w, 5.0);
}

TEST(Graph, FilteredSelectsByMask) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const Graph f = g.filtered({true, false, true});
  EXPECT_EQ(f.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(f.total_weight(), 4.0);
}

TEST(Graph, FilteredRejectsWrongMaskSize) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.filtered({true, false}), Error);
}

TEST(Graph, ScaledMultipliesWeights) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  const Graph s = g.scaled(3.0);
  EXPECT_DOUBLE_EQ(s.edge(0).w, 6.0);
}

TEST(Graph, ScaledRejectsNonPositive) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  EXPECT_THROW(g.scaled(0.0), Error);
  EXPECT_THROW(g.scaled(-1.0), Error);
}

TEST(Graph, AdditionConcatenatesEdges) {
  Graph a(3), b(3);
  a.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  const Graph sum = a + b;
  EXPECT_EQ(sum.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(sum.total_weight(), 3.0);
}

TEST(Graph, AdditionRejectsVertexMismatch) {
  Graph a(3), b(4);
  EXPECT_THROW(a + b, Error);
}

TEST(Graph, SameEdgesIgnoresOrderAndOrientation) {
  Graph a(3), b(3);
  a.add_edge(0, 1, 1.0);
  a.add_edge(1, 2, 2.0);
  b.add_edge(2, 1, 2.0);
  b.add_edge(1, 0, 1.0);
  EXPECT_TRUE(a.same_edges(b));
}

TEST(Graph, SameEdgesDetectsWeightDifference) {
  Graph a(2), b(2);
  a.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 2.0);
  EXPECT_FALSE(a.same_edges(b));
}

TEST(EdgeResistance, IsInverseWeight) {
  const Edge e{0, 1, 4.0};
  EXPECT_DOUBLE_EQ(resistance(e), 0.25);
}

}  // namespace
}  // namespace spar::graph
