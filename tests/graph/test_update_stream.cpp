// Edge-update streams: text/SPARDYN round trips, source equivalence across
// batch sizes, synthesized workload invariants, and the hostile-input sweep
// (every truncation prefix, random byte flips, absurd header counts -- all
// diagnosed spar::Error, never a crash or an allocation bomb).
#include "graph/update_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::graph {
namespace {

UpdateBatch sample_updates() {
  UpdateBatch u;
  u.num_vertices = 6;
  u.push_insert(0, 1, 1.0);
  u.push_insert(1, 2, 0.5);
  u.push_insert(2, 3, 2.25);
  u.push_delete(1, 2);
  u.push_insert(3, 4, 1.0 / 3.0);
  u.push_delete(0, 1);
  u.push_insert(4, 5, 7.0);
  return u;
}

bool same_updates(const UpdateBatch& a, const UpdateBatch& b) {
  if (a.num_vertices != b.num_vertices || a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.u[i] != b.u[i] || a.v[i] != b.v[i] || a.op[i] != b.op[i] ||
        std::memcmp(&a.w[i], &b.w[i], sizeof(double)) != 0)
      return false;
  return true;
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

std::string write_temp(const std::string& bytes, const char* name) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

UpdateBatch drain(UpdateStream& stream, std::size_t max_updates) {
  UpdateBatch all, batch;
  all.num_vertices = stream.num_vertices();
  while (stream.next_batch(batch, max_updates) > 0)
    all.append(batch, 0, batch.size());
  return all;
}

template <typename Fn>
void expect_error(Fn&& fn, const char* needle) {
  try {
    fn();
    FAIL() << "expected spar::Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

// --- round trips and source equivalence ------------------------------------

TEST(UpdateStream, BinaryRoundTripIsBitExact) {
  const UpdateBatch u = sample_updates();
  const std::string path = temp_path("updates_rt.spd");
  save_updates(path, u);
  EXPECT_EQ(file_bytes(path).size(), update_file_size(u.size()));
  const UpdateBatch back = load_updates(path);
  EXPECT_TRUE(same_updates(u, back));
  std::remove(path.c_str());
}

TEST(UpdateStream, TextRoundTripIsBitExact) {
  // %.17g text weights round-trip doubles exactly.
  const UpdateBatch u = sample_updates();
  const std::string path = temp_path("updates_rt.txt");
  save_updates(path, u);
  const UpdateBatch back = load_updates(path);
  EXPECT_TRUE(same_updates(u, back));
  std::remove(path.c_str());
}

TEST(UpdateStream, AllSourcesAgreeAtEveryBatchSize) {
  const Graph g = randomize_weights(grid2d(7, 5), 2.0, 3);
  const UpdateBatch u = synthesize_updates(g, 0.3, 17);
  const std::string bin = temp_path("updates_eq.spd");
  const std::string txt = temp_path("updates_eq.txt");
  save_updates(bin, u);
  save_updates(txt, u);
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{3}, std::size_t{64}, u.size(), u.size() * 2}) {
    MemoryUpdateStream mem(u);
    EXPECT_TRUE(same_updates(drain(mem, batch), u)) << "batch " << batch;
    const auto from_bin = open_update_stream(bin);
    EXPECT_EQ(from_bin->num_updates(), u.size());
    EXPECT_TRUE(same_updates(drain(*from_bin, batch), u)) << "batch " << batch;
    const auto from_txt = open_update_stream(txt);
    EXPECT_TRUE(same_updates(drain(*from_txt, batch), u)) << "batch " << batch;
  }
  std::remove(bin.c_str());
  std::remove(txt.c_str());
}

TEST(UpdateStream, AutodetectionSniffsMagicNotExtension) {
  const UpdateBatch u = sample_updates();
  // Binary bytes under a .txt-looking name still open as SPARDYN, text under
  // a binary-looking name still opens as text: content magic wins.
  const std::string odd_bin = temp_path("updates_odd.notspd");
  save_updates(odd_bin, u);
  EXPECT_TRUE(same_updates(load_updates(odd_bin), u));
  std::remove(odd_bin.c_str());

  const std::string text_body = "6 1\n+ 0 1 2.5\n";
  const std::string odd_txt = write_temp(text_body, "updates_odd.spd.like");
  const UpdateBatch back = load_updates(odd_txt);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(back.w[0], 2.5);
  std::remove(odd_txt.c_str());
}

TEST(UpdateStream, TextParserHandlesCommentsAndBlankLines) {
  const std::string body =
      "# dynamic edge list\n"
      "5 3\n"
      "\n"
      "+ 0 1 1.5\n"
      "# interleaved comment\n"
      "- 0 1\n"
      "+\t2\t3\t0.25\n";
  const std::string path = write_temp(body, "updates_comments.txt");
  const UpdateBatch u = load_updates(path);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.op[1], static_cast<std::uint8_t>(UpdateOp::kDelete));
  EXPECT_EQ(u.w[2], 0.25);
  std::remove(path.c_str());
}

TEST(UpdateStream, EmptyStreamRoundTrips) {
  UpdateBatch u;
  u.num_vertices = 9;
  const std::string path = temp_path("updates_empty.spd");
  save_updates(path, u);
  const auto stream = open_update_stream(path);
  EXPECT_EQ(stream->num_vertices(), 9u);
  EXPECT_EQ(stream->num_updates(), 0u);
  UpdateBatch out;
  EXPECT_EQ(stream->next_batch(out, 16), 0u);
  std::remove(path.c_str());
}

// --- synthesized workloads --------------------------------------------------

TEST(UpdateStream, SynthesizedWorkloadHasTurnstileShape) {
  const Graph g = randomize_weights(connected_erdos_renyi(60, 0.15, 7), 2.0, 8);
  const std::size_t m = g.num_edges();
  const UpdateBatch u = synthesize_updates(g, 0.25, 42);
  const auto deletes = static_cast<std::size_t>(0.25 * static_cast<double>(m) + 0.5);
  ASSERT_EQ(u.size(), m + deletes);
  u.validate();

  // Every edge inserted exactly once; every delete cancels a live insert.
  std::unordered_map<std::uint64_t, double> live;
  std::unordered_set<std::uint64_t> inserted;
  const auto key = [](Vertex a, Vertex b) {
    return (static_cast<std::uint64_t>(a < b ? a : b) << 32) | (a < b ? b : a);
  };
  std::size_t del_count = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const std::uint64_t k = key(u.u[i], u.v[i]);
    if (u.op[i] == static_cast<std::uint8_t>(UpdateOp::kInsert)) {
      EXPECT_TRUE(inserted.insert(k).second) << "duplicate insert at " << i;
      live[k] = u.w[i];
    } else {
      EXPECT_EQ(live.erase(k), 1u) << "delete of absent edge at " << i;
      ++del_count;
    }
  }
  EXPECT_EQ(del_count, deletes);
  EXPECT_EQ(live.size(), m - deletes);

  // Deterministic: same (graph, fraction, seed) -> same byte-for-byte stream.
  EXPECT_TRUE(same_updates(u, synthesize_updates(g, 0.25, 42)));
  // Seed changes the interleaving.
  EXPECT_FALSE(same_updates(u, synthesize_updates(g, 0.25, 43)));
}

TEST(UpdateStream, SynthesizedFractionEndpoints) {
  const Graph g = grid2d(5, 5);
  const UpdateBatch none = synthesize_updates(g, 0.0, 1);
  EXPECT_EQ(none.size(), g.num_edges());
  const UpdateBatch all = synthesize_updates(g, 1.0, 1);
  EXPECT_EQ(all.size(), 2 * g.num_edges());
  EXPECT_THROW(synthesize_updates(g, -0.1, 1), Error);
  EXPECT_THROW(synthesize_updates(g, 1.5, 1), Error);
}

// --- validation -------------------------------------------------------------

TEST(UpdateStream, ValidateDiagnosesEveryDiscipline) {
  const auto with = [](auto&& mutate) {
    UpdateBatch u;
    u.num_vertices = 4;
    u.push_insert(0, 1, 1.0);
    mutate(u);
    return u;
  };
  expect_error([&] { with([](UpdateBatch& u) { u.u[0] = 9; }).validate(); },
               "out of range");
  expect_error([&] { with([](UpdateBatch& u) { u.v[0] = 0; }).validate(); },
               "self-loop");
  expect_error([&] { with([](UpdateBatch& u) { u.w[0] = -2.0; }).validate(); },
               "positive");
  expect_error([&] { with([](UpdateBatch& u) { u.w[0] = 0.0; }).validate(); },
               "positive");
  expect_error([&] { with([](UpdateBatch& u) { u.op[0] = 7; }).validate(); },
               "opcode");
  expect_error(
      [&] {
        with([](UpdateBatch& u) {
          u.push_delete(2, 3);
          u.w[1] = 1.0;  // delete must carry weight 0
        }).validate();
      },
      "weight 0");
}

// --- hostile inputs: the SPARDYN reader trusts nothing ----------------------

TEST(UpdateStreamFuzz, EveryTruncationLengthRejected) {
  const UpdateBatch u = synthesize_updates(grid2d(4, 3), 0.4, 5);
  const std::string path = temp_path("updates_trunc.spd");
  save_updates(path, u);
  const std::string bytes = file_bytes(path);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string cut = write_temp(bytes.substr(0, len), "updates_cut.spd");
    EXPECT_THROW(load_updates(cut), Error) << "prefix " << len;
    std::remove(cut.c_str());
  }
  std::remove(path.c_str());
}

TEST(UpdateStreamFuzz, EverySingleByteCorruptionRejected) {
  // No don't-care bytes: header fields are all checked, the payload is
  // checksummed, so every flip must throw -- at any read batch size, since
  // the chunked checksum folds identically.
  const UpdateBatch u = synthesize_updates(randomize_weights(grid2d(5, 4), 2.0, 3),
                                           0.3, 11);
  const std::string path = temp_path("updates_flip.spd");
  save_updates(path, u);
  const std::string bytes = file_bytes(path);
  support::Rng rng(99);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::string corrupt = bytes;
    const auto at = static_cast<std::size_t>(rng.below(corrupt.size()));
    const auto flip = static_cast<char>(1 + rng.below(255));  // guaranteed change
    corrupt[at] = static_cast<char>(corrupt[at] ^ flip);
    const std::string bad = write_temp(corrupt, "updates_flip_bad.spd");
    const std::size_t batch = trial % 2 == 0 ? 7 : u.size() + 8;
    EXPECT_THROW(
        {
          const auto stream = open_update_stream(bad);
          // A flipped magic byte demotes the file to the text parser, which
          // must also reject the binary soup; either way: spar::Error.
          UpdateBatch out;
          while (stream->next_batch(out, batch) > 0) {
          }
        },
        Error)
        << "byte " << at << " trial " << trial;
    std::remove(bad.c_str());
  }
  std::remove(path.c_str());
}

TEST(UpdateStreamFuzz, AbsurdHeaderCountsRejectedWithoutAllocating) {
  // Hostile n / c fields must die on plausibility or length-consistency
  // checks before any buffer is sized: none of these may become a
  // multi-terabyte allocation attempt.
  const std::string path = temp_path("updates_hostile.spd");
  save_updates(path, sample_updates());
  const std::string bytes = file_bytes(path);
  std::remove(path.c_str());
  const auto patched = [&](std::size_t offset, std::uint64_t value) {
    std::string out = bytes;
    std::memcpy(out.data() + offset, &value, sizeof(value));
    return write_temp(out, "updates_patched.spd");
  };
  const auto expect_patch_error = [&](std::size_t offset, std::uint64_t value,
                                      const char* needle) {
    const std::string bad = patched(offset, value);
    expect_error([&] { BinaryUpdateStream stream(bad); }, needle);
    std::remove(bad.c_str());
  };
  expect_patch_error(16, std::uint64_t{1} << 40, "32-bit");       // n
  expect_patch_error(24, std::uint64_t{1} << 50, "implausible");  // c, cap
  expect_patch_error(24, ~std::uint64_t{0}, "implausible");
  expect_patch_error(24, std::uint64_t{1} << 36, "length");  // plausible c, wrong len
  expect_patch_error(24, 0, "length");                       // c = 0, payload present
  expect_patch_error(8, 99, "version");                      // unsupported version
  expect_patch_error(12, 1, "flags");                        // reserved flags
}

TEST(UpdateStreamFuzz, TextMalformationsDiagnosedWithLineNumbers) {
  const auto reject = [&](const std::string& body, const char* needle) {
    const std::string path = write_temp(body, "updates_badtext.txt");
    expect_error([&] { load_updates(path); }, needle);
    std::remove(path.c_str());
  };
  reject("", "header");
  reject("4\n", "update count");
  reject("x 4\n", "vertex count");
  reject("4 1\n* 0 1 1.0\n", "'+' or '-'");
  reject("4 1\n+ 0 1\n", "weight");          // insert missing weight
  reject("4 1\n- 0 1 1.0\n", "trailing");    // delete with weight
  reject("4 1\n+ 0 x 1.0\n", "endpoint");
  reject("4 2\n+ 0 1 1.0\n", "truncated");   // fewer updates than declared
  reject("4 1\n+ 0 1 1.0\n+ 1 2 1.0\n", "beyond header count");
  reject("4 1\n+ 0 9 1.0\n", "out of range");
  reject("99999999999 1\n+ 0 1 1.0\n", "32-bit");
  reject("4 99999999999999999\n", "implausible");
}

TEST(UpdateStreamFuzz, RandomGarbageRejected) {
  support::Rng rng(1234);
  for (std::size_t trial = 0; trial < 60; ++trial) {
    std::string junk(static_cast<std::size_t>(rng.below(2048)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.below(256));
    const std::string path = write_temp(junk, "updates_junk.bin");
    EXPECT_THROW(load_updates(path), Error) << "trial " << trial;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace spar::graph
