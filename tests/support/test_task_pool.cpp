// TaskPool: the persistent worker pool behind the solver service.
//
// The contracts under test:
//  * run_indexed executes every index exactly once, with the caller helping
//    (so zero-worker pools still make progress);
//  * nesting is deadlock-free: a task body may itself call run_indexed /
//    parallel_for, which dispatches onto the SAME workers;
//  * pool execution keeps the substrate's determinism contract: chunk
//    boundaries come from default_grain, so parallel_for/parallel_reduce
//    results are bit-identical to the serial and OpenMP backends;
//  * exceptions from task bodies propagate to the caller of run_indexed;
//  * thread_id() stays in [0, parallel_width) on pool workers, so
//    WorkerLocal slot indexing (and WorkCounter) is race-free under the pool.
#include "support/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include "support/parallel.hpp"

namespace spar::support {
namespace {

TEST(TaskPool, RunIndexedCoversEveryIndexOnce) {
  par::TaskPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_indexed(1000, [&](std::int64_t i, int) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, ThreadCountRequestClampsToOneWorker) {
  // A pool always has at least one worker: detached tasks (submit/async)
  // need SOMEONE to run them even when the caller asked for zero.
  par::TaskPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_EQ(pool.parallel_width(), 2);
  std::vector<std::atomic<int>> hits(64);
  pool.run_indexed(64, [&](std::int64_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.parallel_width());
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, NestedRunIndexedDoesNotDeadlock) {
  par::TaskPool pool(2);
  std::atomic<int> total{0};
  pool.run_indexed(4, [&](std::int64_t, int) {
    // Nested dispatch onto the same pool: workers help instead of blocking.
    pool.run_indexed(8, [&](std::int64_t, int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskPool, ParallelForUnderPoolIsBitIdenticalToSerial) {
  const std::int64_t n = 4096;
  auto fill = [n] {
    std::vector<double> out(n);
    par::parallel_for(0, n, [&](std::int64_t i) {
      out[i] = 1.0 / static_cast<double>(i + 1);
    });
    return out;
  };
  const std::vector<double> serial = [&] {
    par::ThreadLimit limit(1);
    return fill();
  }();
  par::TaskPool pool(3);
  par::TaskPool::Use use(&pool);
  EXPECT_EQ(par::backend_description().rfind("task_pool", 0), 0u);
  EXPECT_EQ(par::max_threads(), pool.parallel_width());
  const std::vector<double> pooled = fill();
  EXPECT_EQ(pooled, serial);
}

TEST(TaskPool, ParallelReduceUnderPoolMatchesSerialExactly) {
  const std::int64_t n = 100000;
  auto reduce = [n] {
    return par::parallel_reduce(
        std::int64_t{0}, n, 0.0,
        [](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) s += 1.0 / static_cast<double>(i + 1);
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = [&] {
    par::ThreadLimit limit(1);
    return reduce();
  }();
  par::TaskPool pool(4);
  par::TaskPool::Use use(&pool);
  const double pooled = reduce();
  // Chunk-order combines => bit-identical, not merely approximately equal.
  EXPECT_EQ(pooled, serial);
}

TEST(TaskPool, ThreadIdStaysInsideParallelWidth) {
  par::TaskPool pool(3);
  std::atomic<bool> bad{false};
  pool.run_indexed(256, [&](std::int64_t, int worker) {
    const int id = par::thread_id();
    if (id < 0 || id >= pool.parallel_width()) bad.store(true);
    if (worker < 0 || worker >= pool.parallel_width()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(TaskPool, BodyExceptionPropagatesToCaller) {
  par::TaskPool pool(2);
  EXPECT_THROW(
      pool.run_indexed(100,
                       [&](std::int64_t i, int) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing group and stays usable.
  std::atomic<int> ok{0};
  pool.run_indexed(10, [&](std::int64_t, int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(TaskPool, AsyncReturnsValueAndRunsOnWorker) {
  par::TaskPool pool(2);
  auto f = pool.async([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(TaskPool, SubmitRunsDetachedTasks) {
  par::TaskPool pool(2);
  std::atomic<int> ran{0};
  std::promise<void> done;
  auto fut = done.get_future();
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      if (ran.fetch_add(1) + 1 == 8) done.set_value();
    });
  fut.wait();
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskPool, WorkerLocalSlotsDoNotCollideUnderPool) {
  par::TaskPool pool(3);
  par::TaskPool::Use use(&pool);
  // One scratch accumulator per worker id; slot ownership is the substrate's
  // "worker id is stable within a call" guarantee, now provided by the pool.
  par::WorkerLocal<std::uint64_t> counts;
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(pool.parallel_width()));
  std::atomic<std::uint64_t> grand{0};
  par::parallel_chunks(0, 10000,
                       [&](std::int64_t cb, std::int64_t ce, std::int64_t, int worker) {
                         counts.local(worker, [] { return std::uint64_t{0}; }) +=
                             static_cast<std::uint64_t>(ce - cb);
                         grand.fetch_add(static_cast<std::uint64_t>(ce - cb));
                       });
  EXPECT_EQ(grand.load(), 10000u);
}

}  // namespace
}  // namespace spar::support
