#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace spar::support {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  EXPECT_LT(timer.millis(), 5000.0);
}

TEST(Timer, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Timer, SecondsAndMillisConsistent) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.seconds();
  const double ms = timer.millis();
  EXPECT_NEAR(ms, s * 1e3, 5.0);  // two reads a moment apart
}

TEST(Timer, Monotonic) {
  Timer timer;
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double now = timer.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace spar::support
