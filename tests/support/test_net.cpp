// net.hpp: the hardened stream-socket substrate under both wire protocols
// (server framing, dist transport). The properties under test are the ones
// the framing layers lean on: read_exact distinguishes clean EOF (false)
// from mid-message truncation (throw); write_exact surfaces a vanished peer
// as a thrown EPIPE instead of SIGPIPE; full-length transfers reassemble
// arbitrary kernel-side slicings; TCP listeners are loopback-bound with
// kernel-assigned ports readable back.
#include "support/net.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace spar::support::net {
namespace {

std::string scratch_path(const std::string& tag) {
  return "/tmp/spar_net_test." + tag + "." + std::to_string(::getpid());
}

TEST(Net, UnixRoundTrip) {
  const std::string path = scratch_path("roundtrip");
  Listener listener = Listener::unix_domain(path);
  ASSERT_TRUE(listener.valid());
  EXPECT_EQ(listener.path(), path);

  std::thread client([&] {
    Socket s = connect_unix(path);
    const std::uint64_t hello = 0xabcdef;
    s.write_exact(&hello, sizeof(hello));
    std::uint64_t echo = 0;
    ASSERT_TRUE(s.read_exact(&echo, sizeof(echo)));
    EXPECT_EQ(echo, hello + 1);
  });

  Socket conn = listener.accept();
  ASSERT_TRUE(conn.valid());
  std::uint64_t got = 0;
  ASSERT_TRUE(conn.read_exact(&got, sizeof(got)));
  EXPECT_EQ(got, 0xabcdefu);
  const std::uint64_t reply = got + 1;
  conn.write_exact(&reply, sizeof(reply));
  client.join();
}

TEST(Net, ReadExactReturnsFalseOnCleanEof) {
  const std::string path = scratch_path("eof");
  Listener listener = Listener::unix_domain(path);
  std::thread client([&] {
    Socket s = connect_unix(path);
    // Close without writing: the server must see a clean EOF.
  });
  Socket conn = listener.accept();
  client.join();
  std::uint64_t word = 0;
  EXPECT_FALSE(conn.read_exact(&word, sizeof(word)));
}

TEST(Net, ReadExactThrowsOnEofMidMessage) {
  const std::string path = scratch_path("truncated");
  Listener listener = Listener::unix_domain(path);
  std::thread client([&] {
    Socket s = connect_unix(path);
    const char partial[3] = {1, 2, 3};
    s.write_exact(partial, sizeof(partial));
    // Close mid-message: 3 bytes of an 8-byte read is a protocol violation.
  });
  Socket conn = listener.accept();
  client.join();
  std::uint64_t word = 0;
  EXPECT_THROW(conn.read_exact(&word, sizeof(word)), Error);
}

TEST(Net, WriteExactThrowsEpipeInsteadOfSigpipe) {
  const std::string path = scratch_path("epipe");
  Listener listener = Listener::unix_domain(path);
  Socket client = connect_unix(path);
  {
    Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    // Server side dropped here; the client's fd now points at a dead peer.
  }
  // The first writes may land in the (now orphaned) buffer; keep pushing
  // until the kernel reports the broken pipe. If SIGPIPE were not
  // suppressed this loop would kill the whole test process instead.
  const std::vector<char> chunk(1 << 16, 'x');
  EXPECT_THROW(
      {
        for (int i = 0; i < 1024; ++i)
          client.write_exact(chunk.data(), chunk.size());
      },
      Error);
}

TEST(Net, LargeTransferReassemblesPartialReads) {
  const std::string path = scratch_path("partial");
  Listener listener = Listener::unix_domain(path);
  // Big enough that the kernel must split it across many short reads and
  // short writes (well past any socket buffer size).
  std::vector<std::uint8_t> payload(8 * 1024 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);

  std::thread client([&] {
    Socket s = connect_unix(path);
    s.write_exact(payload.data(), payload.size());
  });
  Socket conn = listener.accept();
  std::vector<std::uint8_t> got(payload.size(), 0);
  ASSERT_TRUE(conn.read_exact(got.data(), got.size()));
  client.join();
  EXPECT_EQ(got, payload);
}

TEST(Net, TcpLoopbackKernelAssignedPort) {
  Listener listener = Listener::tcp(0);
  ASSERT_TRUE(listener.valid());
  ASSERT_NE(listener.port(), 0);
  EXPECT_TRUE(listener.path().empty());

  std::thread client([&, port = listener.port()] {
    Socket s = connect_tcp(port);
    const std::uint64_t word = 77;
    s.write_exact(&word, sizeof(word));
  });
  Socket conn = listener.accept();
  std::uint64_t got = 0;
  ASSERT_TRUE(conn.read_exact(&got, sizeof(got)));
  EXPECT_EQ(got, 77u);
  client.join();
}

TEST(Net, ShutdownUnblocksAccept) {
  const std::string path = scratch_path("shutdown");
  Listener listener = Listener::unix_domain(path);
  std::thread waiter([&] {
    Socket conn = listener.accept();
    EXPECT_FALSE(conn.valid());
  });
  // Give the waiter a moment to park in accept(), then wake it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.shutdown();
  waiter.join();
}

TEST(Net, StaleUnixSocketFileIsReplaced) {
  const std::string path = scratch_path("stale");
  { Listener first = Listener::unix_domain(path); }
  // The destructor unlinks; even if it had not, a rebind must replace the
  // stale file rather than fail with EADDRINUSE.
  Listener second = Listener::unix_domain(path);
  std::thread client([&] { Socket s = connect_unix(path); });
  Socket conn = second.accept();
  EXPECT_TRUE(conn.valid());
  client.join();
}

}  // namespace
}  // namespace spar::support::net
