// The parallel substrate's contracts: full coverage of the index space,
// thread-count-independent chunking, deterministic reductions, serial-path
// equivalence, and per-chunk RNG stream stability. These properties are what
// every randomized parallel algorithm in libspar leans on.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace spar::support {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(0, n, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  int calls = 0;
  par::parallel_for(0, 0, [&](std::int64_t) { ++calls; });
  par::parallel_for(5, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, DisabledOptRunsSerially) {
  // enable=false must take the serial path: thread_id() inside is 0.
  std::atomic<int> nonzero_tid{0};
  par::parallel_for(
      0, 1000,
      [&](std::int64_t) {
        if (par::thread_id() != 0) nonzero_tid.fetch_add(1);
      },
      {.enable = false});
  EXPECT_EQ(nonzero_tid.load(), 0);
}

TEST(ParallelChunks, PartitionsRangeExactly) {
  const std::int64_t begin = 7, end = 12345, grain = 128;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(end), 0);
  std::atomic<std::int64_t> chunk_count{0};
  par::parallel_chunks(
      begin, end,
      [&](std::int64_t cb, std::int64_t ce, std::int64_t chunk, int worker) {
        EXPECT_GE(cb, begin);
        EXPECT_LE(ce, end);
        EXPECT_LT(cb, ce);
        EXPECT_GE(chunk, 0);
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, par::max_threads());
        // Chunk boundaries must be a pure function of (range, grain).
        EXPECT_EQ(cb, begin + chunk * grain);
        for (std::int64_t i = cb; i < ce; ++i) seen[static_cast<std::size_t>(i)]++;
        chunk_count.fetch_add(1);
      },
      {.grain = grain});
  for (std::int64_t i = begin; i < end; ++i) EXPECT_EQ(seen[i], 1) << i;
  EXPECT_EQ(chunk_count.load(), (end - begin + grain - 1) / grain);
}

TEST(ParallelReduce, MatchesSerialFold) {
  const std::int64_t n = 50000;
  const auto sum = par::parallel_reduce(
      0, n, std::int64_t{0},
      [](std::int64_t cb, std::int64_t ce) {
        std::int64_t s = 0;
        for (std::int64_t i = cb; i < ce; ++i) s += i;
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  // Floating-point partials are combined in chunk order, so the result is
  // bit-identical for every thread count -- the property an OpenMP
  // `reduction` clause does NOT give.
  const std::int64_t n = 200000;
  std::vector<double> values(static_cast<std::size_t>(n));
  Rng rng(99);
  for (double& v : values) v = rng.uniform(-1.0, 1.0);

  const auto run = [&] {
    return par::parallel_sum(0, n, [&](std::int64_t i) {
      return values[static_cast<std::size_t>(i)];
    });
  };
  double base;
  {
    par::ThreadLimit one(1);
    base = run();
  }
  for (int threads : {2, 4}) {
    par::ThreadLimit limit(threads);
    EXPECT_EQ(base, run()) << threads << " threads";
  }
}

TEST(ParallelReduce, SerialAndParallelPathsAgreeBitwise) {
  // enable=false forces the serial path; it must chunk identically, so the
  // serial fallback build produces the same bits as the parallel build.
  const std::int64_t n = 150000;
  std::vector<double> values(static_cast<std::size_t>(n));
  Rng rng(7);
  for (double& v : values) v = rng.normal();
  const auto run = [&](bool enable) {
    return par::parallel_sum(
        0, n,
        [&](std::int64_t i) { return values[static_cast<std::size_t>(i)] * 1.5; },
        {.enable = enable});
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(ParallelReduce, ExplicitGrainOverridesDefault) {
  const std::int64_t n = 10000;
  int chunks_seen = 0;
  par::parallel_reduce(
      0, n, 0,
      [&](std::int64_t, std::int64_t) {
        ++chunks_seen;  // serial in this config: safe to count
        return 0;
      },
      [](int a, int b) { return a + b; }, {.grain = 1000, .enable = false});
  EXPECT_EQ(chunks_seen, 10);
}

TEST(DefaultGrain, PureFunctionOfRangeLength) {
  // Never a function of thread count: this is what keeps chunk layouts (and
  // thus reductions and RNG stream assignment) machine-independent.
  const auto g1 = par::default_grain(1 << 20);
  {
    par::ThreadLimit limit(4);
    EXPECT_EQ(par::default_grain(1 << 20), g1);
  }
  {
    par::ThreadLimit limit(1);
    EXPECT_EQ(par::default_grain(1 << 20), g1);
  }
  EXPECT_GE(par::default_grain(1), 1);
  EXPECT_GE(par::default_grain(1 << 30), (1 << 30) / (1 << 12));
}

TEST(ChunkRng, SameSeedAndChunkSameStream) {
  Rng a = par::chunk_rng(42, 7);
  Rng b = par::chunk_rng(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(ChunkRng, DistinctChunksDistinctStreams) {
  Rng a = par::chunk_rng(42, 0);
  Rng b = par::chunk_rng(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);  // independent streams collide only by chance
}

TEST(ChunkRng, StreamsIndependentOfThreadCount) {
  // Drawing chunk streams inside a parallel loop yields the same per-chunk
  // values regardless of the thread count executing the loop.
  const std::int64_t n = 1 << 16;
  const std::int64_t grain = 1 << 10;
  const auto draw = [&] {
    std::vector<std::uint64_t> first_draw(static_cast<std::size_t>(n / grain));
    par::parallel_chunks(
        0, n,
        [&](std::int64_t, std::int64_t, std::int64_t chunk, int) {
          Rng rng = par::chunk_rng(5, static_cast<std::uint64_t>(chunk));
          first_draw[static_cast<std::size_t>(chunk)] = rng();
        },
        {.grain = grain});
    return first_draw;
  };
  std::vector<std::uint64_t> base;
  {
    par::ThreadLimit one(1);
    base = draw();
  }
  {
    par::ThreadLimit four(4);
    EXPECT_EQ(base, draw());
  }
}

TEST(ParallelCompact, MatchesSerialFilterAcrossThreadCounts) {
  const std::int64_t n = 50000;
  const auto keep = [](std::int64_t i) { return i % 3 == 0 || i % 7 == 0; };
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 0; i < n; ++i)
    if (keep(i)) expected.push_back(i);

  for (int threads : {1, 2, 4}) {
    par::ThreadLimit limit(threads);
    std::vector<std::int64_t> out(static_cast<std::size_t>(n), -1);
    const std::size_t kept = par::parallel_compact(
        0, n, keep,
        [&](std::int64_t i, std::size_t pos) { out[pos] = i; },
        {.grain = 512});
    ASSERT_EQ(kept, expected.size()) << threads << " threads";
    out.resize(kept);
    EXPECT_EQ(out, expected) << threads << " threads";
  }
}

TEST(ParallelCompact, RanksAreStableWithDefaultGrain) {
  // Ranks must equal the serial filter-append order even when the grain (and
  // therefore the chunk layout) is the default heuristic.
  const std::int64_t n = 300000;
  const auto keep = [](std::int64_t i) { return (i & 1) == 0; };
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), -1);
  const std::size_t kept = par::parallel_compact(
      0, n, keep, [&](std::int64_t i, std::size_t pos) { out[pos] = i; });
  ASSERT_EQ(kept, static_cast<std::size_t>(n / 2));
  for (std::size_t pos = 0; pos < kept; ++pos)
    ASSERT_EQ(out[pos], static_cast<std::int64_t>(2 * pos));
}

TEST(ParallelCompact, EdgeCases) {
  int calls = 0;
  const auto count = [&](std::int64_t, std::size_t) { ++calls; };
  EXPECT_EQ(par::parallel_compact(0, 0, [](std::int64_t) { return true; }, count), 0u);
  EXPECT_EQ(par::parallel_compact(9, 3, [](std::int64_t) { return true; }, count), 0u);
  EXPECT_EQ(calls, 0);
  // keep-none and keep-all.
  EXPECT_EQ(par::parallel_compact(0, 1000, [](std::int64_t) { return false; }, count,
                                  {.grain = 64}),
            0u);
  EXPECT_EQ(calls, 0);
  std::size_t last_pos = 0;
  EXPECT_EQ(par::parallel_compact(
                0, 1000, [](std::int64_t) { return true; },
                [&](std::int64_t i, std::size_t pos) {
                  EXPECT_EQ(static_cast<std::size_t>(i), pos);
                  last_pos = pos;
                },
                {.grain = 64}),
            1000u);
  EXPECT_EQ(last_pos, 999u);
}

TEST(ThreadLimit, RestoresPreviousBudget) {
  const int before = par::max_threads();
  {
    par::ThreadLimit limit(std::max(1, before / 2));
  }
  EXPECT_EQ(par::max_threads(), before);
}

TEST(Backend, DescriptionMentionsBackend) {
  const std::string desc = par::backend_description();
  if (par::openmp_enabled()) {
    EXPECT_NE(desc.find("openmp"), std::string::npos);
  } else {
    EXPECT_NE(desc.find("serial"), std::string::npos);
    EXPECT_EQ(par::max_threads(), 1);
  }
}

}  // namespace
}  // namespace spar::support
