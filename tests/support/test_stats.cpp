#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace spar::support {
namespace {

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v = {3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Summarize, KnownMoments) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile(v, -0.1), Error);
  EXPECT_THROW(percentile(v, 1.1), Error);
}

TEST(FitPowerLaw, RecoversExactExponent) {
  std::vector<double> x, y;
  for (double v = 1; v <= 64; v *= 2) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitPowerLaw, SublinearExponent) {
  std::vector<double> x, y;
  for (double v = 2; v <= 1024; v *= 2) {
    x.push_back(v);
    y.push_back(std::sqrt(v));
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 0.5, 1e-10);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, -2.0};
  EXPECT_THROW(fit_power_law(x, y), Error);
}

TEST(FitPowerLaw, RejectsMismatchedSizes) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_power_law(x, y), Error);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, down), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> c = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(x, c), 0.0);
}

}  // namespace
}  // namespace spar::support
