// framing.hpp: the checksum discipline shared by SPARBIN and the wire
// protocol. The load-bearing property is EQUIVALENCE: ChunkedHasher fed any
// slicing of a byte array must reproduce checksum_bytes over the whole
// array bit for bit, and checksum_bytes itself must be independent of
// thread count (chunk boundaries are a pure function of length). These are
// the invariants that let io_binary.cpp hash streamed chunks while save
// hashes whole arrays, and let socket peers verify frames they received in
// arbitrary read() slices.
#include "support/framing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::support {
namespace {

std::vector<unsigned char> random_bytes(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<unsigned char> out(len);
  for (auto& b : out) b = static_cast<unsigned char>(rng() & 0xff);
  return out;
}

TEST(Framing, ChunkedHasherMatchesOneShotAcrossSlicings) {
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{4096}, std::size_t{100001}}) {
    const auto bytes = random_bytes(len, 42 + len);
    const std::uint64_t want = framing::checksum_bytes(bytes.data(), len, 7);
    for (std::size_t slice : {std::size_t{1}, std::size_t{3}, std::size_t{1024},
                              len == 0 ? std::size_t{1} : len}) {
      framing::ChunkedHasher h;
      h.init(len);
      for (std::size_t at = 0; at < len; at += slice)
        h.feed(bytes.data() + at, std::min(slice, len - at));
      EXPECT_EQ(h.fold(7), want) << "len=" << len << " slice=" << slice;
    }
  }
}

TEST(Framing, ChecksumIndependentOfThreadCount) {
  const auto bytes = random_bytes(250000, 9);
  std::uint64_t first = 0;
  for (int threads : {1, 2, 4, 8}) {
    par::ThreadLimit limit(threads);
    const std::uint64_t got = framing::checksum_bytes(bytes.data(), bytes.size(), 3);
    if (threads == 1)
      first = got;
    else
      EXPECT_EQ(got, first) << "threads=" << threads;
  }
}

TEST(Framing, SeedBindsContext) {
  const auto bytes = random_bytes(512, 1);
  EXPECT_NE(framing::checksum_bytes(bytes.data(), bytes.size(), 1),
            framing::checksum_bytes(bytes.data(), bytes.size(), 2));
}

TEST(Framing, ContentSensitive) {
  auto bytes = random_bytes(512, 5);
  const std::uint64_t before = framing::checksum_bytes(bytes.data(), bytes.size(), 0);
  bytes[300] ^= 1;
  EXPECT_NE(framing::checksum_bytes(bytes.data(), bytes.size(), 0), before);
}

TEST(Framing, EmptyInputHashesSeedAndLengthOnly) {
  // Zero-length payloads still bind the seed (mix64(seed, 0)): two empty
  // frames with different contexts must not collide.
  EXPECT_EQ(framing::checksum_bytes(nullptr, 0, 11), mix64(11, 0));
  EXPECT_NE(framing::checksum_bytes(nullptr, 0, 11),
            framing::checksum_bytes(nullptr, 0, 12));
}

}  // namespace
}  // namespace spar::support
