#include "support/options.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <array>

namespace spar::support {
namespace {

Options make(std::initializer_list<const char*> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsForm) {
  const Options opt = make({"--n=100", "--eps=0.5"});
  EXPECT_EQ(opt.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(opt.get_double("eps", 0.0), 0.5);
}

TEST(Options, SpaceForm) {
  const Options opt = make({"--n", "42"});
  EXPECT_EQ(opt.get_int("n", 0), 42);
}

TEST(Options, BooleanFlag) {
  const Options opt = make({"--verbose"});
  EXPECT_TRUE(opt.get_bool("verbose", false));
  EXPECT_FALSE(opt.get_bool("quiet", false));
}

TEST(Options, FallbacksWhenMissing) {
  const Options opt = make({});
  EXPECT_EQ(opt.get("name", "default"), "default");
  EXPECT_EQ(opt.get_int("n", -3), -3);
  EXPECT_DOUBLE_EQ(opt.get_double("x", 2.5), 2.5);
}

TEST(Options, PositionalArguments) {
  const Options opt = make({"input.txt", "--n=5", "output.txt"});
  ASSERT_EQ(opt.positional().size(), 2u);
  EXPECT_EQ(opt.positional()[0], "input.txt");
  EXPECT_EQ(opt.positional()[1], "output.txt");
}

TEST(Options, HasDetectsPresence) {
  const Options opt = make({"--flag", "--k=3"});
  EXPECT_TRUE(opt.has("flag"));
  EXPECT_TRUE(opt.has("k"));
  EXPECT_FALSE(opt.has("missing"));
}

TEST(Options, BoolAcceptsSeveralSpellings) {
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=no"}).get_bool("a", true));
}

}  // namespace
}  // namespace spar::support
