#include "support/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spar::support {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"n", "m"});
  t.add_row({"10", "45"});
  const std::string out = t.to_string("demo");
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("45"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string("x"));
}

TEST(Table, ExtraCellsDropped) {
  Table t({"a"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.to_string("x");
  EXPECT_EQ(out.find("2"), std::string::npos);
}

TEST(Table, CellFormatsDoublesCompactly) {
  EXPECT_EQ(Table::cell(2.0), "2");
  EXPECT_EQ(Table::cell(0.5), "0.5");
  EXPECT_EQ(Table::cell(std::uint64_t{123}), "123");
  EXPECT_EQ(Table::cell(std::int64_t{-5}), "-5");
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"name", "v"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "2"});
  const std::string out = t.to_string("align");
  // Both data rows must place the second column at the same offset.
  const auto row1 = out.find("short");
  const auto row2 = out.find("a-much-longer-name");
  ASSERT_NE(row1, std::string::npos);
  ASSERT_NE(row2, std::string::npos);
  const auto one = out.find('1', row1);
  const auto two = out.find('2', row2);
  EXPECT_EQ(one - row1, two - row2);
}

}  // namespace
}  // namespace spar::support
