#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spar::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(21);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(StreamRng, DeterministicPerIndex) {
  Rng a = stream_rng(99, 4);
  Rng b = stream_rng(99, 4);
  EXPECT_EQ(a(), b());
}

TEST(StreamRng, IndependentAcrossIndices) {
  Rng a = stream_rng(99, 4);
  Rng b = stream_rng(99, 5);
  EXPECT_NE(a(), b());
}

TEST(StreamUniform, StableAndBounded) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = stream_uniform(123, i);
    EXPECT_EQ(u, stream_uniform(123, i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StreamUniform, MeanNearHalfAcrossIndices) {
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += stream_uniform(7, i);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Mix64, SensitiveToBothArguments) {
  const std::set<std::uint64_t> values = {mix64(1, 1), mix64(1, 2), mix64(2, 1),
                                          mix64(2, 2)};
  EXPECT_EQ(values.size(), 4u);
}

}  // namespace
}  // namespace spar::support
