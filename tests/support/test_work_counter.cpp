#include "support/work_counter.hpp"

#include <gtest/gtest.h>

#include "support/parallel.hpp"

namespace spar::support {
namespace {

TEST(WorkCounter, StartsAtZero) {
  WorkCounter wc;
  EXPECT_EQ(wc.total(), 0u);
}

TEST(WorkCounter, AccumulatesSerially) {
  WorkCounter wc;
  wc.add(3);
  wc.add(4);
  EXPECT_EQ(wc.total(), 7u);
}

TEST(WorkCounter, ResetClears) {
  WorkCounter wc;
  wc.add(10);
  wc.reset();
  EXPECT_EQ(wc.total(), 0u);
}

TEST(WorkCounter, ParallelAccumulationIsExact) {
  WorkCounter wc;
  const int iterations = 100000;
  par::parallel_for(0, iterations, [&](std::int64_t) { wc.add(1); });
  EXPECT_EQ(wc.total(), static_cast<std::uint64_t>(iterations));
}

TEST(WorkScope, NullCounterIsNoop) {
  const WorkScope scope(nullptr);
  EXPECT_FALSE(scope.enabled());
  scope.add(100);  // must not crash
}

TEST(WorkScope, ForwardsToCounter) {
  WorkCounter wc;
  const WorkScope scope(&wc);
  EXPECT_TRUE(scope.enabled());
  scope.add(5);
  scope.add(6);
  EXPECT_EQ(wc.total(), 11u);
}

}  // namespace
}  // namespace spar::support
