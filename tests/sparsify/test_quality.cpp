#include "sparsify/quality.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(QualityReport, IdenticalGraphsHaveUnitRatios) {
  const Graph g = graph::connected_erdos_renyi(60, 0.2, 3);
  const QualityReport report = quality_report(g, g);
  EXPECT_NEAR(report.min_quadratic_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.max_quadratic_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.min_cut_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.max_cut_ratio, 1.0, 1e-12);
  EXPECT_TRUE(report.sparsifier_connected);
  EXPECT_DOUBLE_EQ(report.edge_reduction(), 1.0);
}

TEST(QualityReport, ScaledGraphRatiosMatchScale) {
  const Graph g = graph::grid2d(6, 6);
  const QualityReport report = quality_report(g, g.scaled(3.0));
  EXPECT_NEAR(report.min_quadratic_ratio, 3.0, 1e-12);
  EXPECT_NEAR(report.max_quadratic_ratio, 3.0, 1e-12);
  EXPECT_NEAR(report.max_cut_ratio, 3.0, 1e-12);
}

TEST(QualityReport, ProbeRatiosInsidePencilBounds) {
  // Gaussian and cut ratios are Rayleigh quotients, so they must lie inside
  // the exact pencil interval.
  const Graph g = graph::randomize_weights(graph::complete_graph(50), 0.5, 7);
  SampleOptions sopt;
  sopt.t = 2;
  sopt.seed = 9;
  const auto sample = parallel_sample(g, sopt);
  const ApproxBounds exact = exact_relative_bounds(g, sample.sparsifier);
  const QualityReport report = quality_report(g, sample.sparsifier);
  EXPECT_GE(report.min_quadratic_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_quadratic_ratio, exact.upper + 1e-9);
  EXPECT_GE(report.min_cut_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_cut_ratio, exact.upper + 1e-9);
}

TEST(QualityReport, DetectsDisconnection) {
  const Graph g = graph::path_graph(6);
  Graph h(6);
  h.add_edge(0, 1, 1.0);
  h.add_edge(2, 3, 1.0);
  const QualityReport report = quality_report(g, h);
  EXPECT_FALSE(report.sparsifier_connected);
  // Some probe separates the components: min quadratic ratio must hit ~0.
  EXPECT_LT(report.min_quadratic_ratio, 0.5);
}

TEST(QualityReport, CountsAndWeights) {
  const Graph g = graph::complete_graph(20);
  SampleOptions sopt;
  sopt.t = 1;
  sopt.seed = 5;
  const auto sample = parallel_sample(g, sopt);
  const QualityReport report = quality_report(g, sample.sparsifier);
  EXPECT_EQ(report.edges_original, g.num_edges());
  EXPECT_EQ(report.edges_sparsifier, sample.sparsifier.num_edges());
  EXPECT_DOUBLE_EQ(report.weight_original, g.total_weight());
  EXPECT_GT(report.edge_reduction(), 1.0);
}

TEST(QualityReport, VertexMismatchThrows) {
  EXPECT_THROW(quality_report(graph::path_graph(3), graph::path_graph(4)),
               spar::Error);
}

TEST(QualityReport, DeterministicPerSeed) {
  const Graph g = graph::complete_graph(30);
  const Graph h = graph::mst(g);
  QualityOptions opt;
  opt.seed = 77;
  const auto a = quality_report(g, h, opt);
  const auto b = quality_report(g, h, opt);
  EXPECT_DOUBLE_EQ(a.min_quadratic_ratio, b.min_quadratic_ratio);
  EXPECT_DOUBLE_EQ(a.max_cut_ratio, b.max_cut_ratio);
}

// --- internal-consistency matrix: methods x generators x seeds --------------
//
// For every cell, the report must be self-consistent (min <= max on both
// probe families, structural counts exactly matching the graphs) and, since
// every probe ratio is a Rayleigh quotient of the pencil (L_H, L_G), the
// Gaussian and cut extremes must lie inside the exact pencil interval
// whenever the certificate is computed (all these graphs are small enough
// for the dense path).

enum class Method { kSample, kSparsify, kSpielmanSrivastava, kUniform };

const char* method_name(Method m) {
  switch (m) {
    case Method::kSample: return "sample";
    case Method::kSparsify: return "koutis";
    case Method::kSpielmanSrivastava: return "ss";
    case Method::kUniform: return "uniform";
  }
  return "?";
}

Graph make_generator(const std::string& family, std::uint64_t seed) {
  if (family == "complete")
    return graph::randomize_weights(graph::complete_graph(48), 0.5, seed);
  if (family == "er") return graph::connected_erdos_renyi(60, 0.25, seed);
  if (family == "dumbbell") return graph::dumbbell(16, 0.05, seed);
  if (family == "grid") return graph::randomize_weights(graph::grid2d(7, 7), 1.0, seed);
  throw spar::Error("unknown family " + family);
}

Graph run_method(const Graph& g, Method method, std::uint64_t seed) {
  switch (method) {
    case Method::kSample: {
      SampleOptions opt;
      opt.t = 2;
      opt.seed = seed;
      return parallel_sample(g, opt).sparsifier;
    }
    case Method::kSparsify: {
      SparsifyOptions opt;
      opt.rho = 4.0;
      opt.t = 2;
      opt.seed = seed;
      return parallel_sparsify(g, opt).sparsifier;
    }
    case Method::kSpielmanSrivastava: {
      SpielmanSrivastavaOptions opt;
      opt.epsilon = 1.0;
      opt.seed = seed;
      return spielman_srivastava(g, opt).sparsifier;
    }
    case Method::kUniform:
      return uniform_sparsify(g, 0.5, seed);
  }
  throw spar::Error("unknown method");
}

class QualityReportMatrix
    : public ::testing::TestWithParam<
          std::tuple<Method, std::string, std::uint64_t>> {};

TEST_P(QualityReportMatrix, InternallyConsistent) {
  const auto [method, family, seed] = GetParam();
  const Graph g = make_generator(family, seed);
  const Graph h = run_method(g, method, seed);
  const QualityReport report = quality_report(g, h);

  // Probe extremes are ordered.
  EXPECT_LE(report.min_quadratic_ratio, report.max_quadratic_ratio);
  EXPECT_LE(report.min_cut_ratio, report.max_cut_ratio);

  // Structural counts match the graphs exactly.
  EXPECT_EQ(report.edges_original, g.num_edges());
  EXPECT_EQ(report.edges_sparsifier, h.num_edges());
  EXPECT_DOUBLE_EQ(report.weight_original, g.total_weight());
  EXPECT_DOUBLE_EQ(report.weight_sparsifier, h.total_weight());
  if (h.num_edges() > 0) {
    EXPECT_DOUBLE_EQ(report.edge_reduction(),
                     static_cast<double>(g.num_edges()) /
                         static_cast<double>(h.num_edges()));
  }

  // Probe ratios are Rayleigh quotients: inside the certified interval.
  const ApproxBounds exact = exact_relative_bounds(g, h);
  ASSERT_TRUE(exact.defined);
  EXPECT_GE(report.min_quadratic_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_quadratic_ratio, exact.upper + 1e-9);
  EXPECT_GE(report.min_cut_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_cut_ratio, exact.upper + 1e-9);

  // Connectivity in the report agrees with a certificate-side fact: a
  // disconnected sparsifier degenerates the pencil's lower bound.
  if (report.sparsifier_connected) {
    EXPECT_GT(exact.lower, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByGeneratorsBySeeds, QualityReportMatrix,
    ::testing::Combine(::testing::Values(Method::kSample, Method::kSparsify,
                                         Method::kSpielmanSrivastava,
                                         Method::kUniform),
                       ::testing::Values("complete", "er", "dumbbell", "grid"),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    [](const auto& info) {
      return std::string(method_name(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace spar::sparsify
