#include "sparsify/quality.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(QualityReport, IdenticalGraphsHaveUnitRatios) {
  const Graph g = graph::connected_erdos_renyi(60, 0.2, 3);
  const QualityReport report = quality_report(g, g);
  EXPECT_NEAR(report.min_quadratic_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.max_quadratic_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.min_cut_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.max_cut_ratio, 1.0, 1e-12);
  EXPECT_TRUE(report.sparsifier_connected);
  EXPECT_DOUBLE_EQ(report.edge_reduction(), 1.0);
}

TEST(QualityReport, ScaledGraphRatiosMatchScale) {
  const Graph g = graph::grid2d(6, 6);
  const QualityReport report = quality_report(g, g.scaled(3.0));
  EXPECT_NEAR(report.min_quadratic_ratio, 3.0, 1e-12);
  EXPECT_NEAR(report.max_quadratic_ratio, 3.0, 1e-12);
  EXPECT_NEAR(report.max_cut_ratio, 3.0, 1e-12);
}

TEST(QualityReport, ProbeRatiosInsidePencilBounds) {
  // Gaussian and cut ratios are Rayleigh quotients, so they must lie inside
  // the exact pencil interval.
  const Graph g = graph::randomize_weights(graph::complete_graph(50), 0.5, 7);
  SampleOptions sopt;
  sopt.t = 2;
  sopt.seed = 9;
  const auto sample = parallel_sample(g, sopt);
  const ApproxBounds exact = exact_relative_bounds(g, sample.sparsifier);
  const QualityReport report = quality_report(g, sample.sparsifier);
  EXPECT_GE(report.min_quadratic_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_quadratic_ratio, exact.upper + 1e-9);
  EXPECT_GE(report.min_cut_ratio, exact.lower - 1e-9);
  EXPECT_LE(report.max_cut_ratio, exact.upper + 1e-9);
}

TEST(QualityReport, DetectsDisconnection) {
  const Graph g = graph::path_graph(6);
  Graph h(6);
  h.add_edge(0, 1, 1.0);
  h.add_edge(2, 3, 1.0);
  const QualityReport report = quality_report(g, h);
  EXPECT_FALSE(report.sparsifier_connected);
  // Some probe separates the components: min quadratic ratio must hit ~0.
  EXPECT_LT(report.min_quadratic_ratio, 0.5);
}

TEST(QualityReport, CountsAndWeights) {
  const Graph g = graph::complete_graph(20);
  SampleOptions sopt;
  sopt.t = 1;
  sopt.seed = 5;
  const auto sample = parallel_sample(g, sopt);
  const QualityReport report = quality_report(g, sample.sparsifier);
  EXPECT_EQ(report.edges_original, g.num_edges());
  EXPECT_EQ(report.edges_sparsifier, sample.sparsifier.num_edges());
  EXPECT_DOUBLE_EQ(report.weight_original, g.total_weight());
  EXPECT_GT(report.edge_reduction(), 1.0);
}

TEST(QualityReport, VertexMismatchThrows) {
  EXPECT_THROW(quality_report(graph::path_graph(3), graph::path_graph(4)),
               spar::Error);
}

TEST(QualityReport, DeterministicPerSeed) {
  const Graph g = graph::complete_graph(30);
  const Graph h = graph::mst(g);
  QualityOptions opt;
  opt.seed = 77;
  const auto a = quality_report(g, h, opt);
  const auto b = quality_report(g, h, opt);
  EXPECT_DOUBLE_EQ(a.min_quadratic_ratio, b.min_quadratic_ratio);
  EXPECT_DOUBLE_EQ(a.max_cut_ratio, b.max_cut_ratio);
}

}  // namespace
}  // namespace spar::sparsify
