#include "sparsify/incremental.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(IncrementalSparsify, TreeAlwaysKept) {
  const Graph g = graph::randomize_weights(graph::complete_graph(40), 1.0, 3);
  IncrementalOptions opt;
  opt.seed = 5;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_EQ(result.tree_edges, g.num_vertices() - 1u);
  EXPECT_GE(result.sparsifier.num_edges(), result.tree_edges);
  EXPECT_TRUE(graph::is_connected(graph::CSRGraph(result.sparsifier)));
}

TEST(IncrementalSparsify, CountsConsistent) {
  const Graph g = graph::complete_graph(30);
  IncrementalOptions opt;
  opt.seed = 7;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_EQ(result.tree_edges + result.off_tree_edges, g.num_edges());
  EXPECT_EQ(result.sparsifier.num_edges(),
            result.tree_edges + result.distinct_sampled);
}

TEST(IncrementalSparsify, SpectralQuality) {
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 9);
  IncrementalOptions opt;
  opt.epsilon = 0.5;
  opt.seed = 11;
  const auto result = incremental_sparsify(g, opt);
  const auto bounds = exact_relative_bounds(g, result.sparsifier);
  EXPECT_GT(bounds.lower, 0.4);
  EXPECT_LT(bounds.upper, 1.6);
}

TEST(IncrementalSparsify, TreeInputReturnsTreeExactly) {
  const Graph g = graph::binary_tree(31);
  IncrementalOptions opt;
  opt.seed = 3;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_EQ(result.off_tree_edges, 0u);
  EXPECT_DOUBLE_EQ(result.total_stretch, 0.0);
  EXPECT_TRUE(result.sparsifier.same_edges(g));
}

TEST(IncrementalSparsify, TotalWeightNearInput) {
  const Graph g = graph::complete_graph(50);
  IncrementalOptions opt;
  opt.epsilon = 0.5;
  opt.seed = 13;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_NEAR(result.sparsifier.total_weight(), g.total_weight(),
              0.2 * g.total_weight());
}

TEST(IncrementalSparsify, StretchSumMatchesDirectComputation) {
  // Total off-tree stretch equals what the stretch verifier reports for the
  // same tree (mean * count).
  const Graph g = graph::randomize_weights(graph::complete_graph(25), 1.0, 17);
  IncrementalOptions opt;
  opt.seed = 19;
  opt.tree.seed = 23;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_GT(result.total_stretch, double(result.off_tree_edges) - 1e-9);
}

TEST(IncrementalSparsify, DisconnectedInputThrows) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(incremental_sparsify(g, {}), spar::Error);
}

TEST(IncrementalSparsify, RejectsBadEpsilon) {
  const Graph g = graph::complete_graph(8);
  IncrementalOptions opt;
  opt.epsilon = 0.0;
  EXPECT_THROW(incremental_sparsify(g, opt), spar::Error);
}

TEST(IncrementalSparsify, SampleOverrideRespected) {
  const Graph g = graph::complete_graph(30);
  IncrementalOptions opt;
  opt.num_samples = 17;
  opt.seed = 29;
  const auto result = incremental_sparsify(g, opt);
  EXPECT_EQ(result.samples_drawn, 17u);
  EXPECT_LE(result.distinct_sampled, 17u);
}

TEST(IncrementalSparsify, Deterministic) {
  const Graph g = graph::complete_graph(30);
  IncrementalOptions opt;
  opt.seed = 31;
  const auto a = incremental_sparsify(g, opt);
  const auto b = incremental_sparsify(g, opt);
  EXPECT_TRUE(a.sparsifier.same_edges(b.sparsifier));
}

TEST(IncrementalSparsify, DumbbellBridgeKeptWithHighProbability) {
  // The bridge is a tree edge of any spanning tree: always kept.
  const Graph g = graph::dumbbell(20, 0.01);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    IncrementalOptions opt;
    opt.seed = seed;
    const auto result = incremental_sparsify(g, opt);
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(result.sparsifier)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace spar::sparsify
