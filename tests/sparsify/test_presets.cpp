#include "sparsify/presets.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace spar::sparsify {
namespace {

TEST(Presets, TheorySampleUsesFormulaWidth) {
  const SampleOptions opt = make_sample_options(Preset::kTheory, 0.5, 3);
  EXPECT_EQ(opt.t, 0u);  // resolved to the formula inside parallel_sample
  EXPECT_DOUBLE_EQ(opt.epsilon, 0.5);
  EXPECT_EQ(opt.seed, 3u);
}

TEST(Presets, PracticalSampleUsesGivenWidth) {
  const SampleOptions opt = make_sample_options(Preset::kPractical, 0.5, 3, 5);
  EXPECT_EQ(opt.t, 5u);
}

TEST(Presets, SparsifyOptionsCarryRho) {
  const SparsifyOptions opt =
      make_sparsify_options(Preset::kPractical, 1.0, 16.0, 7, 2);
  EXPECT_DOUBLE_EQ(opt.rho, 16.0);
  EXPECT_EQ(opt.t, 2u);
  EXPECT_EQ(opt.seed, 7u);
}

TEST(Presets, ApplicabilityThresholdGrowsWithNAndShrinksWithEps) {
  const std::size_t a = theory_applicability_threshold(1000, 1.0);
  const std::size_t b = theory_applicability_threshold(2000, 1.0);
  const std::size_t c = theory_applicability_threshold(1000, 0.5);
  EXPECT_GT(b, a);
  EXPECT_GT(c, a);  // smaller eps => bigger bundle => later applicability
}

TEST(Presets, ApplicabilityThresholdExceedsCompleteGraphAtSmallN) {
  // The documented infeasibility: for n = 1000 the theory bundle needs more
  // edges than K_n even at eps = 1.
  const std::size_t n = 1000;
  const std::size_t threshold = theory_applicability_threshold(n, 1.0);
  EXPECT_GT(threshold, n * (n - 1) / 2);
}

TEST(Presets, TheorySampleOnSmallGraphReturnsInputUnchanged) {
  const graph::Graph g = graph::complete_graph(40);
  const auto result =
      parallel_sample(g, make_sample_options(Preset::kTheory, 1.0, 1));
  // Bundle swallows the graph; the sample equals the input exactly.
  EXPECT_TRUE(result.sparsifier.same_edges(g));
  EXPECT_EQ(result.sampled_edges, 0u);
}

TEST(Presets, PracticalSampleActuallySparsifies) {
  const graph::Graph g = graph::complete_graph(120);
  const auto result =
      parallel_sample(g, make_sample_options(Preset::kPractical, 1.0, 1, 1));
  EXPECT_LT(result.sparsifier.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace spar::sparsify
