// Merge-and-reduce streaming sparsifier: tower invariants, source
// equivalence (in-memory vs text vs binary streams), golden-hash determinism
// across thread counts, and the cross-batch-size quality bound.
#include "sparsify/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/io_binary.hpp"
#include "graph/traversal.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::sparsify {
namespace {

using graph::EdgeArena;
using graph::Graph;

/// Order-insensitive, bit-exact fingerprint of (n, edge multiset): FNV-1a
/// over the normalized sorted edge list, weights by IEEE-754 bit pattern.
/// Same scheme as tests/integration/test_parallel_determinism.cpp.
std::uint64_t edge_multiset_hash(const Graph& g) {
  std::vector<graph::Edge> es(g.edges().begin(), g.edges().end());
  for (auto& e : es)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_vertices());
  mix(es.size());
  for (const auto& e : es) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wb = 0;
    std::memcpy(&wb, &e.w, sizeof(wb));
    mix(wb);
  }
  return h;
}

StreamOptions base_options(std::size_t batch_edges, std::uint64_t seed = 7) {
  StreamOptions opt;
  opt.epsilon = 1.0;
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = seed;
  opt.batch_edges = batch_edges;
  return opt;
}

TEST(StreamSparsify, ReportIsInternallyConsistent) {
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 21);
  EdgeArena arena(g);
  const StreamOptions opt = base_options(512);
  const StreamResult r = stream_sparsify(arena.view(), opt);
  const StreamReport& rep = r.report;

  const std::size_t expected_batches = (g.num_edges() + 511) / 512;
  EXPECT_EQ(rep.batches, expected_batches);
  EXPECT_EQ(rep.batch_edges, 512u);
  EXPECT_EQ(rep.metrics.edges_ingested, g.num_edges());
  EXPECT_EQ(rep.metrics.words_ingested, 3 * g.num_edges());
  EXPECT_EQ(rep.metrics.merge_words, 3 * rep.metrics.merge_edges);
  EXPECT_EQ(rep.final_edges, r.sparsifier.num_edges());
  EXPECT_GE(rep.peak_resident_edges, rep.final_edges);
  EXPECT_LE(rep.depth_used, rep.depth_planned);
  EXPECT_GT(rep.per_level_epsilon, 0.0);
  EXPECT_LE(rep.epsilon_budget_used, opt.epsilon + 1e-12);
  std::size_t calls = 0;
  for (const std::size_t c : rep.sparsify_calls_per_level) calls += c;
  EXPECT_EQ(calls, rep.sparsify_calls);
  EXPECT_GE(rep.sparsify_calls, 1u);
}

TEST(StreamSparsify, CertifiesWithinRequestedEpsilonOnSmallConfigs) {
  // The budget argument (DESIGN.md): D passes at (1+eps)^(1/D)-1 compose to
  // at most (1 +- eps). Practical t = 3 keeps the empirical error well
  // inside the budget on these families.
  const struct {
    const char* name;
    Graph g;
  } cases[] = {
      {"complete100", graph::randomize_weights(graph::complete_graph(100), 0.5, 21)},
      {"dumbbell40", graph::dumbbell(40, 0.05, 3)},
      {"er120", graph::connected_erdos_renyi(120, 0.3, 5)},
  };
  for (const auto& c : cases) {
    EdgeArena arena(c.g);
    const StreamOptions opt = base_options(600);
    const StreamResult r = stream_sparsify(arena.view(), opt);
    const ApproxBounds bounds = exact_relative_bounds(c.g, r.sparsifier);
    ASSERT_TRUE(bounds.defined) << c.name;
    EXPECT_GT(bounds.lower, 1.0 - opt.epsilon) << c.name;
    EXPECT_LT(bounds.upper, 1.0 + opt.epsilon) << c.name;
  }
}

TEST(StreamSparsify, KeepsConnectivityOnBridgedGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::dumbbell(30, 0.02);
    EdgeArena arena(g);
    const StreamResult r = stream_sparsify(arena.view(), base_options(128, seed));
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(r.sparsifier))) << seed;
  }
}

TEST(StreamSparsify, FileStreamsMatchInMemoryBitForBit) {
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 17);
  EdgeArena arena(g);
  const StreamOptions opt = base_options(700);
  const StreamResult mem = stream_sparsify(arena.view(), opt);

  const std::string dir = testing::TempDir();
  const std::string text_path = dir + "/spar_stream_eq.txt";
  const std::string bin_path = dir + "/spar_stream_eq.spb";
  graph::save_edge_list(text_path, g);
  graph::save_binary(bin_path, g);
  const StreamResult from_text = stream_sparsify_file(text_path, opt);
  const StreamResult from_bin = stream_sparsify_file(bin_path, opt);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());

  EXPECT_TRUE(mem.sparsifier.same_edges(from_text.sparsifier));
  EXPECT_TRUE(mem.sparsifier.same_edges(from_bin.sparsifier));
  EXPECT_EQ(mem.report.batches, from_bin.report.batches);
  EXPECT_EQ(mem.report.sparsify_calls, from_bin.report.sparsify_calls);
}

TEST(StreamSparsify, GoldenHashAcrossThreadCounts) {
  // Golden fingerprint recorded from the x86-64 gcc Release build at 1
  // thread. The tower's passes all run on the deterministic round pipeline,
  // so the final sparsifier must be bit-identical for every thread count AND
  // for the OpenMP-off build (this test runs in both CI configurations). If
  // a deliberate algorithm change breaks it, re-record via the recipe in
  // BUILDING.md ("Re-baselining").
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 21);
  EdgeArena arena(g);
  const StreamOptions opt = base_options(500, 33);

  constexpr std::uint64_t kGoldenHash = 0xd59ec85435acbb14ULL;
  constexpr std::size_t kGoldenEdges = 1322;

  for (const int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const StreamResult r = stream_sparsify(arena.view(), opt);
    EXPECT_EQ(r.sparsifier.num_edges(), kGoldenEdges) << threads << " threads";
    EXPECT_EQ(edge_multiset_hash(r.sparsifier), kGoldenHash) << threads << " threads";
  }
}

TEST(StreamSparsify, CrossBatchSizeQualityBound) {
  // Different batch sizes give different (all certified) sparsifiers: the
  // recorded contract is the QUALITY bound, not hash equality.
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 9);
  EdgeArena arena(g);
  const std::size_t m = g.num_edges();
  for (const std::size_t batch : {m, m / 2, m / 8, m / 16}) {
    const StreamOptions opt = base_options(batch, 11);
    const StreamResult r = stream_sparsify(arena.view(), opt);
    const ApproxBounds bounds = exact_relative_bounds(g, r.sparsifier);
    ASSERT_TRUE(bounds.defined) << "batch " << batch;
    EXPECT_GT(bounds.lower, 1.0 - opt.epsilon) << "batch " << batch;
    EXPECT_LT(bounds.upper, 1.0 + opt.epsilon) << "batch " << batch;
  }
}

TEST(StreamSparsify, SingleBatchStreamStillSparsifies) {
  const Graph g = graph::complete_graph(80);
  EdgeArena arena(g);
  const StreamResult r = stream_sparsify(arena.view(), base_options(g.num_edges()));
  EXPECT_EQ(r.report.batches, 1u);
  EXPECT_LT(r.sparsifier.num_edges(), g.num_edges());
  EXPECT_TRUE(graph::is_connected(graph::CSRGraph(r.sparsifier)));
}

TEST(StreamSparsify, EmptyAndEdgelessStreams) {
  EdgeArena empty;
  empty.resize(12, 0);
  const StreamResult r = stream_sparsify(empty.view(), base_options(64));
  EXPECT_EQ(r.sparsifier.num_vertices(), 12u);
  EXPECT_EQ(r.sparsifier.num_edges(), 0u);
  EXPECT_EQ(r.report.batches, 0u);
  EXPECT_EQ(r.report.final_edges, 0u);
}

TEST(StreamSparsify, TowerCapBoundsResidentLevels) {
  // With the cap at 1, every second batch collapses the tower, so the peak
  // can never hold more than ~2 sketches + 1 batch. The output must still
  // certify -- collapses are ordinary reduce passes.
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 13);
  EdgeArena arena(g);
  StreamOptions opt = base_options(256, 5);
  opt.max_resident_levels = 1;
  const StreamResult capped = stream_sparsify(arena.view(), opt);
  EXPECT_TRUE(graph::is_connected(graph::CSRGraph(capped.sparsifier)));
  const ApproxBounds bounds = exact_relative_bounds(g, capped.sparsifier);
  EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
  EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);

  StreamOptions uncapped = opt;
  uncapped.max_resident_levels = 64;
  const StreamResult wide = stream_sparsify(arena.view(), uncapped);
  EXPECT_LE(capped.report.peak_resident_edges, wide.report.peak_resident_edges + 256);
}

TEST(StreamSparsify, PushApiMatchesDriverAndGuardsMisuse) {
  const Graph g = graph::randomize_weights(graph::complete_graph(70), 0.5, 19);
  EdgeArena arena(g);
  const StreamOptions opt = base_options(300);
  const StreamResult driver = stream_sparsify(arena.view(), opt);

  StreamOptions push_opt = opt;
  push_opt.planned_batches = (g.num_edges() + 299) / 300;  // same budget plan
  StreamSparsifier tower(g.num_vertices(), push_opt);
  const graph::EdgeView view = arena.view();
  for (std::size_t at = 0; at < view.size; at += 300)
    tower.push_batch(view.slab(at, std::min(view.size, at + 300)));
  StreamResult pushed = tower.finish();
  EXPECT_TRUE(driver.sparsifier.same_edges(pushed.sparsifier));

  EXPECT_THROW(tower.push_batch(view.slab(0, 1)), spar::Error);
  EXPECT_THROW(tower.finish(), spar::Error);

  StreamSparsifier other(g.num_vertices() + 1, push_opt);
  EXPECT_THROW(other.push_batch(view.slab(0, 1)), spar::Error);
}

TEST(StreamSparsify, BarePushAdaptiveBudgetStaysInsideEpsilon) {
  // planned_batches == 0 (bare push API, stream length unknown up front):
  // every pass must run on the geometric depth-keyed schedule -- this code
  // used to assume a 2^20-batch worst-case plan, splitting eps ~22 ways and
  // over-thinning every pass. finish() now derives depth_planned from the
  // real batch count; the used depth must fit that derived plan, and the
  // exactly-tracked composed budget must stay inside the end-to-end epsilon
  // for any stream length. A tight resident cap makes collapses fire, which
  // is the deepest budget path.
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 23);
  EdgeArena arena(g);
  StreamOptions opt = base_options(128, 3);
  opt.max_resident_levels = 2;
  ASSERT_EQ(opt.planned_batches, 0u);  // bare push: no up-front plan
  StreamSparsifier tower(g.num_vertices(), opt);
  const graph::EdgeView view = arena.view();
  for (std::size_t at = 0; at < view.size; at += 128)
    tower.push_batch(view.slab(at, std::min(view.size, at + 128)));
  const StreamResult r = tower.finish();
  const StreamReport& rep = r.report;

  EXPECT_EQ(rep.batches, (g.num_edges() + 127) / 128);
  EXPECT_GT(rep.depth_planned, 0u);
  EXPECT_LE(rep.depth_used, rep.depth_planned);
  EXPECT_GT(rep.per_level_epsilon, 0.0);
  EXPECT_LT(rep.per_level_epsilon, opt.epsilon);
  EXPECT_GT(rep.epsilon_budget_used, 0.0);
  EXPECT_LE(rep.epsilon_budget_used, opt.epsilon + 1e-12);

  const ApproxBounds bounds = exact_relative_bounds(g, r.sparsifier);
  ASSERT_TRUE(bounds.defined);
  EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
  EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);
}

TEST(StreamSparsify, RejectsBatchesBeyondThePlannedBudget) {
  // A planned eps budget is split for exactly planned_batches batches;
  // ingest() used to accept any number of extra pushes, silently deepening
  // the tower past depth_planned and voiding the composed (1 +- eps) bound.
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 29);
  EdgeArena arena(g);
  const graph::EdgeView view = arena.view();
  StreamOptions opt = base_options(200);
  opt.planned_batches = 2;
  StreamSparsifier tower(g.num_vertices(), opt);
  tower.push_batch(view.slab(0, 200));
  tower.push_batch(view.slab(200, 400));
  EXPECT_THROW(tower.push_batch(view.slab(400, 600)), spar::Error);
  // The overflow must not corrupt the tower: the planned batches still
  // finish with a sound budget.
  const StreamResult r = tower.finish();
  EXPECT_EQ(r.report.batches, 2u);
  EXPECT_LE(r.report.depth_used, r.report.depth_planned);
  EXPECT_LE(r.report.epsilon_budget_used, opt.epsilon + 1e-12);
}

TEST(StreamSparsify, ExactPlanKeepsDepthAndBudgetSound) {
  // Pushing exactly planned_batches batches (the boundary the overflow check
  // guards) must keep depth_used <= depth_planned and the eps back-fill
  // inside the end-to-end budget, including when the resident cap forces
  // collapse passes.
  const Graph g = graph::randomize_weights(graph::complete_graph(80), 0.5, 31);
  EdgeArena arena(g);
  const graph::EdgeView view = arena.view();
  for (const std::size_t cap : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    StreamOptions opt = base_options(250, 13);
    opt.planned_batches = (view.size + 249) / 250;
    opt.max_resident_levels = cap;
    StreamSparsifier tower(g.num_vertices(), opt);
    for (std::size_t at = 0; at < view.size; at += 250)
      tower.push_batch(view.slab(at, std::min(view.size, at + 250)));
    const StreamResult r = tower.finish();
    EXPECT_EQ(r.report.batches, opt.planned_batches) << "cap " << cap;
    EXPECT_LE(r.report.depth_used, r.report.depth_planned) << "cap " << cap;
    EXPECT_LE(r.report.epsilon_budget_used, opt.epsilon + 1e-12) << "cap " << cap;
  }
}

TEST(StreamSparsify, RejectsBadOptions) {
  StreamOptions opt;
  opt.epsilon = 0.0;
  EXPECT_THROW(StreamSparsifier(4, opt), spar::Error);
  opt = {};
  opt.rho = 0.5;
  EXPECT_THROW(StreamSparsifier(4, opt), spar::Error);
  opt = {};
  opt.batch_edges = 0;
  EXPECT_THROW(StreamSparsifier(4, opt), spar::Error);
  opt = {};
  opt.max_resident_levels = 0;
  EXPECT_THROW(StreamSparsifier(4, opt), spar::Error);
}

}  // namespace
}  // namespace spar::sparsify
