#include "sparsify/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(UniformSparsify, KeepsExpectedFraction) {
  const Graph g = graph::complete_graph(120);
  const Graph h = uniform_sparsify(g, 0.3, 7);
  const double fraction = double(h.num_edges()) / double(g.num_edges());
  EXPECT_NEAR(fraction, 0.3, 0.03);
}

TEST(UniformSparsify, ReweightsByInverseProbability) {
  const Graph g = graph::complete_graph(30);
  const Graph h = uniform_sparsify(g, 0.25, 3);
  for (const auto& e : h.edges()) EXPECT_DOUBLE_EQ(e.w, 4.0);
}

TEST(UniformSparsify, PreservesTotalWeightInExpectation) {
  const Graph g = graph::complete_graph(150);
  double total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    total += uniform_sparsify(g, 0.25, seed).total_weight();
  EXPECT_NEAR(total / 8.0, g.total_weight(), 0.05 * g.total_weight());
}

TEST(UniformSparsify, ProbabilityOneIsIdentity) {
  const Graph g = graph::cycle_graph(10);
  EXPECT_TRUE(uniform_sparsify(g, 1.0, 1).same_edges(g));
}

TEST(UniformSparsify, RejectsBadProbability) {
  const Graph g = graph::path_graph(4);
  EXPECT_THROW(uniform_sparsify(g, 0.0, 1), spar::Error);
  EXPECT_THROW(uniform_sparsify(g, 1.2, 1), spar::Error);
}

TEST(UniformSparsify, LosesDumbbellBridgeOften) {
  // The null-hypothesis failure mode (motivation for the bundle): the unique
  // bridge survives with probability p only.
  const Graph g = graph::dumbbell(20);
  int disconnected = 0;
  const int trials = 40;
  for (int seed = 0; seed < trials; ++seed) {
    const Graph h = uniform_sparsify(g, 0.25, seed);
    if (!graph::is_connected(graph::CSRGraph(h))) ++disconnected;
  }
  EXPECT_GT(disconnected, trials / 2);  // ~75% expected
}

// ---- Spielman-Srivastava -----------------------------------------------------

TEST(SpielmanSrivastava, ProducesSpectralSparsifier) {
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 5);
  SpielmanSrivastavaOptions opt;
  opt.epsilon = 0.4;
  opt.resistance_mode = ResistanceMode::kExactDense;
  opt.seed = 9;
  const SSResult result = spielman_srivastava(g, opt);
  const ApproxBounds bounds = exact_relative_bounds(g, result.sparsifier);
  EXPECT_GT(bounds.lower, 0.5);
  EXPECT_LT(bounds.upper, 1.5);
}

TEST(SpielmanSrivastava, DistinctEdgesAtMostSamples) {
  const Graph g = graph::complete_graph(50);
  SpielmanSrivastavaOptions opt;
  opt.num_samples = 300;
  opt.resistance_mode = ResistanceMode::kExactDense;
  const SSResult result = spielman_srivastava(g, opt);
  EXPECT_EQ(result.samples_drawn, 300u);
  EXPECT_LE(result.distinct_edges, 300u);
  EXPECT_EQ(result.sparsifier.num_edges(), result.distinct_edges);
}

TEST(SpielmanSrivastava, TotalWeightNearInput) {
  // Each sample contributes w_e/(q p_e); summed expectation = total weight.
  const Graph g = graph::complete_graph(60);
  SpielmanSrivastavaOptions opt;
  opt.epsilon = 0.5;
  opt.resistance_mode = ResistanceMode::kExactDense;
  opt.seed = 3;
  const SSResult result = spielman_srivastava(g, opt);
  EXPECT_NEAR(result.sparsifier.total_weight(), g.total_weight(),
              0.15 * g.total_weight());
}

TEST(SpielmanSrivastava, ApproxResistanceModeWorks) {
  const Graph g = graph::connected_erdos_renyi(80, 0.2, 3);
  SpielmanSrivastavaOptions opt;
  opt.epsilon = 0.5;
  opt.resistance_mode = ResistanceMode::kApproxSolver;
  opt.seed = 11;
  const SSResult result = spielman_srivastava(g, opt);
  EXPECT_GT(result.distinct_edges, 0u);
  const ApproxBounds bounds = exact_relative_bounds(g, result.sparsifier);
  EXPECT_GT(bounds.lower, 0.4);
  EXPECT_LT(bounds.upper, 1.6);
}

TEST(SpielmanSrivastava, KeepsTreeEdgesAlways) {
  // On a tree every leverage score is 1; with q >= m samples spread over
  // m = n-1 edges, connectivity survives easily. More importantly: sampling
  // proportional to leverage keeps the bridge of a dumbbell w.h.p.
  const Graph g = graph::dumbbell(15);
  SpielmanSrivastavaOptions opt;
  opt.epsilon = 0.5;
  opt.resistance_mode = ResistanceMode::kExactDense;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    opt.seed = seed;
    const SSResult result = spielman_srivastava(g, opt);
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(result.sparsifier)))
        << "seed " << seed;
  }
}

TEST(SpielmanSrivastava, RejectsEmptyGraph) {
  EXPECT_THROW(spielman_srivastava(Graph(3), {}), spar::Error);
}

TEST(SpielmanSrivastava, RejectsBadEpsilon) {
  const Graph g = graph::path_graph(4);
  SpielmanSrivastavaOptions opt;
  opt.epsilon = -0.5;
  EXPECT_THROW(spielman_srivastava(g, opt), spar::Error);
}

}  // namespace
}  // namespace spar::sparsify
