// Oracle-differential harness for the fully dynamic sparsifier: sweep
// delete fraction x tower batch size x seed over dense workloads, and at
// every checkpoint hold the incremental output against two oracles computed
// from scratch on the surviving edge set --
//
//  1. the EXACT oracle: live_graph() must equal the replayed survivor
//     multiset bit for bit, and
//  2. the SPECTRAL oracle: the checkpoint must certify against the survivors
//     within the requested epsilon (checked with the exact dense pencil
//     interval), and its analytic certified_epsilon must stay within that
//     budget -- the same contract a from-scratch parallel_sparsify of the
//     survivors runs under, making incremental and rebuilt paths
//     interchangeable.
//
// Checkpoints are taken mid-stream (a dirty, partially deleted tower) and at
// the end, so staleness charges, lazy re-reduces, and rebuild collapses all
// get exercised against the oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;
using graph::UpdateBatch;

std::uint64_t edge_multiset_hash(const Graph& g) {
  std::vector<graph::Edge> es(g.edges().begin(), g.edges().end());
  for (auto& e : es)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_vertices());
  mix(es.size());
  for (const auto& e : es) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wb = 0;
    std::memcpy(&wb, &e.w, sizeof(wb));
    mix(wb);
  }
  return h;
}

/// Exact oracle: replay updates [0, upto) into the surviving edge multiset.
Graph replay_survivors(const UpdateBatch& u, std::size_t upto) {
  std::unordered_map<std::uint64_t, double> live;
  const auto key = [](graph::Vertex a, graph::Vertex b) {
    return (static_cast<std::uint64_t>(a < b ? a : b) << 32) | (a < b ? b : a);
  };
  for (std::size_t i = 0; i < upto; ++i) {
    const std::uint64_t k = key(u.u[i], u.v[i]);
    if (u.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert))
      live[k] = u.w[i];
    else
      live.erase(k);
  }
  Graph g(u.num_vertices);
  for (const auto& [k, w] : live)
    g.add_edge(static_cast<graph::Vertex>(k >> 32),
               static_cast<graph::Vertex>(k & 0xffffffffULL), w);
  return g;
}

struct Workload {
  const char* name;
  Graph g;
};

std::vector<Workload> workloads() {
  // Dense families: sparse ones the t-spanner bundle covers entirely, so
  // they exercise nothing (the pass keeps every edge).
  std::vector<Workload> w;
  w.push_back({"complete100",
               graph::randomize_weights(graph::complete_graph(100), 0.5, 21)});
  w.push_back({"er120", graph::connected_erdos_renyi(120, 0.3, 5)});
  return w;
}

/// One sweep cell: drive the update stream, checkpoint at roughly 1/3, 2/3
/// and the end, certify each checkpoint against both oracles.
void run_cell(const Workload& wl, double delete_fraction, std::size_t batch_updates,
              std::uint64_t seed, bool compact) {
  SCOPED_TRACE(::testing::Message()
               << wl.name << " f=" << delete_fraction << " batch=" << batch_updates
               << " seed=" << seed << (compact ? " compact" : ""));
  const UpdateBatch u = graph::synthesize_updates(wl.g, delete_fraction, seed);

  DynamicOptions opt;
  opt.epsilon = 1.0;  // the empirical-certification target of test_stream.cpp
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = seed;
  opt.batch_updates = batch_updates;
  opt.sketch_min_edges = 256;
  opt.compact_checkpoints = compact;

  DynamicSparsifier dyn(wl.g.num_vertices(), opt);
  const std::size_t marks[] = {u.size() / 3, (2 * u.size()) / 3, u.size()};
  std::size_t at = 0;
  for (const std::size_t mark : marks) {
    if (mark > at) {
      UpdateBatch chunk;
      chunk.num_vertices = u.num_vertices;
      chunk.append(u, at, mark);
      dyn.apply(chunk);
      at = mark;
    }

    const Graph expected = replay_survivors(u, at);
    const Graph live = dyn.live_graph();
    ASSERT_EQ(edge_multiset_hash(live), edge_multiset_hash(expected))
        << "survivor multiset diverged at update " << at;

    const DynCheckpoint cp = dyn.checkpoint();
    EXPECT_LE(cp.certified_epsilon, opt.epsilon + 1e-12);
    if (live.num_edges() == 0) {
      EXPECT_EQ(cp.sparsifier.num_edges(), 0u);
      continue;
    }
    if (!graph::is_connected(graph::CSRGraph(live)))
      continue;  // pencil interval undefined; deletions may disconnect
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(cp.sparsifier)));
    const ApproxBounds bounds = exact_relative_bounds(live, cp.sparsifier);
    ASSERT_TRUE(bounds.defined);
    EXPECT_GT(bounds.lower, 1.0 - opt.epsilon)
        << "checkpoint outside the requested epsilon";
    EXPECT_LT(bounds.upper, 1.0 + opt.epsilon)
        << "checkpoint outside the requested epsilon";
  }
}

class DynamicOracle : public ::testing::TestWithParam<double> {};

TEST_P(DynamicOracle, CheckpointsMatchFromScratchOracles) {
  const double fraction = GetParam();
  // Batch size cycles with the seed so the sweep covers (fraction, batch,
  // seed) without a cubic blowup; 1 << 16 = the whole stream in one batch.
  // 150 = exact-serving levels throughout (density gate), 2000 = mixed
  // sketch/exact, 1 << 16 = the whole stream in one sketched level.
  const std::size_t batch_sizes[] = {150, 2000, std::size_t{1} << 16};
  for (const Workload& wl : workloads())
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      run_cell(wl, fraction, batch_sizes[seed - 1], seed,
               /*compact=*/seed == 3);
}

INSTANTIATE_TEST_SUITE_P(DeleteFractions, DynamicOracle,
                         ::testing::Values(0.0, 0.2, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 0.0   ? "insertOnly"
                                  : info.param == 0.2 ? "delete20"
                                                      : "delete50";
                         });

TEST(DynamicOracle, IncrementalAgreesWithRebuildQualityOnHeavyDeletion) {
  // After deleting 60% of a complete graph the tower has rebuilt at least
  // once on small batches; both the incremental checkpoint and a from-scratch
  // parallel_sparsify of the survivors must certify within the same eps.
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 8);
  const UpdateBatch u = graph::synthesize_updates(g, 0.6, 4);
  DynamicOptions opt;
  opt.epsilon = 1.0;
  opt.seed = 9;
  opt.batch_updates = 200;
  opt.sketch_min_edges = 256;
  DynamicSparsifier dyn(g.num_vertices(), opt);
  dyn.apply(u);
  const DynCheckpoint cp = dyn.checkpoint();
  const Graph live = dyn.live_graph();

  SparsifyOptions scratch;
  scratch.epsilon = opt.epsilon;
  scratch.rho = opt.rho;
  scratch.t = opt.t;
  scratch.seed = 77;
  const SparsifyResult oracle = parallel_sparsify(live, scratch);

  for (const Graph* h : {&cp.sparsifier, &oracle.sparsifier}) {
    const ApproxBounds bounds = exact_relative_bounds(live, *h);
    ASSERT_TRUE(bounds.defined);
    EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
    EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);
  }
}

}  // namespace
}  // namespace spar::sparsify
