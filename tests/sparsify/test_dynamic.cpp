// DynamicSparsifier unit semantics: turnstile discipline (cancellation,
// duplicate-insert / delete-of-absent diagnostics), live-graph tracking,
// stats and eps accounting, rebuild, golden-hash determinism across thread
// counts, and batch-size-invariant quality. The oracle-differential sweep
// lives in test_dynamic_oracle.cpp.
#include "sparsify/dynamic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;
using graph::UpdateBatch;

/// Same fingerprint scheme as test_stream.cpp / test_parallel_determinism.
std::uint64_t edge_multiset_hash(const Graph& g) {
  std::vector<graph::Edge> es(g.edges().begin(), g.edges().end());
  for (auto& e : es)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_vertices());
  mix(es.size());
  for (const auto& e : es) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wb = 0;
    std::memcpy(&wb, &e.w, sizeof(wb));
    mix(wb);
  }
  return h;
}

DynamicOptions base_options(std::size_t batch_updates, std::uint64_t seed = 7) {
  DynamicOptions opt;
  opt.epsilon = 1.0;  // same empirical-certification target as test_stream.cpp
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = seed;
  opt.batch_updates = batch_updates;
  opt.sketch_min_edges = 256;  // complete(90) levels must actually sketch
  return opt;
}

/// Replay `u` exactly (multiset semantics) -- the trivial oracle.
Graph replay_survivors(const UpdateBatch& u) {
  Graph g(u.num_vertices);
  std::unordered_map<std::uint64_t, double> live;
  const auto key = [](graph::Vertex a, graph::Vertex b) {
    return (static_cast<std::uint64_t>(a < b ? a : b) << 32) | (a < b ? b : a);
  };
  for (std::size_t i = 0; i < u.size(); ++i) {
    const std::uint64_t k = key(u.u[i], u.v[i]);
    if (u.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert))
      live[k] = u.w[i];
    else
      live.erase(k);
  }
  for (const auto& [k, w] : live)
    g.add_edge(static_cast<graph::Vertex>(k >> 32),
               static_cast<graph::Vertex>(k & 0xffffffffULL), w);
  return g;
}

TEST(DynamicSparsify, CancellationAnnihilatesInsideTheBatch) {
  DynamicSparsifier dyn(8, base_options(1 << 16));
  dyn.push_insert(0, 1, 1.0);
  dyn.push_insert(1, 2, 2.0);
  dyn.push_delete(0, 1);  // same gutter batch: never reaches the tower
  dyn.flush();
  EXPECT_EQ(dyn.live_edges(), 1u);
  EXPECT_EQ(dyn.stats().cancelled_pairs, 1u);
  EXPECT_EQ(dyn.stats().inserts_applied, 1u);
  EXPECT_EQ(dyn.stats().deletes_applied, 0u);
  const Graph live = dyn.live_graph();
  ASSERT_EQ(live.num_edges(), 1u);
  EXPECT_EQ(live.edge(0).w, 2.0);
}

TEST(DynamicSparsify, ReinsertAfterDeleteIsLegal) {
  DynamicSparsifier dyn(4, base_options(2));  // tiny batches: cross-batch path
  dyn.push_insert(0, 1, 1.0);
  dyn.push_insert(1, 2, 1.0);  // flush 1
  dyn.push_delete(0, 1);
  dyn.push_insert(0, 1, 5.0);  // same batch: delete lands, insert re-lands
  dyn.flush();
  EXPECT_EQ(dyn.live_edges(), 2u);
  const Graph live = dyn.live_graph();
  double w01 = 0.0;
  for (const auto& e : live.edges())
    if ((e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0)) w01 = e.w;
  EXPECT_EQ(w01, 5.0);
}

TEST(DynamicSparsify, TurnstileViolationsAreDiagnosed) {
  // A violation is a contract breach: a fresh sparsifier per case (the
  // batch that threw stays un-applied, so the object is not reusable).
  const auto violation = [](auto&& act, const char* needle) {
    DynamicSparsifier dyn(8, base_options(1 << 16));
    dyn.push_insert(0, 1, 1.0);
    dyn.flush();
    try {
      act(dyn);
      dyn.flush();
      FAIL() << "expected spar::Error containing \"" << needle << "\"";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  violation([](DynamicSparsifier& d) { d.push_insert(0, 1, 2.0); },
            "duplicate insert");
  violation([](DynamicSparsifier& d) { d.push_insert(1, 0, 2.0); },  // swapped
            "duplicate insert");
  violation([](DynamicSparsifier& d) { d.push_delete(2, 3); },
            "delete of absent");
  violation(
      [](DynamicSparsifier& d) {  // in-batch double insert
        d.push_insert(2, 3, 1.0);
        d.push_insert(2, 3, 2.0);
      },
      "duplicate insert");
  violation(
      [](DynamicSparsifier& d) {  // in-batch double delete of a live edge
        d.push_delete(0, 1);
        d.push_delete(0, 1);
      },
      "delete of absent");
}

TEST(DynamicSparsify, RejectsBadOptions) {
  const auto expect_bad = [](auto&& mutate) {
    DynamicOptions opt;
    mutate(opt);
    EXPECT_THROW(DynamicSparsifier(10, opt), Error);
  };
  EXPECT_THROW(DynamicSparsifier(0, DynamicOptions{}), Error);
  expect_bad([](DynamicOptions& o) { o.epsilon = 0.0; });
  expect_bad([](DynamicOptions& o) { o.rho = 0.5; });
  expect_bad([](DynamicOptions& o) { o.keep_probability = 0.0; });
  expect_bad([](DynamicOptions& o) { o.batch_updates = 0; });
  expect_bad([](DynamicOptions& o) { o.max_staleness = 0.0; });
  expect_bad([](DynamicOptions& o) { o.staleness_eps_share = 1.0; });
  expect_bad([](DynamicOptions& o) { o.rebuild_fraction = 0.0; });
}

TEST(DynamicSparsify, LiveGraphTracksTheSurvivingMultiset) {
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 11);
  const UpdateBatch u = graph::synthesize_updates(g, 0.3, 23);
  DynamicSparsifier dyn(g.num_vertices(), base_options(400));
  dyn.apply(u);
  EXPECT_EQ(edge_multiset_hash(dyn.live_graph()),
            edge_multiset_hash(replay_survivors(u)));
  EXPECT_EQ(dyn.live_edges(), replay_survivors(u).num_edges());
}

TEST(DynamicSparsify, StatsAndEpsAccountingAreInternallyConsistent) {
  const Graph g = graph::randomize_weights(graph::complete_graph(80), 0.5, 3);
  const UpdateBatch u = graph::synthesize_updates(g, 0.25, 9);
  const DynamicOptions opt = base_options(1500);  // sketch-worthy levels
  DynamicSparsifier dyn(g.num_vertices(), opt);
  dyn.apply(u);
  const DynCheckpoint cp = dyn.checkpoint();
  const DynStats& s = dyn.stats();

  EXPECT_EQ(s.metrics.updates_ingested, u.size());
  EXPECT_EQ(s.metrics.words_ingested, 3 * u.size());
  EXPECT_EQ(s.metrics.reduce_words, 3 * s.metrics.reduce_edges);
  EXPECT_EQ(s.inserts_applied - s.deletes_applied, s.live_edges);
  EXPECT_EQ(s.inserts_applied + s.deletes_applied + 2 * s.cancelled_pairs,
            u.size());
  // Gutter boundaries are a pure function of the update count.
  EXPECT_EQ(s.batches, (u.size() + opt.batch_updates - 1) / opt.batch_updates);
  EXPECT_EQ(s.checkpoints, 1u);
  EXPECT_GE(s.peak_resident_edges, s.live_edges);
  EXPECT_GE(s.levels_used, 1u);
  EXPECT_GE(s.carry_reduces + s.re_reduces, 1u);

  // The advertised budget split: every pass runs at (1+eps)^((1-s)/2) - 1.
  const double expected_pass =
      std::expm1(0.5 * (1.0 - opt.staleness_eps_share) * std::log1p(opt.epsilon));
  EXPECT_DOUBLE_EQ(s.per_pass_epsilon, expected_pass);
  EXPECT_LE(cp.certified_epsilon, opt.epsilon + 1e-12);
  EXPECT_EQ(s.max_composed_epsilon, cp.certified_epsilon);
}

TEST(DynamicSparsify, CheckpointCertifiesAndKeepsConnectivity) {
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 21);
  const UpdateBatch u = graph::synthesize_updates(g, 0.2, 5);
  const DynamicOptions opt = base_options(2000);  // dense enough to sketch
  DynamicSparsifier dyn(g.num_vertices(), opt);
  dyn.apply(u);
  const DynCheckpoint cp = dyn.checkpoint();
  const Graph live = dyn.live_graph();
  EXPECT_LT(cp.sparsifier.num_edges(), live.num_edges());
  EXPECT_TRUE(graph::is_connected(graph::CSRGraph(cp.sparsifier)));
  // certified_epsilon is the analytic composition budget; the empirical
  // pencil interval is held to the user-facing target, as in test_stream.cpp.
  EXPECT_LE(cp.certified_epsilon, opt.epsilon + 1e-12);
  const ApproxBounds bounds = exact_relative_bounds(live, cp.sparsifier);
  ASSERT_TRUE(bounds.defined);
  EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
  EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);
}

TEST(DynamicSparsify, CheckpointIsNonDestructiveAndRepeatable) {
  const Graph g = graph::randomize_weights(graph::complete_graph(70), 0.5, 13);
  const UpdateBatch u = graph::synthesize_updates(g, 0.2, 31);
  DynamicSparsifier dyn(g.num_vertices(), base_options(300));
  dyn.apply(u);
  const DynCheckpoint a = dyn.checkpoint();
  const std::size_t passes_after_first = dyn.stats().carry_reduces +
                                         dyn.stats().re_reduces;
  const DynCheckpoint b = dyn.checkpoint();  // clean tower: no new passes
  EXPECT_EQ(dyn.stats().carry_reduces + dyn.stats().re_reduces,
            passes_after_first);
  EXPECT_EQ(edge_multiset_hash(a.sparsifier), edge_multiset_hash(b.sparsifier));
  EXPECT_EQ(a.certified_epsilon, b.certified_epsilon);
}

TEST(DynamicSparsify, CompactCheckpointsAlsoCertify) {
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 17);
  const UpdateBatch u = graph::synthesize_updates(g, 0.2, 7);
  DynamicOptions opt = base_options(2000);
  opt.compact_checkpoints = true;
  DynamicSparsifier dyn(g.num_vertices(), opt);
  dyn.apply(u);
  const DynCheckpoint cp = dyn.checkpoint();
  EXPECT_LE(cp.certified_epsilon, opt.epsilon + 1e-12);
  const Graph live = dyn.live_graph();
  const ApproxBounds bounds = exact_relative_bounds(live, cp.sparsifier);
  ASSERT_TRUE(bounds.defined);
  EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
  EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);
}

TEST(DynamicSparsify, RebuildCollapsesTheTowerAndStillCertifies) {
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 29);
  const UpdateBatch u = graph::synthesize_updates(g, 0.1, 3);
  DynamicSparsifier dyn(g.num_vertices(), base_options(250));
  dyn.apply(u);
  dyn.rebuild();
  EXPECT_GE(dyn.stats().rebuilds, 1u);
  const DynCheckpoint cp = dyn.checkpoint();
  const Graph live = dyn.live_graph();
  const ApproxBounds bounds = exact_relative_bounds(live, cp.sparsifier);
  ASSERT_TRUE(bounds.defined);
  EXPECT_GT(bounds.lower, 1.0 - dyn.options().epsilon);
  EXPECT_LT(bounds.upper, 1.0 + dyn.options().epsilon);
}

TEST(DynamicSparsify, DeleteToEmptyAndRefill) {
  DynamicSparsifier dyn(6, base_options(3));
  const auto ring = [&](double w) {
    dyn.push_insert(0, 1, w);
    dyn.push_insert(1, 2, w);
    dyn.push_insert(2, 0, w);
  };
  ring(1.0);
  dyn.push_delete(0, 1);
  dyn.push_delete(1, 2);
  dyn.push_delete(2, 0);
  dyn.flush();
  EXPECT_EQ(dyn.live_edges(), 0u);
  const DynCheckpoint empty = dyn.checkpoint();
  EXPECT_EQ(empty.sparsifier.num_edges(), 0u);
  EXPECT_EQ(empty.certified_epsilon, 0.0);
  ring(2.0);
  dyn.flush();
  EXPECT_EQ(dyn.live_edges(), 3u);
  EXPECT_EQ(dyn.checkpoint().sparsifier.num_edges(), 3u);  // exact serving
}

TEST(DynamicSparsify, DriverMatchesManualApplicationBitForBit) {
  const Graph g = graph::randomize_weights(graph::complete_graph(80), 0.5, 19);
  const UpdateBatch u = graph::synthesize_updates(g, 0.25, 13);
  const DynamicOptions opt = base_options(700);

  graph::MemoryUpdateStream stream(u);
  const DynResult driver = dynamic_sparsify(stream, opt);

  DynamicSparsifier manual(g.num_vertices(), opt);
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (u.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert))
      manual.push_insert(u.u[i], u.v[i], u.w[i]);
    else
      manual.push_delete(u.u[i], u.v[i]);
  }
  const DynCheckpoint cp = manual.checkpoint();
  EXPECT_EQ(edge_multiset_hash(driver.sparsifier), edge_multiset_hash(cp.sparsifier));
  EXPECT_EQ(driver.certified_epsilon, cp.certified_epsilon);
}

TEST(DynamicSparsify, GoldenHashAcrossThreadCounts) {
  // Golden fingerprint recorded from the x86-64 gcc Release build at 1
  // thread; the same constant must hold at every thread count and for the
  // OpenMP-off build (this test runs in both CI configurations). If a
  // deliberate algorithm change breaks it, re-record via the recipe in
  // BUILDING.md ("Re-baselining").
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 21);
  const UpdateBatch u = graph::synthesize_updates(g, 0.25, 41);
  const DynamicOptions opt = base_options(1000, 33);  // sketch-worthy levels

  constexpr std::uint64_t kGoldenHash = 0x6d2219ad71fb59ddULL;
  constexpr std::size_t kGoldenEdges = 1480;

  for (const int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    graph::MemoryUpdateStream stream(u);
    const DynResult r = dynamic_sparsify(stream, opt);
    EXPECT_EQ(r.sparsifier.num_edges(), kGoldenEdges) << threads << " threads";
    EXPECT_EQ(edge_multiset_hash(r.sparsifier), kGoldenHash)
        << threads << " threads";
  }
}

TEST(DynamicSparsify, ArrivalChunkingDoesNotChangeTheResult) {
  // Pushing one update at a time vs apply()ing arbitrary chunks must land
  // identical tower batches: boundaries depend only on the update sequence.
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 23);
  const UpdateBatch u = graph::synthesize_updates(g, 0.3, 19);
  const DynamicOptions opt = base_options(333);

  DynamicSparsifier one_by_one(g.num_vertices(), opt);
  for (std::size_t i = 0; i < u.size(); ++i) {
    UpdateBatch single;
    single.num_vertices = u.num_vertices;
    single.append(u, i, i + 1);
    one_by_one.apply(single);
  }
  DynamicSparsifier chunked(g.num_vertices(), opt);
  std::size_t at = 0;
  const std::size_t chunks[] = {7, 501, 64, 1000000};
  for (std::size_t ci = 0; at < u.size(); ci = (ci + 1) % 4) {
    UpdateBatch chunk;
    chunk.num_vertices = u.num_vertices;
    const std::size_t take = std::min(chunks[ci], u.size() - at);
    chunk.append(u, at, at + take);
    at += take;
    chunked.apply(chunk);
  }
  EXPECT_EQ(one_by_one.stats().batches, chunked.stats().batches);
  EXPECT_EQ(edge_multiset_hash(one_by_one.checkpoint().sparsifier),
            edge_multiset_hash(chunked.checkpoint().sparsifier));
}

TEST(DynamicSparsify, BatchSizeChangesTheSparsifierNotTheQuality) {
  // Different tower batch sizes give different (all certified) outputs: the
  // recorded contract is the quality bound, not hash equality.
  const Graph g = graph::randomize_weights(graph::complete_graph(100), 0.5, 9);
  const UpdateBatch u = graph::synthesize_updates(g, 0.2, 11);
  for (const std::size_t batch : {u.size(), u.size() / 2, u.size() / 8}) {
    const DynamicOptions opt = base_options(batch, 11);
    DynamicSparsifier dyn(g.num_vertices(), opt);
    dyn.apply(u);
    const DynCheckpoint cp = dyn.checkpoint();
    EXPECT_LE(cp.certified_epsilon, opt.epsilon + 1e-12) << "batch " << batch;
    const ApproxBounds bounds = exact_relative_bounds(dyn.live_graph(), cp.sparsifier);
    ASSERT_TRUE(bounds.defined) << "batch " << batch;
    EXPECT_GT(bounds.lower, 1.0 - opt.epsilon) << "batch " << batch;
    EXPECT_LT(bounds.upper, 1.0 + opt.epsilon) << "batch " << batch;
  }
}

}  // namespace
}  // namespace spar::sparsify
