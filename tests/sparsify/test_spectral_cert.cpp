#include "sparsify/spectral_cert.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(ExactBounds, IdenticalGraphsGiveUnitPencil) {
  const Graph g = graph::connected_erdos_renyi(40, 0.2, 3);
  const ApproxBounds b = exact_relative_bounds(g, g);
  EXPECT_NEAR(b.lower, 1.0, 1e-8);
  EXPECT_NEAR(b.upper, 1.0, 1e-8);
  EXPECT_NEAR(b.epsilon(), 0.0, 1e-8);
}

TEST(ExactBounds, ScaledGraphShiftsBothBounds) {
  const Graph g = graph::grid2d(5, 5);
  const ApproxBounds b = exact_relative_bounds(g, g.scaled(2.0));
  EXPECT_NEAR(b.lower, 2.0, 1e-8);
  EXPECT_NEAR(b.upper, 2.0, 1e-8);
}

TEST(ExactBounds, SubgraphUpperAtMostOne) {
  // H subset of G implies L_H <= L_G, so upper <= 1.
  const Graph g = graph::complete_graph(16);
  std::vector<bool> keep(g.num_edges(), true);
  keep[0] = keep[5] = keep[17] = false;
  const Graph h = g.filtered(keep);
  const ApproxBounds b = exact_relative_bounds(g, h);
  EXPECT_LE(b.upper, 1.0 + 1e-9);
  EXPECT_LT(b.lower, 1.0);
  EXPECT_GT(b.lower, 0.0);  // still connected
}

TEST(ExactBounds, DisconnectedHGivesZeroLower) {
  const Graph g = graph::path_graph(4);
  Graph h(4);
  h.add_edge(0, 1, 1.0);  // drops the rest of the path
  const ApproxBounds b = exact_relative_bounds(g, h);
  EXPECT_NEAR(b.lower, 0.0, 1e-9);
}

TEST(ExactBounds, EpsilonOfKnownPerturbation) {
  // H = G with one edge reweighted 1 -> 1+delta on a cycle.
  const Graph g = graph::cycle_graph(12);
  Graph h = g;
  {
    Graph modified(12);
    for (graph::EdgeId id = 0; id < g.num_edges(); ++id) {
      const auto& e = g.edge(id);
      modified.add_edge(e.u, e.v, id == 0 ? 1.5 : e.w);
    }
    h = modified;
  }
  const ApproxBounds b = exact_relative_bounds(g, h);
  EXPECT_GE(b.lower, 1.0 - 1e-9);       // weights only increased
  EXPECT_LE(b.upper, 1.5 + 1e-9);       // at most the max ratio
  EXPECT_GT(b.upper, 1.0 + 1e-6);       // strictly above 1
}

TEST(ExactBounds, MismatchedVerticesThrow) {
  EXPECT_THROW(exact_relative_bounds(graph::path_graph(3), graph::path_graph(4)),
               spar::Error);
}

TEST(ExactBounds, DisconnectedGThrows) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(exact_relative_bounds(g, g), spar::Error);
}

// ---- Approximate certifier vs exact ----------------------------------------

class CertAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertAgreement, PowerIterationTracksDense) {
  const std::uint64_t seed = GetParam();
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(70, 0.15, seed), 1.0, seed);
  // H: randomly reweighted version of G (keeps connectivity).
  const Graph h = graph::randomize_weights(g, 0.4, seed + 100);
  const ApproxBounds exact = exact_relative_bounds(g, h);
  const ApproxBounds approx = approx_relative_bounds(g, h, {.seed = seed});
  // Power iteration converges from inside the interval.
  EXPECT_LE(approx.upper, exact.upper + 1e-4);
  EXPECT_GE(approx.lower, exact.lower - 1e-4);
  EXPECT_NEAR(approx.upper, exact.upper, 0.05 * exact.upper);
  EXPECT_NEAR(approx.lower, exact.lower, 0.05 * exact.lower);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertAgreement, ::testing::Values(1, 2, 3, 4));

TEST(ApproxBoundsCert, DisconnectedHFlagsZeroLower) {
  const Graph g = graph::path_graph(5);
  Graph h(5);
  h.add_edge(0, 1, 1.0);
  h.add_edge(1, 2, 1.0);
  const ApproxBounds b = approx_relative_bounds(g, h);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

TEST(ApproxBoundsStruct, EpsilonIsMaxDeviation) {
  ApproxBounds b;
  b.lower = 0.9;
  b.upper = 1.2;
  EXPECT_NEAR(b.epsilon(), 0.2, 1e-15);
  b.lower = 0.5;
  b.upper = 1.1;
  EXPECT_NEAR(b.epsilon(), 0.5, 1e-15);
}

}  // namespace
}  // namespace spar::sparsify
