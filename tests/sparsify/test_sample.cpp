#include "sparsify/sample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(TheoryBundleWidth, MatchesFormula) {
  // t = ceil(24 log2(n)^2 / eps^2).
  EXPECT_EQ(theory_bundle_width(1024, 1.0), 2400u);
  EXPECT_EQ(theory_bundle_width(1024, 0.5), 9600u);
  const double log2_100 = std::log2(100.0);
  EXPECT_EQ(theory_bundle_width(100, 2.0),
            static_cast<std::size_t>(std::ceil(24.0 * log2_100 * log2_100 / 4.0)));
}

TEST(TheoryBundleWidth, RejectsNonPositiveEpsilon) {
  EXPECT_THROW(theory_bundle_width(100, 0.0), spar::Error);
}

TEST(ParallelSample, BundleEdgesKeptAtOriginalWeight) {
  const Graph g = graph::complete_graph(30);
  SampleOptions opt;
  opt.t = 2;
  opt.seed = 3;
  const SampleResult result = parallel_sample(g, opt);
  // Every weight is either w (bundle) or 4w (sampled); with unit input
  // weights: 1 or 4.
  for (const auto& e : result.sparsifier.edges())
    EXPECT_TRUE(e.w == 1.0 || e.w == 4.0) << e.w;
}

TEST(ParallelSample, ExpectationPreserved) {
  // Total weight is preserved in expectation: bundle kept + off-bundle
  // quarter at 4x. Check within concentration slack.
  const Graph g = graph::complete_graph(80);
  SampleOptions opt;
  opt.t = 1;
  opt.seed = 11;
  const SampleResult result = parallel_sample(g, opt);
  EXPECT_NEAR(result.sparsifier.total_weight(), g.total_weight(),
              0.15 * g.total_weight());
}

TEST(ParallelSample, CountsConsistent) {
  const Graph g = graph::complete_graph(40);
  SampleOptions opt;
  opt.t = 2;
  opt.seed = 5;
  const SampleResult result = parallel_sample(g, opt);
  EXPECT_EQ(result.bundle_edges + result.off_bundle_edges, g.num_edges());
  EXPECT_EQ(result.sparsifier.num_edges(), result.bundle_edges + result.sampled_edges);
  EXPECT_EQ(result.t_used, 2u);
}

TEST(ParallelSample, SampledFractionNearKeepProbability) {
  const Graph g = graph::complete_graph(120);
  SampleOptions opt;
  opt.t = 1;
  opt.seed = 9;
  const SampleResult result = parallel_sample(g, opt);
  ASSERT_GT(result.off_bundle_edges, 1000u);
  const double fraction =
      double(result.sampled_edges) / double(result.off_bundle_edges);
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(ParallelSample, TheoreticalWidthUsedWhenTZero) {
  const Graph g = graph::path_graph(16);
  SampleOptions opt;
  opt.epsilon = 1.0;
  opt.t = 0;
  const SampleResult result = parallel_sample(g, opt);
  EXPECT_EQ(result.t_used, theory_bundle_width(16, 1.0));
  // Paths are swallowed whole by the first spanner: no sampling, exact copy.
  EXPECT_EQ(result.sparsifier.num_edges(), g.num_edges());
}

TEST(ParallelSample, PreservesConnectivityOnDumbbell) {
  // The bridge must always survive inside the bundle.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = graph::dumbbell(25, 0.05);
    SampleOptions opt;
    opt.t = 1;
    opt.seed = seed;
    const SampleResult result = parallel_sample(g, opt);
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(result.sparsifier)))
        << "seed " << seed;
  }
}

TEST(ParallelSample, DeterministicPerSeed) {
  const Graph g = graph::complete_graph(30);
  SampleOptions opt;
  opt.t = 2;
  opt.seed = 21;
  const auto a = parallel_sample(g, opt);
  const auto b = parallel_sample(g, opt);
  EXPECT_TRUE(a.sparsifier.same_edges(b.sparsifier));
}

TEST(ParallelSample, CustomKeepProbability) {
  const Graph g = graph::complete_graph(100);
  SampleOptions opt;
  opt.t = 1;
  opt.keep_probability = 0.5;
  opt.seed = 13;
  const SampleResult result = parallel_sample(g, opt);
  const double fraction =
      double(result.sampled_edges) / double(result.off_bundle_edges);
  EXPECT_NEAR(fraction, 0.5, 0.05);
  for (const auto& e : result.sparsifier.edges())
    EXPECT_TRUE(e.w == 1.0 || e.w == 2.0);
}

TEST(ParallelSample, RejectsBadParameters) {
  const Graph g = graph::path_graph(4);
  SampleOptions opt;
  opt.epsilon = -1.0;
  EXPECT_THROW(parallel_sample(g, opt), spar::Error);
  opt.epsilon = 0.5;
  opt.keep_probability = 0.0;
  EXPECT_THROW(parallel_sample(g, opt), spar::Error);
  opt.keep_probability = 1.5;
  EXPECT_THROW(parallel_sample(g, opt), spar::Error);
}

TEST(ParallelSample, TreeBundleVariantRuns) {
  const Graph g = graph::complete_graph(40);
  SampleOptions opt;
  opt.t = 3;
  opt.bundle_kind = BundleKind::kTree;
  opt.seed = 7;
  const SampleResult result = parallel_sample(g, opt);
  EXPECT_EQ(result.bundle_edges + result.off_bundle_edges, g.num_edges());
  // Tree bundle: at most t(n-1) edges (forests; remainders may disconnect),
  // and close to it on a complete graph.
  EXPECT_LE(result.bundle_edges, 3u * 39);
  EXPECT_GE(result.bundle_edges, 3u * 35);
}

// ---- Spectral quality sweep (Theorem 4 empirically) ------------------------

class SampleQuality
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(SampleQuality, ApproximationImprovesWithT) {
  const auto [t, seed] = GetParam();
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 1.0, seed);
  SampleOptions opt;
  opt.t = t;
  opt.seed = seed;
  const SampleResult result = parallel_sample(g, opt);
  const ApproxBounds bounds = exact_relative_bounds(g, result.sparsifier);
  // With t >= 2 on K_60 the empirical eps is well below 1; assert a sane
  // envelope rather than the asymptotic constant.
  EXPECT_GT(bounds.lower, 0.3) << "t=" << t;
  EXPECT_LT(bounds.upper, 1.9) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    TSweep, SampleQuality,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 6),
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace spar::sparsify
