#include "sparsify/sparsify.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::sparsify {
namespace {

using graph::Graph;

TEST(ParallelSparsify, RoundCountIsCeilLog2Rho) {
  const Graph g = graph::complete_graph(64);
  SparsifyOptions opt;
  opt.rho = 8.0;
  opt.t = 2;
  opt.seed = 3;
  const SparsifyResult result = parallel_sparsify(g, opt);
  EXPECT_EQ(result.rounds_planned, 3u);
  EXPECT_LE(result.rounds.size(), 3u);
  EXPECT_NEAR(result.per_round_epsilon, opt.epsilon / 3.0, 1e-12);
}

TEST(ParallelSparsify, RhoOneIsIdentity) {
  const Graph g = graph::complete_graph(20);
  SparsifyOptions opt;
  opt.rho = 1.0;
  const SparsifyResult result = parallel_sparsify(g, opt);
  EXPECT_EQ(result.rounds_planned, 0u);
  EXPECT_TRUE(result.sparsifier.same_edges(g));
}

TEST(ParallelSparsify, EdgeCountDecreasesGeometricallyOffBundle) {
  const Graph g = graph::complete_graph(150);
  SparsifyOptions opt;
  opt.rho = 16.0;
  opt.t = 1;
  opt.seed = 5;
  const SparsifyResult result = parallel_sparsify(g, opt);
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const RoundStats& r = result.rounds[i];
    EXPECT_EQ(r.edges_after, r.bundle_edges + r.sampled_edges);
    // Off-bundle mass drops to ~1/4 per round; assert < 1/2.
    if (r.edges_before > r.bundle_edges) {
      EXPECT_LT(r.sampled_edges, (r.edges_before - r.bundle_edges) / 2 + 10);
    }
  }
}

TEST(ParallelSparsify, StatsChainRoundToRound) {
  const Graph g = graph::complete_graph(100);
  SparsifyOptions opt;
  opt.rho = 8.0;
  opt.t = 1;
  opt.seed = 9;
  const SparsifyResult result = parallel_sparsify(g, opt);
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_EQ(result.rounds.front().edges_before, g.num_edges());
  for (std::size_t i = 1; i < result.rounds.size(); ++i)
    EXPECT_EQ(result.rounds[i].edges_before, result.rounds[i - 1].edges_after);
  EXPECT_EQ(result.rounds.back().edges_after, result.sparsifier.num_edges());
}

TEST(ParallelSparsify, KeepsConnectivity) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::dumbbell(30, 0.02);
    SparsifyOptions opt;
    opt.rho = 8.0;
    opt.t = 1;
    opt.seed = seed;
    const SparsifyResult result = parallel_sparsify(g, opt);
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(result.sparsifier)))
        << "seed " << seed;
  }
}

TEST(ParallelSparsify, SaturationStopsEarly) {
  // A path saturates instantly: the first bundle is the whole graph.
  const Graph g = graph::path_graph(64);
  SparsifyOptions opt;
  opt.rho = 64.0;
  opt.t = 1;
  const SparsifyResult result = parallel_sparsify(g, opt);
  EXPECT_EQ(result.rounds.size(), 1u);
  EXPECT_TRUE(result.sparsifier.same_edges(g));
}

TEST(ParallelSparsify, NoSaturationStopWhenDisabled) {
  const Graph g = graph::path_graph(64);
  SparsifyOptions opt;
  opt.rho = 16.0;
  opt.t = 1;
  opt.stop_when_saturated = false;
  const SparsifyResult result = parallel_sparsify(g, opt);
  EXPECT_EQ(result.rounds.size(), result.rounds_planned);
}

TEST(ParallelSparsify, RejectsBadParameters) {
  const Graph g = graph::path_graph(4);
  SparsifyOptions opt;
  opt.rho = 0.5;
  EXPECT_THROW(parallel_sparsify(g, opt), spar::Error);
  opt.rho = 2.0;
  opt.epsilon = 0.0;
  EXPECT_THROW(parallel_sparsify(g, opt), spar::Error);
}

TEST(ParallelSparsify, DeterministicPerSeed) {
  const Graph g = graph::complete_graph(40);
  SparsifyOptions opt;
  opt.rho = 4.0;
  opt.t = 2;
  opt.seed = 31;
  const auto a = parallel_sparsify(g, opt);
  const auto b = parallel_sparsify(g, opt);
  EXPECT_TRUE(a.sparsifier.same_edges(b.sparsifier));
}

TEST(ParallelSparsify, WorkCounterTracksAllRounds) {
  support::WorkCounter work;
  const Graph g = graph::complete_graph(60);
  SparsifyOptions opt;
  opt.rho = 4.0;
  opt.t = 1;
  opt.work = &work;
  parallel_sparsify(g, opt);
  EXPECT_GT(work.total(), g.num_edges());
}

// ---- Theorem 5 quality sweep ------------------------------------------------

class SparsifyQuality
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SparsifyQuality, SpectralErrorBounded) {
  const auto [rho, seed] = GetParam();
  const Graph g = graph::randomize_weights(graph::complete_graph(70), 0.5, seed);
  SparsifyOptions opt;
  opt.epsilon = 1.0;
  opt.rho = rho;
  opt.t = 3;
  opt.seed = seed;
  const SparsifyResult result = parallel_sparsify(g, opt);
  const ApproxBounds bounds = exact_relative_bounds(g, result.sparsifier);
  // Practical-t envelope: comfortably inside (1 +- 0.75) on K_70.
  EXPECT_GT(bounds.lower, 0.25) << "rho=" << rho << " seed=" << seed;
  EXPECT_LT(bounds.upper, 1.75) << "rho=" << rho << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RhoSweep, SparsifyQuality,
    ::testing::Combine(::testing::Values(2.0, 4.0, 8.0),
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return "rho" + std::to_string(int(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelSparsify, LargerRhoGivesFewerEdgesOnDenseGraphs) {
  const Graph g = graph::complete_graph(200);
  SparsifyOptions small;
  small.rho = 2.0;
  small.t = 1;
  small.seed = 3;
  SparsifyOptions large = small;
  large.rho = 16.0;
  const auto a = parallel_sparsify(g, small);
  const auto b = parallel_sparsify(g, large);
  EXPECT_GT(a.sparsifier.num_edges(), b.sparsifier.num_edges());
}

}  // namespace
}  // namespace spar::sparsify
