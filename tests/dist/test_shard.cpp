// shard.hpp + runner.hpp: THE property this layer exists for -- bit-identical
// output for every shard count and every transport. The golden baseline is
// the shared-memory implementation (spanner::baswana_sen_spanner,
// sparsify::parallel_sparsify); the legacy one-shard entry points
// (dist_spanner.cpp) already equal it via the existing integration tests, and
// here the S-shard meshes must equal it too: same edge sets in the same
// order, same model-level DistMetrics, for loopback threads and for real
// dist_worker processes over UNIX/TCP sockets. Wire accounting must
// reconcile on every mesh (words * 8 + frames * header == wire_bytes).
#include "dist/shard.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dist/dist_spanner.hpp"
#include "dist/runner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "spanner/baswana_sen.hpp"
#include "sparsify/sparsify.hpp"
#include "support/error.hpp"

#ifndef SPAR_DIST_WORKER_PATH
#define SPAR_DIST_WORKER_PATH ""
#endif

namespace spar::dist {
namespace {

using graph::Graph;

Graph test_graph() { return graph::connected_erdos_renyi(140, 0.08, 21); }

void expect_same_metrics(const DistMetrics& got, const DistMetrics& want,
                         const std::string& what) {
  EXPECT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.messages, want.messages) << what;
  EXPECT_EQ(got.words, want.words) << what;
  EXPECT_EQ(got.max_message_words, want.max_message_words) << what;
  EXPECT_EQ(got.max_round_words, want.max_round_words) << what;
}

/// words / payload / wire must reconcile on any mesh; socket meshes
/// additionally frame every (peer, superstep) with the 48-byte header.
void expect_wire_reconciles(const WireMetrics& wire, bool socket) {
  EXPECT_EQ(wire.words, wire.messages * kWordsPerMessage);
  EXPECT_EQ(wire.payload_bytes, wire.words * 8);
  if (socket) {
    EXPECT_EQ(wire.wire_bytes, wire.payload_bytes + wire.frames * 48);
    EXPECT_GT(wire.frames, 0u);
  } else {
    EXPECT_EQ(wire.wire_bytes, wire.payload_bytes);
  }
}

DistExecOptions exec_options(std::size_t shards, DistBackend backend) {
  DistExecOptions exec;
  exec.shards = shards;
  exec.backend = backend;
  exec.worker_path = SPAR_DIST_WORKER_PATH;
  return exec;
}

TEST(Shard, SpannerBitIdenticalAcrossShardCounts) {
  const Graph g = test_graph();
  const graph::CSRGraph csr(g);
  DistSpannerOptions opt;
  opt.k = 0;
  opt.seed = 15;
  const DistSpannerResult base = distributed_spanner(csr, nullptr, opt);
  // The legacy entry point already equals the shared-memory spanner
  // (pinned in tests/integration); re-pin here so this suite stands alone.
  const std::vector<graph::EdgeId> shared =
      spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 15});
  EXPECT_EQ(base.spanner_edges, shared);

  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    const DistSpannerResult got = run_distributed_spanner(
        g, opt, exec_options(shards, DistBackend::kLoopback));
    EXPECT_EQ(got.spanner_edges, base.spanner_edges) << "shards=" << shards;
    expect_same_metrics(got.metrics, base.metrics,
                        "shards=" + std::to_string(shards));
    expect_wire_reconciles(got.wire, /*socket=*/false);
    if (shards == 1) {
      EXPECT_EQ(got.wire.words, 0u);
    }
  }
}

TEST(Shard, SampleBitIdenticalAcrossShardCounts) {
  const Graph g = test_graph();
  DistSampleOptions opt;
  opt.t = 3;
  opt.seed = 13;
  const DistSampleResult base = distributed_parallel_sample(g, opt);

  for (std::size_t shards : {2u, 4u}) {
    DistSampleResult got = run_distributed_sample(
        g, opt, exec_options(shards, DistBackend::kLoopback));
    EXPECT_TRUE(got.sparsifier.same_edges(base.sparsifier))
        << "shards=" << shards;
    EXPECT_EQ(got.bundle_edges, base.bundle_edges);
    EXPECT_EQ(got.off_bundle_edges, base.off_bundle_edges);
    EXPECT_EQ(got.sampled_edges, base.sampled_edges);
    EXPECT_EQ(got.t_used, base.t_used);
    expect_same_metrics(got.metrics, base.metrics,
                        "shards=" + std::to_string(shards));
    expect_wire_reconciles(got.wire, /*socket=*/false);
  }
}

TEST(Shard, SparsifyBitIdenticalAcrossShardCountsAndSharedMemory) {
  const Graph g = test_graph();
  DistSparsifyOptions opt;
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = 29;
  const DistSparsifyResult base = distributed_parallel_sparsify(g, opt);

  sparsify::SparsifyOptions shared_opt;
  shared_opt.rho = 4.0;
  shared_opt.t = 3;
  shared_opt.seed = 29;
  const auto shared = sparsify::parallel_sparsify(g, shared_opt);
  EXPECT_TRUE(base.sparsifier.same_edges(shared.sparsifier));

  for (std::size_t shards : {2u, 4u}) {
    DistSparsifyResult got = run_distributed_sparsify(
        g, opt, exec_options(shards, DistBackend::kLoopback));
    EXPECT_TRUE(got.sparsifier.same_edges(base.sparsifier))
        << "shards=" << shards;
    ASSERT_EQ(got.rounds.size(), base.rounds.size());
    for (std::size_t r = 0; r < got.rounds.size(); ++r) {
      EXPECT_EQ(got.rounds[r].edges_before, base.rounds[r].edges_before);
      EXPECT_EQ(got.rounds[r].edges_after, base.rounds[r].edges_after);
      expect_same_metrics(got.rounds[r].metrics, base.rounds[r].metrics,
                          "round " + std::to_string(r));
    }
    expect_same_metrics(got.metrics, base.metrics,
                        "shards=" + std::to_string(shards));
    expect_wire_reconciles(got.wire, /*socket=*/false);
  }
}

// ---- Real processes over sockets -------------------------------------------

bool have_worker() {
  const std::string path = SPAR_DIST_WORKER_PATH;
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

TEST(Shard, SpannerBitIdenticalOnUnixSocketMesh) {
  ASSERT_TRUE(have_worker()) << "dist_worker binary not built?";
  const Graph g = test_graph();
  const graph::CSRGraph csr(g);
  DistSpannerOptions opt;
  opt.k = 0;
  opt.seed = 15;
  const DistSpannerResult base = distributed_spanner(csr, nullptr, opt);

  for (std::size_t shards : {2u, 4u}) {
    const DistSpannerResult got = run_distributed_spanner(
        g, opt, exec_options(shards, DistBackend::kSocketUnix));
    EXPECT_EQ(got.spanner_edges, base.spanner_edges) << "shards=" << shards;
    expect_same_metrics(got.metrics, base.metrics,
                        "shards=" + std::to_string(shards));
    expect_wire_reconciles(got.wire, /*socket=*/true);
    EXPECT_GT(got.wire.words, 0u);  // real cross-shard traffic happened
  }
}

TEST(Shard, SparsifyBitIdenticalOnUnixSocketMesh) {
  ASSERT_TRUE(have_worker()) << "dist_worker binary not built?";
  const Graph g = test_graph();
  DistSparsifyOptions opt;
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = 29;
  const DistSparsifyResult base = distributed_parallel_sparsify(g, opt);

  DistSparsifyResult got = run_distributed_sparsify(
      g, opt, exec_options(3, DistBackend::kSocketUnix));
  EXPECT_TRUE(got.sparsifier.same_edges(base.sparsifier));
  expect_same_metrics(got.metrics, base.metrics, "socket shards=3");
  expect_wire_reconciles(got.wire, /*socket=*/true);
}

TEST(Shard, SampleBitIdenticalOnTcpMesh) {
  ASSERT_TRUE(have_worker()) << "dist_worker binary not built?";
  const Graph g = test_graph();
  DistSampleOptions opt;
  opt.t = 3;
  opt.seed = 13;
  const DistSampleResult base = distributed_parallel_sample(g, opt);

  DistSampleResult got = run_distributed_sample(
      g, opt, exec_options(2, DistBackend::kSocketTcp));
  EXPECT_TRUE(got.sparsifier.same_edges(base.sparsifier));
  EXPECT_EQ(got.sampled_edges, base.sampled_edges);
  expect_same_metrics(got.metrics, base.metrics, "tcp shards=2");
  expect_wire_reconciles(got.wire, /*socket=*/true);
}

TEST(Shard, SocketBackendRejectsMissingWorker) {
  const Graph g = graph::connected_erdos_renyi(20, 0.3, 3);
  DistExecOptions exec;
  exec.shards = 2;
  exec.backend = DistBackend::kSocketUnix;
  exec.worker_path = "/nonexistent/dist_worker";
  EXPECT_THROW(run_distributed_spanner(g, {.k = 0, .seed = 1}, exec), Error);
}

TEST(Shard, MergeRejectsOverlappingSlices) {
  ShardEdges a;
  a.ids = {0, 1};
  a.u = {0, 1};
  a.v = {1, 2};
  a.w = {1.0, 1.0};
  ShardEdges b = a;  // duplicates every id
  EXPECT_THROW(merge_shard_edges(3, 4, {a, b}), Error);
  EXPECT_THROW(merge_shard_edges(3, 2, {a, b}), Error);
}

}  // namespace
}  // namespace spar::dist
