// transport.hpp: the superstep contract both backends must honour, and the
// wire-accounting identity that turns DistMetrics words into a measurement.
// Loopback and socket meshes are driven through the same scenarios: message
// batches arrive per source in sender order, empty batches still synchronize
// (and, on sockets, still frame), and after every run
//     wire_bytes == words * 8 + frames * frame_overhead_bytes()
// holds exactly (exchange() asserts it per superstep; the tests re-check the
// accumulated totals and the cross-shard traffic symmetry).
#include "dist/transport.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace spar::dist {
namespace {

using Batches = std::vector<std::vector<Message>>;

Message msg(std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  return Message{tag, a, b};
}

bool same_message(const Message& x, const Message& y) {
  return x.tag == y.tag && x.a == y.a && x.b == y.b;
}

std::string scratch_dir(const std::string& tag) {
  std::string dir = "/tmp/spar_transport_test." + tag + "." +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

/// Drive `body(transport, shard)` on every shard of an S-shard mesh built by
/// `make` (which runs inside each shard's thread: SocketTransport's
/// constructor performs the blocking rendezvous).
void run_mesh(std::size_t shards,
              const std::function<std::unique_ptr<Transport>(std::size_t)>& make,
              const std::function<void(Transport&, std::size_t)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      try {
        std::unique_ptr<Transport> net = make(s);
        body(*net, s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t s = 0; s < shards; ++s) {
    if (errors[s]) std::rethrow_exception(errors[s]);
  }
}

/// The shared scenario: three supersteps of distinct per-(src,dst) batches
/// (superstep 1 has every shard silent), then verify content, order, and the
/// accumulated wire metrics of each shard.
void exercise_transport(Transport& net, std::size_t self) {
  const std::size_t shards = net.shard_count();
  ASSERT_EQ(net.shard_id(), self);

  Batches out(shards), in;
  // Superstep 0: shard s sends s+1 messages to every shard (self included).
  for (std::size_t d = 0; d < shards; ++d) {
    for (std::size_t i = 0; i <= self; ++i)
      out[d].push_back(msg(self, d, i));
  }
  net.exchange(out, in);
  ASSERT_EQ(in.size(), shards);
  for (std::size_t src = 0; src < shards; ++src) {
    ASSERT_EQ(in[src].size(), src + 1) << "src=" << src;
    for (std::size_t i = 0; i <= src; ++i) {
      EXPECT_TRUE(same_message(in[src][i], msg(src, self, i)))
          << "src=" << src << " i=" << i;
    }
  }

  // Superstep 1: silence. The barrier must still synchronize (and frame).
  for (auto& batch : out) batch.clear();
  net.exchange(out, in);
  for (std::size_t src = 0; src < shards; ++src) EXPECT_TRUE(in[src].empty());

  // Superstep 2: ring -- each shard sends 5 messages to its successor only.
  for (auto& batch : out) batch.clear();
  const std::size_t next = (self + 1) % shards;
  for (std::size_t i = 0; i < 5; ++i) out[next].push_back(msg(7, self, i));
  net.exchange(out, in);
  const std::size_t prev = (self + shards - 1) % shards;
  for (std::size_t src = 0; src < shards; ++src) {
    if (src == prev && shards > 1) {
      ASSERT_EQ(in[src].size(), 5u);
      for (std::size_t i = 0; i < 5; ++i)
        EXPECT_TRUE(same_message(in[src][i], msg(7, prev, i)));
    } else if (src == self && shards == 1) {
      ASSERT_EQ(in[src].size(), 5u);  // self-send delivered locally
    } else {
      EXPECT_TRUE(in[src].empty());
    }
  }

  // Accumulated accounting. Remote messages this shard sent: superstep 0
  // shipped (self+1) to each of the (shards-1) peers; superstep 2 shipped 5
  // iff the successor is a different shard.
  const WireMetrics& wire = net.wire();
  const std::uint64_t remote0 = (self + 1) * (shards - 1);
  const std::uint64_t remote2 = shards > 1 ? 5 : 0;
  EXPECT_EQ(wire.supersteps, 3u);
  EXPECT_EQ(wire.messages, remote0 + remote2);
  EXPECT_EQ(wire.words, (remote0 + remote2) * kWordsPerMessage);
  EXPECT_EQ(wire.payload_bytes, wire.words * 8);
  EXPECT_EQ(wire.max_round_words,
            std::max(remote0, remote2) * kWordsPerMessage);
  // Frames: one per peer per superstep on sockets, none on loopback -- both
  // covered by the reconciliation identity.
  EXPECT_EQ(wire.wire_bytes,
            wire.payload_bytes + wire.frames * net.frame_overhead_bytes());
  if (net.frame_overhead_bytes() > 0) {
    EXPECT_EQ(wire.frames, 3 * (shards - 1));
  } else {
    EXPECT_EQ(wire.wire_bytes, wire.payload_bytes);
  }
}

TEST(Transport, LoopbackSingleShardDeliversLocally) {
  LoopbackHub hub(1);
  exercise_transport(hub.endpoint(0), 0);
  EXPECT_EQ(hub.endpoint(0).wire().words, 0u);  // nothing crossed a shard
}

TEST(Transport, LoopbackMeshDeliversInSenderOrder) {
  for (std::size_t shards : {2u, 3u, 4u}) {
    LoopbackHub hub(shards);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        try {
          exercise_transport(hub.endpoint(s), s);
        } catch (...) {
          errors[s] = std::current_exception();
          hub.abort();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

TEST(Transport, LoopbackAbortReleasesBlockedEndpoints) {
  LoopbackHub hub(2);
  std::thread blocked([&] {
    Batches out(2), in;
    EXPECT_THROW(hub.endpoint(0).exchange(out, in), Error);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hub.abort();  // shard 1 never arrives; shard 0 must not hang forever
  blocked.join();
}

TEST(Transport, SocketUnixMeshDeliversAndReconciles) {
  for (std::size_t shards : {2u, 4u}) {
    const std::string dir =
        scratch_dir("unix" + std::to_string(shards));
    SocketMeshOptions mesh;
    mesh.unix_base = dir + "/mesh";
    run_mesh(
        shards,
        [&](std::size_t s) {
          return std::make_unique<SocketTransport>(s, shards, mesh);
        },
        exercise_transport);
  }
}

TEST(Transport, SocketTcpMeshDeliversAndReconciles) {
  const std::size_t shards = 3;
  const std::string dir = scratch_dir("tcp");
  SocketMeshOptions mesh;
  mesh.tcp_rendezvous_dir = dir;
  run_mesh(
      shards,
      [&](std::size_t s) {
        return std::make_unique<SocketTransport>(s, shards, mesh);
      },
      exercise_transport);
}

TEST(Transport, SocketPeerDeathSurfacesAsErrorNotHang) {
  const std::string dir = scratch_dir("death");
  SocketMeshOptions mesh;
  mesh.unix_base = dir + "/mesh";
  std::vector<std::thread> threads;
  std::exception_ptr survivor_error;
  for (std::size_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      try {
        SocketTransport net(s, 2, mesh);
        Batches out(2), in;
        if (s == 1) return;  // dies after the rendezvous, before superstep 0
        net.exchange(out, in);
      } catch (...) {
        if (s == 0) survivor_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(survivor_error);  // EOF mid-superstep is an error, not a hang
  EXPECT_THROW(std::rethrow_exception(survivor_error), Error);
}

}  // namespace
}  // namespace spar::dist
