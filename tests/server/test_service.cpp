// SolverService: admission queue + dynamic batching over registry chains.
//
// The central contract is coalescing invariance: whatever batches the
// dispatcher forms -- driven by arrival timing, max_batch, and deadline --
// every response is bit-identical to a standalone solve_sdd against the
// same (deterministically built) chain. Plus lifecycle: shutdown drains,
// callbacks fire exactly once, errors are delivered not thrown.
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <vector>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace spar::server {
namespace {

linalg::Vector test_rhs(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  linalg::Vector b(n);
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  return b;
}

/// Collects callback results and lets the test wait for a count.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<SolveResult> results;

  SolverService::Callback cb() {
    return [this](SolveResult r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(r));
      cv.notify_all();
    };
  }
  void wait_for(std::size_t count) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return results.size() >= count; });
  }
};

TEST(SolverService, SolvesMatchStandaloneSolveSddBitwise) {
  ServiceOptions opt;
  opt.max_batch = 4;
  opt.deadline_us = 50000;  // generous: let requests coalesce
  SolverService service(opt);
  service.put_graph("g", graph::grid2d(13, 11));

  const graph::Graph local = graph::grid2d(13, 11);
  const solver::SDDMatrix m(local);
  const solver::InverseChain chain(m, solver::ChainOptions{});
  const std::size_t n = m.dimension();

  constexpr std::size_t kRequests = 8;
  Collector got;
  std::vector<std::pair<std::size_t, linalg::Vector>> expected;
  std::vector<SolveResult> ordered(kRequests);
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < kRequests; ++i) {
    const linalg::Vector rhs = test_rhs(n, 100 + i);
    solver::SolveOptions sopt;
    expected.emplace_back(i, solver::solve_sdd(m, chain, rhs, sopt).solution);
    service.submit("g", rhs, [&, i](SolveResult r) {
      ordered[i] = std::move(r);
      if (done.fetch_add(1) + 1 == kRequests) got.cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(got.mu);
    got.cv.wait(lock, [&] { return done.load() == kRequests; });
  }
  for (const auto& [i, want] : expected) {
    const SolveResult& r = ordered[i];
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.converged);
    ASSERT_EQ(r.solution.size(), want.size());
    EXPECT_EQ(std::memcmp(r.solution.data(), want.data(),
                          want.size() * sizeof(double)),
              0)
        << "request " << i << ": batched response != standalone solve_sdd";
    EXPECT_GE(r.batch_cols, 1u);
    EXPECT_LE(r.batch_cols, opt.max_batch);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_GE(stats.batches, 1u);
}

TEST(SolverService, QueuedRequestsAllCoalesceIntoOneBatch) {
  // Regression: the admit loop once held a REFERENCE to the seed's name
  // while push_back reallocated the batch, so comparisons ran against a
  // dangling string and every batch silently capped at two columns.
  ServiceOptions opt;
  opt.max_batch = 16;
  opt.deadline_us = 200000;  // long: all submissions land before the close
  SolverService service(opt);
  service.put_graph("g", graph::grid2d(8, 9));
  constexpr std::size_t kRequests = 6;
  Collector got;
  for (std::size_t i = 0; i < kRequests; ++i)
    service.submit("g", test_rhs(72, 20 + i), got.cb());
  got.wait_for(kRequests);
  for (const SolveResult& r : got.results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.batch_cols, kRequests)
        << "pre-queued same-graph requests must coalesce into one batch";
  }
}

TEST(SolverService, UnknownGraphDeliversErrorCallback) {
  SolverService service(ServiceOptions{});
  Collector got;
  service.submit("missing", linalg::Vector(10, 1.0), got.cb());
  got.wait_for(1);
  EXPECT_FALSE(got.results[0].ok);
  EXPECT_NE(got.results[0].error.find("unknown graph"), std::string::npos);
}

TEST(SolverService, WrongRhsSizeFailsTheRequestNotTheService) {
  ServiceOptions opt;
  opt.deadline_us = 100;
  SolverService service(opt);
  service.put_graph("g", graph::grid2d(6, 6));
  Collector got;
  service.submit("g", linalg::Vector(7, 1.0), got.cb());  // n = 36, not 7
  got.wait_for(1);
  EXPECT_FALSE(got.results[0].ok);
  // The service survives and keeps serving.
  service.submit("g", test_rhs(36, 3), got.cb());
  got.wait_for(2);
  EXPECT_TRUE(got.results[1].ok);
}

TEST(SolverService, BatchingDisabledServesSingletonsWithSameBits) {
  // Same request stream against a batching and a non-batching service:
  // batch_cols differ, bytes must not.
  const graph::Graph g = graph::grid2d(9, 12);
  const std::size_t n = g.num_vertices();
  auto run = [&](bool batching) {
    ServiceOptions opt;
    opt.batching = batching;
    opt.max_batch = 8;
    opt.deadline_us = 20000;
    SolverService service(opt);
    service.put_graph("g", graph::grid2d(9, 12));
    Collector got;
    std::vector<SolveResult> ordered(6);
    std::atomic<std::size_t> done{0};
    for (std::size_t i = 0; i < 6; ++i)
      service.submit("g", test_rhs(n, 40 + i), [&, i](SolveResult r) {
        ordered[i] = std::move(r);
        ++done;
        got.cv.notify_all();
      });
    std::unique_lock<std::mutex> lock(got.mu);
    got.cv.wait(lock, [&] { return done.load() == 6; });
    return ordered;
  };
  const auto batched = run(true);
  const auto singles = run(false);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(batched[i].ok && singles[i].ok);
    EXPECT_EQ(singles[i].batch_cols, 1u);
    EXPECT_EQ(std::memcmp(batched[i].solution.data(), singles[i].solution.data(),
                          batched[i].solution.size() * sizeof(double)),
              0)
        << "batching must never change response bytes (request " << i << ")";
  }
}

TEST(SolverService, ShutdownDrainsQueuedRequests) {
  ServiceOptions opt;
  opt.deadline_us = 200000;  // long deadline: requests are queued at shutdown
  opt.max_batch = 64;
  SolverService service(opt);
  service.put_graph("g", graph::grid2d(8, 8));
  Collector got;
  constexpr std::size_t kRequests = 5;
  for (std::size_t i = 0; i < kRequests; ++i)
    service.submit("g", test_rhs(64, 7 + i), got.cb());
  service.shutdown();  // must fire every callback before returning
  {
    std::lock_guard<std::mutex> lock(got.mu);
    ASSERT_EQ(got.results.size(), kRequests);
    for (const SolveResult& r : got.results) EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_THROW(service.submit("g", test_rhs(64, 1), got.cb()), spar::Error);
}

TEST(SolverService, StatsJsonCarriesServiceAndRegistryCounters) {
  ServiceOptions opt;
  opt.max_batch = 3;
  SolverService service(opt);
  service.put_graph("g", graph::grid2d(7, 7));
  Collector got;
  service.submit("g", test_rhs(49, 2), got.cb());
  got.wait_for(1);
  const std::string json = service.stats_json();
  for (const char* key :
       {"\"requests\":", "\"batches\":", "\"deadline_closes\":", "\"registry\":",
        "\"chains\":", "\"name\":\"g\"", "\"builds\":1"})
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
}

TEST(SolverService, StatsJsonEscapesControlCharactersInGraphNames) {
  // Regression: a client-supplied graph name with control characters (or
  // quotes/backslashes) must not produce invalid JSON from kStats.
  SolverService service(ServiceOptions{});
  const std::string name = "bad\nname\t\"q\"\\v\r\x01x";
  service.put_graph(name, graph::grid2d(5, 5));
  const std::string json = service.stats_json();
  for (const char c : json)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character leaked into " << json;
  EXPECT_NE(json.find("bad\\nname\\t\\\"q\\\"\\\\v\\r\\u0001x"),
            std::string::npos)
      << json;
}

TEST(SolverService, PoolWidthDoesNotChangeResponseBits) {
  // Batches execute on the service's TaskPool (nested parallel loops
  // dispatch to the same workers); results must be identical across pool
  // widths by the substrate's chunk-determinism contract.
  const std::size_t n = 10 * 14;
  auto run = [&](int threads) {
    ServiceOptions opt;
    opt.threads = threads;
    opt.deadline_us = 10000;
    SolverService service(opt);
    service.put_graph("g", graph::grid2d(10, 14));
    std::vector<SolveResult> ordered(4);
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    for (std::size_t i = 0; i < 4; ++i)
      service.submit("g", test_rhs(n, 60 + i), [&, i](SolveResult r) {
        ordered[i] = std::move(r);
        ++done;
        cv.notify_all();
      });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load() == 4; });
    return ordered;
  };
  const auto narrow = run(1);
  const auto wide = run(3);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(narrow[i].ok && wide[i].ok);
    EXPECT_EQ(std::memcmp(narrow[i].solution.data(), wide[i].solution.data(),
                          narrow[i].solution.size() * sizeof(double)),
              0)
        << "pool width changed bytes (request " << i << ")";
  }
}

}  // namespace
}  // namespace spar::server
