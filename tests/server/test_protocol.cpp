// Wire protocol: framing, payload codecs, and the failure paths that keep a
// corrupt or malicious peer from crashing the server (checksum mismatch,
// truncated payloads, absurd length fields).
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace spar::server {
namespace {

/// A connected AF_UNIX socket pair for loopback tests.
std::pair<Socket, Socket> make_pair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(Protocol, FrameRoundTripPreservesEverything) {
  auto [a, b] = make_pair();
  PayloadWriter w;
  w.str("grid");
  w.u64(123456789ull);
  std::vector<double> xs = {1.5, -0.25, 3.141592653589793, -0.0};
  w.f64_span(xs);
  std::thread sender([&] { send_frame(a, MsgType::kSolve, 77, w.bytes()); });
  Frame frame;
  ASSERT_TRUE(recv_frame(b, frame));
  sender.join();
  EXPECT_EQ(frame.type(), MsgType::kSolve);
  EXPECT_EQ(frame.request_id(), 77u);
  PayloadReader r(frame.payload);
  EXPECT_EQ(r.str(), "grid");
  EXPECT_EQ(r.u64(), 123456789ull);
  std::vector<double> got(4);
  r.f64_span(got);
  EXPECT_EQ(std::memcmp(got.data(), xs.data(), 4 * sizeof(double)), 0)
      << "doubles must cross the wire bit-exactly";
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Protocol, EmptyPayloadRoundTrips) {
  auto [a, b] = make_pair();
  send_frame(a, MsgType::kShutdown, 0, {});
  Frame frame;
  ASSERT_TRUE(recv_frame(b, frame));
  EXPECT_EQ(frame.type(), MsgType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Protocol, CleanEofAtFrameBoundaryReturnsFalse) {
  auto [a, b] = make_pair();
  a.close();
  Frame frame;
  EXPECT_FALSE(recv_frame(b, frame));
}

TEST(Protocol, CorruptedPayloadByteIsDetected) {
  auto [a, b] = make_pair();
  PayloadWriter w;
  w.str("hello world");
  // Serialize a valid frame into memory, flip one payload byte, replay it.
  std::vector<std::uint8_t> raw(kFrameHeaderBytes);
  {
    // send through a socketpair to capture the exact on-wire bytes
    auto [c, d] = make_pair();
    send_frame(c, MsgType::kStats, 5, w.bytes());
    raw.resize(kFrameHeaderBytes + w.bytes().size());
    ASSERT_TRUE(d.read_exact(raw.data(), raw.size()));
  }
  raw[kFrameHeaderBytes + 3] ^= 0x40;
  a.write_exact(raw.data(), raw.size());
  Frame frame;
  EXPECT_THROW(recv_frame(b, frame), spar::Error);
}

TEST(Protocol, CorruptedRequestIdIsDetected) {
  // The checksum is seeded with mix64(type, request_id): tampering with the
  // ID (splicing a reply onto another request) breaks verification even
  // though the payload bytes are untouched.
  auto [a, b] = make_pair();
  PayloadWriter w;
  w.u64(42);
  std::vector<std::uint8_t> raw;
  {
    auto [c, d] = make_pair();
    send_frame(c, MsgType::kSolve, 5, w.bytes());
    raw.resize(kFrameHeaderBytes + w.bytes().size());
    ASSERT_TRUE(d.read_exact(raw.data(), raw.size()));
  }
  raw[16] ^= 0x01;  // request_id field
  a.write_exact(raw.data(), raw.size());
  Frame frame;
  EXPECT_THROW(recv_frame(b, frame), spar::Error);
}

TEST(Protocol, AbsurdPayloadLengthIsRejectedBeforeAllocation) {
  auto [a, b] = make_pair();
  std::uint8_t header[kFrameHeaderBytes] = {};
  std::memcpy(header, "SPARFRM\0", 8);
  header[8] = 1;                      // version
  header[12] = 2;                     // type = kSolve
  std::memset(header + 24, 0xff, 8);  // payload_len = 2^64 - 1
  a.write_exact(header, sizeof(header));
  Frame frame;
  EXPECT_THROW(recv_frame(b, frame), spar::Error);
}

TEST(Protocol, VersionMismatchIsRejected) {
  auto [a, b] = make_pair();
  std::uint8_t header[kFrameHeaderBytes] = {};
  std::memcpy(header, "SPARFRM\0", 8);
  header[8] = 99;  // future version
  a.write_exact(header, sizeof(header));
  Frame frame;
  EXPECT_THROW(recv_frame(b, frame), spar::Error);
}

TEST(Protocol, BadMagicIsRejected) {
  auto [a, b] = make_pair();
  std::uint8_t header[kFrameHeaderBytes] = {};
  std::memcpy(header, "NOTSPAR\0", 8);
  a.write_exact(header, sizeof(header));
  Frame frame;
  EXPECT_THROW(recv_frame(b, frame), spar::Error);
}

TEST(Protocol, PayloadReaderThrowsOnTruncation) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader r(three);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.u32(), spar::Error);
  PayloadReader r2(three);
  EXPECT_THROW(r2.str(), spar::Error);  // u32 length alone needs 4 bytes
}

TEST(Protocol, StringWithEmbeddedNulRoundTrips) {
  PayloadWriter w;
  const std::string s("a\0b", 3);
  w.str(s);
  PayloadReader r(w.bytes());
  EXPECT_EQ(r.str(), s);
}

}  // namespace
}  // namespace spar::server
