// ChainRegistry: the resident-chain cache behind the solver service.
//
// Contracts under test:
//  * LRU eviction under a byte budget, most-recently-used entry exempt;
//  * rebuild-after-evict is EXACT: deterministic chain construction makes a
//    rebuilt chain solve bit-identically to the evicted one;
//  * get-or-build is single-flight: concurrent cold acquires share one
//    build (run under TSan this also proves the locking discipline);
//  * eviction never invalidates in-flight handles.
#include "server/chain_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::server {
namespace {

ChainStats stats_for(const ChainRegistry& reg, const std::string& name) {
  for (const ChainStats& s : reg.stats())
    if (s.name == name) return s;
  ADD_FAILURE() << "no stats for " << name;
  return {};
}

linalg::Vector test_rhs(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  linalg::Vector b(n);
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  return b;
}

TEST(ChainRegistry, UnknownNameThrows) {
  ChainRegistry reg;
  EXPECT_THROW(reg.acquire("nope"), spar::Error);
}

TEST(ChainRegistry, BuildsOnceThenHits) {
  ChainRegistry reg;
  reg.put_graph("g", graph::grid2d(12, 12));
  EXPECT_TRUE(reg.has_graph("g"));
  const ChainHandle a = reg.acquire("g");
  const ChainHandle b = reg.acquire("g");
  EXPECT_EQ(a.get(), b.get());  // the same resident entry
  const ChainStats s = stats_for(reg, "g");
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_TRUE(s.resident);
  EXPECT_GT(s.memory_bytes, 0u);
  EXPECT_EQ(reg.resident_bytes(), s.memory_bytes);
}

TEST(ChainRegistry, EvictsLeastRecentlyUsedUnderBudget) {
  // Budget sized for ~2 of 3 same-shape chains: after touching a, b, c in
  // that order, `a` (the LRU entry) must be the one evicted.
  ChainRegistry probe;
  probe.put_graph("x", graph::grid2d(10, 10));
  const std::size_t one_chain = probe.acquire("x")->memory_bytes;

  RegistryOptions opt;
  opt.memory_budget_bytes = 2 * one_chain + one_chain / 2;
  ChainRegistry reg(opt);
  reg.put_graph("a", graph::grid2d(10, 10));
  reg.put_graph("b", graph::grid2d(10, 10));
  reg.put_graph("c", graph::grid2d(10, 10));
  reg.acquire("a");
  reg.acquire("b");
  reg.acquire("c");
  EXPECT_FALSE(stats_for(reg, "a").resident) << "LRU entry must be evicted";
  EXPECT_TRUE(stats_for(reg, "b").resident);
  EXPECT_TRUE(stats_for(reg, "c").resident);
  EXPECT_EQ(stats_for(reg, "a").evictions, 1u);
  EXPECT_LE(reg.resident_bytes(), opt.memory_budget_bytes);

  // Touch b (now most recent), bring a back: c is now LRU and must go.
  reg.acquire("b");
  reg.acquire("a");
  EXPECT_FALSE(stats_for(reg, "c").resident);
  EXPECT_TRUE(stats_for(reg, "a").resident);
  EXPECT_EQ(stats_for(reg, "a").builds, 2u) << "re-acquire after evict rebuilds";
}

TEST(ChainRegistry, MostRecentEntrySurvivesImpossiblyTinyBudget) {
  RegistryOptions opt;
  opt.memory_budget_bytes = 1;  // smaller than any chain
  ChainRegistry reg(opt);
  reg.put_graph("a", graph::grid2d(8, 8));
  reg.put_graph("b", graph::grid2d(8, 8));
  EXPECT_NE(reg.acquire("a"), nullptr);
  EXPECT_TRUE(stats_for(reg, "a").resident) << "newest entry is never evicted";
  EXPECT_NE(reg.acquire("b"), nullptr);
  EXPECT_TRUE(stats_for(reg, "b").resident);
  EXPECT_FALSE(stats_for(reg, "a").resident) << "a was LRU once b arrived";
}

TEST(ChainRegistry, RebuildAfterEvictionIsBitIdentical) {
  RegistryOptions opt;
  ChainRegistry probe;
  probe.put_graph("x", graph::grid2d(11, 11));
  opt.memory_budget_bytes = probe.acquire("x")->memory_bytes + 1;

  ChainRegistry reg(opt);
  reg.put_graph("a", graph::grid2d(11, 11));
  reg.put_graph("b", graph::grid2d(7, 13));

  const ChainHandle first = reg.acquire("a");
  const linalg::Vector rhs = test_rhs(first->matrix.dimension(), 31);
  solver::SolveOptions sopt;
  const auto before = solver::solve_sdd(first->matrix, first->chain, rhs, sopt);

  reg.acquire("b");  // evicts a (budget fits ~one chain)
  EXPECT_FALSE(stats_for(reg, "a").resident);

  const ChainHandle rebuilt = reg.acquire("a");
  EXPECT_NE(first.get(), rebuilt.get()) << "a genuinely rebuilt entry";
  const auto after = solver::solve_sdd(rebuilt->matrix, rebuilt->chain, rhs, sopt);
  ASSERT_EQ(before.solution.size(), after.solution.size());
  EXPECT_EQ(std::memcmp(before.solution.data(), after.solution.data(),
                        before.solution.size() * sizeof(double)),
            0)
      << "rebuilt chain must reproduce the evicted chain's solves bit for bit";
  EXPECT_EQ(before.iterations, after.iterations);
}

TEST(ChainRegistry, EvictionKeepsInFlightHandlesAlive) {
  RegistryOptions opt;
  opt.memory_budget_bytes = 1;
  ChainRegistry reg(opt);
  reg.put_graph("a", graph::grid2d(9, 9));
  reg.put_graph("b", graph::grid2d(9, 9));
  const ChainHandle held = reg.acquire("a");
  reg.acquire("b");  // evicts a from the registry
  EXPECT_FALSE(stats_for(reg, "a").resident);
  // The handle still works: shared ownership, not registry lifetime.
  const linalg::Vector rhs = test_rhs(held->matrix.dimension(), 5);
  const auto report = solver::solve_sdd(held->matrix, held->chain, rhs, {});
  EXPECT_TRUE(report.converged);
}

TEST(ChainRegistry, ConcurrentColdAcquiresAreSingleFlight) {
  ChainRegistry reg;
  reg.put_graph("g", graph::grid2d(16, 16));
  constexpr int kThreads = 8;
  std::vector<ChainHandle> handles(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> gate{0};
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      gate.fetch_add(1);
      while (gate.load() < kThreads) {}  // maximize overlap on the cold slot
      handles[t] = reg.acquire("g");
    });
  for (auto& th : threads) th.join();
  const ChainStats s = stats_for(reg, "g");
  EXPECT_EQ(s.builds, 1u) << "k concurrent cold acquires must share ONE build";
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  std::set<const ChainEntry*> unique;
  for (const ChainHandle& h : handles) {
    ASSERT_NE(h, nullptr);
    unique.insert(h.get());
  }
  EXPECT_EQ(unique.size(), 1u);
}

TEST(ChainRegistry, PutGraphDuringBuildNeverInstallsStaleChain) {
  // Regression: replacing a graph while its chain is mid-build must not let
  // the builder install the OLD graph's chain as the slot's resident entry
  // -- solves against the new name would silently use the wrong matrix
  // until an eviction. The sleep sweep varies where put_graph lands
  // relative to the build; every interleaving must end with the NEW chain.
  for (int round = 0; round < 4; ++round) {
    ChainRegistry reg;
    reg.put_graph("g", graph::grid2d(40, 40));  // slow enough to race into
    std::thread builder([&] { reg.acquire("g"); });
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    reg.put_graph("g", graph::grid2d(6, 5));  // replace mid-build
    builder.join();
    const ChainHandle fresh = reg.acquire("g");
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->matrix.dimension(), 30u)
        << "round " << round << ": resident chain built from the replaced graph";
    const ChainStats s = stats_for(reg, "g");
    EXPECT_TRUE(s.resident);
    EXPECT_EQ(reg.resident_bytes(), s.memory_bytes)
        << "discarded stale build must not leak into the byte accounting";
  }
}

TEST(ChainRegistry, PutGraphReplacesAndDropsStaleChain) {
  ChainRegistry reg;
  reg.put_graph("g", graph::grid2d(10, 10));
  const ChainHandle old = reg.acquire("g");
  reg.put_graph("g", graph::grid2d(14, 6));  // same name, new graph
  EXPECT_FALSE(stats_for(reg, "g").resident);
  const ChainHandle fresh = reg.acquire("g");
  EXPECT_EQ(fresh->matrix.dimension(), 84u);
  EXPECT_EQ(old->matrix.dimension(), 100u);  // held handle unaffected
}

}  // namespace
}  // namespace spar::server
