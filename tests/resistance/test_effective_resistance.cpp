#include "resistance/effective_resistance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::resistance {
namespace {

using graph::Graph;

TEST(ExactResistance, SeriesLaw) {
  // Path of resistances 1/2 + 1/3 between the endpoints.
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_NEAR(exact_effective_resistance(g, 0, 2), 0.5 + 1.0 / 3.0, 1e-10);
}

TEST(ExactResistance, ParallelLaw) {
  // Two parallel unit-resistance edges: R = 1/2 (equation 2.1 of the paper).
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  EXPECT_NEAR(exact_effective_resistance(g, 0, 1), 0.5, 1e-10);
}

TEST(ExactResistance, WheatstoneBridge) {
  // Balanced Wheatstone bridge: middle edge carries no current; R = 1.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 5.0);  // any weight; bridge is balanced
  EXPECT_NEAR(exact_effective_resistance(g, 0, 3), 1.0, 1e-10);
}

TEST(ExactResistance, CompleteGraphClosedForm) {
  // K_n with unit weights: R(u,v) = 2/n.
  const Graph g = graph::complete_graph(10);
  const auto r = exact_effective_resistances(g);
  for (double ri : r) EXPECT_NEAR(ri, 0.2, 1e-10);
}

TEST(ExactResistance, TreeEdgesHaveLeverageOne) {
  // On a tree, every edge's effective resistance equals its own resistance.
  const Graph g = graph::randomize_weights(graph::binary_tree(20), 1.5, 3);
  const auto r = exact_effective_resistances(g);
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_NEAR(r[i], 1.0 / g.edge(i).w, 1e-9);
}

TEST(ExactResistance, TotalLeverageIsNMinus1) {
  // Foster's theorem: sum_e w_e R_e = n - 1.
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(60, 0.15, 7), 1.0, 9);
  const auto r = exact_effective_resistances(g);
  const auto lev = leverage_scores(g, r);
  double total = 0.0;
  for (double l : lev) total += l;
  EXPECT_NEAR(total, double(g.num_vertices() - 1), 1e-7);
}

TEST(ExactResistance, RayleighMonotonicity) {
  // Removing an edge can only increase effective resistances.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  const double before = exact_effective_resistance(g, 0, 3);
  Graph h(4);  // same graph minus the chord {0,2}
  h.add_edge(0, 1, 1.0);
  h.add_edge(1, 2, 1.0);
  h.add_edge(2, 3, 1.0);
  h.add_edge(0, 3, 1.0);
  const double after = exact_effective_resistance(h, 0, 3);
  EXPECT_LE(before, after + 1e-12);
}

TEST(ExactResistance, DisconnectedGraphThrows) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(exact_effective_resistances(g), spar::Error);
}

TEST(ExactResistance, ScalingLaw) {
  // Scaling all weights by c divides resistances by c.
  const Graph g = graph::connected_erdos_renyi(30, 0.2, 5);
  const auto r1 = exact_effective_resistances(g);
  const auto r2 = exact_effective_resistances(g.scaled(4.0));
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r2[i], r1[i] / 4.0, 1e-9);
}

// ---- Approximate (Spielman-Srivastava JL) path ----------------------------

class ApproxResistance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxResistance, WithinJLErrorOfExact) {
  const std::uint64_t seed = GetParam();
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(80, 0.15, seed), 1.0, seed);
  const auto exact = exact_effective_resistances(g);
  ApproxResistanceOptions opt;
  opt.epsilon = 0.25;
  opt.seed = seed * 31 + 1;
  const auto approx = approx_effective_resistances(g, opt);
  ASSERT_EQ(approx.size(), exact.size());
  // JL guarantee is per-edge (1 +- eps) w.h.p.; allow 2x slack for the tail.
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_GT(approx[i], exact[i] * (1.0 - 2 * 0.25)) << i;
    EXPECT_LT(approx[i], exact[i] * (1.0 + 2 * 0.25)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxResistance, ::testing::Values(1, 2, 3));

TEST(ApproxResistance, ProbeCountOverride) {
  const Graph g = graph::cycle_graph(20);
  ApproxResistanceOptions opt;
  opt.num_probes = 2;  // tiny budget must still run
  const auto r = approx_effective_resistances(g, opt);
  EXPECT_EQ(r.size(), g.num_edges());
  for (double ri : r) EXPECT_GE(ri, 0.0);
}

TEST(ApproxResistance, DeterministicPerSeed) {
  const Graph g = graph::connected_erdos_renyi(40, 0.2, 3);
  ApproxResistanceOptions opt;
  opt.seed = 99;
  const auto a = approx_effective_resistances(g, opt);
  const auto b = approx_effective_resistances(g, opt);
  EXPECT_EQ(a, b);
}

TEST(ApproxResistance, BlockSizeDoesNotChangeTheSketch) {
  // The sketch routes through blocked CG in blocks of block_size probes; a
  // probe's solve is bit-identical whatever block it lands in (convergence
  // masking freezes each column independently), so the result must not depend
  // on the batching at all.
  const Graph g = graph::connected_erdos_renyi(50, 0.15, 5);
  ApproxResistanceOptions opt;
  opt.seed = 7;
  opt.num_probes = 11;  // deliberately not a multiple of any block size
  linalg::Vector reference;
  for (std::size_t block : {1u, 3u, 4u, 16u, 64u}) {
    opt.block_size = block;
    const auto r = approx_effective_resistances(g, opt);
    if (reference.empty()) reference = r;
    EXPECT_EQ(r, reference) << "block_size " << block;
  }
}

TEST(ApproxResistance, BitIdenticalAcrossThreadCounts) {
  const Graph g = graph::connected_erdos_renyi(60, 0.12, 9);
  ApproxResistanceOptions opt;
  opt.seed = 13;
  opt.num_probes = 6;
  linalg::Vector reference;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const auto r = approx_effective_resistances(g, opt);
    if (reference.empty()) reference = r;
    EXPECT_EQ(r, reference) << "threads " << threads;
  }
}

TEST(ApproxResistance, DisconnectedGraphResolvesPerComponent) {
  // Unlike exact_effective_resistances (which demands connectivity because
  // the dense pseudoinverse is computed by grounding one global vertex), the
  // JL estimator is well defined on a disconnected graph: every sketch RHS
  // is B^T W^{1/2} q, a signed incidence accumulation that is mean-free
  // WITHIN EACH COMPONENT, so the Krylov space of the CG solve never leaves
  // the per-component range of L and each probe solves against the
  // block-diagonal pseudoinverse. Resistances therefore come out as if each
  // component were sketched alone (the +-1 coins differ -- they are indexed
  // by global edge ids -- so the estimates agree with the per-component
  // EXACT values up to JL error, not bitwise). This test pins that contract:
  // the estimator must not throw, must not leak current between components,
  // and must match the per-component exact oracle within the JL window.
  const Graph a = graph::randomize_weights(graph::grid2d(5, 5), 1.0, 2);
  const Graph b = graph::complete_graph(12);
  Graph g(a.num_vertices() + b.num_vertices());
  for (const auto& e : a.edges()) g.add_edge(e.u, e.v, e.w);
  const graph::Vertex off = a.num_vertices();
  for (const auto& e : b.edges()) g.add_edge(off + e.u, off + e.v, e.w);

  ApproxResistanceOptions opt;
  opt.epsilon = 0.25;
  opt.seed = 21;
  const auto approx = approx_effective_resistances(g, opt);
  ASSERT_EQ(approx.size(), g.num_edges());

  const auto exact_a = exact_effective_resistances(a);
  const auto exact_b = exact_effective_resistances(b);
  linalg::Vector exact(exact_a);
  exact.insert(exact.end(), exact_b.begin(), exact_b.end());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_GT(approx[i], exact[i] * (1.0 - 2 * 0.25)) << i;
    EXPECT_LT(approx[i], exact[i] * (1.0 + 2 * 0.25)) << i;
  }
}

TEST(LeverageScores, SizesAndValues) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  const linalg::Vector r = {0.5, 0.25};
  const auto lev = leverage_scores(g, r);
  EXPECT_DOUBLE_EQ(lev[0], 1.0);
  EXPECT_DOUBLE_EQ(lev[1], 1.0);
}

TEST(LeverageScores, SizeMismatchThrows) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  EXPECT_THROW(leverage_scores(g, linalg::Vector{1.0, 2.0}), spar::Error);
}

}  // namespace
}  // namespace spar::resistance
