#include "solver/sdd_matrix.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

TEST(SDDMatrix, PureLaplacianIsSingular) {
  const SDDMatrix m(graph::cycle_graph(6));
  EXPECT_TRUE(m.is_singular());
  EXPECT_EQ(m.dimension(), 6u);
}

TEST(SDDMatrix, SlackMakesNonsingular) {
  Vector slack(6, 0.0);
  slack[2] = 0.5;
  const SDDMatrix m(graph::cycle_graph(6), slack);
  EXPECT_FALSE(m.is_singular());
}

TEST(SDDMatrix, RejectsNegativeSlack) {
  EXPECT_THROW(SDDMatrix(graph::path_graph(3), Vector{0.0, -1.0, 0.0}),
               spar::Error);
}

TEST(SDDMatrix, RejectsWrongSlackSize) {
  EXPECT_THROW(SDDMatrix(graph::path_graph(3), Vector{0.0, 0.0}), spar::Error);
}

TEST(SDDMatrix, DiagonalIsDegreePlusSlack) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const SDDMatrix m(g, Vector{1.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(m.diagonal()[0], 3.0);
  EXPECT_DOUBLE_EQ(m.diagonal()[1], 5.0);
  EXPECT_DOUBLE_EQ(m.diagonal()[2], 3.5);
}

TEST(SDDMatrix, ApplyMatchesLaplacianPlusSlack) {
  const Graph g = graph::randomize_weights(graph::grid2d(6, 6), 1.0, 3);
  Vector slack(g.num_vertices());
  support::Rng rng(7);
  for (double& s : slack) s = rng.uniform();
  const SDDMatrix m(g, slack);
  Vector x(g.num_vertices());
  for (double& v : x) v = rng.normal();

  const linalg::LaplacianOperator lap(g);
  Vector expected = lap.apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) expected[i] += slack[i] * x[i];
  const Vector got = m.apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-10);
}

TEST(SDDMatrix, QuadraticFormNonnegativeAndExact) {
  const Graph g = graph::cycle_graph(8);
  const SDDMatrix m(g, Vector(8, 0.25));
  support::Rng rng(5);
  Vector x(8);
  for (double& v : x) v = rng.normal();
  const double via_apply = linalg::dot(x, m.apply(x));
  EXPECT_NEAR(m.quadratic_form(x), via_apply, 1e-9);
  EXPECT_GE(m.quadratic_form(x), 0.0);
}

TEST(SDDMatrix, ToCsrMatchesApply) {
  const Graph g = graph::randomize_weights(graph::complete_graph(12), 1.0, 9);
  const SDDMatrix m(g, Vector(12, 0.1));
  const auto csr = m.to_csr();
  support::Rng rng(3);
  Vector x(12);
  for (double& v : x) v = rng.normal();
  const Vector a = m.apply(x);
  const Vector b = csr.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(SDDMatrix, NnzCountsBothTrianglesPlusDiagonal) {
  const Graph g = graph::path_graph(5);
  const SDDMatrix m(g);
  EXPECT_EQ(m.nnz(), 2u * 4 + 5);
}

}  // namespace
}  // namespace spar::solver
