#include "solver/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

Vector random_rhs(std::size_t n, std::uint64_t seed, bool mean_free) {
  support::Rng rng(seed);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  if (mean_free) linalg::remove_mean(b);
  return b;
}

double residual(const SDDMatrix& m, const Vector& x, const Vector& b) {
  const Vector mx = m.apply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  return std::sqrt(err / norm);
}

TEST(SolveCg, SolvesGroundedGrid) {
  const Graph g = graph::grid2d(12, 12);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  const Vector b = random_rhs(m.dimension(), 3, false);
  const auto report = solve_cg(m, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(SolveCg, SolvesSingularLaplacianOnRange) {
  const Graph g = graph::connected_erdos_renyi(100, 0.08, 5);
  const SDDMatrix m(g);
  const Vector b = random_rhs(m.dimension(), 7, true);
  const auto report = solve_cg(m, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(SolveJacobiPcg, Converges) {
  const Graph g = graph::grid2d(10, 10);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.5));
  const Vector b = random_rhs(m.dimension(), 9, false);
  const auto report = solve_jacobi_pcg(m, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(SolveSdd, ChainPcgConvergesOnGroundedGrid) {
  const Graph g = graph::grid2d(15, 15);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  const Vector b = random_rhs(m.dimension(), 11, false);
  SolveOptions opt;
  opt.chain.max_levels = 12;
  const auto report = solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
  EXPECT_GE(report.chain_levels, 2u);
  EXPECT_GT(report.chain_total_nnz, 0u);
}

TEST(SolveSdd, FewerIterationsThanPlainCg) {
  const Graph g = graph::grid2d(20, 20);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  const Vector b = random_rhs(m.dimension(), 13, false);
  SolveOptions opt;
  opt.chain.max_levels = 16;
  const auto chain_report = solve_sdd(m, b, opt);
  const auto cg_report = solve_cg(m, b, opt);
  EXPECT_TRUE(chain_report.converged);
  EXPECT_TRUE(cg_report.converged);
  EXPECT_LT(chain_report.iterations, cg_report.iterations / 3);
}

TEST(SolveSdd, SingularLaplacianConverges) {
  const Graph g = graph::grid2d(12, 12);
  const SDDMatrix m(g);
  const Vector b = random_rhs(m.dimension(), 17, true);
  SolveOptions opt;
  opt.chain.max_levels = 8;
  const auto report = solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(SolveSdd, ChainReuseAcrossRhs) {
  const Graph g = graph::grid2d(10, 10);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  SolveOptions opt;
  const InverseChain chain(m, opt.chain);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Vector b = random_rhs(m.dimension(), seed, false);
    const auto report = solve_sdd(m, chain, b, opt);
    EXPECT_TRUE(report.converged) << "seed " << seed;
    EXPECT_LT(residual(m, report.solution, b), 1e-6);
  }
}

TEST(SolveSdd, RandomWeightedGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = graph::randomize_weights(
        graph::connected_erdos_renyi(150, 0.05, seed), 2.0, seed);
    const SDDMatrix m(g);
    const Vector b = random_rhs(m.dimension(), seed * 7, true);
    SolveOptions opt;
    opt.chain.max_levels = 8;
    const auto report = solve_sdd(m, b, opt);
    EXPECT_TRUE(report.converged) << "seed " << seed;
    EXPECT_LT(residual(m, report.solution, b), 1e-6) << "seed " << seed;
  }
}

TEST(Solvers, RejectWrongRhsSize) {
  const SDDMatrix m(graph::path_graph(5));
  const Vector b(4, 1.0);
  EXPECT_THROW(solve_cg(m, b), spar::Error);
  EXPECT_THROW(solve_jacobi_pcg(m, b), spar::Error);
  EXPECT_THROW(solve_sdd(m, b), spar::Error);
}

TEST(Solvers, AgreeOnSolution) {
  // All three solvers must find the same solution (unique for nonsingular).
  const Graph g = graph::grid2d(8, 8);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.3));
  const Vector b = random_rhs(m.dimension(), 23, false);
  SolveOptions opt;
  opt.tolerance = 1e-10;
  const auto a = solve_cg(m, b, opt);
  const auto c = solve_jacobi_pcg(m, b, opt);
  const auto d = solve_sdd(m, b, opt);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(a.solution[i], c.solution[i], 1e-6);
    EXPECT_NEAR(a.solution[i], d.solution[i], 1e-6);
  }
}

}  // namespace
}  // namespace spar::solver
