#include "solver/chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

SDDMatrix grounded_grid(graph::Vertex side) {
  const Graph g = graph::grid2d(side, side);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  return SDDMatrix(g, slack);
}

TEST(InverseChain, TerminatesWithinMaxLevels) {
  ChainOptions opt;
  opt.max_levels = 6;
  const InverseChain chain(grounded_grid(10), opt);
  EXPECT_GE(chain.num_levels(), 1u);
  EXPECT_LE(chain.num_levels(), 6u);
}

TEST(InverseChain, GammaDecreasesAlongChain) {
  ChainOptions opt;
  opt.max_levels = 12;
  const InverseChain chain(grounded_grid(12), opt);
  const auto& info = chain.level_info();
  ASSERT_GE(info.size(), 2u);
  EXPECT_LT(info.back().gamma, info.front().gamma);
}

TEST(InverseChain, WellConditionedInputNeedsOneLevel) {
  // Massive slack makes gamma tiny: chain should stop immediately.
  const Graph g = graph::cycle_graph(20);
  const SDDMatrix m(g, Vector(20, 100.0));
  ChainOptions opt;
  const InverseChain chain(m, opt);
  EXPECT_EQ(chain.num_levels(), 1u);
}

TEST(InverseChain, ApplyIsLinear) {
  const SDDMatrix m = grounded_grid(8);
  ChainOptions opt;
  opt.max_levels = 8;
  const InverseChain chain(m, opt);
  support::Rng rng(3);
  const std::size_t n = m.dimension();
  Vector a(n), b(n);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal();

  Vector wa(n), wb(n), wsum(n);
  chain.apply(a, wa);
  chain.apply(b, wb);
  Vector sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] - 3.0 * b[i];
  chain.apply(sum, wsum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(wsum[i], 2.0 * wa[i] - 3.0 * wb[i], 1e-8);
}

TEST(InverseChain, ApplyIsSymmetric) {
  // <x, W y> == <W x, y> is required for PCG correctness.
  const SDDMatrix m = grounded_grid(7);
  ChainOptions opt;
  opt.max_levels = 8;
  const InverseChain chain(m, opt);
  support::Rng rng(9);
  const std::size_t n = m.dimension();
  Vector x(n), y(n), wx(n), wy(n);
  for (double& v : x) v = rng.normal();
  for (double& v : y) v = rng.normal();
  chain.apply(x, wx);
  chain.apply(y, wy);
  const double left = linalg::dot(x, wy);
  const double right = linalg::dot(wx, y);
  EXPECT_NEAR(left, right, 1e-8 * std::max(std::abs(left), 1.0));
}

TEST(InverseChain, ApplyIsPositiveDefiniteOnTestVectors) {
  const SDDMatrix m = grounded_grid(7);
  ChainOptions opt;
  const InverseChain chain(m, opt);
  support::Rng rng(17);
  const std::size_t n = m.dimension();
  for (int trial = 0; trial < 10; ++trial) {
    Vector x(n), wx(n);
    for (double& v : x) v = rng.normal();
    chain.apply(x, wx);
    EXPECT_GT(linalg::dot(x, wx), 0.0);
  }
}

TEST(InverseChain, ApproximatesInverseOnEasyMatrix) {
  // Diagonally dominant with modest gamma: one chain application should be a
  // decent inverse: ||W M x - x|| small relative to ||x||.
  const Graph g = graph::grid2d(9, 9);
  const SDDMatrix m(g, Vector(g.num_vertices(), 2.0));
  ChainOptions opt;
  const InverseChain chain(m, opt);
  support::Rng rng(5);
  const std::size_t n = m.dimension();
  Vector x(n), mx(n), wmx(n);
  for (double& v : x) v = rng.normal();
  m.apply(x, mx);
  chain.apply(mx, wmx);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += (wmx[i] - x[i]) * (wmx[i] - x[i]);
    norm += x[i] * x[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.5);
}

TEST(InverseChain, TotalNnzAccountsAllLevels) {
  const SDDMatrix m = grounded_grid(8);
  ChainOptions opt;
  opt.max_levels = 5;
  const InverseChain chain(m, opt);
  std::size_t manual = 0;
  for (const auto& info : chain.level_info()) manual += 2 * info.edges;
  EXPECT_GE(chain.total_nnz(), manual);  // + diagonals
}

TEST(InverseChain, SparsificationCapsLevelGrowth) {
  // With sparsification on, stored level sizes stay near edge_factor * n.
  const SDDMatrix m = grounded_grid(14);
  ChainOptions opt;
  opt.max_levels = 10;
  opt.edge_factor = 4.0;
  opt.rho = 8.0;
  opt.t = 1;
  const InverseChain chain(m, opt);
  const double cap = 14.0 * opt.edge_factor * double(m.dimension());
  for (const auto& info : chain.level_info())
    EXPECT_LT(double(info.edges), cap);
}

TEST(InverseChain, SingularLaplacianChainStaysFinite) {
  const Graph g = graph::grid2d(8, 8);
  const SDDMatrix m(g);
  ChainOptions opt;
  opt.max_levels = 6;
  const InverseChain chain(m, opt);
  support::Rng rng(7);
  Vector b(m.dimension()), y(m.dimension());
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  chain.apply(b, y);
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
  // Output is mean-free (stays in range(L)).
  EXPECT_NEAR(linalg::mean(y), 0.0, 1e-10);
}

}  // namespace
}  // namespace spar::solver
