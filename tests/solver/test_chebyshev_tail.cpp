// Chain with the Chebyshev tail smoother (PRAM-friendlier: no inner
// products) vs the default Jacobi tail.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

Vector rhs_for(const SDDMatrix& m, std::uint64_t seed) {
  support::Rng rng(seed);
  Vector b(m.dimension());
  for (double& v : b) v = rng.normal();
  if (m.is_singular()) linalg::remove_mean(b);
  return b;
}

double residual(const SDDMatrix& m, const Vector& x, const Vector& b) {
  const Vector mx = m.apply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  return std::sqrt(err / norm);
}

TEST(ChebyshevTail, ChainStillSymmetricAndConvergent) {
  const Graph g = graph::grid2d(12, 12);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  SolveOptions opt;
  opt.chain.tail = TailSmoother::kChebyshev;
  opt.chain.max_levels = 10;
  const Vector b = rhs_for(m, 13);
  const auto report = solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(ChebyshevTail, SingularLaplacianWorks) {
  const Graph g = graph::grid2d(10, 10);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.tail = TailSmoother::kChebyshev;
  opt.chain.max_levels = 8;
  const Vector b = rhs_for(m, 17);
  const auto report = solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(ChebyshevTail, MatchesJacobiTailSolution) {
  const Graph g = graph::grid2d(9, 9);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.4));
  const Vector b = rhs_for(m, 19);
  SolveOptions opt;
  opt.tolerance = 1e-10;
  opt.chain.tail = TailSmoother::kJacobi;
  const auto jac = solve_sdd(m, b, opt);
  opt.chain.tail = TailSmoother::kChebyshev;
  const auto cheb = solve_sdd(m, b, opt);
  ASSERT_TRUE(jac.converged);
  ASSERT_TRUE(cheb.converged);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(jac.solution[i], cheb.solution[i], 1e-7);
}

TEST(ChebyshevTail, StrongerTailNeedsFewerOuterIterations) {
  // Chebyshev at sqrt(kappa) rate is a better last-level inverse than a few
  // Jacobi sweeps when the last level is still moderately conditioned (small
  // max_levels forces that situation).
  const Graph g = graph::grid2d(14, 14);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  const Vector b = rhs_for(m, 23);
  SolveOptions opt;
  opt.chain.max_levels = 3;  // leave the tail poorly conditioned
  opt.chain.tail = TailSmoother::kJacobi;
  opt.chain.last_level_jacobi_steps = 8;
  const auto jac = solve_sdd(m, b, opt);
  opt.chain.tail = TailSmoother::kChebyshev;
  opt.chain.last_level_chebyshev_steps = 8;
  const auto cheb = solve_sdd(m, b, opt);
  ASSERT_TRUE(jac.converged);
  ASSERT_TRUE(cheb.converged);
  EXPECT_LE(cheb.iterations, jac.iterations);
}

}  // namespace
}  // namespace spar::solver
