// Streamed-build chains (ChainOptions::squaring = kStreamed / kAuto): parity
// with the dense reference build -- same certification, same solve envelope,
// deterministic across thread counts -- plus the fill-in guard and the mode
// switch. The dense/streamed split is a build-path choice, never a semantic
// one; these tests pin that contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "solver/chain.hpp"
#include "solver/solver.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

SDDMatrix grounded_grid(graph::Vertex side) {
  const Graph g = graph::grid2d(side, side);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  return SDDMatrix(g, slack);
}

/// Streamed build with small tower granularity so even test-sized levels
/// exercise real batching and row-blocking.
ChainOptions streamed_options() {
  ChainOptions opt;
  opt.squaring = SquaringMode::kStreamed;
  opt.stream_batch_edges = 1024;
  opt.stream_block_fill_edges = 4096;
  opt.max_levels = 8;
  return opt;
}

/// Order-insensitive fingerprint of a chain: FNV-1a over every level's
/// normalized sorted edge list plus its slack bit patterns (same scheme as
/// tests/sparsify/test_stream.cpp's edge_multiset_hash).
std::uint64_t chain_hash(const InverseChain& chain, const SDDMatrix& input,
                         const ChainOptions& opt) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  const auto mix_double = [&mix](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(chain.num_levels());
  // Rebuild level graphs by replaying the build: the chain API exposes edges
  // per level via level_info(); fingerprint those counts plus a solve probe.
  for (const ChainLevelInfo& info : chain.level_info()) {
    mix(info.edges);
    mix(info.edges_after_square);
    mix_double(info.gamma);
  }
  // A full apply probes every stored weight: bit-identical chains give a
  // bit-identical result vector.
  support::Rng rng(12345);
  Vector b(input.dimension()), y(input.dimension());
  for (double& v : b) v = rng.normal();
  chain.apply(b, y);
  for (double v : y) mix_double(v);
  (void)opt;
  return h;
}

TEST(StreamedChain, CertifiesAndSolvesLikeDenseBuild) {
  // The acceptance contract: a chain built with streamed squaring must
  // converge solve_sdd within the same iteration envelope as the dense-built
  // chain on the same matrix, at the same tolerance.
  const SDDMatrix m = grounded_grid(24);
  support::Rng rng(5);
  Vector b(m.dimension());
  for (double& v : b) v = rng.normal();

  ChainOptions dense_opt;
  dense_opt.squaring = SquaringMode::kDense;
  dense_opt.max_levels = 8;
  const InverseChain dense_chain(m, dense_opt);
  const InverseChain streamed_chain(m, streamed_options());

  SolveOptions sopt;
  sopt.tolerance = 1e-8;
  const SolveReport dense_rep = solve_sdd(m, dense_chain, b, sopt);
  const SolveReport streamed_rep = solve_sdd(m, streamed_chain, b, sopt);

  ASSERT_TRUE(dense_rep.converged);
  ASSERT_TRUE(streamed_rep.converged);
  EXPECT_LE(streamed_rep.relative_residual, sopt.tolerance);
  // Same envelope: the streamed chain is a (1 +- eps) object of the same
  // quality class, so its PCG iteration count stays within a small factor.
  EXPECT_LE(streamed_rep.iterations, 3 * dense_rep.iterations + 10);

  // Residual check against the original matrix, independent of the report.
  Vector mx(m.dimension());
  m.apply(streamed_rep.solution, mx);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < m.dimension(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  EXPECT_LE(std::sqrt(err / norm), 10 * sopt.tolerance);
}

TEST(StreamedChain, MultiRhsParityWithDenseBuild) {
  const SDDMatrix m = grounded_grid(16);
  const std::size_t n = m.dimension();
  const std::size_t k = 4;
  linalg::MultiVector b(n, k);
  support::Rng rng(29);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) b.at(i, j) = rng.normal();

  ChainOptions dense_opt;
  dense_opt.squaring = SquaringMode::kDense;
  dense_opt.max_levels = 8;
  const InverseChain dense_chain(m, dense_opt);
  const InverseChain streamed_chain(m, streamed_options());

  SolveOptions sopt;
  sopt.tolerance = 1e-8;
  const MultiSolveReport dense_rep = solve_sdd_multi(m, dense_chain, b, sopt);
  const MultiSolveReport streamed_rep = solve_sdd_multi(m, streamed_chain, b, sopt);

  ASSERT_TRUE(dense_rep.all_converged());
  ASSERT_TRUE(streamed_rep.all_converged());
  EXPECT_LE(streamed_rep.iterations, 3 * dense_rep.iterations + 10);

  // Blocked == single-RHS for the streamed chain too (the batched-solve
  // determinism contract holds regardless of how the chain was built).
  for (std::size_t j = 0; j < k; ++j) {
    Vector bj(n);
    for (std::size_t i = 0; i < n; ++i) bj[i] = b.at(i, j);
    const SolveReport single = solve_sdd(m, streamed_chain, bj, sopt);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(single.solution[i], streamed_rep.solutions.at(i, j)) << i << "," << j;
  }
}

TEST(StreamedChain, LevelInfoRecordsStreamedAccounting) {
  const SDDMatrix m = grounded_grid(20);
  const ChainOptions opt = streamed_options();
  const InverseChain chain(m, opt);
  const auto& info = chain.level_info();
  ASSERT_GE(info.size(), 2u);
  // Every level that squared (edges_after_square > 0; a gamma-terminated
  // final level records nothing) did so through the tower, with the plan
  // recorded and the budget depth respected.
  std::size_t squared_levels = 0;
  for (std::size_t i = 0; i < info.size(); ++i) {
    if (info[i].edges_after_square == 0) {
      EXPECT_FALSE(info[i].streamed_square) << i;
      EXPECT_EQ(info[i].sparsify_passes, 0u) << i;
      continue;
    }
    ++squared_levels;
    EXPECT_TRUE(info[i].streamed_square) << i;
    EXPECT_GT(info[i].projected_fill, 0u) << i;
    EXPECT_GT(info[i].peak_resident_edges, 0u) << i;
    EXPECT_GE(info[i].sparsify_passes, 1u) << i;
    EXPECT_LE(info[i].epsilon_budget_used, opt.level_epsilon + 1e-12) << i;
  }
  EXPECT_GE(squared_levels, 1u);
}

TEST(StreamedChain, AutoModeSwitchesOnProjectedFill) {
  const SDDMatrix m = grounded_grid(16);

  ChainOptions stay_dense;
  stay_dense.squaring = SquaringMode::kAuto;
  stay_dense.max_levels = 3;
  stay_dense.streamed_fill_threshold = std::size_t{1} << 40;  // never reached
  const InverseChain dense_chain(m, stay_dense);
  for (const auto& info : dense_chain.level_info())
    EXPECT_FALSE(info.streamed_square);

  ChainOptions go_streamed = stay_dense;
  go_streamed.streamed_fill_threshold = 1;  // any square exceeds this
  go_streamed.stream_batch_edges = 1024;
  go_streamed.stream_block_fill_edges = 4096;
  const InverseChain streamed_chain(m, go_streamed);
  const auto& info = streamed_chain.level_info();
  ASSERT_GE(info.size(), 2u);
  for (std::size_t i = 0; i + 1 < info.size(); ++i)
    EXPECT_TRUE(info[i].streamed_square) << i;
}

TEST(StreamedChain, MaxLevelFillGuardThrowsDiagnosed) {
  // kDense with a tiny fill budget must refuse the square BEFORE committing
  // product memory, and the error must name the level, the projection, and
  // the streamed escape hatch.
  const SDDMatrix m = grounded_grid(12);
  ChainOptions opt;
  opt.squaring = SquaringMode::kDense;
  opt.max_level_fill = 10;
  try {
    const InverseChain chain(m, opt);
    FAIL() << "expected spar::Error from the fill guard";
  } catch (const spar::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("level 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("max_level_fill"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kStreamed"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(opt.max_level_fill)), std::string::npos) << msg;
  }
}

TEST(StreamedChain, AutoModeStreamsInsteadOfThrowingOnTinyBudget) {
  // Same tiny budget, kAuto: the guard acts as a switch, not a wall.
  const SDDMatrix m = grounded_grid(12);
  ChainOptions opt = streamed_options();
  opt.squaring = SquaringMode::kAuto;
  opt.max_level_fill = 10;
  opt.max_levels = 3;
  const InverseChain chain(m, opt);
  const auto& info = chain.level_info();
  ASSERT_GE(info.size(), 2u);
  EXPECT_TRUE(info.front().streamed_square);
}

TEST(StreamedChain, DeterministicAcrossThreadCounts) {
  // The streamed build composes only deterministic parallel primitives
  // (Gustavson SpGEMM, serial emit scan, tower round pipeline), so the whole
  // chain -- every level's graph, slack, and therefore every apply() -- is
  // bit-identical for any thread count and for the OpenMP-off build. The
  // golden value pins the x86-64 gcc Release build at fixed (seed, batch
  // size); re-record via BUILDING.md ("Re-baselining") after deliberate
  // algorithm changes.
  const SDDMatrix m = grounded_grid(20);
  const ChainOptions opt = streamed_options();

  constexpr std::uint64_t kGoldenHash = 0x0b073a77d853a5fdULL;

  for (const int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const InverseChain chain(m, opt);
    EXPECT_EQ(chain_hash(chain, m, opt), kGoldenHash) << threads << " threads";
  }
}

}  // namespace
}  // namespace spar::solver
