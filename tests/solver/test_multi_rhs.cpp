// Chain reuse across right-hand sides: the batched solve_sdd_multi and the
// per-RHS solve_sdd loop over the SAME prebuilt InverseChain must produce
// bit-identical solutions, column by column, for singular connected
// Laplacians (constant-nullspace projection path) and nonsingular SDD
// systems, at any thread count. This is the determinism contract that makes
// batching a pure throughput optimization.
#include "solver/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "graph/generators.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::MultiVector;
using linalg::Vector;

MultiVector random_rhs_block(std::size_t n, std::size_t k, std::uint64_t seed,
                             bool mean_free) {
  std::vector<Vector> cols;
  for (std::size_t j = 0; j < k; ++j) {
    support::Rng rng(support::mix64(seed, j));
    Vector b(n);
    for (double& v : b) v = rng.normal();
    if (mean_free) linalg::remove_mean(b);
    cols.push_back(std::move(b));
  }
  return MultiVector::from_columns(cols);
}

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double residual(const SDDMatrix& m, std::span<const double> x,
                std::span<const double> b) {
  const Vector mx = m.apply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  return std::sqrt(err / norm);
}

/// Runs the batched and the per-RHS path on one system and demands
/// bit-identity; returns the batched solutions for cross-thread comparisons.
MultiVector check_batched_equals_loop(const SDDMatrix& m, const InverseChain& chain,
                                      const MultiVector& b, const SolveOptions& opt) {
  const auto multi = solve_sdd_multi(m, chain, b, opt);
  EXPECT_TRUE(multi.all_converged());
  EXPECT_EQ(multi.chain_levels, chain.num_levels());
  EXPECT_EQ(multi.chain_total_nnz, chain.total_nnz());
  EXPECT_GT(multi.block_applies, 0u);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vector bj = b.column_copy(j);
    const auto single = solve_sdd(m, chain, bj, opt);
    EXPECT_TRUE(single.converged) << "col " << j;
    EXPECT_TRUE(bits_equal(multi.solutions.column_copy(j), single.solution))
        << "col " << j << ": batched and per-RHS solutions differ bitwise";
    EXPECT_EQ(multi.columns[j].iterations, single.iterations) << "col " << j;
    EXPECT_EQ(multi.columns[j].relative_residual, single.relative_residual)
        << "col " << j;
    EXPECT_LT(residual(m, multi.solutions.column_copy(j), bj), 1e-6);
  }
  return multi.solutions;
}

TEST(SolveSddMulti, SingularLaplacianBitIdenticalAcrossThreads) {
  const Graph g = graph::grid2d(13, 13);
  const SDDMatrix m(g);  // singular: projection path
  SolveOptions opt;
  opt.chain.max_levels = 8;
  const InverseChain chain(m, opt.chain);
  const MultiVector b = random_rhs_block(m.dimension(), 5, 7, /*mean_free=*/true);

  std::vector<MultiVector> per_thread;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    per_thread.push_back(check_batched_equals_loop(m, chain, b, opt));
  }
  for (std::size_t t = 1; t < per_thread.size(); ++t)
    EXPECT_TRUE(bits_equal(per_thread[t].data(), per_thread[0].data()))
        << "thread sweep entry " << t << " diverged";
}

TEST(SolveSddMulti, SingularErdosRenyiBitIdentical) {
  const Graph g = graph::connected_erdos_renyi(150, 0.06, 3);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.max_levels = 8;
  const InverseChain chain(m, opt.chain);
  const MultiVector b = random_rhs_block(m.dimension(), 4, 11, /*mean_free=*/true);
  check_batched_equals_loop(m, chain, b, opt);
}

TEST(SolveSddMulti, NonsingularSddBitIdenticalAcrossThreads) {
  const Graph g = graph::grid2d(12, 12);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  slack[37] = 0.25;
  const SDDMatrix m(g, slack);  // nonsingular: no projection
  SolveOptions opt;
  opt.chain.max_levels = 10;
  const InverseChain chain(m, opt.chain);
  const MultiVector b = random_rhs_block(m.dimension(), 4, 19, /*mean_free=*/false);

  std::vector<MultiVector> per_thread;
  for (int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    per_thread.push_back(check_batched_equals_loop(m, chain, b, opt));
  }
  for (std::size_t t = 1; t < per_thread.size(); ++t)
    EXPECT_TRUE(bits_equal(per_thread[t].data(), per_thread[0].data()))
        << "thread sweep entry " << t << " diverged";
}

TEST(SolveSddMulti, ChebyshevTailBitIdentical) {
  const Graph g = graph::grid2d(11, 11);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.max_levels = 6;
  opt.chain.tail = TailSmoother::kChebyshev;
  const InverseChain chain(m, opt.chain);
  const MultiVector b = random_rhs_block(m.dimension(), 3, 23, /*mean_free=*/true);
  check_batched_equals_loop(m, chain, b, opt);
}

TEST(SolveSddMulti, InternalChainBuildMatchesExplicitChain) {
  const Graph g = graph::grid2d(10, 10);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.max_levels = 6;
  const MultiVector b = random_rhs_block(m.dimension(), 3, 29, /*mean_free=*/true);
  const auto internal = solve_sdd_multi(m, b, opt);  // builds its own chain
  const InverseChain chain(m, opt.chain);            // same options, same seed
  const auto external = solve_sdd_multi(m, chain, b, opt);
  EXPECT_TRUE(internal.all_converged());
  EXPECT_TRUE(bits_equal(internal.solutions.data(), external.solutions.data()));
}

TEST(SolveSddMulti, ZeroColumnSolvesToZero) {
  const Graph g = graph::grid2d(8, 8);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.max_levels = 4;
  std::vector<Vector> cols = {Vector(m.dimension(), 0.0)};
  const auto report = solve_sdd_multi(m, MultiVector::from_columns(cols), opt);
  EXPECT_TRUE(report.all_converged());
  EXPECT_EQ(report.columns[0].iterations, 0u);
  for (double v : report.solutions.column_copy(0)) EXPECT_EQ(v, 0.0);
}

TEST(SolveSddMulti, RejectsWrongRhsRows) {
  const SDDMatrix m(graph::path_graph(6));
  const MultiVector b(5, 2, 1.0);  // 5 rows vs dimension 6
  EXPECT_THROW(solve_sdd_multi(m, b), spar::Error);
}

TEST(SolveSddMulti, EmptyBlockIsANoOp) {
  const SDDMatrix m(graph::grid2d(3, 3));
  const MultiVector b(m.dimension(), 0);
  const auto report = solve_sdd_multi(m, b);
  EXPECT_EQ(report.solutions.cols(), 0u);
  EXPECT_TRUE(report.columns.empty());
}

// The k = 1 fast path: a single-column block dispatches through the scalar
// solve_sdd machinery (the blocked kernels are slower at k = 1 -- E13), and
// the answer must stay bit-identical to solve_sdd, stats included, on both
// the singular (projection) and nonsingular paths.
TEST(SolveSddMulti, SingleColumnFastPathBitIdenticalToScalarSolve) {
  SolveOptions opt;
  opt.chain.max_levels = 5;
  // Singular connected Laplacian.
  {
    const SDDMatrix m(graph::grid2d(11, 9));
    const InverseChain chain(m, opt.chain);
    const MultiVector b = random_rhs_block(m.dimension(), 1, 77, /*mean_free=*/true);
    const auto multi = solve_sdd_multi(m, chain, b, opt);
    const auto single = solve_sdd(m, chain, b.column_copy(0), opt);
    ASSERT_EQ(multi.columns.size(), 1u);
    EXPECT_TRUE(single.converged);
    EXPECT_TRUE(multi.all_converged());
    EXPECT_TRUE(bits_equal(multi.solutions.column_copy(0), single.solution))
        << "k=1 fast path and solve_sdd solutions differ bitwise";
    EXPECT_EQ(multi.columns[0].iterations, single.iterations);
    EXPECT_EQ(multi.columns[0].relative_residual, single.relative_residual);
    EXPECT_EQ(multi.iterations, single.iterations);
    EXPECT_GT(multi.block_applies, 0u);
  }
  // Nonsingular SDD (positive slack).
  {
    const Graph g = graph::connected_erdos_renyi(140, 0.06, 5);
    Vector slack(g.num_vertices(), 0.35);
    const SDDMatrix m(g, std::move(slack));
    const InverseChain chain(m, opt.chain);
    const MultiVector b = random_rhs_block(m.dimension(), 1, 78, /*mean_free=*/false);
    const auto multi = solve_sdd_multi(m, chain, b, opt);
    const auto single = solve_sdd(m, chain, b.column_copy(0), opt);
    EXPECT_TRUE(bits_equal(multi.solutions.column_copy(0), single.solution));
    EXPECT_EQ(multi.columns[0].iterations, single.iterations);
    EXPECT_EQ(multi.columns[0].relative_residual, single.relative_residual);
  }
}

}  // namespace
}  // namespace spar::solver
