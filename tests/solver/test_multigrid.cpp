#include "solver/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

Vector rhs_for(std::size_t n, std::uint64_t seed, bool mean_free) {
  support::Rng rng(seed);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  if (mean_free) linalg::remove_mean(b);
  return b;
}

double residual(const SDDMatrix& m, const Vector& x, const Vector& b) {
  const Vector mx = m.apply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  return std::sqrt(err / norm);
}

TEST(Multigrid, HierarchyDepthLogarithmic) {
  const Graph g = graph::grid2d(32, 32);
  const GridMultigrid mg(SDDMatrix(g), 32, 32);
  EXPECT_GE(mg.num_levels(), 3u);
  EXPECT_LE(mg.num_levels(), 6u);
  EXPECT_GT(mg.total_nnz(), 0u);
}

TEST(Multigrid, SolvesSingularGridLaplacian) {
  const Graph g = graph::grid2d(24, 24);
  const SDDMatrix m(g);
  const Vector b = rhs_for(m.dimension(), 3, true);
  const auto report = multigrid_solve(m, 24, 24, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(Multigrid, SolvesGroundedGrid) {
  const Graph g = graph::grid2d(20, 20);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  const Vector b = rhs_for(m.dimension(), 5, false);
  const auto report = multigrid_solve(m, 20, 20, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(Multigrid, IterationCountNearlyGridSizeIndependent) {
  // The multigrid hallmark (Remark 1's point): PCG iterations stay ~flat as
  // the grid doubles, unlike plain CG's ~2x growth.
  std::vector<std::size_t> iters;
  for (const std::size_t side : {16u, 32u, 64u}) {
    const Graph g = graph::grid2d(static_cast<graph::Vertex>(side),
                                  static_cast<graph::Vertex>(side));
    const SDDMatrix m(g);
    const Vector b = rhs_for(m.dimension(), 7 + side, true);
    const auto report = multigrid_solve(m, side, side, b);
    ASSERT_TRUE(report.converged) << side;
    iters.push_back(report.iterations);
  }
  EXPECT_LE(iters.back(), 2 * iters.front() + 4);
  EXPECT_LE(iters.back(), 30u);
}

TEST(Multigrid, BeatsPlainCgOnLargeGrids) {
  const std::size_t side = 48;
  const Graph g = graph::grid2d(side, side);
  const SDDMatrix m(g);
  const Vector b = rhs_for(m.dimension(), 9, true);
  const auto mg = multigrid_solve(m, side, side, b);
  const auto cg = solve_cg(m, b);
  ASSERT_TRUE(mg.converged);
  ASSERT_TRUE(cg.converged);
  EXPECT_LT(mg.iterations, cg.iterations / 4);
}

TEST(Multigrid, WorksWithVaryingWeights) {
  // Affinity-graph case: weights vary by 2 orders of magnitude; the Galerkin
  // hierarchy (not rediscretization) must absorb it.
  const Graph g =
      graph::randomize_weights(graph::grid2d(24, 24), std::log(10.0), 11);
  const SDDMatrix m(g);
  const Vector b = rhs_for(m.dimension(), 13, true);
  const auto report = multigrid_solve(m, 24, 24, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(Multigrid, VCycleIsLinear) {
  const Graph g = graph::grid2d(16, 16);
  const GridMultigrid mg(SDDMatrix(g), 16, 16);
  const std::size_t n = g.num_vertices();
  Vector a = rhs_for(n, 15, true);
  Vector b = rhs_for(n, 17, true);
  Vector wa(n), wb(n), wsum(n), sum(n);
  mg.v_cycle(a, wa);
  mg.v_cycle(b, wb);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 3.0 * a[i] - b[i];
  mg.v_cycle(sum, wsum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(wsum[i], 3.0 * wa[i] - wb[i], 1e-7);
}

TEST(Multigrid, RejectsDimensionMismatch) {
  const Graph g = graph::grid2d(8, 8);
  EXPECT_THROW(GridMultigrid(SDDMatrix(g), 8, 9), spar::Error);
}

TEST(Multigrid, NonSquareGrids) {
  const Graph g = graph::grid2d(12, 30);
  const SDDMatrix m(g);
  const Vector b = rhs_for(m.dimension(), 19, true);
  const auto report = multigrid_solve(m, 12, 30, b);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

}  // namespace
}  // namespace spar::solver
