#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::Vector;

Vector random_rhs(std::size_t n, std::uint64_t seed, bool mean_free) {
  support::Rng rng(seed);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  if (mean_free) linalg::remove_mean(b);
  return b;
}

double residual(const SDDMatrix& m, const Vector& x, const Vector& b) {
  const Vector mx = m.apply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err += (mx[i] - b[i]) * (mx[i] - b[i]);
    norm += b[i] * b[i];
  }
  return std::sqrt(err / norm);
}

TEST(ChainRefinement, ConvergesOnGroundedGrid) {
  const Graph g = graph::grid2d(12, 12);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  SolveOptions opt;
  opt.chain.max_levels = 12;
  const InverseChain chain(m, opt.chain);
  const Vector b = random_rhs(m.dimension(), 3, false);
  const auto report = solve_chain_refinement(m, chain, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(ChainRefinement, ConvergesOnSingularLaplacian) {
  const Graph g = graph::grid2d(10, 10);
  const SDDMatrix m(g);
  SolveOptions opt;
  opt.chain.max_levels = 8;
  const InverseChain chain(m, opt.chain);
  const Vector b = random_rhs(m.dimension(), 5, true);
  const auto report = solve_chain_refinement(m, chain, b, opt);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(m, report.solution, b), 1e-6);
}

TEST(ChainRefinement, IterationCountLogarithmicInTolerance) {
  // Each sweep contracts the error by a constant; iterations should scale
  // ~linearly in log(1/tol).
  const Graph g = graph::grid2d(10, 10);
  Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  const SDDMatrix m(g, slack);
  SolveOptions opt;
  opt.chain.max_levels = 12;
  const InverseChain chain(m, opt.chain);
  const Vector b = random_rhs(m.dimension(), 7, false);

  opt.tolerance = 1e-4;
  const auto coarse = solve_chain_refinement(m, chain, b, opt);
  opt.tolerance = 1e-8;
  const auto fine = solve_chain_refinement(m, chain, b, opt);
  ASSERT_TRUE(coarse.converged);
  ASSERT_TRUE(fine.converged);
  EXPECT_GT(fine.iterations, coarse.iterations);
  EXPECT_LE(fine.iterations, 4 * coarse.iterations + 8);
}

TEST(ChainRefinement, MatchesPcgSolution) {
  const Graph g = graph::grid2d(9, 9);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.2));
  SolveOptions opt;
  opt.tolerance = 1e-10;
  const InverseChain chain(m, opt.chain);
  const Vector b = random_rhs(m.dimension(), 9, false);
  const auto refine = solve_chain_refinement(m, chain, b, opt);
  const auto pcg = solve_sdd(m, chain, b, opt);
  ASSERT_TRUE(refine.converged);
  ASSERT_TRUE(pcg.converged);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(refine.solution[i], pcg.solution[i], 1e-7);
}

TEST(ChainRefinement, ZeroRhsInstant) {
  const SDDMatrix m(graph::cycle_graph(8), Vector(8, 0.1));
  SolveOptions opt;
  const InverseChain chain(m, opt.chain);
  const auto report = solve_chain_refinement(m, chain, Vector(8, 0.0), opt);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 0u);
}

TEST(ChainRefinement, ReportsChainFootprint) {
  const SDDMatrix m(graph::grid2d(8, 8));
  SolveOptions opt;
  opt.chain.max_levels = 5;
  const InverseChain chain(m, opt.chain);
  const Vector b = random_rhs(m.dimension(), 11, true);
  const auto report = solve_chain_refinement(m, chain, b, opt);
  EXPECT_EQ(report.chain_levels, chain.num_levels());
  EXPECT_EQ(report.chain_total_nnz, chain.total_nnz());
}

}  // namespace
}  // namespace spar::solver
