#include "solver/squaring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::DenseMatrix;
using linalg::Vector;

// Dense reference: D - A D^{-1} A computed naively.
DenseMatrix dense_square(const SDDMatrix& m) {
  const std::size_t n = m.dimension();
  const DenseMatrix a = DenseMatrix::from_csr(m.adjacency_csr());
  const Vector& d = m.diagonal();
  DenseMatrix ad(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) ad.at(r, c) = a.at(r, c) / d[c];
  const DenseMatrix ada = ad.multiply(a);
  DenseMatrix out(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      out.at(r, c) = (r == c ? d[r] : 0.0) - ada.at(r, c);
  return out;
}

TEST(Square, MatchesDenseReferenceOnLaplacian) {
  const Graph g = graph::randomize_weights(graph::connected_erdos_renyi(25, 0.3, 3), 1.0, 5);
  const SDDMatrix m(g);
  const SDDMatrix sq = square(m);
  const DenseMatrix expected = dense_square(m);
  const DenseMatrix got = DenseMatrix::from_csr(sq.to_csr());
  for (std::size_t i = 0; i < m.dimension(); ++i)
    for (std::size_t j = 0; j < m.dimension(); ++j)
      EXPECT_NEAR(got.at(i, j), expected.at(i, j), 1e-9) << i << "," << j;
}

TEST(Square, MatchesDenseReferenceWithSlack) {
  const Graph g = graph::grid2d(5, 5);
  Vector slack(g.num_vertices());
  support::Rng rng(7);
  for (double& s : slack) s = rng.uniform();
  const SDDMatrix m(g, slack);
  const SDDMatrix sq = square(m);
  const DenseMatrix expected = dense_square(m);
  const DenseMatrix got = DenseMatrix::from_csr(sq.to_csr());
  for (std::size_t i = 0; i < m.dimension(); ++i)
    for (std::size_t j = 0; j < m.dimension(); ++j)
      EXPECT_NEAR(got.at(i, j), expected.at(i, j), 1e-9);
}

TEST(Square, LaplacianSquaresToLaplacian) {
  // The squared matrix of a singular Laplacian is singular: slack stays 0.
  const Graph g = graph::connected_erdos_renyi(30, 0.2, 9);
  const SDDMatrix sq = square(SDDMatrix(g));
  EXPECT_TRUE(sq.is_singular());
}

TEST(Square, SlackStaysNonnegative) {
  const Graph g = graph::grid2d(6, 6);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.3));
  const SDDMatrix sq = square(m);
  for (double s : sq.slack()) EXPECT_GE(s, 0.0);
  EXPECT_FALSE(sq.is_singular());
}

TEST(Square, DensifiesSparseGraphs) {
  // Distance-2 neighbors become adjacent: grids gain edges.
  const Graph g = graph::grid2d(8, 8);
  SquaringStats stats;
  square(SDDMatrix(g), &stats);
  EXPECT_EQ(stats.input_edges, g.num_edges());
  EXPECT_GT(stats.output_edges, g.num_edges());
}

TEST(Square, PreservesDiagonal) {
  // M~ = D - A D^{-1} A keeps the same D by construction:
  // degree'(i) + slack'(i) + diag(AD^{-1}A)(i) == D_ii... i.e. full diagonal
  // of M~ is D - diag(AD^{-1}A); verify via to_csr.
  const Graph g = graph::cycle_graph(10);
  const SDDMatrix m(g, Vector(10, 0.5));
  const SDDMatrix sq = square(m);
  const auto diag = sq.to_csr().diagonal_vector();
  const DenseMatrix expected = dense_square(m);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(diag[i], expected.at(i, i), 1e-10);
}

TEST(Square, FoldsUnderflowedOffdiagIntoDiagonal) {
  // Product off-diagonals of A D^{-1} A are sums of nonnegative terms, so a
  // genuinely negative entry is unreachable through this API (Graph enforces
  // w > 0); the reachable degenerate case is underflow to EXACTLY zero on
  // extreme weight ranges. The split loop must route such entries through the
  // diagonal fold -- never to add_edge (a w == 0 edge throws) and never to a
  // silent drop that would desynchronize the row-sum bookkeeping if a future
  // kernel produced genuine cancellation. Path 0-1-2 with tiny edge weights
  // and a hugely grounded middle vertex: S_02 = w_01 * w_12 / D_1 ~ 1e-480,
  // which underflows to zero.
  Graph g(3);
  g.add_edge(0, 1, 1e-160);
  g.add_edge(1, 2, 1e-160);
  Vector slack(3, 0.0);
  slack[1] = 1e160;
  const SDDMatrix m(g, slack);
  SquaringStats stats;
  SDDMatrix sq;
  ASSERT_NO_THROW(sq = square(m, &stats));
  // The underflowed (0, 2) entry folded away: no edge survives, and none with
  // a non-positive weight was ever attempted.
  EXPECT_EQ(sq.graph_part().num_edges(), 0u);
  EXPECT_EQ(stats.output_edges, 0u);
  // Slack stays nonnegative and finite; the grounded vertex keeps its slack.
  for (double s : sq.slack()) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
  EXPECT_FALSE(sq.is_singular());
}

TEST(Square, StreamedMatchesDenseSlackAndCertifiesGraph) {
  // square_streamed must reproduce square()'s slack to roundoff (the slack is
  // accumulated from the exact product, pre-sparsification) while its graph
  // part certifies as a (1 +- eps) approximation of the exact square's graph.
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(80, 0.25, 11), 1.0, 3);
  Vector slack(g.num_vertices(), 0.0);
  support::Rng rng(13);
  for (double& s : slack) s = rng.uniform();
  const SDDMatrix m(g, slack);

  SquaringStats dense_stats, stream_stats;
  const SDDMatrix dense = square(m, &dense_stats);
  // Gentle per-pass compression (rho = 2, wide bundles): the tower's
  // empirical error must land inside the modest eps = 0.5 budget even though
  // the product is near-complete and goes through several reduce passes.
  StreamedSquareOptions opt;
  opt.epsilon = 0.5;
  opt.rho = 2.0;
  opt.t = 4;
  opt.seed = 41;
  opt.batch_edges = 512;
  opt.block_fill_edges = 2048;
  const SDDMatrix streamed = square_streamed(m, opt, &stream_stats);

  ASSERT_EQ(streamed.dimension(), dense.dimension());
  for (std::size_t i = 0; i < dense.dimension(); ++i)
    EXPECT_NEAR(streamed.slack()[i], dense.slack()[i],
                1e-9 * std::max(1.0, m.diagonal()[i]))
        << i;

  const sparsify::ApproxBounds bounds =
      sparsify::exact_relative_bounds(dense.graph_part(), streamed.graph_part());
  ASSERT_TRUE(bounds.defined);
  EXPECT_GT(bounds.lower, 1.0 - opt.epsilon);
  EXPECT_LT(bounds.upper, 1.0 + opt.epsilon);

  // Stats coherence: the emitted product matches the dense path's edge count
  // exactly (same entries, same split rule), and the tower accounting is on.
  EXPECT_EQ(stream_stats.product_edges, dense_stats.output_edges);
  EXPECT_EQ(stream_stats.input_edges, g.num_edges());
  EXPECT_EQ(stream_stats.output_edges, streamed.graph_part().num_edges());
  EXPECT_GE(stream_stats.projected_fill, 2 * stream_stats.product_edges);
  EXPECT_GE(stream_stats.row_blocks, 1u);
  EXPECT_GE(stream_stats.batches, 1u);
  EXPECT_LE(stream_stats.depth_used, stream_stats.depth_planned);
  EXPECT_LE(stream_stats.epsilon_budget_used, opt.epsilon + 1e-12);
}

TEST(Square, StreamedLaplacianStaysSingular) {
  // The fused path preserves the slack-exactness invariant: a singular
  // Laplacian squares to a singular matrix even though the graph part went
  // through the sparsifier tower.
  const Graph g = graph::connected_erdos_renyi(60, 0.2, 9);
  StreamedSquareOptions opt;
  opt.batch_edges = 128;
  opt.block_fill_edges = 512;
  const SDDMatrix sq = square_streamed(SDDMatrix(g), opt);
  EXPECT_TRUE(sq.is_singular());
}

TEST(ProjectedSquareFill, BoundsActualProductSize) {
  // The symbolic bound dominates the real fill (it counts pre-merge
  // expansion terms) and is cheap enough to act as the chain's guard.
  const Graph g = graph::connected_erdos_renyi(70, 0.15, 5);
  const SDDMatrix m(g);
  const std::size_t projected = projected_square_fill(m);
  SquaringStats stats;
  square(m, &stats);
  // Off-diagonal product entries appear twice in the symmetric product plus
  // diagonal terms; the pre-merge bound dominates all of it.
  EXPECT_GE(projected, 2 * stats.output_edges);
  EXPECT_GT(projected, 0u);
}

TEST(AdjacencyDominance, LaplacianIsOne) {
  EXPECT_DOUBLE_EQ(adjacency_dominance(SDDMatrix(graph::cycle_graph(6))), 1.0);
}

TEST(AdjacencyDominance, SlackReducesGamma) {
  const Graph g = graph::cycle_graph(6);
  const SDDMatrix m(g, Vector(6, 2.0));  // degree 2, slack 2 => gamma = 0.5
  EXPECT_DOUBLE_EQ(adjacency_dominance(m), 0.5);
}

TEST(AdjacencyDominance, SquaringReducesGammaForNonsingular) {
  const Graph g = graph::grid2d(7, 7);
  const SDDMatrix m(g, Vector(g.num_vertices(), 1.0));
  const double before = adjacency_dominance(m);
  const double after = adjacency_dominance(square(m));
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace spar::solver
