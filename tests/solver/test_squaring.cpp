#include "solver/squaring.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "support/rng.hpp"

namespace spar::solver {
namespace {

using graph::Graph;
using linalg::DenseMatrix;
using linalg::Vector;

// Dense reference: D - A D^{-1} A computed naively.
DenseMatrix dense_square(const SDDMatrix& m) {
  const std::size_t n = m.dimension();
  const DenseMatrix a = DenseMatrix::from_csr(m.adjacency_csr());
  const Vector& d = m.diagonal();
  DenseMatrix ad(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) ad.at(r, c) = a.at(r, c) / d[c];
  const DenseMatrix ada = ad.multiply(a);
  DenseMatrix out(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      out.at(r, c) = (r == c ? d[r] : 0.0) - ada.at(r, c);
  return out;
}

TEST(Square, MatchesDenseReferenceOnLaplacian) {
  const Graph g = graph::randomize_weights(graph::connected_erdos_renyi(25, 0.3, 3), 1.0, 5);
  const SDDMatrix m(g);
  const SDDMatrix sq = square(m);
  const DenseMatrix expected = dense_square(m);
  const DenseMatrix got = DenseMatrix::from_csr(sq.to_csr());
  for (std::size_t i = 0; i < m.dimension(); ++i)
    for (std::size_t j = 0; j < m.dimension(); ++j)
      EXPECT_NEAR(got.at(i, j), expected.at(i, j), 1e-9) << i << "," << j;
}

TEST(Square, MatchesDenseReferenceWithSlack) {
  const Graph g = graph::grid2d(5, 5);
  Vector slack(g.num_vertices());
  support::Rng rng(7);
  for (double& s : slack) s = rng.uniform();
  const SDDMatrix m(g, slack);
  const SDDMatrix sq = square(m);
  const DenseMatrix expected = dense_square(m);
  const DenseMatrix got = DenseMatrix::from_csr(sq.to_csr());
  for (std::size_t i = 0; i < m.dimension(); ++i)
    for (std::size_t j = 0; j < m.dimension(); ++j)
      EXPECT_NEAR(got.at(i, j), expected.at(i, j), 1e-9);
}

TEST(Square, LaplacianSquaresToLaplacian) {
  // The squared matrix of a singular Laplacian is singular: slack stays 0.
  const Graph g = graph::connected_erdos_renyi(30, 0.2, 9);
  const SDDMatrix sq = square(SDDMatrix(g));
  EXPECT_TRUE(sq.is_singular());
}

TEST(Square, SlackStaysNonnegative) {
  const Graph g = graph::grid2d(6, 6);
  const SDDMatrix m(g, Vector(g.num_vertices(), 0.3));
  const SDDMatrix sq = square(m);
  for (double s : sq.slack()) EXPECT_GE(s, 0.0);
  EXPECT_FALSE(sq.is_singular());
}

TEST(Square, DensifiesSparseGraphs) {
  // Distance-2 neighbors become adjacent: grids gain edges.
  const Graph g = graph::grid2d(8, 8);
  SquaringStats stats;
  square(SDDMatrix(g), &stats);
  EXPECT_EQ(stats.input_edges, g.num_edges());
  EXPECT_GT(stats.output_edges, g.num_edges());
}

TEST(Square, PreservesDiagonal) {
  // M~ = D - A D^{-1} A keeps the same D by construction:
  // degree'(i) + slack'(i) + diag(AD^{-1}A)(i) == D_ii... i.e. full diagonal
  // of M~ is D - diag(AD^{-1}A); verify via to_csr.
  const Graph g = graph::cycle_graph(10);
  const SDDMatrix m(g, Vector(10, 0.5));
  const SDDMatrix sq = square(m);
  const auto diag = sq.to_csr().diagonal_vector();
  const DenseMatrix expected = dense_square(m);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(diag[i], expected.at(i, i), 1e-10);
}

TEST(AdjacencyDominance, LaplacianIsOne) {
  EXPECT_DOUBLE_EQ(adjacency_dominance(SDDMatrix(graph::cycle_graph(6))), 1.0);
}

TEST(AdjacencyDominance, SlackReducesGamma) {
  const Graph g = graph::cycle_graph(6);
  const SDDMatrix m(g, Vector(6, 2.0));  // degree 2, slack 2 => gamma = 0.5
  EXPECT_DOUBLE_EQ(adjacency_dominance(m), 0.5);
}

TEST(AdjacencyDominance, SquaringReducesGammaForNonsingular) {
  const Graph g = graph::grid2d(7, 7);
  const SDDMatrix m(g, Vector(g.num_vertices(), 1.0));
  const double before = adjacency_dominance(m);
  const double after = adjacency_dominance(square(m));
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace spar::solver
