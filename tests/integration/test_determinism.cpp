// Thread-count independence: every randomized parallel algorithm must emit
// bit-identical results for 1, 2, and 4 OpenMP threads, because all coins are
// counter-based functions of (seed, index). This is the property that makes
// the CRCW-PRAM-style implementation debuggable and the benches reproducible.
#include <gtest/gtest.h>

#include "dist/dist_spanner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/bundle.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"

namespace spar {
namespace {

using graph::Graph;

// Runs f under a temporary thread budget (par::ThreadLimit restores it).
template <typename F>
auto run_with(int threads, F&& f) {
  support::par::ThreadLimit limit(threads);
  return f();
}

TEST(Determinism, SpannerIdenticalAcrossThreadCounts) {
  const Graph g = graph::connected_erdos_renyi(300, 0.08, 3);
  const graph::CSRGraph csr(g);
  const auto base = run_with(1, [&] {
    return spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 5});
  });
  for (int threads : {2, 4}) {
    const auto other = run_with(threads, [&] {
      return spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 5});
    });
    EXPECT_EQ(base, other) << threads << " threads";
  }
}

TEST(Determinism, BundleIdenticalAcrossThreadCounts) {
  const Graph g = graph::complete_graph(64);
  const auto base =
      run_with(1, [&] { return spanner::t_bundle(g, {.t = 3, .seed = 7}); });
  const auto other =
      run_with(4, [&] { return spanner::t_bundle(g, {.t = 3, .seed = 7}); });
  EXPECT_EQ(base.in_bundle, other.in_bundle);
}

TEST(Determinism, SparsifyIdenticalAcrossThreadCounts) {
  const Graph g = graph::complete_graph(80);
  sparsify::SparsifyOptions opt;
  opt.rho = 8.0;
  opt.t = 1;
  opt.seed = 9;
  const auto base =
      run_with(1, [&] { return sparsify::parallel_sparsify(g, opt); });
  const auto other =
      run_with(4, [&] { return sparsify::parallel_sparsify(g, opt); });
  EXPECT_TRUE(base.sparsifier.same_edges(other.sparsifier));
}

TEST(Determinism, CsrConstructionIdenticalAcrossThreadCounts) {
  const Graph g = graph::connected_erdos_renyi(500, 0.05, 11);
  const auto fingerprint = [&](int threads) {
    return run_with(threads, [&] {
      const graph::CSRGraph csr(g);
      // Fingerprint the full arc layout.
      std::vector<std::uint64_t> fp;
      for (graph::Vertex v = 0; v < csr.num_vertices(); ++v)
        for (const graph::Arc& arc : csr.neighbors(v))
          fp.push_back((std::uint64_t(arc.to) << 32) ^ arc.id);
      return fp;
    });
  };
  const auto base = fingerprint(1);
  EXPECT_EQ(base, fingerprint(2));
  EXPECT_EQ(base, fingerprint(4));
}

TEST(Determinism, DistributedSpannerIndependentOfSharedMemoryThreads) {
  const Graph g = graph::connected_erdos_renyi(120, 0.1, 13);
  const graph::CSRGraph csr(g);
  const auto base = run_with(1, [&] {
    return dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = 15});
  });
  const auto other = run_with(4, [&] {
    return dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = 15});
  });
  EXPECT_EQ(base.spanner_edges, other.spanner_edges);
  EXPECT_EQ(base.metrics.rounds, other.metrics.rounds);
  EXPECT_EQ(base.metrics.messages, other.metrics.messages);
}

}  // namespace
}  // namespace spar
