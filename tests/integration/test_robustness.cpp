// Numerical robustness: the full pipeline on extreme weight ranges, tiny
// graphs, and adversarial shapes. These are failure-injection style tests --
// inputs chosen to break naive implementations (overflow of resistance sums,
// loss of precision in certificates, degenerate clusterings).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "solver/solver.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/stretch.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/rng.hpp"

namespace spar {
namespace {

using graph::Graph;

TEST(Robustness, SpannerWithSixOrderWeightRange) {
  // Weights spanning 1e-3..1e3: resistance-ordering must stay exact.
  const Graph g =
      graph::randomize_weights(graph::connected_erdos_renyi(150, 0.1, 3),
                               std::log(1e3), 7);
  const std::size_t k = spanner::auto_spanner_k(g.num_vertices());
  const graph::CSRGraph csr(g);
  const auto ids = spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 5});
  std::vector<bool> mask(g.num_edges(), false);
  for (auto id : ids) mask[id] = true;
  const auto report = spanner::stretch_over_subgraph(g, mask);
  EXPECT_EQ(report.disconnected_pairs, 0u);
  EXPECT_LE(report.max_stretch, double(2 * k - 1) * (1 + 1e-9));
}

TEST(Robustness, SparsifyExtremeWeights) {
  const Graph g =
      graph::randomize_weights(graph::complete_graph(50), std::log(1e3), 11);
  sparsify::SparsifyOptions opt;
  opt.rho = 4.0;
  opt.t = 3;
  opt.seed = 13;
  const auto result = sparsify::parallel_sparsify(g, opt);
  const auto bounds = sparsify::exact_relative_bounds(g, result.sparsifier);
  EXPECT_GT(bounds.lower, 0.0);
  EXPECT_TRUE(std::isfinite(bounds.upper));
  EXPECT_LT(bounds.upper, 4.0);
}

TEST(Robustness, TinyGraphsThroughEveryEntryPoint) {
  for (graph::Vertex n : {2u, 3u, 4u}) {
    const Graph g = graph::complete_graph(n);
    // Spanner.
    EXPECT_NO_THROW(spanner::spanner(g, {.k = 0, .seed = 1}));
    // Sample + sparsify.
    sparsify::SampleOptions sopt;
    sopt.t = 1;
    EXPECT_NO_THROW(sparsify::parallel_sample(g, sopt));
    sparsify::SparsifyOptions spopt;
    spopt.rho = 4.0;
    spopt.t = 1;
    EXPECT_NO_THROW(sparsify::parallel_sparsify(g, spopt));
    // Certificate.
    const auto bounds = sparsify::exact_relative_bounds(g, g);
    EXPECT_NEAR(bounds.lower, 1.0, 1e-8);
  }
}

TEST(Robustness, SingleEdgeGraph) {
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  const Graph h = spanner::spanner(g, {.k = 0, .seed = 1});
  EXPECT_EQ(h.num_edges(), 1u);
  sparsify::SampleOptions opt;
  opt.t = 1;
  const auto result = sparsify::parallel_sample(g, opt);
  EXPECT_TRUE(result.sparsifier.same_edges(g));
}

TEST(Robustness, SolverOnStiffWeights) {
  // Grid with weights spanning 4 orders of magnitude: kappa is large; the
  // chain-PCG must still converge.
  const Graph g =
      graph::randomize_weights(graph::grid2d(12, 12), std::log(1e2), 17);
  const solver::SDDMatrix m{Graph(g)};
  support::Rng rng(19);
  linalg::Vector b(m.dimension());
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  solver::SolveOptions opt;
  opt.chain.max_levels = 10;
  const auto report = solver::solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
}

TEST(Robustness, StarGraphSpannersAndSampling) {
  // Max-degree stress: star graphs exercise the per-vertex grouping paths.
  const Graph g = graph::star_graph(500);
  const Graph h = spanner::spanner(g, {.k = 0, .seed = 3});
  EXPECT_EQ(h.num_edges(), g.num_edges());  // a tree: all kept
  sparsify::SampleOptions opt;
  opt.t = 1;
  const auto result = sparsify::parallel_sample(g, opt);
  EXPECT_TRUE(result.sparsifier.same_edges(g));
}

TEST(Robustness, HeavyParallelEdgesCoalesceConsistently) {
  Graph g(3);
  for (int i = 0; i < 50; ++i) {
    g.add_edge(0, 1, 1e-3);
    g.add_edge(1, 2, 1e3);
  }
  const Graph c = g.coalesced();
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_NEAR(c.total_weight(), 50 * (1e-3 + 1e3), 1e-6);
  // Certificates treat the multigraph and its coalesced form identically.
  const auto bounds = sparsify::exact_relative_bounds(c, g);
  EXPECT_NEAR(bounds.lower, 1.0, 1e-8);
  EXPECT_NEAR(bounds.upper, 1.0, 1e-8);
}

TEST(Robustness, CertifierHandlesNearIdenticalGraphs) {
  // eps ~ 1e-12 regime: certificate must not report negative deviations.
  const Graph g = graph::connected_erdos_renyi(40, 0.3, 23);
  Graph h(g.num_vertices());
  for (const auto& e : g.edges()) h.add_edge(e.u, e.v, e.w * (1.0 + 1e-12));
  const auto bounds = sparsify::exact_relative_bounds(g, h);
  EXPECT_GE(bounds.upper, bounds.lower);
  EXPECT_NEAR(bounds.epsilon(), 0.0, 1e-6);
}

TEST(Robustness, DijkstraOnChainOfExtremeResistances) {
  Graph g(4);
  g.add_edge(0, 1, 1e-9);  // resistance 1e9
  g.add_edge(1, 2, 1e9);   // resistance 1e-9
  g.add_edge(2, 3, 1.0);
  const auto dist = graph::dijkstra(graph::CSRGraph(g), 0);
  EXPECT_NEAR(dist[3], 1e9 + 1e-9 + 1.0, 1.0);
}

}  // namespace
}  // namespace spar
