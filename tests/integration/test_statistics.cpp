// Statistical properties of the randomized algorithms, averaged over many
// seeds: unbiasedness of the samplers (E[L_H] = L_G edge-wise) and
// concentration of the certified approximation quality. These complement the
// single-seed property tests: a sampler can pass per-seed envelopes while
// being subtly biased, which only multi-seed averages expose.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/stats.hpp"

namespace spar {
namespace {

using graph::EdgeId;
using graph::Graph;

TEST(SamplerStatistics, ParallelSampleIsUnbiasedPerEdge) {
  // Average the sparsifier's per-edge weight over seeds: for every edge the
  // mean must converge to the original weight (bundle edges keep w; sampled
  // edges contribute 4w * 1/4 in expectation).
  const Graph g = graph::complete_graph(40);
  const int trials = 64;
  std::vector<double> mean_weight(g.num_edges(), 0.0);
  for (int trial = 0; trial < trials; ++trial) {
    sparsify::SampleOptions opt;
    opt.t = 1;
    opt.seed = 1000 + trial;
    const auto result = sparsify::parallel_sample(g, opt);
    // Re-accumulate by endpoint pair (edge ids differ between G and G~).
    for (const auto& e : result.sparsifier.edges()) {
      for (EdgeId id = 0; id < g.num_edges(); ++id) {
        const auto& orig = g.edge(id);
        if ((orig.u == e.u && orig.v == e.v) || (orig.u == e.v && orig.v == e.u)) {
          mean_weight[id] += e.w / trials;
          break;
        }
      }
    }
  }
  // Per-edge standard error ~ w*sqrt(3)/sqrt(trials) ~ 0.22 for off-bundle;
  // check the global average tightly and each edge loosely.
  double total = 0.0;
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_NEAR(mean_weight[id], g.edge(id).w, 1.0) << "edge " << id;
    total += mean_weight[id];
  }
  EXPECT_NEAR(total, g.total_weight(), 0.03 * g.total_weight());
}

TEST(SamplerStatistics, UniformSparsifyUnbiasedTotalWeight) {
  const Graph g = graph::complete_graph(60);
  const int trials = 48;
  std::vector<double> totals;
  for (int trial = 0; trial < trials; ++trial)
    totals.push_back(sparsify::uniform_sparsify(g, 0.25, 2000 + trial).total_weight());
  const auto summary = support::summarize(totals);
  EXPECT_NEAR(summary.mean, g.total_weight(), 0.03 * g.total_weight());
}

TEST(SamplerStatistics, CertifiedEpsilonConcentrates) {
  // Over seeds, the certified eps of PARALLELSAMPLE should concentrate: its
  // spread (stddev) stays well below its mean, and no seed escapes (1 +- 1).
  const Graph g = graph::randomize_weights(graph::complete_graph(48), 0.5, 3);
  std::vector<double> epsilons;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sparsify::SampleOptions opt;
    opt.t = 3;
    opt.seed = seed;
    const auto result = sparsify::parallel_sample(g, opt);
    const auto bounds = sparsify::exact_relative_bounds(g, result.sparsifier);
    epsilons.push_back(bounds.epsilon());
    EXPECT_LT(bounds.epsilon(), 1.0) << "seed " << seed;
  }
  const auto summary = support::summarize(epsilons);
  EXPECT_LT(summary.stddev, 0.5 * summary.mean);
}

TEST(SamplerStatistics, SampledCountBinomialConcentration) {
  // Number of kept off-bundle edges is Binomial(off, 1/4): the empirical
  // mean over seeds must sit within a few standard errors.
  const Graph g = graph::complete_graph(80);
  const int trials = 32;
  double mean_kept = 0.0;
  std::size_t off_edges = 0;
  for (int trial = 0; trial < trials; ++trial) {
    sparsify::SampleOptions opt;
    opt.t = 1;
    opt.seed = 3000 + trial;
    const auto result = sparsify::parallel_sample(g, opt);
    mean_kept += double(result.sampled_edges) / trials;
    off_edges = result.off_bundle_edges;  // varies slightly per seed; fine
  }
  const double expected = 0.25 * double(off_edges);
  const double stderr_mean =
      std::sqrt(0.25 * 0.75 * double(off_edges) / trials);
  EXPECT_NEAR(mean_kept, expected, 6.0 * stderr_mean + 30.0);
}

}  // namespace
}  // namespace spar
