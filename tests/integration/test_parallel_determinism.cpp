// Seed-determinism of the full PARALLELSPARSIFY pipeline across thread
// counts: the substrate's counter-based coins and deterministic reductions
// must make `parallel_sparsify` emit bit-identical edge sets for 1 and N
// threads, and the distributed simulator must reproduce the shared-memory
// output exactly (same derived seeds, same decision logic).
#include <gtest/gtest.h>

#include <vector>

#include "dist/dist_spanner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "spanner/baswana_sen.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar {
namespace {

using graph::Graph;

sparsify::SparsifyOptions sparsify_options(std::uint64_t seed) {
  sparsify::SparsifyOptions opt;
  opt.rho = 8.0;
  opt.t = 2;
  opt.seed = seed;
  return opt;
}

TEST(ParallelDeterminism, SparsifyEdgeSetsIdenticalAcrossThreadCounts) {
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 21);
  sparsify::SparsifyResult base;
  {
    support::par::ThreadLimit one(1);
    base = sparsify::parallel_sparsify(g, sparsify_options(33));
  }
  for (int threads : {2, 4, 8}) {
    support::par::ThreadLimit limit(threads);
    const auto other = sparsify::parallel_sparsify(g, sparsify_options(33));
    EXPECT_TRUE(base.sparsifier.same_edges(other.sparsifier))
        << threads << " threads";
    ASSERT_EQ(base.rounds.size(), other.rounds.size());
    for (std::size_t r = 0; r < base.rounds.size(); ++r) {
      EXPECT_EQ(base.rounds[r].edges_after, other.rounds[r].edges_after);
      EXPECT_EQ(base.rounds[r].sampled_edges, other.rounds[r].sampled_edges);
    }
  }
}

TEST(ParallelDeterminism, SampleIdenticalAcrossThreadCountsOnSparseGraph) {
  const Graph g = graph::connected_erdos_renyi(400, 0.06, 5);
  sparsify::SampleOptions opt;
  opt.t = 2;
  opt.seed = 11;
  sparsify::SampleResult base;
  {
    support::par::ThreadLimit one(1);
    base = sparsify::parallel_sample(g, opt);
  }
  {
    support::par::ThreadLimit four(4);
    const auto other = sparsify::parallel_sample(g, opt);
    EXPECT_TRUE(base.sparsifier.same_edges(other.sparsifier));
    EXPECT_EQ(base.bundle_edges, other.bundle_edges);
    EXPECT_EQ(base.sampled_edges, other.sampled_edges);
  }
}

TEST(ParallelDeterminism, DistributedSimulatorReproducesSharedMemorySpanner) {
  const Graph g = graph::connected_erdos_renyi(250, 0.08, 17);
  const graph::CSRGraph csr(g);
  const auto shared =
      spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 23});
  const auto distributed = dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = 23});
  EXPECT_EQ(shared, distributed.spanner_edges);
}

TEST(ParallelDeterminism, DistributedSampleReproducesSharedMemorySample) {
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 29);
  sparsify::SampleOptions shared_opt;
  shared_opt.t = 3;
  shared_opt.seed = 31;
  const auto shared = sparsify::parallel_sample(g, shared_opt);
  dist::DistSampleOptions dist_opt;
  dist_opt.t = 3;
  dist_opt.seed = 31;
  const auto distributed = dist::distributed_parallel_sample(g, dist_opt);
  EXPECT_TRUE(shared.sparsifier.same_edges(distributed.sparsifier));
  EXPECT_EQ(shared.bundle_edges, distributed.bundle_edges);
  EXPECT_EQ(shared.sampled_edges, distributed.sampled_edges);
}

TEST(ParallelDeterminism, DotProductBitIdenticalAcrossThreadCounts) {
  // The linalg reductions feed CG/Chebyshev; their chunked deterministic
  // summation keeps whole solver trajectories reproducible across machines.
  const std::size_t n = 1 << 17;  // above the parallel threshold
  std::vector<double> a(n), b(n);
  support::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  double base;
  {
    support::par::ThreadLimit one(1);
    base = linalg::dot(a, b);
  }
  for (int threads : {2, 4}) {
    support::par::ThreadLimit limit(threads);
    EXPECT_EQ(base, linalg::dot(a, b)) << threads << " threads";
  }
}

}  // namespace
}  // namespace spar
