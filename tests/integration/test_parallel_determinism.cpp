// Seed-determinism of the full PARALLELSPARSIFY pipeline across thread
// counts: the substrate's counter-based coins and deterministic reductions
// must make `parallel_sparsify` emit bit-identical edge sets for 1 and N
// threads, and the distributed simulator must reproduce the shared-memory
// output exactly (same derived seeds, same decision logic).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "dist/dist_spanner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "spanner/baswana_sen.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar {
namespace {

using graph::Graph;

sparsify::SparsifyOptions sparsify_options(std::uint64_t seed) {
  sparsify::SparsifyOptions opt;
  opt.rho = 8.0;
  opt.t = 2;
  opt.seed = seed;
  return opt;
}

/// Order-insensitive, bit-exact fingerprint of (n, edge multiset): FNV-1a
/// over the normalized sorted edge list, weights by IEEE-754 bit pattern.
std::uint64_t edge_multiset_hash(const Graph& g) {
  std::vector<graph::Edge> es(g.edges().begin(), g.edges().end());
  for (auto& e : es)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_vertices());
  mix(es.size());
  for (const auto& e : es) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wb = 0;
    std::memcpy(&wb, &e.w, sizeof(wb));
    mix(wb);
  }
  return h;
}

TEST(ParallelDeterminism, SparsifyEdgeSetsIdenticalAcrossThreadCounts) {
  const Graph g = graph::randomize_weights(graph::complete_graph(90), 0.5, 21);
  sparsify::SparsifyResult base;
  {
    support::par::ThreadLimit one(1);
    base = sparsify::parallel_sparsify(g, sparsify_options(33));
  }
  for (int threads : {2, 4, 8}) {
    support::par::ThreadLimit limit(threads);
    const auto other = sparsify::parallel_sparsify(g, sparsify_options(33));
    EXPECT_TRUE(base.sparsifier.same_edges(other.sparsifier))
        << threads << " threads";
    ASSERT_EQ(base.rounds.size(), other.rounds.size());
    for (std::size_t r = 0; r < base.rounds.size(); ++r) {
      EXPECT_EQ(base.rounds[r].edges_after, other.rounds[r].edges_after);
      EXPECT_EQ(base.rounds[r].sampled_edges, other.rounds[r].sampled_edges);
    }
  }
}

TEST(ParallelDeterminism, SparsifyOutputMatchesPreRefactorGoldenHashes) {
  // Golden fingerprints recorded from the pre-EdgeArena pipeline (PR 1 state,
  // serial assemble loop + per-round Graph/CSR rebuild) on x86-64 gcc,
  // Release. The zero-copy round pipeline must reproduce them bit for bit,
  // for every thread count and for the OpenMP-off build (this test runs in
  // both CI configurations). Weights go through IEEE *, /, and glibc
  // exp/log in the generators only, so the constants are stable on the
  // toolchains CI uses. If a deliberate algorithm change breaks them,
  // re-record via the recipe in BUILDING.md ("Re-baselining").
  struct GoldenCase {
    const char* name;
    Graph g;
    sparsify::SparsifyOptions opt;
    std::size_t edges_out;
    std::uint64_t hash;
  };
  sparsify::SparsifyOptions er_opt;
  er_opt.rho = 4.0;
  er_opt.t = 2;
  er_opt.seed = 7;
  sparsify::SparsifyOptions tree_opt;
  tree_opt.rho = 4.0;
  tree_opt.t = 2;
  tree_opt.seed = 9;
  tree_opt.bundle_kind = sparsify::BundleKind::kTree;

  std::vector<GoldenCase> cases;
  cases.push_back({"complete90",
                   graph::randomize_weights(graph::complete_graph(90), 0.5, 21),
                   sparsify_options(33), 1063, 0x499d6702380afe3cULL});
  cases.push_back({"er300", graph::connected_erdos_renyi(300, 0.08, 5), er_opt,
                   3054, 0x1918ee21c74950d0ULL});
  cases.push_back({"er300-tree", graph::connected_erdos_renyi(300, 0.08, 5),
                   tree_opt, 827, 0xb5eebf49cd2ccfedULL});

  for (const auto& c : cases) {
    for (int threads : {1, 2, 4}) {
      support::par::ThreadLimit limit(threads);
      const auto result = sparsify::parallel_sparsify(c.g, c.opt);
      EXPECT_EQ(result.sparsifier.num_edges(), c.edges_out)
          << c.name << " @ " << threads << " threads";
      EXPECT_EQ(edge_multiset_hash(result.sparsifier), c.hash)
          << c.name << " @ " << threads << " threads";
    }
  }
}

TEST(ParallelDeterminism, SampleIdenticalAcrossThreadCountsOnSparseGraph) {
  const Graph g = graph::connected_erdos_renyi(400, 0.06, 5);
  sparsify::SampleOptions opt;
  opt.t = 2;
  opt.seed = 11;
  sparsify::SampleResult base;
  {
    support::par::ThreadLimit one(1);
    base = sparsify::parallel_sample(g, opt);
  }
  {
    support::par::ThreadLimit four(4);
    const auto other = sparsify::parallel_sample(g, opt);
    EXPECT_TRUE(base.sparsifier.same_edges(other.sparsifier));
    EXPECT_EQ(base.bundle_edges, other.bundle_edges);
    EXPECT_EQ(base.sampled_edges, other.sampled_edges);
  }
}

TEST(ParallelDeterminism, DistributedSimulatorReproducesSharedMemorySpanner) {
  const Graph g = graph::connected_erdos_renyi(250, 0.08, 17);
  const graph::CSRGraph csr(g);
  const auto shared =
      spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = 23});
  const auto distributed = dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = 23});
  EXPECT_EQ(shared, distributed.spanner_edges);
}

TEST(ParallelDeterminism, DistributedSampleReproducesSharedMemorySample) {
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 29);
  sparsify::SampleOptions shared_opt;
  shared_opt.t = 3;
  shared_opt.seed = 31;
  const auto shared = sparsify::parallel_sample(g, shared_opt);
  dist::DistSampleOptions dist_opt;
  dist_opt.t = 3;
  dist_opt.seed = 31;
  const auto distributed = dist::distributed_parallel_sample(g, dist_opt);
  EXPECT_TRUE(shared.sparsifier.same_edges(distributed.sparsifier));
  EXPECT_EQ(shared.bundle_edges, distributed.bundle_edges);
  EXPECT_EQ(shared.sampled_edges, distributed.sampled_edges);
}

TEST(ParallelDeterminism, DotProductBitIdenticalAcrossThreadCounts) {
  // The linalg reductions feed CG/Chebyshev; their chunked deterministic
  // summation keeps whole solver trajectories reproducible across machines.
  const std::size_t n = 1 << 17;  // above the parallel threshold
  std::vector<double> a(n), b(n);
  support::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  double base;
  {
    support::par::ThreadLimit one(1);
    base = linalg::dot(a, b);
  }
  for (int threads : {2, 4}) {
    support::par::ThreadLimit limit(threads);
    EXPECT_EQ(base, linalg::dot(a, b)) << threads << " threads";
  }
}

}  // namespace
}  // namespace spar
