// Cross-module integration tests: the full pipelines a user of libspar runs.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/dist_spanner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/traversal.hpp"
#include "resistance/effective_resistance.hpp"
#include "solver/solver.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/rng.hpp"

#include <sstream>

namespace spar {
namespace {

using graph::Graph;
using linalg::Vector;

TEST(Pipeline, SparsifyThenSolveMatchesDirectSolve) {
  // Solve L_G x = b and L_H x = b with H a sparsifier: solutions must agree
  // up to the spectral approximation quality.
  const Graph g = graph::randomize_weights(graph::complete_graph(80), 0.5, 3);
  sparsify::SparsifyOptions sopt;
  sopt.epsilon = 0.5;
  sopt.rho = 8.0;
  sopt.t = 4;
  sopt.seed = 7;
  const auto sp = sparsify::parallel_sparsify(g, sopt);
  ASSERT_LT(sp.sparsifier.num_edges(), g.num_edges());

  const solver::SDDMatrix mg((Graph(g)));
  const solver::SDDMatrix mh((Graph(sp.sparsifier)));
  support::Rng rng(5);
  Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);

  const auto xg = solver::solve_cg(mg, b);
  const auto xh = solver::solve_cg(mh, b);
  ASSERT_TRUE(xg.converged);
  ASSERT_TRUE(xh.converged);

  // Relative error in the G-energy norm is bounded by the certificate eps.
  const auto bounds = sparsify::exact_relative_bounds(g, sp.sparsifier);
  Vector diff(b.size());
  for (std::size_t i = 0; i < b.size(); ++i)
    diff[i] = xg.solution[i] - xh.solution[i];
  const double err_energy = mg.quadratic_form(diff);
  const double sol_energy = mg.quadratic_form(xg.solution);
  const double eps = bounds.epsilon();
  ASSERT_LT(eps, 1.0);
  // || x_G - x_H ||_G <= ~ eps/(1-eps) * || x_G ||_G  (standard perturbation)
  EXPECT_LE(std::sqrt(err_energy / sol_energy), 1.5 * eps / (1.0 - eps) + 0.05);
}

TEST(Pipeline, SparsifierAsPreconditioner) {
  // PCG on L_G preconditioned by a direct solve of the sparsifier converges
  // in few iterations -- the core "preconditioning" application.
  const Graph g = graph::randomize_weights(graph::complete_graph(60), 0.5, 9);
  sparsify::SparsifyOptions sopt;
  sopt.rho = 8.0;
  sopt.t = 3;
  sopt.seed = 3;
  const auto sp = sparsify::parallel_sparsify(g, sopt);
  const auto bounds = sparsify::exact_relative_bounds(g, sp.sparsifier);
  ASSERT_GT(bounds.lower, 0.0);
  // Condition number of the preconditioned system:
  const double kappa = bounds.upper / bounds.lower;
  // CG on the preconditioned pencil needs ~ sqrt(kappa) iterations; with
  // kappa < 4 that is a handful.
  EXPECT_LT(kappa, 6.0);
}

TEST(Pipeline, DistributedAndSharedSamplesAgreeSpectrally) {
  const Graph g = graph::randomize_weights(graph::complete_graph(50), 0.5, 11);
  sparsify::SampleOptions shared;
  shared.t = 3;
  shared.seed = 13;
  const auto shared_result = sparsify::parallel_sample(g, shared);
  dist::DistSampleOptions distributed;
  distributed.t = 3;
  distributed.seed = 13;
  const auto dist_result = dist::distributed_parallel_sample(g, distributed);

  const auto b1 = sparsify::exact_relative_bounds(g, shared_result.sparsifier);
  const auto b2 = sparsify::exact_relative_bounds(g, dist_result.sparsifier);
  // Both are (1 +- eps) sparsifiers of the same graph with comparable eps.
  EXPECT_LT(std::abs(b1.epsilon() - b2.epsilon()), 0.4);
  EXPECT_GT(b2.lower, 0.2);
  EXPECT_LT(b2.upper, 1.9);
}

TEST(Pipeline, ResistancesOfSparsifierApproximateOriginal) {
  const Graph g = graph::randomize_weights(graph::complete_graph(40), 0.5, 17);
  sparsify::SampleOptions sopt;
  sopt.t = 4;
  sopt.seed = 19;
  const auto sp = sparsify::parallel_sample(g, sopt);
  const auto bounds = sparsify::exact_relative_bounds(g, sp.sparsifier);
  ASSERT_GT(bounds.lower, 0.0);
  // R_e[H] in [R_e[G]/upper, R_e[G]/lower] for the pencil bounds.
  const auto rg = resistance::exact_effective_resistances(g);
  const auto edges = g.edges();
  for (std::size_t i = 0; i < std::min<std::size_t>(edges.size(), 50); ++i) {
    const double rh = resistance::exact_effective_resistance(
        sp.sparsifier, edges[i].u, edges[i].v);
    EXPECT_GE(rh, rg[i] / bounds.upper - 1e-9);
    EXPECT_LE(rh, rg[i] / bounds.lower + 1e-9);
  }
}

TEST(Pipeline, SerializationRoundTripThroughSparsifier) {
  const Graph g = graph::randomize_weights(graph::complete_graph(36), 0.5, 23);
  sparsify::SparsifyOptions sopt;
  sopt.rho = 4.0;
  sopt.t = 2;
  sopt.seed = 29;
  const auto sp = sparsify::parallel_sparsify(g, sopt);
  std::stringstream buffer;
  graph::write_edge_list(buffer, sp.sparsifier);
  const Graph loaded = graph::read_edge_list(buffer);
  EXPECT_TRUE(loaded.same_edges(sp.sparsifier));
}

TEST(Pipeline, KoutisVsSpielmanSrivastavaOnSameGraph) {
  // Remark 4's comparison: both produce valid sparsifiers; the SS one needs
  // resistance estimates (a solver), ours does not.
  const Graph g = graph::randomize_weights(graph::complete_graph(70), 0.5, 31);
  sparsify::SparsifyOptions kopt;
  kopt.rho = 8.0;
  kopt.t = 3;
  kopt.seed = 37;
  const auto koutis = sparsify::parallel_sparsify(g, kopt);

  sparsify::SpielmanSrivastavaOptions ssopt;
  ssopt.epsilon = 0.5;
  ssopt.resistance_mode = sparsify::ResistanceMode::kExactDense;
  ssopt.seed = 41;
  const auto ss = sparsify::spielman_srivastava(g, ssopt);

  const auto bk = sparsify::exact_relative_bounds(g, koutis.sparsifier);
  const auto bs = sparsify::exact_relative_bounds(g, ss.sparsifier);
  EXPECT_GT(bk.lower, 0.25);
  EXPECT_LT(bk.upper, 1.75);
  EXPECT_GT(bs.lower, 0.25);
  EXPECT_LT(bs.upper, 1.75);
}

TEST(Pipeline, UniformSamplingFailsWhereBundleSucceeds) {
  // The paper's core point: uniform sampling without the bundle breaks the
  // dumbbell; PARALLELSAMPLE never does.
  const Graph g = graph::dumbbell(25, 0.01);
  int uniform_fail = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph u = sparsify::uniform_sparsify(g, 0.25, seed);
    if (!graph::is_connected(graph::CSRGraph(u))) ++uniform_fail;
    sparsify::SampleOptions sopt;
    sopt.t = 1;
    sopt.seed = seed;
    const auto sp = sparsify::parallel_sample(g, sopt);
    EXPECT_TRUE(graph::is_connected(graph::CSRGraph(sp.sparsifier)))
        << "seed " << seed;
  }
  EXPECT_GT(uniform_fail, 5);
}

TEST(Pipeline, EndToEndPoissonOnSparsifiedGrid) {
  // Remark 1 scenario: 2D grid "image" Laplacian; sparsify (no-op on grids --
  // the bundle keeps them) and solve a Poisson problem.
  const Graph g = graph::grid2d(16, 16);
  sparsify::SparsifyOptions sopt;
  sopt.rho = 4.0;
  sopt.t = 1;
  sopt.seed = 43;
  const auto sp = sparsify::parallel_sparsify(g, sopt);
  const solver::SDDMatrix m((Graph(sp.sparsifier)));
  support::Rng rng(47);
  Vector b(m.dimension());
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  solver::SolveOptions opt;
  opt.chain.max_levels = 8;
  const auto report = solver::solve_sdd(m, b, opt);
  EXPECT_TRUE(report.converged);
}

}  // namespace
}  // namespace spar
