// Oracle matrix for the spectral partitioning app (PR 10):
//
//  1. the Fiedler VALUE from the block inverse-power iteration is held
//     against dense symmetric_eigenvalues on a (family x seed) parameter
//     grid, and the returned vector must actually be an eigenvector
//     (small eigenresidual, mean-free, unit, sign-fixed);
//  2. the SWEEP CUT is held against brute-force enumeration of every
//     bipartition on n <= 12 instances: scanning the optimal indicator must
//     recover the optimal conductance exactly, and the Fiedler sweep can
//     never beat it;
//  3. determinism: sign-fixed Fiedler vectors are bit-identical at 1/2/4
//     threads and in the OpenMP-off build (same golden hash -- re-record via
//     BUILDING.md "Re-baselining" after deliberate algorithm changes), and
//     the convenience entry point agrees bitwise with the caller-owned
//     resident-chain overload (chain-reuse identity).
#include "apps/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::apps {
namespace {

using graph::Graph;

// FNV-1a over the raw double bytes: bit-identical vectors -- and only those
// -- hash alike (the fingerprint apps_tool and bench_apps also use).
std::uint64_t vector_hash(const linalg::Vector& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double x : v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// Minimum conductance over every proper bipartition (2^(n-1) - 1 of them,
// fixing vertex 0's side to kill the mirror symmetry). Ground truth for the
// sweep-cut tests; keep n <= 12.
double brute_force_min_conductance(const Graph& g, std::vector<bool>* best_side) {
  const std::size_t n = g.num_vertices();
  double best = 2.0;
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    std::vector<bool> side(n, false);
    for (std::size_t v = 1; v < n; ++v) side[v] = (mask >> (v - 1)) & 1u;
    const double phi = conductance(g, side);
    if (phi < best) {
      best = phi;
      if (best_side) *best_side = side;
    }
  }
  return best;
}

// ---- 1. Fiedler value vs the dense eigensolver --------------------------

struct OracleCase {
  std::string family;  // grid | er | complete | wgrid
  graph::Vertex a = 0, b = 0;
  std::uint64_t seed = 0;
};

Graph build(const OracleCase& c) {
  if (c.family == "grid") return graph::grid2d(c.a, c.b);
  if (c.family == "wgrid")
    return graph::randomize_weights(graph::grid2d(c.a, c.b), 2.0, c.seed);
  if (c.family == "er")
    return graph::connected_erdos_renyi(c.a, 8.0 / double(c.a), c.seed);
  if (c.family == "complete") return graph::complete_graph(c.a);
  ADD_FAILURE() << "unknown family " << c.family;
  return Graph(1);
}

class FiedlerDenseOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(FiedlerDenseOracle, MatchesSymmetricEigenvalues) {
  const OracleCase c = GetParam();
  const Graph g = build(c);
  FiedlerOptions opt;
  opt.seed = 11 + c.seed;
  // Small ER instances are near-expanders: lambda_2 / lambda_3 ~ 1 makes the
  // inverse-power contraction per step tiny, so grant them a deeper budget
  // (each step is one cheap batched solve at this size).
  if (c.family == "er") opt.max_iterations = 400;

  const FiedlerReport fr = fiedler_vector(g, opt);
  EXPECT_TRUE(fr.converged) << c.family;
  EXPECT_GT(fr.chain_levels, 0u);

  const linalg::Vector eig = linalg::symmetric_eigenvalues(
      linalg::DenseMatrix::from_csr(linalg::laplacian_matrix(g)));
  const double exact = eig[1];
  EXPECT_NEAR(fr.value, exact, 1e-6 * exact) << c.family;
  // lambda_3 Ritz estimate is an upper-spectrum witness: at least lambda_2.
  EXPECT_GE(fr.value_next, fr.value * (1.0 - 1e-9));

  // The vector itself: unit, mean-free (deflation), small eigenresidual,
  // sign-fixed (the first entry of largest magnitude is positive).
  const auto& v = fr.vector;
  ASSERT_EQ(v.size(), g.num_vertices());
  EXPECT_NEAR(linalg::norm2(v), 1.0, 1e-9);
  EXPECT_NEAR(linalg::mean(v), 0.0, 1e-9);
  EXPECT_LT(fr.residual, opt.tolerance);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
  EXPECT_GT(v[arg], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, FiedlerDenseOracle,
    ::testing::Values(OracleCase{"grid", 4, 5, 0}, OracleCase{"grid", 6, 6, 0},
                      OracleCase{"wgrid", 5, 5, 3}, OracleCase{"wgrid", 6, 4, 9},
                      OracleCase{"er", 24, 0, 1}, OracleCase{"er", 32, 0, 7},
                      OracleCase{"complete", 12, 0, 0},
                      OracleCase{"complete", 20, 0, 0}),
    [](const auto& info) {
      const OracleCase& c = info.param;
      return c.family + "_" + std::to_string(c.a) + "x" + std::to_string(c.b) +
             "_s" + std::to_string(c.seed);
    });

TEST(Fiedler, GridClosedForm) {
  // lambda_2 of an R x C unit grid is 2(1 - cos(pi / max(R, C))).
  const FiedlerReport fr = fiedler_vector(graph::grid2d(9, 4));
  EXPECT_NEAR(fr.value, 2.0 * (1.0 - std::cos(M_PI / 9.0)), 1e-7);
}

TEST(Fiedler, CompleteGraphValueIsN) {
  const FiedlerReport fr = fiedler_vector(graph::complete_graph(15));
  EXPECT_NEAR(fr.value, 15.0, 1e-6 * 15.0);
}

TEST(Fiedler, RejectsDisconnectedAndTrivialInputs) {
  Graph two(4);  // two disjoint edges
  two.add_edge(0, 1, 1.0);
  two.add_edge(2, 3, 1.0);
  EXPECT_THROW(fiedler_vector(two), spar::Error);
  EXPECT_THROW(fiedler_vector(Graph(1)), spar::Error);
}

// ---- 2. Sweep cut vs brute force on n <= 12 ------------------------------

struct SweepCase {
  std::string name;
  Graph g;
  // Paths are too thin for the inverse chain (squaring empties a level
  // diagonal -- the sparsify_tool grid:2x2 precedent), so only the scan-only
  // tests run on them; the Fiedler-driven test needs chain-friendly inputs.
  bool fiedler_ok = true;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  cases.push_back({"path10", graph::path_graph(10), false});
  cases.push_back({"cycle12", graph::cycle_graph(12)});
  cases.push_back({"grid3x4", graph::grid2d(3, 4)});
  cases.push_back({"dumbbell5", graph::dumbbell(5)});
  cases.push_back({"bipartite3x4", graph::complete_bipartite(3, 4)});
  cases.push_back(
      {"wpath11", graph::randomize_weights(graph::path_graph(11), 1.5, 4), false});
  return cases;
}

class SweepCutBruteForce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SweepCutBruteForce, OptimalIndicatorRecoversOptimum) {
  const SweepCase c = sweep_cases()[GetParam()];
  std::vector<bool> best_side;
  const double best = brute_force_min_conductance(c.g, &best_side);

  // Sweeping the optimal cut's own indicator puts the optimal prefix on the
  // sweep path, so the scan must return exactly the brute-force optimum.
  linalg::Vector indicator(c.g.num_vertices(), 0.0);
  for (std::size_t v = 0; v < best_side.size(); ++v)
    indicator[v] = best_side[v] ? 1.0 : 0.0;
  const SweepCutResult cut = sweep_cut(c.g, indicator);
  EXPECT_NEAR(cut.conductance, best, 1e-12) << c.name;

  // Internal consistency: the incremental scan's winner must price exactly
  // like the from-scratch conductance of the returned side.
  EXPECT_NEAR(cut.conductance, conductance(c.g, cut.side), 1e-12);
  EXPECT_GT(cut.cut_size, 0u);
  EXPECT_LT(cut.cut_size, c.g.num_vertices());
}

TEST_P(SweepCutBruteForce, FiedlerSweepNeverBeatsBruteForce) {
  const SweepCase c = sweep_cases()[GetParam()];
  if (!c.fiedler_ok) GTEST_SKIP() << "chain degenerates on " << c.name;
  const double best = brute_force_min_conductance(c.g, nullptr);
  const PartitionReport part = spectral_partition(c.g);
  EXPECT_GE(part.cut.conductance, best - 1e-12) << c.name;
  // On these tiny structured instances the Fiedler sweep should in fact FIND
  // the optimum (path/cycle/grid/dumbbell cuts are spectral-friendly).
  EXPECT_NEAR(part.cut.conductance, best, 1e-9) << c.name;
  EXPECT_NEAR(part.cut.conductance, conductance(c.g, part.cut.side), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Instances, SweepCutBruteForce,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const auto& info) {
                           return sweep_cases()[info.param].name;
                         });

TEST(SweepCut, DumbbellFindsTheBridge) {
  // The bridge between the two cliques is the unique sensible cut.
  const Graph g = graph::dumbbell(6);
  const PartitionReport part = spectral_partition(g);
  EXPECT_EQ(part.cut.cut_size, 6u);
  EXPECT_NEAR(part.cut.cut_weight, 1.0, 1e-12);
  // Each side holds exactly one clique.
  const bool s0 = part.cut.side[0];
  for (graph::Vertex v = 0; v < 6; ++v) EXPECT_EQ(part.cut.side[v], s0);
  for (graph::Vertex v = 6; v < 12; ++v) EXPECT_EQ(part.cut.side[v], !s0);
}

TEST(SweepCut, RejectsSizeMismatch) {
  const Graph g = graph::path_graph(5);
  const linalg::Vector wrong(4, 0.0);
  EXPECT_THROW(sweep_cut(g, wrong), spar::Error);
}

// ---- 3. Determinism: golden hashes + chain-reuse identity ----------------

TEST(PartitionDeterminism, GoldenHashAcrossThreadCounts) {
  // The full app path -- chain build, batched solves, Rayleigh-Ritz, sweep
  // -- composes only chunk-ordered primitives, so the sign-fixed Fiedler
  // vector is bit-identical for any thread count and for the OpenMP-off
  // build. The golden value pins the x86-64 gcc Release build at fixed
  // (graph, seed); re-record via BUILDING.md ("Re-baselining") after
  // deliberate algorithm changes.
  const Graph g = graph::randomize_weights(graph::grid2d(16, 16), 2.0, 5);

  constexpr std::uint64_t kGoldenHash = 0xe68e634ac27bd591ULL;

  for (const int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const PartitionReport part = spectral_partition(g);
    EXPECT_TRUE(part.fiedler.converged);
    EXPECT_EQ(vector_hash(part.fiedler.vector), kGoldenHash)
        << threads << " threads";
  }
}

TEST(PartitionDeterminism, ChainReuseIsBitIdentical) {
  // The convenience entry point (fresh chain inside) and the caller-owned
  // resident-chain overload must agree bit for bit; and a second run against
  // the SAME resident chain must reproduce the first (no hidden state).
  const Graph g = graph::randomize_weights(graph::grid2d(12, 12), 2.0, 5);
  const FiedlerReport fresh = fiedler_vector(g);

  const solver::SDDMatrix m{Graph(g)};
  const solver::InverseChain chain(m, FiedlerOptions{}.solve.chain);
  const FiedlerReport first = fiedler_vector(m, chain);
  const FiedlerReport again = fiedler_vector(m, chain);

  ASSERT_EQ(fresh.vector.size(), first.vector.size());
  EXPECT_EQ(std::memcmp(fresh.vector.data(), first.vector.data(),
                        fresh.vector.size() * sizeof(double)),
            0);
  EXPECT_EQ(fresh.value, first.value);
  EXPECT_EQ(fresh.iterations, first.iterations);
  EXPECT_EQ(std::memcmp(first.vector.data(), again.vector.data(),
                        first.vector.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace spar::apps
