// Quality-on-task regression (PR 10): a sparsifier's certificate must cash
// out in what the application layer sees.
//
//  1. unit oracles for the rank statistics (spearman_correlation,
//     top_k_overlap) against closed forms;
//  2. the self-evaluation fixed point: evaluate_on_tasks(g, g) must report
//     exact agreement on every column (the two sides run the same
//     deterministic code on the same chain inputs);
//  3. the regression proper: for a static parallel_sparsify output and for a
//     DynamicSparsifier checkpoint, the same-cut conductance ratio and the
//     effective-resistance probe ratios must sit inside the window implied
//     by the MEASURED pencil epsilon (exact_relative_bounds -- NOT the
//     checkpoint's analytic certified_epsilon, which can undershoot the
//     exact pencil on dynamic towers; see DESIGN.md section 10). The window
//     is the looser of the exact pencil interval [(1-e)/(1+e), (1+e)/(1-e)]
//     and the ISSUE's (1 +- 3e) band -- the two coincide at e = 1/3 -- with
//     5% slack for the iterative solves.
#include "apps/task_quality.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"

namespace spar::apps {
namespace {

using graph::Graph;

// ---- 1. Rank-statistic unit oracles --------------------------------------

TEST(Spearman, IdenticalScoresGiveOne) {
  const linalg::Vector a = {0.5, 0.1, 0.9, 0.3};
  EXPECT_DOUBLE_EQ(spearman_correlation(a, a), 1.0);
}

TEST(Spearman, ReversedRankingGivesMinusOne) {
  const linalg::Vector a = {4.0, 3.0, 2.0, 1.0};
  const linalg::Vector b = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(spearman_correlation(a, b), -1.0);
}

TEST(Spearman, SingleSwapClosedForm) {
  // Swapping one adjacent pair: d^2 sums to 2, so rho = 1 - 12/(n(n^2-1)).
  const linalg::Vector a = {4.0, 3.0, 2.0, 1.0};
  const linalg::Vector b = {4.0, 2.0, 3.0, 1.0};
  const double n = 4.0;
  EXPECT_NEAR(spearman_correlation(a, b), 1.0 - 12.0 / (n * (n * n - 1.0)), 1e-15);
}

TEST(Spearman, RejectsMismatchedSizes) {
  const linalg::Vector a = {1.0, 2.0, 3.0};
  const linalg::Vector b = {1.0, 2.0};
  EXPECT_THROW(spearman_correlation(a, b), spar::Error);
}

TEST(TopKOverlap, IdenticalAndDisjoint) {
  const linalg::Vector a = {9.0, 8.0, 1.0, 2.0};
  const linalg::Vector b = {1.0, 2.0, 9.0, 8.0};  // top-2 sets are disjoint
  EXPECT_DOUBLE_EQ(top_k_overlap(a, a, 2), 1.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.0);
  // k clamps to the vector size, where the overlap is total by definition.
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 99), 1.0);
}

// ---- 2. Self-evaluation fixed point --------------------------------------

TEST(TaskQuality, SelfEvaluationIsExact) {
  const Graph g = graph::randomize_weights(graph::grid2d(8, 8), 2.0, 3);
  TaskQualityOptions opt;
  opt.resistance_pairs = 6;
  const TaskQualityReport tq = evaluate_on_tasks(g, g, opt);
  EXPECT_EQ(tq.fiedler_value_g, tq.fiedler_value_h);
  EXPECT_EQ(tq.conductance_g, tq.conductance_h);
  EXPECT_EQ(tq.cross_conductance, tq.conductance_g);
  EXPECT_DOUBLE_EQ(tq.spearman, 1.0);
  EXPECT_DOUBLE_EQ(tq.top_k_overlap, 1.0);
  EXPECT_EQ(tq.pagerank_l1_delta, 0.0);
  EXPECT_EQ(tq.min_resistance_ratio, 1.0);
  EXPECT_EQ(tq.max_resistance_ratio, 1.0);
}

TEST(TaskQuality, RejectsMismatchedOrDisconnectedInputs) {
  const Graph g = graph::grid2d(4, 4);
  EXPECT_THROW(evaluate_on_tasks(g, graph::grid2d(3, 3)), spar::Error);
  Graph disc(16);
  disc.add_edge(0, 1, 1.0);
  disc.add_edge(2, 3, 1.0);
  EXPECT_THROW(evaluate_on_tasks(g, disc), spar::Error);
}

// ---- 3. The regression: task metrics inside the measured pencil window ---

// The looser of the exact pencil interval and the (1 +- 3e) band (they cross
// at e = 1/3), widened 5% for solver tolerance. Every same-cut conductance
// and resistance ratio below must land inside.
struct Window {
  double lo, hi;
};

Window pencil_window(double e) {
  const double lo = std::min((1.0 - e) / (1.0 + e), 1.0 - 3.0 * e) / 1.05;
  const double hi = std::max((1.0 + e) / (1.0 - e), 1.0 + 3.0 * e) * 1.05;
  return {lo, hi};
}

void expect_inside_window(const Graph& base, const Graph& sparse,
                          const char* mode) {
  ASSERT_TRUE(graph::is_connected(graph::CSRGraph(sparse))) << mode;
  // MEASURED pencil epsilon from the exact dense interval -- sound even when
  // a dynamic checkpoint's analytic certificate undershoots (DESIGN.md
  // section 10). The fixture sizes keep the dense certifier cheap.
  const sparsify::ApproxBounds bounds =
      sparsify::exact_relative_bounds(base, sparse);
  ASSERT_TRUE(bounds.defined) << mode;
  const double e = bounds.epsilon();
  ASSERT_GT(e, 0.0) << mode << ": sparsifier is a no-op, fixture is vacuous";
  ASSERT_LT(e, 0.9) << mode << ": measured pencil too loose to test against";

  TaskQualityOptions opt;
  opt.resistance_pairs = 8;
  const TaskQualityReport tq = evaluate_on_tasks(base, sparse, opt);

  const Window w = pencil_window(e);
  // H's own cut priced on H vs priced on G: the same-cut conductance ratio
  // is directly controlled by the pencil.
  const double same_cut = tq.conductance_h / tq.cross_conductance;
  EXPECT_GE(same_cut, w.lo) << mode << " e=" << e;
  EXPECT_LE(same_cut, w.hi) << mode << " e=" << e;
  // R_H / R_G per probe pair: (1-e) L_G <= L_H <= (1+e) L_G flips to
  // resistance ratios in [1/(1+e), 1/(1-e)].
  EXPECT_GE(tq.min_resistance_ratio, 1.0 / (1.0 + e) / 1.05) << mode;
  EXPECT_LE(tq.max_resistance_ratio, 1.0 / (1.0 - e) * 1.05) << mode;
  // The Fiedler VALUE obeys the same pencil (eigenvalue interlacing under
  // the quadratic-form sandwich).
  const double value_ratio = tq.fiedler_value_h / tq.fiedler_value_g;
  EXPECT_GE(value_ratio, (1.0 - e) / 1.05) << mode;
  EXPECT_LE(value_ratio, (1.0 + e) * 1.05) << mode;
}

TEST(TaskQualityRegression, StaticSparsifier) {
  const Graph g = graph::complete_graph(150);
  sparsify::SparsifyOptions sopt;
  sopt.epsilon = 0.3;
  sopt.rho = 8.0;
  sopt.t = 3;
  sopt.seed = 17;
  const Graph h = sparsify::parallel_sparsify(g, sopt).sparsifier;
  ASSERT_LT(h.num_edges(), g.num_edges());
  expect_inside_window(g, h, "static");
}

TEST(TaskQualityRegression, DynamicCheckpoint) {
  // Turnstile stream (every edge inserted, 15% deleted) -> checkpoint; the
  // checkpoint sparsifies the SURVIVING graph, so the evaluation runs
  // against live_graph(), not the original.
  const Graph g = graph::complete_graph(150);
  const graph::UpdateBatch updates = graph::synthesize_updates(g, 0.15, 17);
  sparsify::DynamicOptions dopt;
  dopt.epsilon = 0.3;
  dopt.rho = 8.0;
  dopt.t = 3;
  dopt.seed = 17;
  sparsify::DynamicSparsifier dsp(g.num_vertices(), dopt);
  dsp.apply(updates);
  sparsify::DynCheckpoint cp = dsp.checkpoint();
  const Graph base = dsp.live_graph();
  ASSERT_LT(cp.sparsifier.num_edges(), base.num_edges());
  // The analytic certificate respects the requested budget by construction
  // -- but the exact pencil may exceed it (the documented latent gap), which
  // is exactly why expect_inside_window re-measures.
  EXPECT_LE(cp.certified_epsilon, dopt.epsilon + 1e-12);
  expect_inside_window(base, cp.sparsifier, "dynamic");
}

}  // namespace
}  // namespace spar::apps
