// Oracle matrix for the PageRank app (PR 10):
//
//  1. the power-iteration scores are held against a NAIVE double-loop
//     reference (plain serial loops over the edge list, no CSR, no parallel
//     substrate) to 1e-12 on a (family x damping x seed) parameter grid;
//  2. distribution invariants: scores sum to 1, are strictly positive under
//     uniform teleport, dangling (degree-zero) vertices keep their teleport
//     mass, personalized teleport localizes around the sources;
//  3. determinism: scores are bit-identical at 1/2/4 threads and in the
//     OpenMP-off build (golden hash -- re-record via BUILDING.md
//     "Re-baselining" after deliberate algorithm changes).
#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::apps {
namespace {

using graph::Graph;

std::uint64_t vector_hash(const linalg::Vector& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double x : v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// The oracle: the same fixed-point map, written as the obvious double loop
// over the raw edge list -- no CSR, no SpMV, no parallel reduction. Iterated
// far past the app's tolerance so the comparison at 1e-12 is meaningful.
linalg::Vector naive_pagerank(const Graph& g, const PageRankOptions& opt) {
  const std::size_t n = g.num_vertices();
  std::vector<double> deg(n, 0.0);
  for (const auto& e : g.edges()) {
    deg[e.u] += e.w;
    deg[e.v] += e.w;
  }
  std::vector<double> teleport(n, 0.0);
  if (opt.sources.empty()) {
    for (std::size_t i = 0; i < n; ++i) teleport[i] = 1.0 / double(n);
  } else {
    for (const graph::Vertex s : opt.sources)
      teleport[s] += 1.0 / double(opt.sources.size());
  }
  std::vector<double> x(n, 1.0 / double(n));
  for (std::size_t it = 0; it < 2000; ++it) {
    std::vector<double> next(n, 0.0);
    double dangling = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (deg[i] == 0.0) dangling += x[i];
    for (const auto& e : g.edges()) {
      next[e.v] += opt.damping * e.w * x[e.u] / deg[e.u];
      next[e.u] += opt.damping * e.w * x[e.v] / deg[e.v];
    }
    const double teleport_scale = opt.damping * dangling + (1.0 - opt.damping);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] += teleport_scale * teleport[i];
      delta += std::abs(next[i] - x[i]);
    }
    x.swap(next);
    if (delta < 1e-15) break;
  }
  return x;
}

struct PrCase {
  std::string family;
  graph::Vertex n = 0;
  double damping = 0.85;
  std::uint64_t seed = 0;
};

Graph build(const PrCase& c) {
  if (c.family == "grid") return graph::grid2d(c.n, c.n);
  if (c.family == "wgrid")
    return graph::randomize_weights(graph::grid2d(c.n, c.n), 2.0, c.seed);
  if (c.family == "er")
    return graph::connected_erdos_renyi(c.n, 8.0 / double(c.n), c.seed);
  if (c.family == "star") return graph::star_graph(c.n);
  if (c.family == "pa") return graph::preferential_attachment(c.n, 3, c.seed);
  ADD_FAILURE() << "unknown family " << c.family;
  return Graph(1);
}

class PageRankNaiveOracle : public ::testing::TestWithParam<PrCase> {};

TEST_P(PageRankNaiveOracle, MatchesDoubleLoopReference) {
  const PrCase c = GetParam();
  const Graph g = build(c);
  PageRankOptions opt;
  opt.damping = c.damping;

  const PageRankReport pr = pagerank(g, opt);
  EXPECT_TRUE(pr.converged);
  EXPECT_LT(pr.delta, opt.tolerance);

  const linalg::Vector ref = naive_pagerank(g, opt);
  ASSERT_EQ(pr.scores.size(), ref.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(pr.scores[i], ref[i], 1e-12) << "vertex " << i;
    EXPECT_GE(pr.scores[i], 0.0);
    sum += pr.scores[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Families, PageRankNaiveOracle,
    ::testing::Values(PrCase{"grid", 6, 0.85, 0}, PrCase{"wgrid", 6, 0.85, 3},
                      PrCase{"wgrid", 5, 0.5, 9}, PrCase{"er", 40, 0.85, 1},
                      PrCase{"er", 40, 0.6, 7}, PrCase{"star", 12, 0.85, 0},
                      PrCase{"pa", 48, 0.85, 2}),
    [](const auto& info) {
      const PrCase& c = info.param;
      return c.family + "_" + std::to_string(c.n) + "_d" +
             std::to_string(int(c.damping * 100)) + "_s" + std::to_string(c.seed);
    });

TEST(PageRank, StarConcentratesOnTheHub) {
  // star_graph's center is its highest-degree vertex; it must rank first.
  const Graph g = graph::star_graph(10);
  const PageRankReport pr = pagerank(g);
  const auto order = ranking(pr.scores);
  std::size_t hub = 0;
  double best = -1.0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    double d = 0.0;
    for (const auto& e : g.edges()) d += (e.u == v || e.v == v) ? e.w : 0.0;
    if (d > best) best = d, hub = v;
  }
  EXPECT_EQ(order.front(), hub);
}

TEST(PageRank, DanglingVerticesKeepTeleportMass) {
  // Two isolated vertices: their mass flows only through the teleport, so
  // their scores are equal and positive, and the total still sums to 1. The
  // closed form at the fixed point: x_iso = t_scale / n with t_scale =
  // d * dangling + (1 - d) -- check self-consistency instead of the scalar.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);  // vertices 4, 5 dangle
  const PageRankReport pr = pagerank(g);
  EXPECT_TRUE(pr.converged);
  EXPECT_EQ(pr.scores[4], pr.scores[5]);
  EXPECT_GT(pr.scores[4], 0.0);
  const double sum = std::accumulate(pr.scores.begin(), pr.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const double dangling = pr.scores[4] + pr.scores[5];
  const double t_scale = 0.85 * dangling + 0.15;
  EXPECT_NEAR(pr.scores[4], t_scale / 6.0, 1e-12);
}

TEST(PageRank, PersonalizedLocalizesAroundTheSource) {
  // Teleporting to one end of a path: scores decay monotonically with
  // distance from the source STARTING AT ITS NEIGHBOR (the source itself has
  // degree 1 and hands its whole walk mass to vertex 1, which also collects
  // from vertex 2 -- so x[1] > x[0] at the fixed point), and the source end
  // dominates the far end.
  const Graph g = graph::path_graph(12);
  PageRankOptions opt;
  opt.sources = {0};
  const PageRankReport pr = pagerank(g, opt);
  EXPECT_TRUE(pr.converged);
  for (std::size_t i = 1; i + 1 < pr.scores.size(); ++i)
    EXPECT_GT(pr.scores[i], pr.scores[i + 1]) << "position " << i;
  EXPECT_GT(pr.scores[0], pr.scores[4]);
}

TEST(PageRank, AllVerticesAsSourcesEqualsGlobal) {
  // Personalization over every vertex builds the same uniform teleport as
  // the global default, so the runs must agree BITWISE.
  const Graph g = graph::randomize_weights(graph::grid2d(5, 5), 2.0, 3);
  PageRankOptions all;
  all.sources.resize(g.num_vertices());
  std::iota(all.sources.begin(), all.sources.end(), 0u);
  const PageRankReport global = pagerank(g);
  const PageRankReport personalized = pagerank(g, all);
  EXPECT_EQ(std::memcmp(global.scores.data(), personalized.scores.data(),
                        global.scores.size() * sizeof(double)),
            0);
}

TEST(PageRank, DuplicateSourcesAccumulate) {
  // {0, 0} splits the teleport mass in halves that re-sum to 1.0 on vertex 0
  // -- identical to {0}.
  const Graph g = graph::cycle_graph(8);
  PageRankOptions one, two;
  one.sources = {0};
  two.sources = {0, 0};
  const auto a = pagerank(g, one).scores;
  const auto b = pagerank(g, two).scores;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(PageRank, RankingBreaksTiesByVertexId) {
  // Vertex-transitive graph => exactly uniform scores; the canonical ranking
  // must fall back to ascending vertex ids.
  const Graph g = graph::cycle_graph(9);
  const PageRankReport pr = pagerank(g);
  const auto order = ranking(pr.scores);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(PageRank, RejectsOutOfRangeSource) {
  PageRankOptions opt;
  opt.sources = {99};
  EXPECT_THROW(pagerank(graph::path_graph(4), opt), spar::Error);
}

TEST(PageRankDeterminism, GoldenHashAcrossThreadCounts) {
  // SpMV on the CSR kernel + chunk-ordered elementwise work: bit-identical
  // for any thread count and for the OpenMP-off build. Golden value pins the
  // x86-64 gcc Release build; re-record via BUILDING.md ("Re-baselining")
  // after deliberate algorithm changes.
  const Graph g = graph::randomize_weights(graph::grid2d(16, 16), 2.0, 5);

  constexpr std::uint64_t kGoldenHash = 0x1dfe8b5f0a569efbULL;

  for (const int threads : {1, 2, 4}) {
    support::par::ThreadLimit limit(threads);
    const PageRankReport pr = pagerank(g);
    EXPECT_TRUE(pr.converged);
    EXPECT_EQ(vector_hash(pr.scores), kGoldenHash) << threads << " threads";
  }
}

}  // namespace
}  // namespace spar::apps
