// Quickstart: sparsify a dense graph with PARALLELSPARSIFY (Algorithm 2 of
// Koutis, SPAA 2014) and certify the (1 +- eps) guarantee.
//
//   ./quickstart [--n=300] [--rho=8] [--eps=1.0] [--t=3] [--seed=1]
#include <cstdio>

#include "graph/generators.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  const auto n = static_cast<graph::Vertex>(opt.get_int("n", 300));
  const double rho = opt.get_double("rho", 8.0);
  const double eps = opt.get_double("eps", 1.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  // 1. A dense weighted input graph.
  const graph::Graph g =
      graph::randomize_weights(graph::complete_graph(n), 1.0, seed);
  std::printf("input:      n=%u  m=%zu\n", g.num_vertices(), g.num_edges());

  // 2. Sparsify: ceil(log2 rho) rounds of (t-bundle spanner + uniform 1/4
  //    sampling at weight 4w).
  sparsify::SparsifyOptions sopt;
  sopt.epsilon = eps;
  sopt.rho = rho;
  sopt.t = t;  // practical bundle width; 0 = the paper's theory constant
  sopt.seed = seed;
  const auto result = sparsify::parallel_sparsify(g, sopt);
  std::printf("sparsifier: m=%zu  (%.1fx fewer edges, %zu rounds)\n",
              result.sparsifier.num_edges(),
              double(g.num_edges()) / double(result.sparsifier.num_edges()),
              result.rounds.size());

  // 3. Certify: extreme generalized eigenvalues of (L_H, L_G).
  const auto bounds = sparsify::exact_relative_bounds(g, result.sparsifier);
  std::printf("certificate: %.4f * L_G <= L_H <= %.4f * L_G   (eps = %.4f)\n",
              bounds.lower, bounds.upper, bounds.epsilon());
  std::printf("round-by-round:\n");
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    std::printf("  round %zu: %zu -> %zu edges (bundle %zu, sampled %zu)\n",
                i + 1, r.edges_before, r.edges_after, r.bundle_edges,
                r.sampled_edges);
  }
  return 0;
}
