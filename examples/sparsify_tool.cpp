// Batch sparsification driver and graph format converter.
//
//   sparsify_tool <inputs...> [--method=koutis,ss] [--eps=0.5,1.0] [--rho=8,32]
//                 [--t=3] [--keep=0.25] [--seed=1] [--json=report.json]
//                 [--out=sparse.spb] [--solve-rhs=K]
//   sparsify_tool <inputs...> --stream [--batch-edges=N] [--json=report.json]
//   sparsify_tool --updates=u.spd [--batch-updates=N] [--json=report.json]
//   sparsify_tool <input> --make-updates=u.spd [--delete-fraction=f]
//   sparsify_tool --in=g.txt --convert=g.spb
//
// --solve-rhs=K solves the sparsifier's Laplacian against K random mean-free
// right-hand sides in one batched chain-PCG call (solver/solve_sdd_multi) and
// records iterations / achieved residual / wall time in the report and the
// --json solver fields (solve_*). Skipped when the sparsifier is
// disconnected.
//
// --stream runs the merge-and-reduce streaming driver (sparsify/stream.hpp):
// file inputs are consumed through batched edge streams (never fully
// resident inside the sparsifier), gen: inputs through in-memory slab
// batches. Stream mode implies method=koutis, skips the largest-component
// reduction (the stream is the raw graph), and reports the tower's
// peak-resident/merge accounting next to the quality numbers (the quality
// report itself still loads the input for comparison -- bench_stream is the
// bounded-memory demonstration).
//
// --updates runs the fully dynamic driver (sparsify/dynamic.hpp) over a
// mixed insert/delete update file (SPARDYN binary or dynamic edge-list text,
// auto-detected): the DynamicSparsifier ingests the whole stream through its
// guttering buffer, serves one final checkpoint, and the quality report
// compares it against the exact surviving graph. --make-updates converts one
// input graph into such an update file (synthesize_updates: every edge
// inserted once in seeded shuffled order, a --delete-fraction subset deleted
// at random later points), the shared workload of bench_dynamic (E17).
//
// Inputs (one or more, positional or --in=a,b): file paths, or synthetic
// specs `gen:<family>:<params>[:seed]`, e.g. gen:grid:64x48, gen:wgrid:32x32:7
// (randomized weights), gen:er:5000:3, gen:complete:128, gen:pa:4096:1.
// File formats are auto-detected by content magic, then extension:
// .mtx/.mm MatrixMarket, .spb/.bin SPARBIN binary, anything else edge list.
//
// Batch mode runs every (input x method x eps x rho) cell, prints a quality
// report per cell, and with --json writes the machine-readable records.
// --out writes the sparsifier (format by extension) and requires the matrix
// to be a single cell. --convert loads one input and rewrites it in the
// format implied by the destination path, no sparsification.
//
// Methods: koutis (PARALLELSPARSIFY), sample (one PARALLELSAMPLE round),
//          ss (Spielman-Srivastava), uniform (--keep), incremental (KMP-style).
// Disconnected inputs are reduced to their largest component.
// Exit: 0 ok, 1 error, 2 usage, 3 a sparsifier came out disconnected.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "graph/update_stream.hpp"
#include "solver/solver.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/incremental.hpp"
#include "sparsify/quality.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/stream.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace spar;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next == std::string::npos ? next : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

using support::parse_number;

std::vector<double> parse_list(const support::Options& opt, const std::string& key,
                               double fallback) {
  if (!opt.has(key)) return {fallback};
  std::vector<double> out;
  for (const std::string& tok : split(opt.get(key, ""), ','))
    out.push_back(parse_number<double>("--" + key, tok));
  if (out.empty()) throw Error("--" + key + " needs at least one value");
  return out;
}

graph::Graph load_input(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) return graph::generate_spec(spec);
  return graph::load_graph(spec);
}

std::string json_escape(const std::string& s) {
  std::string out;
  char buf[8];
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct RunRecord {
  std::string input, method;
  graph::Vertex n = 0;
  std::size_t m = 0;
  bool reduced_to_component = false;
  double eps = 0, rho = 0;
  std::size_t t = 0;
  std::uint64_t seed = 0;
  double ms = 0;
  sparsify::QualityReport report;
  bool stream = false;
  sparsify::StreamReport stream_report;
  // --updates: fully dynamic run (dyn_* fields).
  bool dynamic = false;
  std::size_t updates = 0;
  double certified_epsilon = 0.0;
  sparsify::DynStats dyn;
  // --solve-rhs=K: batched Laplacian solve on the sparsifier (solver fields).
  std::size_t solve_rhs = 0;
  std::size_t solve_iters_max = 0;
  double solve_residual_max = 0.0;
  bool solve_converged = false;
  double solve_ms = 0.0;
  std::size_t solve_chain_levels = 0;
  std::size_t solve_chain_nnz = 0;
};

void write_json(const std::string& path, const std::vector<RunRecord>& runs) {
  std::ofstream out(path);
  if (!out.good()) throw Error("cannot open --json path " + path);
  out << "{\n  \"tool\": \"sparsify_tool\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    const auto& q = r.report;
    out << "    {\"input\": \"" << json_escape(r.input) << "\", \"n\": " << r.n
        << ", \"m\": " << r.m
        << ", \"largest_component_used\": " << (r.reduced_to_component ? "true" : "false")
        << ", \"method\": \"" << r.method << "\", \"eps\": " << r.eps
        << ", \"rho\": " << r.rho << ", \"t\": " << r.t << ", \"seed\": " << r.seed
        << ", \"ms\": " << r.ms << ", \"edges_out\": " << q.edges_sparsifier
        << ", \"edge_reduction\": " << q.edge_reduction()
        << ", \"min_quadratic_ratio\": " << q.min_quadratic_ratio
        << ", \"max_quadratic_ratio\": " << q.max_quadratic_ratio
        << ", \"min_cut_ratio\": " << q.min_cut_ratio
        << ", \"max_cut_ratio\": " << q.max_cut_ratio
        << ", \"connected\": " << (q.sparsifier_connected ? "true" : "false")
        << ", \"weight_in\": " << q.weight_original
        << ", \"weight_out\": " << q.weight_sparsifier;
    if (r.stream) {
      const auto& s = r.stream_report;
      out << ", \"stream\": true, \"batch_edges\": " << s.batch_edges
          << ", \"stream_batches\": " << s.batches
          << ", \"peak_resident_edges\": " << s.peak_resident_edges
          << ", \"stream_levels\": " << s.levels_used
          << ", \"stream_depth_used\": " << s.depth_used
          << ", \"stream_depth_planned\": " << s.depth_planned
          << ", \"per_level_epsilon\": " << s.per_level_epsilon
          << ", \"stream_sparsify_calls\": " << s.sparsify_calls
          << ", \"stream_merge_edges\": " << s.metrics.merge_edges
          << ", \"stream_words_ingested\": " << s.metrics.words_ingested;
    }
    if (r.dynamic) {
      const auto& d = r.dyn;
      out << ", \"dynamic\": true, \"updates\": " << r.updates
          << ", \"dyn_certified_eps\": " << r.certified_epsilon
          << ", \"dyn_inserts\": " << d.inserts_applied
          << ", \"dyn_deletes\": " << d.deletes_applied
          << ", \"dyn_cancelled\": " << d.cancelled_pairs
          << ", \"dyn_batches\": " << d.batches
          << ", \"dyn_levels_dirtied\": " << d.levels_dirtied
          << ", \"dyn_carry_reduces\": " << d.carry_reduces
          << ", \"dyn_re_reduces\": " << d.re_reduces
          << ", \"dyn_rebuilds\": " << d.rebuilds
          << ", \"dyn_live_edges\": " << d.live_edges
          << ", \"dyn_peak_resident_edges\": " << d.peak_resident_edges
          << ", \"dyn_levels_used\": " << d.levels_used;
    }
    if (r.solve_rhs > 0) {
      out << ", \"solve_rhs\": " << r.solve_rhs
          << ", \"solve_iters_max\": " << r.solve_iters_max
          << ", \"solve_residual_max\": " << r.solve_residual_max
          << ", \"solve_converged\": " << (r.solve_converged ? "true" : "false")
          << ", \"solve_ms\": " << r.solve_ms
          << ", \"solve_chain_levels\": " << r.solve_chain_levels
          << ", \"solve_chain_nnz\": " << r.solve_chain_nnz;
    }
    out << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) throw Error("write failed for --json path " + path);
}

bool known_method(const std::string& method) {
  for (const char* m : {"koutis", "sample", "ss", "uniform", "incremental"})
    if (method == m) return true;
  return false;
}

graph::Graph run_method(const graph::Graph& g, const std::string& method, double eps,
                        double rho, std::size_t t, std::uint64_t seed, double keep) {
  if (method == "koutis") {
    sparsify::SparsifyOptions sopt;
    sopt.epsilon = eps;
    sopt.rho = rho;
    sopt.t = t;
    sopt.seed = seed;
    return sparsify::parallel_sparsify(g, sopt).sparsifier;
  }
  if (method == "sample") {
    sparsify::SampleOptions sopt;
    sopt.epsilon = eps;
    sopt.t = t;
    sopt.seed = seed;
    return sparsify::parallel_sample(g, sopt).sparsifier;
  }
  if (method == "ss") {
    sparsify::SpielmanSrivastavaOptions sopt;
    sopt.epsilon = eps;
    sopt.seed = seed;
    return sparsify::spielman_srivastava(g, sopt).sparsifier;
  }
  if (method == "uniform") return sparsify::uniform_sparsify(g, keep, seed);
  if (method == "incremental") {
    sparsify::IncrementalOptions sopt;
    sopt.epsilon = eps;
    sopt.seed = seed;
    return sparsify::incremental_sparsify(g, sopt).sparsifier;
  }
  throw Error("unknown method: " + method +
              " (want koutis, sample, ss, uniform or incremental)");
}

int run(int argc, char** argv) {
  const support::Options opt(argc, argv);

  std::vector<std::string> inputs = opt.positional();
  if (opt.has("in"))
    for (const std::string& s : split(opt.get("in", ""), ','))
      if (!s.empty()) inputs.push_back(s);
  if (opt.has("gen")) inputs.push_back("gen:" + opt.get("gen", ""));
  const std::string updates_path = opt.get("updates", "");
  if (inputs.empty() && updates_path.empty()) {
    std::fprintf(
        stderr,
        "usage: sparsify_tool <inputs...> [--method=koutis,ss] [--eps=0.5,1.0]\n"
        "                     [--rho=8,32] [--t=3] [--keep=0.25] [--seed=1]\n"
        "                     [--json=report.json] [--out=sparse.spb]\n"
        "                     [--solve-rhs=K]\n"
        "       sparsify_tool <inputs...> --stream [--batch-edges=131072]\n"
        "       sparsify_tool --updates=u.spd [--batch-updates=65536]\n"
        "       sparsify_tool <input> --make-updates=u.spd [--delete-fraction=0.2]\n"
        "       sparsify_tool --in=g.txt --convert=g.spb\n"
        "inputs: paths (.mtx/.mm, .spb/.bin, else edge list; content magic wins)\n"
        "        or gen:<family>:<params>[:seed] (grid:RxC, wgrid:RxC, er:N,\n"
        "        wer:N, complete:N, pa:N, ws:N)\n"
        "updates: SPARDYN binary or dynamic edge-list text (content magic wins)\n");
    return 2;
  }

  // Parse and validate the whole option matrix before touching any file, so
  // a malformed value fails fast with a clean message.
  const bool stream_mode = opt.get_bool("stream", false);
  const std::vector<std::string> methods = split(opt.get("method", "koutis"), ',');
  const std::vector<double> eps_list = parse_list(opt, "eps", 1.0);
  const std::vector<double> rho_list = parse_list(opt, "rho", 8.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const double keep = opt.get_double("keep", 0.25);
  const std::int64_t batch_edges_raw =
      opt.get_int("batch-edges", std::int64_t{1} << 17);
  if (batch_edges_raw <= 0) throw Error("--batch-edges must be positive");
  const auto batch_edges = static_cast<std::size_t>(batch_edges_raw);
  const std::int64_t solve_rhs_raw = opt.get_int("solve-rhs", 0);
  if (solve_rhs_raw < 0) throw Error("--solve-rhs must be nonnegative");
  const auto solve_rhs = static_cast<std::size_t>(solve_rhs_raw);
  const std::string json_path = opt.get("json", "");
  const std::string out_path = opt.get("out", "");
  const std::string convert_path = opt.get("convert", "");
  const std::string make_updates_path = opt.get("make-updates", "");
  const double delete_fraction = opt.get_double("delete-fraction", 0.2);
  const std::int64_t batch_updates_raw =
      opt.get_int("batch-updates", std::int64_t{1} << 16);
  if (batch_updates_raw <= 0) throw Error("--batch-updates must be positive");
  const auto batch_updates = static_cast<std::size_t>(batch_updates_raw);
  if (!updates_path.empty() && (!inputs.empty() || stream_mode))
    throw Error("--updates replaces graph inputs (and excludes --stream)");
  for (const std::string& method : methods)
    if (!known_method(method))
      throw Error("unknown method: " + method +
                  " (want koutis, sample, ss, uniform or incremental)");
  if (stream_mode)
    for (const std::string& method : methods)
      if (method != "koutis")
        throw Error("--stream supports method=koutis only (got " + method + ")");
  if (!json_path.empty()) {
    // Probe the sink now: an unwritable path must not discard a finished batch.
    std::ofstream probe(json_path, std::ios::app);
    if (!probe.good()) throw Error("cannot open --json path " + json_path);
  }

  if (!convert_path.empty()) {
    if (inputs.size() != 1)
      throw Error("--convert takes exactly one input, got " +
                  std::to_string(inputs.size()));
    const graph::Graph g = load_input(inputs[0]);
    graph::save_graph(convert_path, g);
    std::printf("converted %s -> %s (%s): n=%u m=%zu\n", inputs[0].c_str(),
                convert_path.c_str(),
                graph::format_name(graph::format_from_extension(convert_path)),
                g.num_vertices(), g.num_edges());
    return 0;
  }

  if (!make_updates_path.empty()) {
    if (inputs.size() != 1)
      throw Error("--make-updates takes exactly one input, got " +
                  std::to_string(inputs.size()));
    const graph::Graph g = load_input(inputs[0]);
    const graph::UpdateBatch u = graph::synthesize_updates(g, delete_fraction, seed);
    graph::save_updates(make_updates_path, u);
    std::printf(
        "synthesized %s -> %s: n=%u, %zu updates (delete fraction %g, seed "
        "%llu)\n",
        inputs[0].c_str(), make_updates_path.c_str(), u.num_vertices, u.size(),
        delete_fraction, static_cast<unsigned long long>(seed));
    return 0;
  }

  if (!updates_path.empty()) {
    std::vector<RunRecord> records;
    bool all_connected = true;
    for (double eps : eps_list)
      for (double rho : rho_list) {
        // Each cell replays the file through a fresh stream: the dynamic
        // driver owns batching via its gutter, so the read granularity here
        // is just I/O chunking.
        const auto stream = graph::open_update_stream(updates_path);
        std::printf("%s: n=%u, %zu updates\n", updates_path.c_str(),
                    stream->num_vertices(), stream->num_updates());
        sparsify::DynamicOptions dopt;
        dopt.epsilon = eps;
        dopt.rho = rho;
        dopt.t = t;
        dopt.keep_probability = keep;
        dopt.seed = seed;
        dopt.batch_updates = batch_updates;
        support::Timer timer;
        sparsify::DynamicSparsifier dyn(stream->num_vertices(), dopt);
        graph::UpdateBatch batch;
        while (stream->next_batch(batch, batch_updates) > 0) dyn.apply(batch);
        sparsify::DynCheckpoint cp = dyn.checkpoint();
        const double ms = timer.millis();
        const graph::Graph live = dyn.live_graph();

        RunRecord rec;
        rec.input = updates_path;
        rec.method = "koutis-dynamic";
        rec.n = live.num_vertices();
        rec.m = live.num_edges();
        rec.eps = eps;
        rec.rho = rho;
        rec.t = t;
        rec.seed = seed;
        rec.ms = ms;
        rec.report = sparsify::quality_report(live, cp.sparsifier);
        rec.dynamic = true;
        rec.updates = stream->num_updates();
        rec.certified_epsilon = cp.certified_epsilon;
        rec.dyn = dyn.stats();
        const auto& q = rec.report;
        const auto& d = rec.dyn;
        std::printf(
            "  dynamic eps=%g rho=%g: live %zu -> %zu edges (%.2fx) in %.1f "
            "ms, certified eps %.4f; quad [%.4f, %.4f] cut [%.4f, %.4f] %s\n",
            eps, rho, q.edges_original, q.edges_sparsifier, q.edge_reduction(),
            ms, rec.certified_epsilon, q.min_quadratic_ratio,
            q.max_quadratic_ratio, q.min_cut_ratio, q.max_cut_ratio,
            q.sparsifier_connected ? "connected" : "DISCONNECTED");
        std::printf(
            "    dyn: %zu batches, %llu ins / %llu del / %llu cancelled, "
            "%.0f updates/s, levels %zu (%zu dirtied), %zu carries / %zu "
            "re-reduces / %zu rebuilds, peak resident %zu\n",
            d.batches, static_cast<unsigned long long>(d.inserts_applied),
            static_cast<unsigned long long>(d.deletes_applied),
            static_cast<unsigned long long>(d.cancelled_pairs),
            ms > 0.0 ? 1e3 * static_cast<double>(d.metrics.updates_ingested) / ms
                     : 0.0,
            d.levels_used, d.levels_dirtied, d.carry_reduces, d.re_reduces,
            d.rebuilds, d.peak_resident_edges);
        all_connected = all_connected && q.sparsifier_connected;
        records.push_back(std::move(rec));
        if (!out_path.empty()) {
          graph::save_graph(out_path, cp.sparsifier);
          std::printf("  wrote %s (%s)\n", out_path.c_str(),
                      graph::format_name(graph::format_from_extension(out_path)));
        }
      }
    if (!json_path.empty()) {
      write_json(json_path, records);
      std::printf("wrote %s (%zu runs)\n", json_path.c_str(), records.size());
    }
    return all_connected ? 0 : 3;
  }

  const std::size_t cells =
      inputs.size() * methods.size() * eps_list.size() * rho_list.size();
  if (!out_path.empty() && cells != 1)
    throw Error("--out needs a single (input x method x eps x rho) cell, got " +
                std::to_string(cells));

  std::vector<RunRecord> records;
  bool all_connected = true;
  for (const std::string& spec : inputs) {
    const graph::Graph input = load_input(spec);
    // Stream mode sparsifies the raw stream: no component reduction.
    graph::InducedSubgraph comp;
    if (!stream_mode) comp = graph::largest_component(input);
    const bool reduced =
        !stream_mode && comp.graph.num_vertices() != input.num_vertices();
    if (reduced)
      std::printf("%s: disconnected; using largest component: %u of %u vertices\n",
                  spec.c_str(), comp.graph.num_vertices(), input.num_vertices());
    const graph::Graph& g = stream_mode ? input : comp.graph;
    std::printf("%s: n=%u m=%zu total weight %.6g\n", spec.c_str(), g.num_vertices(),
                g.num_edges(), g.total_weight());
    const bool stream_from_memory = stream_mode && spec.rfind("gen:", 0) == 0;
    graph::EdgeArena gen_arena;
    if (stream_from_memory) gen_arena.assign(g);

    for (const std::string& method : methods)
      for (double eps : eps_list)
        for (double rho : rho_list) {
          support::Timer timer;
          graph::Graph sparse;
          sparsify::StreamReport stream_report;
          if (stream_mode) {
            sparsify::StreamOptions sopt;
            sopt.epsilon = eps;
            sopt.rho = rho;
            sopt.t = t;
            sopt.keep_probability = keep;
            sopt.seed = seed;
            sopt.batch_edges = batch_edges;
            sparsify::StreamResult sr =
                stream_from_memory ? sparsify::stream_sparsify(gen_arena.view(), sopt)
                                   : sparsify::stream_sparsify_file(spec, sopt);
            sparse = std::move(sr.sparsifier);
            stream_report = std::move(sr.report);
          } else {
            sparse = run_method(g, method, eps, rho, t, seed, keep);
          }
          const double ms = timer.millis();
          RunRecord rec;
          rec.input = spec;
          rec.method = stream_mode ? "koutis-stream" : method;
          rec.n = g.num_vertices();
          rec.m = g.num_edges();
          rec.reduced_to_component = reduced;
          rec.eps = eps;
          rec.rho = rho;
          rec.t = t;
          rec.seed = seed;
          rec.ms = ms;
          rec.report = sparsify::quality_report(g, sparse);
          rec.stream = stream_mode;
          rec.stream_report = stream_report;
          const auto& q = rec.report;
          std::printf(
              "  method=%s eps=%g rho=%g: %zu -> %zu edges (%.2fx) in %.1f ms; "
              "quad [%.4f, %.4f] cut [%.4f, %.4f] %s\n",
              rec.method.c_str(), eps, rho, q.edges_original, q.edges_sparsifier,
              q.edge_reduction(), ms, q.min_quadratic_ratio, q.max_quadratic_ratio,
              q.min_cut_ratio, q.max_cut_ratio,
              q.sparsifier_connected ? "connected" : "DISCONNECTED");
          if (stream_mode) {
            const auto& s = rec.stream_report;
            std::printf(
                "    stream: %zu batches of <=%zu, peak resident %zu edges "
                "(%.2fx final), %zu passes over %zu levels, depth %zu/%zu, "
                "eps/level %.4f\n",
                s.batches, s.batch_edges, s.peak_resident_edges,
                s.final_edges > 0 ? static_cast<double>(s.peak_resident_edges) /
                                        static_cast<double>(s.final_edges)
                                  : 0.0,
                s.sparsify_calls, s.levels_used, s.depth_used, s.depth_planned,
                s.per_level_epsilon);
          }
          all_connected = all_connected && q.sparsifier_connected;
          if (solve_rhs > 0 && q.sparsifier_connected) try {
            // Solver fields: batched chain-PCG Laplacian solve on the
            // sparsifier for K random mean-free right-hand sides, chain built
            // once (solve_sdd_multi). Demonstrates the downstream use of the
            // sparsifier and reports solve cost next to the quality numbers.
            std::vector<linalg::Vector> cols;
            for (std::size_t j = 0; j < solve_rhs; ++j) {
              support::Rng rng(support::mix64(seed, 0x501feULL + j));
              linalg::Vector b(sparse.num_vertices());
              for (double& v : b) v = rng.normal();
              linalg::remove_mean(b);
              cols.push_back(std::move(b));
            }
            const solver::SDDMatrix sm{graph::Graph(sparse)};
            solver::SolveOptions solve_opt;
            solve_opt.chain.max_levels = 10;
            solve_opt.chain.rho = 8.0;
            solve_opt.chain.t = 1;
            solve_opt.chain.seed = seed;
            support::Timer solve_timer;
            const auto solve =
                solver::solve_sdd_multi(sm, linalg::MultiVector::from_columns(cols),
                                        solve_opt);
            rec.solve_ms = solve_timer.millis();
            rec.solve_rhs = solve_rhs;
            rec.solve_converged = solve.all_converged();
            rec.solve_chain_levels = solve.chain_levels;
            rec.solve_chain_nnz = solve.chain_total_nnz;
            for (const auto& col : solve.columns) {
              rec.solve_iters_max = std::max(rec.solve_iters_max, col.iterations);
              rec.solve_residual_max =
                  std::max(rec.solve_residual_max, col.relative_residual);
            }
            std::printf(
                "    solve: %zu rhs batched in %.1f ms, <=%zu iterations, "
                "max residual %.2e, chain %zu levels / %zu nnz%s\n",
                rec.solve_rhs, rec.solve_ms, rec.solve_iters_max,
                rec.solve_residual_max, rec.solve_chain_levels, rec.solve_chain_nnz,
                rec.solve_converged ? "" : " (NOT CONVERGED)");
          } catch (const std::exception& err) {
            // Chain construction can legitimately fail on degenerate inputs
            // (e.g. squaring a tiny cycle empties a level's diagonal). One
            // cell's solve must not kill the whole batch: drop the solver
            // fields for this cell and keep going.
            rec.solve_rhs = 0;
            std::printf("    solve: failed (%s)\n", err.what());
          } else if (solve_rhs > 0) {
            std::printf("    solve: skipped (sparsifier disconnected)\n");
          }
          records.push_back(std::move(rec));
          if (!out_path.empty()) {
            graph::save_graph(out_path, sparse);
            std::printf("  wrote %s (%s)\n", out_path.c_str(),
                        graph::format_name(graph::format_from_extension(out_path)));
          }
        }
  }

  if (!json_path.empty()) {
    write_json(json_path, records);
    std::printf("wrote %s (%zu runs)\n", json_path.c_str(), records.size());
  }
  return all_connected ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& err) {
    // Everything, not just spar::Error: a bad_alloc or a stray logic_error
    // used to escape as std::terminate with no message at all.
    std::fprintf(stderr, "sparsify_tool: error: %s\n", err.what());
    return 1;
  }
}
