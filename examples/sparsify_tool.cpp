// Command-line sparsification utility: read a graph, sparsify it with the
// method of your choice, print a quality report, optionally write the result.
//
//   ./sparsify_tool --in=graph.txt [--out=sparse.txt] [--method=koutis]
//                   [--rho=8] [--eps=1.0] [--t=3] [--seed=1] [--mm]
//
// Methods: koutis (PARALLELSPARSIFY), sample (one PARALLELSAMPLE round),
//          ss (Spielman-Srivastava), uniform, incremental (KMP-style).
// Input format: edge list ("n m" header, then "u v w" lines) or MatrixMarket
// with --mm. Disconnected inputs are reduced to their largest component.
#include <cstdio>
#include <fstream>

#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "support/assert.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/incremental.hpp"
#include "sparsify/quality.hpp"
#include "sparsify/sparsify.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  const std::string in_path = opt.get("in", "");
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: sparsify_tool --in=graph.txt [--out=sparse.txt] "
                 "[--method=koutis|sample|ss|uniform|incremental] [--rho=8] "
                 "[--eps=1.0] [--t=3] [--keep=0.25] [--seed=1] [--mm]\n");
    return 2;
  }

  graph::Graph input;
  try {
    if (opt.get_bool("mm", false)) {
      std::ifstream in(in_path);
      SPAR_CHECK(in.good(), "cannot open " + in_path);
      input = graph::read_matrix_market(in);
    } else {
      input = graph::load_edge_list(in_path);
    }
  } catch (const spar::Error& err) {
    std::fprintf(stderr, "error reading %s: %s\n", in_path.c_str(), err.what());
    return 1;
  }

  auto comp = graph::largest_component(input);
  if (comp.graph.num_vertices() != input.num_vertices()) {
    std::printf("input is disconnected; using largest component: %u of %u vertices\n",
                comp.graph.num_vertices(), input.num_vertices());
  }
  const graph::Graph& g = comp.graph;
  std::printf("graph: n=%u m=%zu total weight %.6g\n", g.num_vertices(),
              g.num_edges(), g.total_weight());

  const std::string method = opt.get("method", "koutis");
  const double eps = opt.get_double("eps", 1.0);
  const double rho = opt.get_double("rho", 8.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  support::Timer timer;
  graph::Graph sparse;
  try {
    if (method == "koutis") {
      sparsify::SparsifyOptions sopt;
      sopt.epsilon = eps;
      sopt.rho = rho;
      sopt.t = t;
      sopt.seed = seed;
      sparse = sparsify::parallel_sparsify(g, sopt).sparsifier;
    } else if (method == "sample") {
      sparsify::SampleOptions sopt;
      sopt.epsilon = eps;
      sopt.t = t;
      sopt.seed = seed;
      sparse = sparsify::parallel_sample(g, sopt).sparsifier;
    } else if (method == "ss") {
      sparsify::SpielmanSrivastavaOptions sopt;
      sopt.epsilon = eps;
      sopt.seed = seed;
      sparse = sparsify::spielman_srivastava(g, sopt).sparsifier;
    } else if (method == "uniform") {
      sparse = sparsify::uniform_sparsify(g, opt.get_double("keep", 0.25), seed);
    } else if (method == "incremental") {
      sparsify::IncrementalOptions sopt;
      sopt.epsilon = eps;
      sopt.seed = seed;
      sparse = sparsify::incremental_sparsify(g, sopt).sparsifier;
    } else {
      std::fprintf(stderr, "unknown method: %s\n", method.c_str());
      return 2;
    }
  } catch (const spar::Error& err) {
    std::fprintf(stderr, "sparsification failed: %s\n", err.what());
    return 1;
  }
  const double ms = timer.millis();

  const auto report = sparsify::quality_report(g, sparse);
  std::printf("method=%s: %zu -> %zu edges (%.2fx) in %.1f ms\n", method.c_str(),
              report.edges_original, report.edges_sparsifier,
              report.edge_reduction(), ms);
  std::printf("quadratic-form ratios over random probes: [%.4f, %.4f]\n",
              report.min_quadratic_ratio, report.max_quadratic_ratio);
  std::printf("cut ratios over random bipartitions:       [%.4f, %.4f]\n",
              report.min_cut_ratio, report.max_cut_ratio);
  std::printf("connected: %s, weight %.6g -> %.6g\n",
              report.sparsifier_connected ? "yes" : "NO", report.weight_original,
              report.weight_sparsifier);

  const std::string out_path = opt.get("out", "");
  if (!out_path.empty()) {
    graph::save_edge_list(out_path, sparse);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return report.sparsifier_connected ? 0 : 3;
}
