// Network backbone extraction: sparsify a dense social-style graph
// (preferential attachment core densified with random contacts) and show
// that the backbone preserves the spectral quantities practitioners care
// about -- effective resistances (commute distances) and cut structure --
// at a fraction of the edges. This is the "transform dense instances into
// nearly equivalent sparse instances" use case from the paper's intro.
//
//   ./network_backbone [--n=250] [--rho=8] [--t=3] [--seed=5]
#include <algorithm>
#include <cstdio>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "resistance/effective_resistance.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  const auto n = static_cast<graph::Vertex>(opt.get_int("n", 250));
  const double rho = opt.get_double("rho", 8.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 5));

  // Social-style graph: hubs (preferential attachment) + dense random layer.
  const graph::Graph hubs = graph::preferential_attachment(n, 3, seed);
  const graph::Graph contacts = graph::erdos_renyi(n, 0.3, seed + 1);
  const graph::Graph g = (hubs + contacts).coalesced();
  std::printf("network: n=%u m=%zu (hub layer + dense contact layer)\n",
              g.num_vertices(), g.num_edges());

  sparsify::SparsifyOptions sopt;
  sopt.epsilon = 1.0;
  sopt.rho = rho;
  sopt.t = t;
  sopt.seed = seed;
  const auto backbone = sparsify::parallel_sparsify(g, sopt);
  const auto bounds = sparsify::exact_relative_bounds(g, backbone.sparsifier);
  std::printf("backbone: m=%zu (%.1fx reduction), certified %.3f*L <= L' <= %.3f*L\n",
              backbone.sparsifier.num_edges(),
              double(g.num_edges()) / double(backbone.sparsifier.num_edges()),
              bounds.lower, bounds.upper);

  // Commute-distance preservation on random vertex pairs.
  const auto r_full = resistance::laplacian_pinv(g);
  const auto r_back = resistance::laplacian_pinv(backbone.sparsifier);
  support::Rng rng(seed + 2);
  double worst = 0.0, sum = 0.0;
  const int pairs = 50;
  for (int i = 0; i < pairs; ++i) {
    const auto u = static_cast<graph::Vertex>(rng.below(n));
    auto v = static_cast<graph::Vertex>(rng.below(n));
    while (v == u) v = static_cast<graph::Vertex>(rng.below(n));
    const double rf = r_full.at(u, u) - 2 * r_full.at(u, v) + r_full.at(v, v);
    const double rb = r_back.at(u, u) - 2 * r_back.at(u, v) + r_back.at(v, v);
    const double ratio = rb / rf;
    worst = std::max(worst, std::abs(ratio - 1.0));
    sum += ratio;
  }
  std::printf("commute distances on %d random pairs: mean ratio %.3f, worst "
              "deviation %.1f%%\n",
              pairs, sum / pairs, 100.0 * worst);

  // Degree-cut preservation: weight crossing the top-degree vertex's cut.
  graph::Vertex hub = 0;
  {
    const auto degrees = linalg::degree_vector(g);
    for (graph::Vertex v = 1; v < n; ++v)
      if (degrees[v] > degrees[hub]) hub = v;
  }
  double cut_full = 0.0, cut_back = 0.0;
  for (const auto& e : g.edges())
    if (e.u == hub || e.v == hub) cut_full += e.w;
  for (const auto& e : backbone.sparsifier.edges())
    if (e.u == hub || e.v == hub) cut_back += e.w;
  std::printf("hub cut weight: full %.1f vs backbone %.1f (ratio %.3f)\n",
              cut_full, cut_back, cut_back / cut_full);
  return 0;
}
