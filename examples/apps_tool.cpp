// Batch driver for the application layer (src/apps): spectral partitioning,
// PageRank / personalized PageRank, and sparsifier quality-on-task.
//
//   apps_tool <inputs...> [--app=partition,pagerank,quality]
//             [--eps=0.5,1.0] [--damping=0.85] [--sources=0,5,9]
//             [--top-k=10] [--pairs=8] [--dynamic] [--delete-fraction=0.2]
//             [--threads=T] [--seed=1] [--json=report.json]
//
// Inputs are file paths or synthetic specs gen:<family>:<params>[:seed]
// (the sparsify_tool vocabulary, e.g. gen:grid:32x32, gen:er:2000:3).
// Disconnected inputs are reduced to their largest component.
//
// Apps:
//  * partition - Fiedler pair via block inverse-power on the resident chain,
//    sweep-cut conductance; prints lambda_2, phi, |S| and the FNV hash of the
//    sign-fixed Fiedler vector (the determinism fingerprint CI compares
//    across thread counts).
//  * pagerank - (personalized) PageRank power iteration; prints iterations,
//    the top-5 vertices and the score-vector hash. --sources selects the
//    personalization support (empty = global).
//  * quality - sparsify each input with parallel_sparsify at every --eps and
//    report quality-on-task numbers (conductance deltas, Spearman, top-k
//    overlap, resistance-ratio window). --dynamic additionally replays the
//    input through a DynamicSparsifier (synthesize_updates) and evaluates
//    its checkpoint the same way.
//
// --threads=T pins the parallel substrate before any work (results are
// bit-identical for any T by the determinism contract -- the hashes let you
// check exactly that). Exit: 0 ok, 1 error, 2 usage.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "apps/partition.hpp"
#include "apps/task_quality.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace {

using namespace spar;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next == std::string::npos ? next : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

graph::Graph load_input(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) return graph::generate_spec(spec);
  return graph::load_graph(spec);
}

// FNV-1a over the raw bytes of a double vector: the determinism fingerprint
// (same scheme as bench_dynamic's edge hash). Bit-identical vectors -- and
// only those -- collide on purpose.
std::uint64_t vector_hash(std::span<const double> v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double x : v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  char buf[8];
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct RunRecord {
  std::string input, app;
  graph::Vertex n = 0;
  std::size_t m = 0;
  double ms = 0.0;
  // partition fields
  apps::PartitionReport partition;
  std::uint64_t fiedler_hash = 0;
  // pagerank fields
  apps::PageRankReport pr;
  std::uint64_t pagerank_hash = 0;
  std::size_t sources = 0;
  // quality fields
  bool quality = false;
  bool dynamic = false;  ///< sparsifier came from a DynamicSparsifier checkpoint
  double eps = 0.0;
  double certified_eps = 0.0;
  std::size_t edges_sparsifier = 0;
  apps::TaskQualityReport task;
};

void write_json(const std::string& path, const std::vector<RunRecord>& runs) {
  std::ofstream out(path);
  if (!out.good()) throw Error("cannot open --json path " + path);
  out << "{\n  \"tool\": \"apps_tool\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    out << "    {\"input\": \"" << json_escape(r.input) << "\", \"app\": \""
        << r.app << "\", \"n\": " << r.n << ", \"m\": " << r.m
        << ", \"ms\": " << r.ms;
    if (r.app == "partition") {
      out << ", \"fiedler_value\": " << r.partition.fiedler.value
          << ", \"fiedler_iterations\": " << r.partition.fiedler.iterations
          << ", \"fiedler_converged\": "
          << (r.partition.fiedler.converged ? "true" : "false")
          << ", \"conductance\": " << r.partition.cut.conductance
          << ", \"cut_size\": " << r.partition.cut.cut_size
          << ", \"chain_levels\": " << r.partition.fiedler.chain_levels
          << ", \"fiedler_hash\": \"" << std::hex << r.fiedler_hash << std::dec
          << "\"";
    } else if (r.app == "pagerank") {
      out << ", \"iterations\": " << r.pr.iterations << ", \"converged\": "
          << (r.pr.converged ? "true" : "false") << ", \"delta\": " << r.pr.delta
          << ", \"sources\": " << r.sources << ", \"pagerank_hash\": \""
          << std::hex << r.pagerank_hash << std::dec << "\"";
    } else {
      const auto& t = r.task;
      out << ", \"dynamic\": " << (r.dynamic ? "true" : "false")
          << ", \"eps\": " << r.eps << ", \"certified_eps\": " << r.certified_eps
          << ", \"edges_out\": " << r.edges_sparsifier
          << ", \"fiedler_value_g\": " << t.fiedler_value_g
          << ", \"fiedler_value_h\": " << t.fiedler_value_h
          << ", \"conductance_g\": " << t.conductance_g
          << ", \"conductance_h\": " << t.conductance_h
          << ", \"cross_conductance\": " << t.cross_conductance
          << ", \"spearman\": " << t.spearman
          << ", \"top_k_overlap\": " << t.top_k_overlap
          << ", \"pagerank_l1_delta\": " << t.pagerank_l1_delta
          << ", \"min_resistance_ratio\": " << t.min_resistance_ratio
          << ", \"max_resistance_ratio\": " << t.max_resistance_ratio;
    }
    out << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) throw Error("write failed for --json path " + path);
}

int run(int argc, char** argv) {
  const support::Options opt(argc, argv);

  std::vector<std::string> inputs = opt.positional();
  if (opt.has("in"))
    for (const std::string& s : split(opt.get("in", ""), ','))
      if (!s.empty()) inputs.push_back(s);
  if (inputs.empty()) {
    std::fprintf(
        stderr,
        "usage: apps_tool <inputs...> [--app=partition,pagerank,quality]\n"
        "                 [--eps=0.5,1.0] [--rho=8] [--t=3] [--damping=0.85]\n"
        "                 [--sources=0,5,9] [--top-k=10] [--pairs=8]\n"
        "                 [--dynamic] [--delete-fraction=0.2] [--threads=T]\n"
        "                 [--seed=1] [--json=report.json]\n"
        "inputs: paths or gen:<family>:<params>[:seed] (grid:RxC, er:N, ...)\n");
    return 2;
  }

  const std::vector<std::string> apps_list = split(opt.get("app", "partition,pagerank"), ',');
  for (const std::string& app : apps_list)
    if (app != "partition" && app != "pagerank" && app != "quality")
      throw Error("unknown app: " + app + " (want partition, pagerank or quality)");
  std::vector<double> eps_list;
  for (const std::string& tok : split(opt.get("eps", "0.5"), ','))
    eps_list.push_back(support::parse_number<double>("--eps", tok));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const double rho = opt.get_double("rho", 8.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const double damping = opt.get_double("damping", 0.85);
  const auto top_k = static_cast<std::size_t>(opt.get_int("top-k", 10));
  const auto pairs = static_cast<std::size_t>(opt.get_int("pairs", 8));
  const bool dynamic = opt.get_bool("dynamic", false);
  const double delete_fraction = opt.get_double("delete-fraction", 0.2);
  const std::string json_path = opt.get("json", "");
  std::vector<graph::Vertex> sources;
  if (opt.has("sources"))
    for (const std::string& tok : split(opt.get("sources", ""), ','))
      if (!tok.empty())
        sources.push_back(support::parse_number<graph::Vertex>("--sources", tok));
  if (opt.has("threads"))
    support::par::set_num_threads(static_cast<int>(opt.get_int("threads", 1)));
  if (!json_path.empty()) {
    std::ofstream probe(json_path, std::ios::app);
    if (!probe.good()) throw Error("cannot open --json path " + json_path);
  }

  std::vector<RunRecord> records;
  for (const std::string& spec : inputs) {
    const graph::Graph input = load_input(spec);
    const graph::InducedSubgraph comp = graph::largest_component(input);
    if (comp.graph.num_vertices() != input.num_vertices())
      std::printf("%s: disconnected; using largest component: %u of %u vertices\n",
                  spec.c_str(), comp.graph.num_vertices(), input.num_vertices());
    const graph::Graph& g = comp.graph;
    std::printf("%s: n=%u m=%zu\n", spec.c_str(), g.num_vertices(), g.num_edges());

    for (const std::string& app : apps_list) {
      if (app == "partition") {
        apps::FiedlerOptions fopt;
        fopt.seed = seed;
        support::Timer timer;
        RunRecord rec;
        rec.partition = apps::spectral_partition(g, fopt);
        rec.ms = timer.millis();
        rec.input = spec;
        rec.app = app;
        rec.n = g.num_vertices();
        rec.m = g.num_edges();
        rec.fiedler_hash = vector_hash(rec.partition.fiedler.vector);
        std::printf(
            "  partition: lambda2 %.6e, phi %.6f, |S| %zu, %zu iterations%s, "
            "chain %zu levels, %.1f ms, hash %016llx\n",
            rec.partition.fiedler.value, rec.partition.cut.conductance,
            rec.partition.cut.cut_size, rec.partition.fiedler.iterations,
            rec.partition.fiedler.converged ? "" : " (NOT CONVERGED)",
            rec.partition.fiedler.chain_levels, rec.ms,
            static_cast<unsigned long long>(rec.fiedler_hash));
        records.push_back(std::move(rec));
      } else if (app == "pagerank") {
        apps::PageRankOptions popt;
        popt.damping = damping;
        popt.sources = sources;
        for (const graph::Vertex s : popt.sources)
          if (s >= g.num_vertices())
            throw Error("--sources vertex out of range for " + spec);
        support::Timer timer;
        RunRecord rec;
        rec.pr = apps::pagerank(g, popt);
        rec.ms = timer.millis();
        rec.input = spec;
        rec.app = app;
        rec.n = g.num_vertices();
        rec.m = g.num_edges();
        rec.sources = popt.sources.size();
        rec.pagerank_hash = vector_hash(rec.pr.scores);
        const std::vector<graph::Vertex> order = apps::ranking(rec.pr.scores);
        std::printf("  pagerank%s: %zu iterations%s, delta %.2e, %.1f ms, hash "
                    "%016llx, top:",
                    rec.sources > 0 ? " (personalized)" : "", rec.pr.iterations,
                    rec.pr.converged ? "" : " (NOT CONVERGED)", rec.pr.delta,
                    rec.ms, static_cast<unsigned long long>(rec.pagerank_hash));
        for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i)
          std::printf(" %u(%.4g)", order[i], rec.pr.scores[order[i]]);
        std::printf("\n");
        records.push_back(std::move(rec));
      } else {
        apps::TaskQualityOptions qopt;
        qopt.fiedler.seed = seed;
        qopt.pagerank.damping = damping;
        qopt.top_k = top_k;
        qopt.resistance_pairs = pairs;
        qopt.seed = seed;
        for (const double eps : eps_list) {
          // Static sparsifier cell, then (with --dynamic) a dynamic-checkpoint
          // cell over the same input and epsilon.
          for (int dyn_pass = 0; dyn_pass < (dynamic ? 2 : 1); ++dyn_pass) {
            graph::Graph sparse;
            double certified = 0.0;
            if (dyn_pass == 0) {
              sparsify::SparsifyOptions sopt;
              sopt.epsilon = eps;
              sopt.rho = rho;
              sopt.t = t;
              sopt.seed = seed;
              auto result = sparsify::parallel_sparsify(g, sopt);
              sparse = std::move(result.sparsifier);
              // Measure the achieved (1 +- eps) a posteriori; the quality
              // regression test bounds the task deltas by this number.
              certified = sparsify::approx_relative_bounds(g, sparse).epsilon();
            } else {
              const graph::UpdateBatch updates =
                  graph::synthesize_updates(g, delete_fraction, seed);
              sparsify::DynamicOptions dopt;
              dopt.epsilon = eps;
              dopt.rho = rho;
              dopt.t = t;
              dopt.seed = seed;
              sparsify::DynamicSparsifier dsp(g.num_vertices(), dopt);
              dsp.apply(updates);
              sparsify::DynCheckpoint cp = dsp.checkpoint();
              // The surviving live graph (not g) is the dynamic baseline.
              const graph::Graph live = dsp.live_graph();
              if (!graph::is_connected(graph::CSRGraph(live)) ||
                  !graph::is_connected(graph::CSRGraph(cp.sparsifier))) {
                // Random deletions can disconnect either side; the evaluation
                // needs both connected, so skip the cell rather than abort.
                std::printf(
                    "  quality (dynamic) eps=%g: skipped (disconnected after "
                    "deletions)\n",
                    eps);
                continue;
              }
              support::Timer timer;
              RunRecord rec;
              rec.task = apps::evaluate_on_tasks(live, cp.sparsifier, qopt);
              rec.ms = timer.millis();
              rec.input = spec;
              rec.app = "quality";
              rec.n = live.num_vertices();
              rec.m = live.num_edges();
              rec.quality = true;
              rec.dynamic = true;
              rec.eps = eps;
              rec.certified_eps = cp.certified_epsilon;
              rec.edges_sparsifier = cp.sparsifier.num_edges();
              std::printf(
                  "  quality (dynamic) eps=%g (certified %.4f): phi %.4f -> %.4f "
                  "(cross %.4f), spearman %.4f, top-%zu %.2f, R ratio [%.4f, "
                  "%.4f], %.1f ms\n",
                  eps, rec.certified_eps, rec.task.conductance_g,
                  rec.task.conductance_h, rec.task.cross_conductance,
                  rec.task.spearman, top_k, rec.task.top_k_overlap,
                  rec.task.min_resistance_ratio, rec.task.max_resistance_ratio,
                  rec.ms);
              records.push_back(std::move(rec));
              continue;
            }
            support::Timer timer;
            RunRecord rec;
            rec.task = apps::evaluate_on_tasks(g, sparse, qopt);
            rec.ms = timer.millis();
            rec.input = spec;
            rec.app = "quality";
            rec.n = g.num_vertices();
            rec.m = g.num_edges();
            rec.quality = true;
            rec.eps = eps;
            rec.certified_eps = certified;
            rec.edges_sparsifier = sparse.num_edges();
            std::printf(
                "  quality eps=%g (certified %.4f): %zu -> %zu edges, phi %.4f "
                "-> %.4f (cross %.4f), spearman %.4f, top-%zu %.2f, R ratio "
                "[%.4f, %.4f], %.1f ms\n",
                eps, rec.certified_eps, g.num_edges(), rec.edges_sparsifier,
                rec.task.conductance_g, rec.task.conductance_h,
                rec.task.cross_conductance, rec.task.spearman, top_k,
                rec.task.top_k_overlap, rec.task.min_resistance_ratio,
                rec.task.max_resistance_ratio, rec.ms);
            records.push_back(std::move(rec));
          }
        }
      }
    }
  }

  if (!json_path.empty()) {
    write_json(json_path, records);
    std::printf("wrote %s (%zu runs)\n", json_path.c_str(), records.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "apps_tool: error: %s\n", err.what());
    return 1;
  }
}
