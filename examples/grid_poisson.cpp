// Remark 1 scenario: solve a Poisson problem on a 2D grid -- the "affinity
// graph of an image" case the paper highlights -- with the Peng-Spielman
// chain solver (Section 4) against plain CG.
//
// The grid Laplacian is the discrete 5-point stencil; we place two opposite
// unit charges (a dipole) and solve L x = b, then report solver statistics
// and a coarse rendering of the resulting potential field.
//
//   ./grid_poisson [--side=48] [--tol=1e-8]
#include <cstdio>
#include <string>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  const auto side = static_cast<graph::Vertex>(opt.get_int("side", 48));
  const double tol = opt.get_double("tol", 1e-8);

  const graph::Graph g = graph::grid2d(side, side);
  const solver::SDDMatrix m{graph::Graph(g)};
  std::printf("grid %ux%u: n=%zu  m=%zu (singular Laplacian, solved on range)\n",
              side, side, m.dimension(), g.num_edges());

  // Dipole right-hand side: +1 near one corner, -1 near the other.
  linalg::Vector b(m.dimension(), 0.0);
  b[side + 1] = 1.0;
  b[m.dimension() - side - 2] = -1.0;

  solver::SolveOptions sopt;
  sopt.tolerance = tol;
  sopt.chain.max_levels = 10;
  sopt.chain.rho = 8.0;
  sopt.chain.t = 1;

  support::Timer chain_timer;
  const auto chain = solver::solve_sdd(m, b, sopt);
  const double chain_ms = chain_timer.millis();
  support::Timer cg_timer;
  const auto cg = solver::solve_cg(m, b, sopt);
  const double cg_ms = cg_timer.millis();

  std::printf("chain-pcg: %4zu iterations, residual %.2e, chain %zu levels / %zu nnz, %.0f ms\n",
              chain.iterations, chain.relative_residual, chain.chain_levels,
              chain.chain_total_nnz, chain_ms);
  std::printf("plain-cg:  %4zu iterations, residual %.2e, %.0f ms\n",
              cg.iterations, cg.relative_residual, cg_ms);

  // Coarse ASCII rendering of the potential (16x16 downsample).
  std::printf("\npotential field (dipole):\n");
  double lo = chain.solution[0], hi = chain.solution[0];
  for (double v : chain.solution) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const char* shades = " .:-=+*#%@";
  const graph::Vertex cells = 16;
  for (graph::Vertex r = 0; r < cells; ++r) {
    std::string line;
    for (graph::Vertex c = 0; c < cells; ++c) {
      const graph::Vertex rr = r * side / cells;
      const graph::Vertex cc = c * side / cells;
      const double v = chain.solution[rr * side + cc];
      const int shade = static_cast<int>(9.0 * (v - lo) / (hi - lo + 1e-30));
      line += shades[shade];
    }
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
