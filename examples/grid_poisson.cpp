// Remark 1 scenario: solve Poisson problems on a 2D grid -- the "affinity
// graph of an image" case the paper highlights -- with the Peng-Spielman
// chain solver (Section 4) against plain CG.
//
// The grid Laplacian is the discrete 5-point stencil. We place several
// dipole load vectors (opposite unit charges at different positions) and
// solve them all in ONE batched call: the chain is built once and
// solve_sdd_multi applies it to the whole block per PCG iteration
// (multi-RHS is the natural shape here -- one field per excitation). The
// per-RHS loop over the same chain is timed for comparison; solutions are
// identical bit for bit.
//
//   ./grid_poisson [--side=48] [--rhs=3] [--tol=1e-8]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "solver/solver.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  // Validate the signed values BEFORE the unsigned casts: a negative --rhs
  // would otherwise wrap to ~2^64 and abort on allocation instead of erroring.
  const std::int64_t side_raw = opt.get_int("side", 48);
  const std::int64_t rhs_raw = opt.get_int("rhs", 3);
  const double tol = opt.get_double("tol", 1e-8);
  if (side_raw < 4 || side_raw > (1 << 14) || rhs_raw < 1 || rhs_raw > 4096) {
    std::fprintf(stderr,
                 "grid_poisson: need 4 <= --side <= 16384 (got %lld) and "
                 "1 <= --rhs <= 4096 (got %lld)\n",
                 static_cast<long long>(side_raw), static_cast<long long>(rhs_raw));
    return 2;
  }
  const auto side = static_cast<graph::Vertex>(side_raw);
  const auto num_rhs = static_cast<std::size_t>(rhs_raw);

  const graph::Graph g = graph::grid2d(side, side);
  const solver::SDDMatrix m{graph::Graph(g)};
  std::printf("grid %ux%u: n=%zu  m=%zu (singular Laplacian, solved on range)\n",
              side, side, m.dimension(), g.num_edges());

  // Dipole load vectors: +1 / -1 charges at positions that rotate with j.
  // The offset stays within row 1 / row side-2 of the grid, so both indices
  // are in range for every side >= 4.
  linalg::MultiVector b(m.dimension(), num_rhs, 0.0);
  for (std::size_t j = 0; j < num_rhs; ++j) {
    const std::size_t offset =
        std::min<std::size_t>((j * side) / num_rhs, side - 3);
    b.at(side + 1 + offset, j) = 1.0;
    b.at(m.dimension() - side - 2 - offset, j) = -1.0;
  }

  solver::SolveOptions sopt;
  sopt.tolerance = tol;
  sopt.chain.max_levels = 10;
  sopt.chain.rho = 8.0;
  sopt.chain.t = 1;

  support::Timer chain_timer;
  const solver::InverseChain chain(m, sopt.chain);
  const double chain_ms = chain_timer.millis();
  std::printf("chain: %zu levels / %zu nnz, built once in %.0f ms\n",
              chain.num_levels(), chain.total_nnz(), chain_ms);

  support::Timer batch_timer;
  const auto batched = solver::solve_sdd_multi(m, chain, b, sopt);
  const double batch_ms = batch_timer.millis();
  support::Timer loop_timer;
  for (std::size_t j = 0; j < num_rhs; ++j)
    (void)solver::solve_sdd(m, chain, b.column_copy(j), sopt);
  const double loop_ms = loop_timer.millis();
  support::Timer cg_timer;
  const auto cg = solver::solve_cg(m, b.column_copy(0), sopt);
  const double cg_ms = cg_timer.millis();

  for (std::size_t j = 0; j < num_rhs; ++j)
    std::printf("rhs %zu: chain-pcg %4zu iterations, residual %.2e\n", j,
                batched.columns[j].iterations, batched.columns[j].relative_residual);
  std::printf("batched solve of %zu rhs: %.0f ms (per-RHS loop over the same "
              "chain: %.0f ms)\n",
              num_rhs, batch_ms, loop_ms);
  std::printf("plain-cg (first rhs):  %4zu iterations, residual %.2e, %.0f ms\n",
              cg.iterations, cg.relative_residual, cg_ms);

  // Coarse ASCII rendering of the first potential field (16x16 downsample).
  std::printf("\npotential field (dipole 0):\n");
  const linalg::Vector field = batched.solutions.column_copy(0);
  double lo = field[0], hi = field[0];
  for (double v : field) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const char* shades = " .:-=+*#%@";
  const graph::Vertex cells = 16;
  for (graph::Vertex r = 0; r < cells; ++r) {
    std::string line;
    for (graph::Vertex c = 0; c < cells; ++c) {
      const graph::Vertex rr = r * side / cells;
      const graph::Vertex cc = c * side / cells;
      const double v = field[rr * side + cc];
      const int shade = static_cast<int>(9.0 * (v - lo) / (hi - lo + 1e-30));
      line += shades[shade];
    }
    std::printf("  %s\n", line.c_str());
  }
  return batched.all_converged() ? 0 : 1;
}
