// Spectral partitioning on a sparsifier -- the "Laplacian paradigm"
// application from the paper's introduction: dense instances are transformed
// into nearly-equivalent sparse ones, and the downstream spectral computation
// (the Fiedler vector, now via the apps-layer block inverse-power iteration
// riding the chain-preconditioned solver) runs on the sparsifier at a
// fraction of the cost while finding the same cut.
//
// The demo graph is a planted 2-community graph (dense inside, sparse
// across); we report the communities recovered from the full graph vs the
// sparsifier, and the conductance of both cuts.
//
//   ./spectral_partition [--half=150] [--p_in=0.2] [--p_out=0.01] [--seed=3]
#include <algorithm>
#include <cstdio>

#include "apps/partition.hpp"
#include "graph/generators.hpp"
#include "sparsify/sparsify.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace spar;

namespace {

std::vector<bool> sign_partition(const linalg::Vector& v) {
  std::vector<bool> side(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) side[i] = v[i] >= 0.0;
  return side;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const auto half = static_cast<graph::Vertex>(opt.get_int("half", 150));
  const double p_in = opt.get_double("p_in", 0.2);
  const double p_out = opt.get_double("p_out", 0.01);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 3));

  // Planted partition: two ER blocks + sparse cross edges.
  graph::Graph g(2 * half);
  {
    const graph::Graph a = graph::connected_erdos_renyi(half, p_in, seed);
    const graph::Graph b = graph::connected_erdos_renyi(half, p_in, seed + 1);
    for (const auto& e : a.edges()) g.add_edge(e.u, e.v, e.w);
    for (const auto& e : b.edges()) g.add_edge(half + e.u, half + e.v, e.w);
    support::Rng rng(seed + 2);
    for (graph::Vertex u = 0; u < half; ++u)
      for (graph::Vertex v = 0; v < half; ++v)
        if (rng.bernoulli(p_out)) g.add_edge(u, half + v, 1.0);
  }
  std::printf("planted 2-community graph: n=%u m=%zu\n", g.num_vertices(),
              g.num_edges());

  apps::FiedlerOptions fopt;
  fopt.seed = seed + 3;

  support::Timer t_full;
  const apps::FiedlerReport full = apps::fiedler_vector(g, fopt);
  const double full_ms = t_full.millis();

  sparsify::SparsifyOptions sopt;
  sopt.rho = 8.0;
  sopt.t = 2;
  sopt.seed = seed + 4;
  support::Timer t_sp;
  const auto sp = sparsify::parallel_sparsify(g, sopt);
  const apps::FiedlerReport sparse = apps::fiedler_vector(sp.sparsifier, fopt);
  const double sparse_ms = t_sp.millis();

  const auto side_full = sign_partition(full.vector);
  const auto side_sparse = sign_partition(sparse.vector);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < side_full.size(); ++i)
    agree += side_full[i] == side_sparse[i];
  const double agreement =
      std::max(agree, side_full.size() - agree) / double(side_full.size());

  // Ground-truth recovery: fraction on the correct planted side.
  std::size_t correct = 0;
  for (graph::Vertex i = 0; i < g.num_vertices(); ++i)
    correct += side_sparse[i] == (i < half);
  const double recovery =
      std::max(correct, g.num_vertices() - correct) / double(g.num_vertices());

  std::printf("full graph:  lambda2 %.4e, fiedler cut conductance %.4f  (%.0f ms)\n",
              full.value, apps::conductance(g, side_full), full_ms);
  std::printf("sparsifier:  m=%zu (%.1fx fewer), lambda2 %.4e, cut conductance "
              "on FULL graph %.4f  (%.0f ms incl. sparsify)\n",
              sp.sparsifier.num_edges(),
              double(g.num_edges()) / double(sp.sparsifier.num_edges()),
              sparse.value, apps::conductance(g, side_sparse), sparse_ms);
  std::printf("partition agreement full-vs-sparse: %.1f%%; planted community "
              "recovery: %.1f%%\n",
              100.0 * agreement, 100.0 * recovery);
  return 0;
}
