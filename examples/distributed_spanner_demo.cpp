// Distributed demo: run the synchronous Baswana-Sen protocol (Theorem 2) on
// the message-passing simulator and narrate what the network did -- rounds,
// messages, words, and the resulting spanner's quality.
//
//   ./distributed_spanner_demo [--n=400] [--p=0.05] [--seed=3]
#include <cstdio>

#include "dist/dist_spanner.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/stretch.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace spar;
  const support::Options opt(argc, argv);
  const auto n = static_cast<graph::Vertex>(opt.get_int("n", 400));
  const double p = opt.get_double("p", 0.05);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 3));

  const graph::Graph g = graph::connected_erdos_renyi(n, p, seed);
  const graph::CSRGraph csr(g);
  const std::size_t k = spanner::auto_spanner_k(n);
  std::printf("network: n=%u nodes, m=%zu links; running (2k-1)-spanner with "
              "k=%zu (stretch bound %zu)\n",
              n, g.num_edges(), k, 2 * k - 1);

  const auto result = dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = seed});

  std::printf("\nprotocol transcript summary:\n");
  std::printf("  rounds:            %llu  (Theorem 2 budget: O(log^2 n) ~ %.0f)\n",
              static_cast<unsigned long long>(result.metrics.rounds),
              double(k * k));
  std::printf("  messages:          %llu\n",
              static_cast<unsigned long long>(result.metrics.messages));
  std::printf("  words on the wire: %llu  (Theorem 2 budget: O(m log n) ~ %.0f)\n",
              static_cast<unsigned long long>(result.metrics.words),
              double(g.num_edges()) * double(k));
  std::printf("  message size:      %llu words each (O(log n) bits)\n",
              static_cast<unsigned long long>(result.metrics.max_message_words));

  std::vector<bool> mask(g.num_edges(), false);
  for (auto id : result.spanner_edges) mask[id] = true;
  const auto stretch = spanner::stretch_over_subgraph(g, mask);
  std::printf("\nspanner: %zu of %zu edges kept (%.1f%%)\n",
              result.spanner_edges.size(), g.num_edges(),
              100.0 * double(result.spanner_edges.size()) / double(g.num_edges()));
  std::printf("stretch: max %.2f, mean %.2f (bound %zu); dropped edges with a "
              "detour: %zu, disconnected: %zu\n",
              stretch.max_stretch, stretch.mean_stretch, 2 * k - 1,
              stretch.checked_edges, stretch.disconnected_pairs);
  return 0;
}
