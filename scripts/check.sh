#!/usr/bin/env bash
# One-shot verify: configure + build + ctest (the tier-1 command).
#
#   scripts/check.sh [BUILD_TYPE] [OPENMP]
#
#   BUILD_TYPE  Release (default) | Debug | RelWithDebInfo | Asan
#               Asan = RelWithDebInfo with -fsanitize=address,undefined
#               (the CI sanitizer job; arena/index refactors are exactly
#               where ASan+UBSan pay off)
#   OPENMP      ON (default) | OFF
#
# Also greps for test sources that exist on disk but are not registered in
# any tests/**/CMakeLists.txt, so new files cannot be silently skipped.
set -euo pipefail

cd "$(dirname "$0")/.."

build_type="${1:-Release}"
openmp="${2:-ON}"
sanitize=""
case "$build_type" in
  Asan|asan|Sanitize|sanitize)
    build_type="RelWithDebInfo"
    sanitize="address,undefined"
    ;;
esac
build_dir="build-check-${build_type,,}-omp${openmp,,}${sanitize:+-asan}"

# Every tests/**/test_*.cpp must appear in its directory's CMakeLists.txt.
missing=0
while IFS= read -r src; do
  dir="$(dirname "$src")"
  base="$(basename "$src")"
  if ! grep -q "$base" "$dir/CMakeLists.txt" 2>/dev/null; then
    echo "UNREGISTERED TEST SOURCE: $src (add it to $dir/CMakeLists.txt)" >&2
    missing=1
  fi
done < <(find tests -name 'test_*.cpp')
[ "$missing" -eq 0 ] || exit 1

cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE="$build_type" \
  -DSPAR_ENABLE_OPENMP="$openmp" \
  -DSPAR_SANITIZE="$sanitize" \
  -DSPAR_WERROR=ON
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Ingestion smoke: the I/O bench must run clean (it exits nonzero if the
# legacy/parallel/binary loads disagree). The text->MM->binary->text
# byte-identity round trip already ran above as the ctest
# `sparsify_tool_format_roundtrip` (examples/CMakeLists.txt).
"$build_dir/bench/bench_io" --quick=1

# Streaming smoke: bench_stream exits nonzero if the file stream disagrees
# with the memory stream, thread counts disagree, or a small-config streamed
# sparsifier certifies outside the requested eps. (The fuzz/property suites
# -- SPARBIN corruption sweeps, the quality_report matrix, the streaming
# golden hash -- already ran above under ctest.)
"$build_dir/bench/bench_stream" --quick=1

# Chain-build smoke: bench_chain exits nonzero if a dense- or streamed-built
# chain fails to solve within tolerance, the streamed build differs across
# thread counts, a small-config streamed square certifies outside eps, or the
# streamed build fails to undercut the dense peak resident product.
"$build_dir/bench/bench_chain" --quick=1

# Dynamic smoke: bench_dynamic exits nonzero if the incremental tower's live
# graph disagrees with the replayed survivor multiset, a checkpoint's
# certified eps exceeds the budget, a small-config checkpoint certifies
# outside the requested eps, or thread counts 1 and 4 disagree. (The oracle-
# differential sweep and the dynamic golden hash already ran above under
# ctest.) The tool-level --make-updates -> --updates round trip ran as the
# ctest `sparsify_tool_dynamic_updates_smoke`.
"$build_dir/bench/bench_dynamic" --quick=1

# Batched-solve smoke: bench_multi_rhs exits nonzero if the batched
# solve_sdd_multi solutions are not bit-identical to the per-RHS solve_sdd
# loop, or any solve misses tolerance, or the effective-resistance sketch
# changes with its block size.
"$build_dir/bench/bench_multi_rhs" --quick=1

# Application-layer smoke: bench_apps exits nonzero if Fiedler/PageRank
# hashes drift across thread counts, the chain-reuse identity breaks, the
# dense lambda_2 oracle misses, or a quality-on-task metric falls outside
# its measured pencil window. The apps_tool leg drives the batch front end
# end to end and greps the JSON fields the tooling contract promises.
"$build_dir/bench/bench_apps" --quick=1
apps_json="$(mktemp /tmp/spar_apps_XXXXXX.json)"
"$build_dir/examples/apps_tool" gen:grid:12x12 --app=partition,pagerank,quality \
  --eps=1.0 --pairs=4 --json="$apps_json"
grep -q '"fiedler_hash"' "$apps_json"
grep -q '"pagerank_hash"' "$apps_json"
grep -q '"cross_conductance"' "$apps_json"
rm -f "$apps_json"

# Solver-service smoke: boot the daemon on a throwaway socket, replay a
# quick request stream against it (singletons and coalesced batches mixed,
# every reply memcmp'd against the local per-RHS oracle), then take the
# kShutdown drain path. load_gen exits nonzero on any bit-identity
# violation or protocol error; a hung drain trips the wait.
sock="$(mktemp -u /tmp/spar_check_XXXXXX.sock)"
"$build_dir/src/server/solver_server" --socket="$sock" --max-batch=8 --deadline-us=1500 &
server_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
"$build_dir/src/server/load_gen" --quick --socket="$sock" --shutdown-server
wait "$server_pid"

# Multi-process shard smoke: a 4-shard UNIX-socket mesh of real dist_worker
# processes runs the spanner and one PARALLELSAMPLE round; bench_dist_shard
# --selftest exits nonzero unless both outputs hash-equal the one-shard run
# and the framed wire bytes reconcile exactly with the words shipped.
"$build_dir/bench/bench_dist_shard" --selftest --worker "$build_dir/src/dist/dist_worker"

# Documentation gates: undocumented public symbols in src/solver and
# src/resistance, and broken relative links in the top-level markdown.
scripts/check_docs.sh
