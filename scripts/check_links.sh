#!/usr/bin/env bash
# Relative-link checker for the top-level markdown docs. Every [text](target)
# whose target is not an URL or a pure #anchor must resolve to an existing
# file (anchors within existing files are stripped, not verified). Run from
# anywhere; operates on the repo root. Exit 1 on the first broken link so the
# docs cannot rot silently (CI docs job + scripts/check.sh).
set -euo pipefail

cd "$(dirname "$0")/.."

docs=(README.md DESIGN.md BUILDING.md ROADMAP.md PAPER.md PAPERS.md)
status=0

for doc in "${docs[@]}"; do
  [ -f "$doc" ] || { echo "MISSING DOC: $doc" >&2; status=1; continue; }
  # Extract (target) parts of markdown links. grep -o keeps one match per
  # line occurrence, so multiple links per line are all checked.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"           # strip anchor
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "BROKEN LINK in $doc: ($target) -> $path does not exist" >&2
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*](\([^)]*\))/\1/')
done

if [ "$status" -eq 0 ]; then
  echo "check_links: all relative links in ${docs[*]} resolve"
fi
exit "$status"
