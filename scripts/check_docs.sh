#!/usr/bin/env bash
# Documentation gate (the CI docs job; also runnable locally).
#
#   scripts/check_docs.sh
#
# 1. scripts/check_public_docs.py -- fails on any undocumented public symbol
#    in src/solver, src/resistance and src/apps (works offline, no doxygen
#    needed).
# 2. scripts/check_links.sh -- fails on any broken relative link in the
#    top-level markdown docs.
# 3. If doxygen is installed, runs it over the Doxyfile and fails on
#    undocumented-symbol warnings in its log (other doxygen chatter is
#    surfaced but non-fatal) -- a second, independent undocumented-symbol
#    check. Skipped (with a notice) when doxygen is absent so offline
#    checkouts still get gates 1-2.
set -euo pipefail

cd "$(dirname "$0")/.."

python3 scripts/check_public_docs.py src/solver src/resistance src/apps
scripts/check_links.sh

if command -v doxygen >/dev/null 2>&1; then
  mkdir -p build-docs
  doxygen Doxyfile
  # Fail on undocumented-symbol warnings specifically (the gate); other
  # doxygen chatter is surfaced but not fatal, so a doxygen version quirk
  # cannot take the job down for reasons unrelated to documentation.
  if grep -E "is not documented|Compound .* is not documented" \
      build-docs/doxygen-warnings.log >/dev/null 2>&1; then
    echo "check_docs: doxygen found undocumented symbols:" >&2
    grep -E "is not documented" build-docs/doxygen-warnings.log >&2
    exit 1
  fi
  if [ -s build-docs/doxygen-warnings.log ]; then
    echo "check_docs: doxygen warnings (non-fatal):" >&2
    cat build-docs/doxygen-warnings.log >&2
  fi
  echo "check_docs: doxygen pass clean (build-docs/html)"
else
  echo "check_docs: doxygen not installed; skipped the doxygen pass" >&2
fi
