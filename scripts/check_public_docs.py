#!/usr/bin/env python3
"""Doc-comment gate for public headers.

Walks the .hpp files of the given source directories (default: src/solver
src/resistance) and reports every *public* declaration -- namespace-scope
function/struct/class, or field/method in a public section -- that is not
documented. "Documented" means a comment line directly above the declaration
(the `///` style of cg.hpp/chain.hpp; plain `//` blocks count too) or a
trailing `///<` / `//` comment on the declaration line itself.

This is a deliberately style-shaped heuristic, not a C++ parser: the repo's
headers are clang-format-shaped, one declaration starting per line. It is the
offline backbone of the CI docs job (scripts/check_docs.sh); Doxygen with
WARN_IF_UNDOCUMENTED runs alongside it where available.

Exit status: 0 when everything is documented, 1 otherwise (one line per
undocumented symbol: file:line: declaration head).
"""

import re
import sys
from pathlib import Path

ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
SKIP_PREFIXES = (
    "#", "}", "using ", "friend ", "static_assert", "typedef ",
    "extern ", ");",
)
# namespace / struct / class / enum openers (may also be a one-line fwd decl)
SCOPE_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(namespace|struct|class|enum)\b(\s+class)?\s*"
    r"([A-Za-z_][\w:]*)?")


def strip_strings(line: str) -> str:
    """Removes string/char literals so braces inside them don't confuse the
    brace counter."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def is_comment(line: str) -> bool:
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def check_header(path: Path):
    """Yields (line_number, declaration_head) for undocumented public decls."""
    lines = path.read_text().splitlines()
    # Scope stack entries: ("namespace"|"struct"|"class"|"enum"|"body", public?)
    scope = []
    in_continuation = False
    pending_braces = 0  # net braces of an inline body we are skipping

    def documentable() -> bool:
        if not scope or scope[-1][0] == "enum" or scope[-1][0] == "body":
            return False
        if scope[-1][0] == "namespace":
            return True
        return scope[-1][1]  # public section of a struct/class

    for idx, raw in enumerate(lines):
        line = strip_strings(raw)
        code = line.split("//")[0]
        stripped = code.strip()

        if pending_braces > 0:  # inside a skipped function body
            pending_braces += code.count("{") - code.count("}")
            continue

        m_access = ACCESS_RE.match(code)
        if m_access and scope and scope[-1][0] in ("struct", "class"):
            scope[-1] = (scope[-1][0], m_access.group(1) == "public")
            continue

        if in_continuation:
            # A multi-line declaration head: only its first line needs docs.
            if stripped.endswith(";") or stripped.endswith("{") or "{" in code:
                in_continuation = False
                if stripped.endswith("{") or ("{" in code and "}" not in code):
                    pending_braces = code.count("{") - code.count("}")
            continue

        if not stripped or is_comment(raw.strip()):
            continue
        if any(stripped.startswith(p) for p in SKIP_PREFIXES):
            if stripped.startswith("}"):
                if scope:
                    scope.pop()
            continue

        m_scope = SCOPE_RE.match(code)
        if m_scope and m_scope.group(1) == "namespace":
            if "{" in code:
                scope.append(("namespace", True))
            continue
        if m_scope and "{" in code and ";" not in code.split("{")[0]:
            kind = m_scope.group(1)
            needs_doc = documentable()
            name = m_scope.group(3) or "<anonymous>"
            if needs_doc and not _documented(lines, idx):
                yield idx + 1, f"{kind} {name}"
            # A type nested in a non-documentable scope (e.g. a struct in a
            # private section) keeps its members exempt too: pushed as "body"
            # so a later access specifier cannot resurrect it.
            if kind != "enum" and not (needs_doc or not scope):
                scope.append(("body", False))
            else:
                scope.append((kind if kind != "enum" else "enum",
                              kind == "struct"))
            continue
        if m_scope and stripped.endswith(";"):
            continue  # forward declaration: nothing to document

        # Plain declaration (function, method, field, constructor...).
        if documentable():
            head = stripped.rstrip("{").strip()
            if not _documented(lines, idx):
                yield idx + 1, head[:90]
        # Track where the statement ends / whether an inline body follows.
        if stripped.endswith(";"):
            pass
        elif "{" in code:
            pending_braces = code.count("{") - code.count("}")
        else:
            in_continuation = True


def _documented(lines, idx) -> bool:
    raw = lines[idx]
    if "///<" in raw or re.search(r"\S.*//", raw):
        return True
    j = idx - 1
    # template<...> lines and attribute lines attach to the declaration; the
    # doc comment may sit above them.
    while j >= 0 and re.match(r"^\s*(template\s*<|\[\[)", lines[j]):
        j -= 1
    return j >= 0 and is_comment(lines[j])


def main(argv):
    roots = [Path(p) for p in (argv[1:] or ["src/solver", "src/resistance"])]
    failures = 0
    for root in roots:
        for header in sorted(root.rglob("*.hpp")):
            for line_no, decl in check_header(header):
                print(f"UNDOCUMENTED: {header}:{line_no}: {decl}")
                failures += 1
    if failures:
        print(f"check_public_docs: {failures} undocumented public symbol(s)",
              file=sys.stderr)
        return 1
    print(f"check_public_docs: all public symbols documented in "
          f"{', '.join(str(r) for r in roots)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
