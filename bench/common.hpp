// Shared helpers for the experiment harness (bench_* binaries).
//
// Every binary regenerates one experiment row-set from DESIGN.md's index
// (E1..E9) and prints it through support::Table so runs are diffable. The
// paper has no numeric tables (it is a theory paper); the "tables" here are
// its claims instantiated: sizes, stretches, leverage bounds, rounds, words,
// work and solve costs, each next to the theory prediction.
#pragma once

#include <cmath>
#include <string>

#include "graph/generators.hpp"
#include "sparsify/spectral_cert.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace spar::bench {

inline double log2n(std::size_t n) { return std::log2(std::max<double>(n, 2.0)); }

/// Spectral certification that picks the exact dense path for small n and
/// the CG/power-iteration path for larger n.
inline sparsify::ApproxBounds certify(const graph::Graph& g, const graph::Graph& h,
                                      std::uint64_t seed = 123) {
  if (g.num_vertices() <= 700) return sparsify::exact_relative_bounds(g, h);
  sparsify::CertOptions opt;
  opt.seed = seed;
  return sparsify::approx_relative_bounds(g, h, opt);
}

/// Named workload families used across experiments.
inline graph::Graph make_family(const std::string& name, graph::Vertex n,
                                std::uint64_t seed) {
  if (name == "complete") return graph::complete_graph(n);
  if (name == "er") {
    // Average degree ~16 regardless of n.
    const double p = std::min(1.0, 16.0 / static_cast<double>(n));
    return graph::connected_erdos_renyi(n, p, seed);
  }
  if (name == "er-dense") {
    const double p = std::min(1.0, 64.0 / static_cast<double>(n));
    return graph::connected_erdos_renyi(n, p, seed);
  }
  if (name == "grid") {
    const auto side = static_cast<graph::Vertex>(std::sqrt(double(n)));
    return graph::grid2d(side, side);
  }
  if (name == "pa") return graph::preferential_attachment(n, 4, seed);
  if (name == "dumbbell") return graph::dumbbell(n / 2, 0.01, seed);
  if (name == "ws") return graph::watts_strogatz(n, 4, 0.1, seed);
  if (name == "weighted-er") {
    const double p = std::min(1.0, 16.0 / static_cast<double>(n));
    return graph::randomize_weights(graph::connected_erdos_renyi(n, p, seed), 2.0,
                                    seed + 1);
  }
  throw spar::Error("unknown graph family: " + name);
}

}  // namespace spar::bench
