// E10 (Section 4's parameter reasoning): the paper's theoretical constants,
// tabulated. No randomness -- this regenerates the *formulas* the analysis
// plugs in:
//   t(n, eps)        = ceil(24 log2(n)^2 / eps^2)           (Theorem 4)
//   bundle floor     ~ t * n * log2 n                        (Cor. 2)
//   applicability m' : sparsification only bites when m > m' (Section 4's
//                      "threshold of applicability")
//   chain work terms : m log^2 n log^3 rho / eps^2 per level (Theorem 5)
// The table shows where the theory becomes self-consistent (m' < binom(n,2))
// -- the quantitative content behind the "practical t" substitution in
// DESIGN.md and behind Remark 3's "the total work remains high".
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "sparsify/presets.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const double eps = opt.get_double("eps", 1.0);

  support::Table table({"n", "log2 n", "t(n,eps)", "bundle floor ~t*n*lg n",
                        "binom(n,2)", "theory applicable?"});
  const std::vector<double> ns = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
  for (const double nd : ns) {
    const auto n = static_cast<std::size_t>(nd);
    const double lg = bench::log2n(n);
    const std::size_t t = sparsify::theory_bundle_width(n, eps);
    const double floor = double(t) * nd * lg;
    const double complete = nd * (nd - 1) / 2.0;
    table.add_row({support::Table::cell(nd), support::Table::cell(lg),
                   std::to_string(t), support::Table::cell(floor),
                   support::Table::cell(complete),
                   floor < complete ? "yes" : "no"});
  }
  table.print("E10: theory constants at eps = " + support::Table::cell(eps));
  std::printf(
      "\nReading: with the paper's constant 24, the bundle alone exceeds even\n"
      "the complete graph until n ~ 10^6 (eps = 1). The asymptotic claim is\n"
      "unaffected -- this is the constant-factor reality motivating the\n"
      "practical-t mode (DESIGN.md section 2) and Remark 3's discussion.\n");

  // Solver side: the per-level size factor O(log n log^2 kappa) that squaring
  // inflates and PARALLELSPARSIFY must undo (Section 4).
  support::Table chain({"n", "kappa", "level growth ~lg n * lg^2 k",
                        "rho to undo", "rounds ceil(lg rho)"});
  for (const double nd : {1e4, 1e6}) {
    for (const double kappa : {1e3, 1e6, 1e9}) {
      const double lg = bench::log2n(static_cast<std::size_t>(nd));
      const double lgk = std::log2(kappa);
      const double growth = lg * lgk * lgk;
      chain.add_row({support::Table::cell(nd), support::Table::cell(kappa),
                     support::Table::cell(growth), support::Table::cell(growth),
                     support::Table::cell(std::ceil(std::log2(growth)))});
    }
  }
  chain.print("E10b: Section 4 chain bookkeeping (rho = level growth factor)");
  return 0;
}
