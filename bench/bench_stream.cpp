// E12 (streaming): merge-and-reduce streaming sparsification vs whole-graph
// PARALLELSPARSIFY.
//
// Table A: >= 1M-edge dense workload. Whole-graph sparsify holds all m edges
// resident; the streaming tower holds at most ~(cap sketches + 1 batch). The
// acceptance bar for PR 4 (BENCH_pr4.json): peak resident edges <= ~4x the
// final sparsifier size (and << m), wall-clock within 2x of whole-graph, and
// the SPARBIN file stream produces the bit-identical sparsifier while never
// materializing the input.
//
// Table B: small configs where the dense eigensolver certifies: the streamed
// sparsifier must land inside the requested (1 +- eps), batch size swept.
//
// Exit code: nonzero if any correctness invariant fails (stream != memory,
// nondeterminism across thread counts, small-config certification outside
// eps). Wall-clock and memory ratios are reported, not asserted -- CI boxes
// are too noisy to gate on timing.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "graph/io.hpp"
#include "graph/io_binary.hpp"
#include "sparsify/sparsify.hpp"
#include "sparsify/stream.hpp"
#include "support/parallel.hpp"

using namespace spar;

namespace {

sparsify::StreamOptions stream_options(double eps, double rho, std::size_t t,
                                       std::uint64_t seed, std::size_t batch,
                                       std::size_t cap = 3) {
  sparsify::StreamOptions opt;
  opt.epsilon = eps;
  opt.rho = rho;
  opt.t = t;
  opt.seed = seed;
  opt.batch_edges = batch;
  opt.max_resident_levels = cap;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 19);
  // complete:n gives the densest workload per vertex: n=1500 -> m=1,124,250.
  const auto n = static_cast<graph::Vertex>(opt.get_int("n", quick ? 300 : 1500));
  const double eps = opt.get_double("eps", 1.0);
  const double rho_whole = opt.get_double("rho", 8.0);
  const double rho_stream = opt.get_double("rho-stream", 4.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto batch =
      static_cast<std::size_t>(opt.get_int("batch", quick ? 4096 : 32768));
  const auto cap = static_cast<std::size_t>(opt.get_int("cap", 2));
  bool ok = true;

  std::printf("parallel backend: %s\n", support::par::backend_description().c_str());
  const graph::Graph g =
      graph::randomize_weights(graph::complete_graph(n), 0.5, seed);
  const std::size_t m = g.num_edges();
  std::printf("workload: complete n=%u m=%zu (randomized weights)\n", n, m);

  // --- Table A: whole-graph vs streaming on the big workload ---------------
  support::Table table({"path", "ms", "edges out", "peak resident", "peak/final",
                        "peak/m", "vs whole ms"});

  support::Timer tw;
  sparsify::SparsifyOptions wopt;
  wopt.epsilon = eps;
  wopt.rho = rho_whole;
  wopt.t = t;
  wopt.seed = seed;
  const auto whole = sparsify::parallel_sparsify(g, wopt);
  const double whole_ms = tw.millis();
  table.add_row({"whole-graph sparsify", support::Table::cell(whole_ms),
                 std::to_string(whole.sparsifier.num_edges()), std::to_string(m),
                 support::Table::cell(double(m) / double(whole.sparsifier.num_edges())),
                 "1.00", "1.00x"});

  const graph::EdgeArena arena(g);
  sparsify::StreamReport mem_report;
  graph::Graph mem_sparsifier;
  {
    support::Timer ts;
    auto r = sparsify::stream_sparsify(arena.view(),
                                       stream_options(eps, rho_stream, t, seed, batch, cap));
    const double ms = ts.millis();
    mem_report = r.report;
    mem_sparsifier = std::move(r.sparsifier);
    table.add_row(
        {"stream (memory batches)", support::Table::cell(ms),
         std::to_string(mem_report.final_edges),
         std::to_string(mem_report.peak_resident_edges),
         support::Table::cell(double(mem_report.peak_resident_edges) /
                              double(std::max<std::size_t>(mem_report.final_edges, 1))),
         support::Table::cell(double(mem_report.peak_resident_edges) / double(m)),
         support::Table::cell(ms / whole_ms) + "x"});
  }

  // SPARBIN file stream: the input is never resident, only tower + one batch.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "spar_bench_stream";
  fs::create_directories(dir);
  const std::string bin_path = (dir / "g.spb").string();
  graph::save_binary(bin_path, g);
  {
    support::Timer ts;
    const auto r = sparsify::stream_sparsify_file(
        bin_path, stream_options(eps, rho_stream, t, seed, batch, cap));
    const double ms = ts.millis();
    table.add_row(
        {"stream (SPARBIN file)", support::Table::cell(ms),
         std::to_string(r.report.final_edges),
         std::to_string(r.report.peak_resident_edges),
         support::Table::cell(double(r.report.peak_resident_edges) /
                              double(std::max<std::size_t>(r.report.final_edges, 1))),
         support::Table::cell(double(r.report.peak_resident_edges) / double(m)),
         support::Table::cell(ms / whole_ms) + "x"});
    if (!r.sparsifier.same_edges(mem_sparsifier)) {
      std::printf("BUG: file stream disagrees with memory stream\n");
      ok = false;
    }
  }
  fs::remove(bin_path);
  fs::remove(dir);
  table.print("E12 (a): streaming vs whole-graph, complete n=" + std::to_string(n) +
              ", batch=" + std::to_string(batch) + ", eps=" +
              support::Table::cell(eps));
  std::printf(
      "tower: %zu batches, %zu passes over %zu levels, depth %zu/%zu, "
      "eps/level %.4f, merge traffic %llu edges (%.2fx ingest)\n",
      mem_report.batches, mem_report.sparsify_calls, mem_report.levels_used,
      mem_report.depth_used, mem_report.depth_planned, mem_report.per_level_epsilon,
      static_cast<unsigned long long>(mem_report.metrics.merge_edges),
      double(mem_report.metrics.merge_edges) /
          double(std::max<std::uint64_t>(mem_report.metrics.edges_ingested, 1)));

  // Determinism across thread counts (the golden-hash test pins the exact
  // value; here we re-check on the big workload).
  {
    support::par::ThreadLimit one(1);
    const auto a = sparsify::stream_sparsify(
        arena.view(), stream_options(eps, rho_stream, t, seed, batch, cap));
    support::par::ThreadLimit four(4);
    const auto b = sparsify::stream_sparsify(
        arena.view(), stream_options(eps, rho_stream, t, seed, batch, cap));
    if (!a.sparsifier.same_edges(b.sparsifier)) {
      std::printf("BUG: stream sparsifier differs between 1 and 4 threads\n");
      ok = false;
    }
  }

  // --- Table B: certification on small configs, batch-size sweep -----------
  support::Table quality({"graph", "batch", "batches", "edges out", "lower",
                          "upper", "cert eps", "within eps"});
  const struct {
    const char* name;
    graph::Graph graph;
  } small_cases[] = {
      {"complete:120", graph::randomize_weights(graph::complete_graph(120), 0.5, seed)},
      {"dumbbell:60", graph::dumbbell(60, 0.05, seed)},
      {"er:200", bench::make_family("er-dense", 200, seed)},
  };
  for (const auto& c : small_cases) {
    const graph::EdgeArena small_arena(c.graph);
    const std::size_t sm = c.graph.num_edges();
    for (const std::size_t sb : {sm, sm / 4, sm / 16}) {
      if (sb == 0) continue;
      const auto r = sparsify::stream_sparsify(
          small_arena.view(), stream_options(eps, rho_stream, t, seed, sb));
      const auto bounds = bench::certify(c.graph, r.sparsifier, seed);
      const bool within = bounds.lower > 1.0 - eps && bounds.upper < 1.0 + eps;
      ok = ok && within;
      quality.add_row({c.name, std::to_string(sb), std::to_string(r.report.batches),
                       std::to_string(r.report.final_edges),
                       support::Table::cell(bounds.lower),
                       support::Table::cell(bounds.upper),
                       support::Table::cell(bounds.epsilon()),
                       within ? "yes" : "NO (BUG)"});
    }
  }
  quality.print("E12 (b): streamed certification inside requested eps=" +
                support::Table::cell(eps) + " (exact pencil bounds)");

  std::printf("\nacceptance: peak/final <= ~4x and peak << m (table a), "
              "wall-clock within 2x of whole-graph, small configs certify "
              "within eps (table b), file == memory, threads 1 == 4: %s\n",
              ok ? "correctness PASS" : "FAIL");
  return ok ? 0 : 1;
}
