// E4 (Theorem 4): PARALLELSAMPLE output quality and size.
//
// Rows: (family, t) sweep. Columns: edges kept vs the m/2 + bundle budget,
// certified spectral bounds [lower, upper] of the output against the input,
// and the implied eps. Includes the dumbbell -- the case uniform sampling
// alone cannot survive -- to show the bundle catches the bridge.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "sparsify/sample.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 17);

  struct Case {
    std::string family;
    graph::Vertex n;
  };
  std::vector<Case> cases = {
      {"complete", 200}, {"er-dense", 500}, {"dumbbell", 120}, {"weighted-er", 500}};
  if (quick) cases = {{"complete", 120}, {"dumbbell", 80}};
  std::vector<std::size_t> ts = {1, 2, 4, 8};
  if (quick) ts = {1, 4};

  support::Table table({"family", "n", "m", "t", "|G~|", "bundle", "sampled",
                        "lower", "upper", "eps", "connected"});

  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);
    for (const std::size_t t : ts) {
      sparsify::SampleOptions sopt;
      sopt.t = t;
      sopt.seed = seed + t;
      const auto result = sparsify::parallel_sample(g, sopt);
      const auto bounds = bench::certify(g, result.sparsifier, seed);
      const bool connected =
          graph::is_connected(graph::CSRGraph(result.sparsifier));
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     std::to_string(t),
                     std::to_string(result.sparsifier.num_edges()),
                     std::to_string(result.bundle_edges),
                     std::to_string(result.sampled_edges),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon()),
                     connected ? "yes" : "NO"});
    }
  }
  table.print("E4 / Theorem 4: PARALLELSAMPLE size and certified (1 +- eps)");
  std::printf("\nExpected shape: eps shrinks as t grows (Theorem 4 trades bundle "
              "size for accuracy); dumbbell stays connected for every t.\n"
              "Theory setting t = 24 lg^2(n)/eps^2 for n=%u, eps=0.5: t = %zu "
              "(larger than any feasible bundle -- see DESIGN.md).\n",
              200u, sparsify::theory_bundle_width(200, 0.5));
  return 0;
}
