// E16: sharded multi-process execution of the distributed protocols.
//
// Two claims are instantiated side by side:
//
//  1. Resharding invariance -- the model-level account (rounds, messages,
//     words; the Theorem 2 budgets) and the output edge set are IDENTICAL
//     for every shard count and backend. Each row prints a golden hash of
//     the output; within a (family, n) block every hash must match, and
//     the binary exits nonzero if one does not.
//  2. What a real mesh costs -- wall-clock for loopback threads vs real
//     dist_worker processes over UNIX sockets at shards 1/2/4, next to the
//     measured wire traffic (words shipped, frames, wire bytes) that the
//     transport reconciles against the model words every superstep.
//
// --selftest runs a tiny 4-shard socket spanner + one sparsify round and
// compares against the one-shard run (the check.sh smoke). --quick shrinks
// the sweep for CI; BENCH_pr8.json records a full run.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "dist/dist_spanner.hpp"
#include "dist/runner.hpp"
#include "graph/csr.hpp"
#include "support/framing.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace spar;

namespace {

/// Golden hash of a result edge list: order-sensitive chunked-FNV over the
/// (u, v, weight-bits) stream, so "same hash" means same edges, same order,
/// same weights to the last bit.
std::uint64_t golden_hash(const graph::Graph& g) {
  std::vector<std::uint64_t> words;
  words.reserve(g.num_edges() * 3 + 1);
  words.push_back(g.num_vertices());
  for (const graph::Edge& e : g.edges()) {
    words.push_back(e.u);
    words.push_back(e.v);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.w));
    __builtin_memcpy(&bits, &e.w, sizeof(bits));
    words.push_back(bits);
  }
  return support::framing::checksum_bytes(
      words.data(), words.size() * sizeof(std::uint64_t), words.size());
}

std::uint64_t golden_hash_ids(const std::vector<graph::EdgeId>& ids) {
  return support::framing::checksum_bytes(
      ids.data(), ids.size() * sizeof(graph::EdgeId), ids.size());
}

std::string hex(std::uint64_t x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

const char* backend_name(dist::DistBackend b) {
  switch (b) {
    case dist::DistBackend::kLoopback: return "loopback";
    case dist::DistBackend::kSocketUnix: return "unix";
    case dist::DistBackend::kSocketTcp: return "tcp";
  }
  return "?";
}

int selftest(const std::string& worker) {
  const graph::Graph g = graph::connected_erdos_renyi(256, 0.06, 5);

  dist::DistSpannerOptions sopt;
  sopt.seed = 9;
  dist::DistExecOptions one;
  one.shards = 1;
  dist::DistExecOptions four;
  four.shards = 4;
  four.backend = dist::DistBackend::kSocketUnix;
  four.worker_path = worker;

  const auto span1 = dist::run_distributed_spanner(g, sopt, one);
  const auto span4 = dist::run_distributed_spanner(g, sopt, four);
  const bool span_ok =
      span1.spanner_edges == span4.spanner_edges &&
      span1.metrics.rounds == span4.metrics.rounds &&
      span1.metrics.words == span4.metrics.words;
  std::printf("spanner  1-shard %s  4-shard-socket %s  rounds %llu  %s\n",
              hex(golden_hash_ids(span1.spanner_edges)).c_str(),
              hex(golden_hash_ids(span4.spanner_edges)).c_str(),
              static_cast<unsigned long long>(span4.metrics.rounds),
              span_ok ? "match" : "MISMATCH");

  dist::DistSampleOptions mopt;
  mopt.t = 3;
  mopt.seed = 9;
  const auto samp1 = dist::run_distributed_sample(g, mopt, one);
  const auto samp4 = dist::run_distributed_sample(g, mopt, four);
  const bool samp_ok =
      samp1.sparsifier.same_edges(samp4.sparsifier) &&
      samp1.metrics.words == samp4.metrics.words &&
      samp4.wire.wire_bytes ==
          samp4.wire.payload_bytes + samp4.wire.frames * 48;
  std::printf("sample   1-shard %s  4-shard-socket %s  wire %llu B  %s\n",
              hex(golden_hash(samp1.sparsifier)).c_str(),
              hex(golden_hash(samp4.sparsifier)).c_str(),
              static_cast<unsigned long long>(samp4.wire.wire_bytes),
              samp_ok ? "match" : "MISMATCH");

  if (span_ok && samp_ok) {
    std::printf("SELFTEST PASS\n");
    return 0;
  }
  std::printf("SELFTEST FAIL\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 11);
  const std::string worker = opt.get("worker", "");

  if (opt.get_bool("selftest", false)) return selftest(worker);

  std::vector<graph::Vertex> sizes = {512, 1024, 2048};
  if (quick) sizes = {512, 1024};
  const std::vector<std::size_t> shard_counts = {1, 2, 4};

  struct Config {
    dist::DistBackend backend;
    std::size_t shards;
  };
  std::vector<Config> configs;
  for (std::size_t s : shard_counts)
    configs.push_back({dist::DistBackend::kLoopback, s});
  for (std::size_t s : shard_counts)
    configs.push_back({dist::DistBackend::kSocketUnix, s});

  int failures = 0;

  support::Table table({"family", "n", "backend", "shards", "ms", "rounds",
                        "rounds/lg^2 n", "model words", "wire words",
                        "frames", "wire bytes", "hash"});
  for (const char* family : {"er", "grid"}) {
    for (const graph::Vertex n : sizes) {
      const graph::Graph g = bench::make_family(family, n, seed);
      dist::DistSparsifyOptions popt;
      popt.t = 3;
      popt.rho = 4.0;
      popt.seed = seed;

      std::uint64_t want_hash = 0;
      dist::DistMetrics want_metrics;
      bool have_base = false;
      for (const Config& cfg : configs) {
        dist::DistExecOptions exec;
        exec.shards = cfg.shards;
        exec.backend = cfg.backend;
        exec.worker_path = worker;

        support::Timer timer;
        const auto result = dist::run_distributed_sparsify(g, popt, exec);
        const double ms = timer.millis();
        const std::uint64_t hash = golden_hash(result.sparsifier);
        if (!have_base) {
          want_hash = hash;
          want_metrics = result.metrics;
          have_base = true;
        }
        if (hash != want_hash ||
            result.metrics.words != want_metrics.words ||
            result.metrics.rounds != want_metrics.rounds) {
          ++failures;
        }

        const double lg = bench::log2n(n);
        table.add_row({family, std::to_string(n), backend_name(cfg.backend),
                       std::to_string(cfg.shards), support::Table::cell(ms),
                       std::to_string(result.metrics.rounds),
                       support::Table::cell(
                           double(result.metrics.rounds) / (lg * lg)),
                       std::to_string(result.metrics.words),
                       std::to_string(result.wire.words),
                       std::to_string(result.wire.frames),
                       std::to_string(result.wire.wire_bytes), hex(hash)});
      }
    }
  }
  table.print(
      "E16: sharded PARALLELSPARSIFY -- resharding invariance & mesh cost");
  std::printf(
      "\nWithin each (family, n) block every hash and every model count is "
      "identical across\nbackends and shard counts; 'wire words' is what the "
      "mesh actually shipped (0 for one\nshard), reconciled against bytes "
      "every superstep. %s\n",
      failures == 0 ? "INVARIANCE OK" : "INVARIANCE BROKEN");
  return failures == 0 ? 0 : 1;
}
