// E18: application layer riding the solver -- spectral partitioning and
// PageRank determinism across thread counts, plus sparsifier quality-on-task.
//
// Table E18a runs the partition and PageRank apps on grid and er instances at
// threads 1/2/4 and fingerprints the sign-fixed Fiedler vector and the
// PageRank scores (FNV over raw double bytes). The binary exits nonzero if
// any hash differs across thread counts (the bit-identity contract), if the
// convenience entry point and the caller-owned resident-chain overload
// disagree bitwise (chain-reuse identity), or if the Fiedler value on a small
// instance strays from the dense symmetric_eigenvalues oracle.
//
// Table E18b sparsifies dense instances at eps in {0.3, 0.5} (static
// parallel_sparsify and a DynamicSparsifier checkpoint after a turnstile
// insert+delete stream) and reports what the apps see: conductance on G vs H
// and cross (H's cut priced on G), PageRank rank correlation / top-k overlap,
// and the effective-resistance ratio window. Self-check: the same-cut
// conductance ratio and the resistance ratios must lie inside the pencil
// bounds implied by the measured certified epsilon.
//
//   ./bench_apps [--quick=1] [--seed=N] [--threads=1,2,4]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "apps/partition.hpp"
#include "apps/task_quality.hpp"
#include "bench/common.hpp"
#include "graph/update_stream.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"

using namespace spar;

namespace {

// FNV-1a over raw double bytes: bit-identical vectors -- and only those --
// hash alike (same scheme as bench_dynamic's edge hash).
std::uint64_t vector_hash(std::span<const double> v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double x : v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 29);

  std::vector<int> threads = {1, 2, 4};
  if (opt.has("threads")) {
    threads.clear();
    const std::string s = opt.get("threads", "");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t next = s.find(',', pos);
      threads.push_back(support::parse_number<int>(
          "--threads", s.substr(pos, next == std::string::npos ? next : next - pos)));
      if (next == std::string::npos) break;
      pos = next + 1;
    }
  }

  bool ok = true;

  // ---- E18a: determinism of the apps across thread counts ----------------
  struct Case {
    std::string family;
    graph::Vertex n;
  };
  std::vector<Case> cases = {{"grid", 25600}, {"er", 16384}};
  if (quick) cases = {{"grid", 1024}, {"er", 1024}};

  apps::FiedlerOptions fopt;
  fopt.seed = seed;
  apps::PageRankOptions popt;

  support::Table table({"family", "n", "m", "threads", "lambda2", "phi", "fi it",
                        "pr it", "part ms", "pr ms", "fiedler hash", "pr hash"});
  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);
    std::uint64_t ref_fiedler = 0, ref_pr = 0;
    for (const int t : threads) {
      support::par::ThreadLimit limit(t);
      support::Timer part_timer;
      const apps::PartitionReport part = apps::spectral_partition(g, fopt);
      const double part_ms = part_timer.millis();
      support::Timer pr_timer;
      const apps::PageRankReport pr = apps::pagerank(g, popt);
      const double pr_ms = pr_timer.millis();
      // PageRank always converges (l1 contraction). The Fiedler residual gate
      // applies to the grid only: on the er expander lambda_2/lambda_3 ~ 1,
      // so inverse-power convergence is inherently slow there and the
      // iteration-capped vector is still the determinism fixture.
      ok = ok && pr.converged && (c.family != "grid" || part.fiedler.converged);

      const std::uint64_t fh = vector_hash(part.fiedler.vector);
      const std::uint64_t ph = vector_hash(pr.scores);
      if (t == threads.front()) {
        ref_fiedler = fh;
        ref_pr = ph;
      }
      // The whole point of the table: any drift across thread counts fails.
      ok = ok && fh == ref_fiedler && ph == ref_pr;

      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     std::to_string(t), support::Table::cell(part.fiedler.value),
                     support::Table::cell(part.cut.conductance),
                     std::to_string(part.fiedler.iterations),
                     std::to_string(pr.iterations), support::Table::cell(part_ms),
                     support::Table::cell(pr_ms), hex64(fh), hex64(ph)});
    }
  }
  table.print("E18a: partition + PageRank at 1/2/4 threads (hashes must match "
              "per family -- bit-identity contract)");

  // Chain-reuse identity: the convenience entry point (fresh chain inside)
  // and the caller-owned resident chain must agree bit for bit.
  {
    const graph::Graph g = bench::make_family("grid", quick ? 576 : 4096, seed);
    const apps::FiedlerReport fresh = apps::fiedler_vector(g, fopt);
    const solver::SDDMatrix m{graph::Graph(g)};
    const solver::InverseChain chain(m, fopt.solve.chain);
    const apps::FiedlerReport resident = apps::fiedler_vector(m, chain, fopt);
    const bool same =
        fresh.vector.size() == resident.vector.size() &&
        std::memcmp(fresh.vector.data(), resident.vector.data(),
                    fresh.vector.size() * sizeof(double)) == 0 &&
        fresh.value == resident.value && fresh.iterations == resident.iterations;
    ok = ok && same;
    std::printf("\nchain-reuse identity (fresh vs resident chain): %s\n",
                same ? "bitwise equal" : "MISMATCH");
  }

  // Dense oracle: lambda_2 against symmetric_eigenvalues on a small grid.
  {
    const graph::Graph g = bench::make_family("grid", 144, seed);
    const apps::FiedlerReport fr = apps::fiedler_vector(g, fopt);
    const linalg::Vector eig = linalg::symmetric_eigenvalues(
        linalg::DenseMatrix::from_csr(linalg::laplacian_matrix(g)));
    const double exact = eig[1];
    const double rel = std::abs(fr.value - exact) / exact;
    ok = ok && rel < 1e-6;
    std::printf("dense oracle (12x12 grid): lambda2 %.12e vs exact %.12e "
                "(rel err %.2e)%s\n",
                fr.value, exact, rel, rel < 1e-6 ? "" : "  FAILED");
  }

  // ---- E18b: sparsifier quality-on-task ----------------------------------
  const graph::Vertex qn = quick ? 200 : 400;
  const graph::Graph qg = bench::make_family("complete", qn, seed);
  apps::TaskQualityOptions qopt;
  qopt.fiedler.seed = seed;
  qopt.resistance_pairs = quick ? 4 : 8;
  qopt.seed = seed;

  support::Table qtable({"mode", "eps", "claimed", "measured", "m out", "phi G",
                         "phi H", "cross", "spearman", "top-k", "R min", "R max",
                         "ms"});
  for (const double eps : {0.3, 0.5}) {
    for (const bool dynamic : {false, true}) {
      graph::Graph sparse;
      graph::Graph base = qg;
      double claimed = 0.0;
      if (!dynamic) {
        sparsify::SparsifyOptions sopt;
        sopt.epsilon = eps;
        sopt.rho = 8.0;
        sopt.t = 1;
        sopt.seed = seed;
        sparse = sparsify::parallel_sparsify(qg, sopt).sparsifier;
        claimed = eps;
      } else {
        // Turnstile stream: every edge inserted, 15% deleted later; the
        // checkpoint serves the sparsifier of the SURVIVING graph, so the
        // evaluation below runs against the live graph, not qg.
        const graph::UpdateBatch updates = graph::synthesize_updates(qg, 0.15, seed);
        sparsify::DynamicOptions dopt;
        dopt.epsilon = eps;
        dopt.seed = seed;
        sparsify::DynamicSparsifier dsp(qg.num_vertices(), dopt);
        dsp.apply(updates);
        sparsify::DynCheckpoint cp = dsp.checkpoint();
        sparse = std::move(cp.sparsifier);
        claimed = cp.certified_epsilon;
        base = dsp.live_graph();
      }
      // The window below uses the MEASURED pencil epsilon, not the claimed
      // budget: on dynamic checkpoints the analytic certified_epsilon can
      // undershoot the exact pencil (see DESIGN.md section 10) and a window
      // built from it would be unsound.
      const double certified = bench::certify(base, sparse, seed).epsilon();

      support::Timer timer;
      const apps::TaskQualityReport tq = apps::evaluate_on_tasks(base, sparse, qopt);
      const double ms = timer.millis();

      // Pencil-implied windows, checked when the certificate is meaningful:
      // same-cut conductance ratio in [(1-e)/(1+e), (1+e)/(1-e)], resistance
      // ratios in [1/(1+e), 1/(1-e)] (5% solve slack).
      if (certified > 0.0 && certified < 0.9) {
        const double e = certified;
        const double lo = (1.0 - e) / (1.0 + e) / 1.05;
        const double hi = (1.0 + e) / (1.0 - e) * 1.05;
        const double same_cut = tq.conductance_h / tq.cross_conductance;
        ok = ok && same_cut >= lo && same_cut <= hi;
        ok = ok && tq.min_resistance_ratio >= 1.0 / (1.0 + e) / 1.05 &&
             tq.max_resistance_ratio <= 1.0 / (1.0 - e) * 1.05;
      }

      qtable.add_row({dynamic ? "dynamic" : "static", support::Table::cell(eps),
                      support::Table::cell(claimed),
                      support::Table::cell(certified),
                      std::to_string(sparse.num_edges()),
                      support::Table::cell(tq.conductance_g),
                      support::Table::cell(tq.conductance_h),
                      support::Table::cell(tq.cross_conductance),
                      support::Table::cell(tq.spearman),
                      support::Table::cell(tq.top_k_overlap),
                      support::Table::cell(tq.min_resistance_ratio),
                      support::Table::cell(tq.max_resistance_ratio),
                      support::Table::cell(ms)});
    }
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "E18b: quality-on-task, complete n=%u (static parallel_sparsify "
                "vs dynamic checkpoint)", qn);
  qtable.print(title);

  if (!ok) {
    std::fprintf(stderr, "bench_apps: FAILED (hash drift across threads, "
                         "chain-reuse mismatch, oracle miss, or a task metric "
                         "outside its pencil window)\n");
    return 1;
  }
  std::printf("\nhashes identical across thread counts; chain-reuse bitwise "
              "equal; task metrics inside their certified pencil windows.\n");
  return 0;
}
