// E6 (Remark 4): PARALLELSPARSIFY vs Spielman-Srivastava vs uniform sampling.
//
// Table A: on dense graphs at matched output size -- certified eps for each
// method, whether the method needs a linear-system solver ("solve-free"),
// and wall time. SS should win slightly on size/quality (it samples by exact
// leverage); Koutis needs no solver and stays competitive -- that is the
// paper's positioning.
// Table B: the dumbbell kill-shot -- disconnect rate over seeds (uniform
// fails ~ (1-p) of the time, the other two never).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "sparsify/baselines.hpp"
#include "sparsify/incremental.hpp"
#include "sparsify/sparsify.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 23);

  struct Case {
    std::string family;
    graph::Vertex n;
  };
  std::vector<Case> cases = {{"complete", 200}, {"er-dense", 500}, {"weighted-er", 500}};
  if (quick) cases = {{"complete", 120}};

  support::Table table({"family", "n", "m", "method", "edges", "lower", "upper",
                        "eps", "solve-free", "ms"});
  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);

    {
      support::Timer timer;
      sparsify::SparsifyOptions kopt;
      kopt.epsilon = 1.0;
      kopt.rho = 8.0;
      kopt.t = 3;
      kopt.seed = seed;
      const auto koutis = sparsify::parallel_sparsify(g, kopt);
      const double ms = timer.millis();
      const auto bounds = bench::certify(g, koutis.sparsifier, seed);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "koutis", std::to_string(koutis.sparsifier.num_edges()),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon()), "yes",
                     support::Table::cell(ms)});
    }
    {
      support::Timer timer;
      sparsify::SpielmanSrivastavaOptions ssopt;
      ssopt.epsilon = 0.75;
      ssopt.resistance_mode = c.n <= 600 ? sparsify::ResistanceMode::kExactDense
                                         : sparsify::ResistanceMode::kApproxSolver;
      ssopt.seed = seed;
      const auto ss = sparsify::spielman_srivastava(g, ssopt);
      const double ms = timer.millis();
      const auto bounds = bench::certify(g, ss.sparsifier, seed);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "spielman-srivastava",
                     std::to_string(ss.sparsifier.num_edges()),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon()), "no",
                     support::Table::cell(ms)});
    }
    {
      support::Timer timer;
      sparsify::IncrementalOptions iopt;
      iopt.epsilon = 0.75;
      iopt.seed = seed;
      const auto inc = sparsify::incremental_sparsify(g, iopt);
      const double ms = timer.millis();
      const auto bounds = bench::certify(g, inc.sparsifier, seed);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "incremental (KMP-style)",
                     std::to_string(inc.sparsifier.num_edges()),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon()), "yes",
                     support::Table::cell(ms)});
    }
    {
      support::Timer timer;
      const auto uniform = sparsify::uniform_sparsify(g, 0.25, seed);
      const double ms = timer.millis();
      const auto bounds = bench::certify(g, uniform, seed);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "uniform", std::to_string(uniform.num_edges()),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon()), "yes",
                     support::Table::cell(ms)});
    }
  }
  table.print("E6 / Remark 4 (a): method comparison at similar output sizes");

  // Dumbbell disconnect rates.
  const int trials = quick ? 10 : 30;
  const graph::Graph db = graph::dumbbell(quick ? 40 : 60, 0.01);
  int uniform_fail = 0, koutis_fail = 0, ss_fail = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto u = sparsify::uniform_sparsify(db, 0.25, seed + trial);
    uniform_fail += !graph::is_connected(graph::CSRGraph(u));
    sparsify::SampleOptions kopt;
    kopt.t = 1;
    kopt.seed = seed + trial;
    const auto k = sparsify::parallel_sample(db, kopt);
    koutis_fail += !graph::is_connected(graph::CSRGraph(k.sparsifier));
    sparsify::SpielmanSrivastavaOptions ssopt;
    ssopt.epsilon = 1.0;
    ssopt.resistance_mode = sparsify::ResistanceMode::kExactDense;
    ssopt.seed = seed + trial;
    const auto s = sparsify::spielman_srivastava(db, ssopt);
    ss_fail += !graph::is_connected(graph::CSRGraph(s.sparsifier));
  }
  support::Table kill({"method", "disconnect rate", "trials"});
  auto rate = [&](int fails) {
    return support::Table::cell(double(fails) / double(trials));
  };
  kill.add_row({"uniform (no bundle)", rate(uniform_fail), std::to_string(trials)});
  kill.add_row({"koutis (bundle + uniform)", rate(koutis_fail), std::to_string(trials)});
  kill.add_row({"spielman-srivastava", rate(ss_fail), std::to_string(trials)});
  kill.print("E6 / Remark 4 (b): dumbbell bridge survival");
  std::printf("\nExpected shape: uniform ~0.75 disconnect rate; both spectral "
              "methods 0.\n");
  return 0;
}
