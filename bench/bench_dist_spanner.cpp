// E2 (Theorem 2): distributed Baswana-Sen -- O(log^2 n) rounds, O(m log n)
// communication, message size O(log n).
//
// Rows: one per (family, n); columns show rounds / log2(n)^2 and
// words / (m log2 n) (flat columns confirm the claims) plus the exact
// per-message word bound enforced by the simulator.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "dist/dist_spanner.hpp"
#include "spanner/baswana_sen.hpp"
#include "graph/csr.hpp"
#include "spanner/stretch.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 11);

  std::vector<graph::Vertex> sizes = {128, 256, 512, 1024, 2048};
  if (quick) sizes = {128, 256, 512};
  const std::vector<std::string> families = {"er", "grid"};

  support::Table table({"family", "n", "m", "rounds", "rounds/lg^2 n", "messages",
                        "words/(m lg n)", "msg words", "max round words",
                        "max_stretch", "bound"});

  for (const auto& family : families) {
    for (const graph::Vertex n : sizes) {
      const graph::Graph g = bench::make_family(family, n, seed);
      const graph::CSRGraph csr(g);
      const auto result = dist::distributed_spanner(csr, nullptr, {.k = 0, .seed = seed});

      const std::size_t k = spanner::auto_spanner_k(g.num_vertices());
      std::string stretch_cell = "-";
      if (g.num_vertices() <= 1100) {
        std::vector<bool> mask(g.num_edges(), false);
        for (auto id : result.spanner_edges) mask[id] = true;
        stretch_cell = support::Table::cell(
            spanner::stretch_over_subgraph(g, mask).max_stretch);
      }

      const double lg = bench::log2n(n);
      table.add_row(
          {family, std::to_string(n), std::to_string(g.num_edges()),
           std::to_string(result.metrics.rounds),
           support::Table::cell(double(result.metrics.rounds) / (lg * lg)),
           std::to_string(result.metrics.messages),
           support::Table::cell(double(result.metrics.words) /
                                (double(g.num_edges()) * lg)),
           std::to_string(result.metrics.max_message_words),
           std::to_string(result.metrics.max_round_words), stretch_cell,
           std::to_string(2 * k - 1)});
    }
  }
  table.print("E2 / Theorem 2: distributed spanner rounds & communication");
  std::printf("\nEvery message is tag + 2 words (O(log n) bits), enforced by the "
              "simulator.\n");
  return 0;
}
