// Micro-benchmarks of the hot kernels (google-benchmark): SpMV, quadratic
// form, CSR construction, spanner, one PARALLELSAMPLE round, CG iteration.
// These complement the experiment tables with stable ns/op numbers for
// regression tracking.
#include <benchmark/benchmark.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "linalg/cg.hpp"
#include "linalg/laplacian.hpp"
#include "spanner/baswana_sen.hpp"
#include "sparsify/sample.hpp"
#include "support/rng.hpp"

using namespace spar;

namespace {

graph::Graph bench_graph(std::int64_t n) {
  const double p = std::min(1.0, 16.0 / static_cast<double>(n));
  return graph::connected_erdos_renyi(static_cast<graph::Vertex>(n), p, 42);
}

void BM_CsrBuild(benchmark::State& state) {
  const graph::Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    graph::CSRGraph csr(g);
    benchmark::DoNotOptimize(csr.num_arcs());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_CsrBuild)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_SpMV(benchmark::State& state) {
  const graph::Graph g = bench_graph(state.range(0));
  const linalg::CSRMatrix lap = linalg::laplacian_matrix(g);
  support::Rng rng(3);
  linalg::Vector x(g.num_vertices()), y(g.num_vertices());
  for (double& v : x) v = rng.normal();
  for (auto _ : state) {
    lap.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lap.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_QuadraticForm(benchmark::State& state) {
  const graph::Graph g = bench_graph(state.range(0));
  support::Rng rng(5);
  linalg::Vector x(g.num_vertices());
  for (double& v : x) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::laplacian_quadratic_form(g, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_QuadraticForm)->Arg(1 << 14)->Arg(1 << 16);

void BM_Spanner(benchmark::State& state) {
  const graph::Graph g = bench_graph(state.range(0));
  const graph::CSRGraph csr(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto ids = spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = seed++});
    benchmark::DoNotOptimize(ids.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_Spanner)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_ParallelSampleRound(benchmark::State& state) {
  const graph::Graph g = bench_graph(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sparsify::SampleOptions opt;
    opt.t = 1;
    opt.seed = seed++;
    auto result = sparsify::parallel_sample(g, opt);
    benchmark::DoNotOptimize(result.sparsifier.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ParallelSampleRound)->Arg(1 << 12)->Arg(1 << 14);

void BM_CgSolveGrid(benchmark::State& state) {
  const auto side = static_cast<graph::Vertex>(state.range(0));
  const graph::Graph g = graph::grid2d(side, side);
  const linalg::LaplacianOperator lap(g);
  const linalg::LinearOperator op{
      g.num_vertices(),
      [&lap](std::span<const double> in, std::span<double> out) { lap.apply(in, out); }};
  support::Rng rng(7);
  linalg::Vector b(g.num_vertices());
  for (double& v : b) v = rng.normal();
  linalg::remove_mean(b);
  for (auto _ : state) {
    linalg::Vector x(g.num_vertices(), 0.0);
    linalg::CGOptions opt;
    opt.project_constant = true;
    opt.tolerance = 1e-6;
    auto report = linalg::conjugate_gradient(op, b, x, opt);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgSolveGrid)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
