// E2b/E5b (Theorem 5, distributed statement): full distributed
// PARALLELSPARSIFY -- per-round rounds/messages/words, confirming that the
// first round dominates the total communication (the geometric-decay
// argument that gives O(m log^3 n log^3 rho / eps^2) total).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "dist/dist_spanner.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 41);
  const auto n = static_cast<graph::Vertex>(opt.get_int("n", quick ? 100 : 200));

  const graph::Graph g = bench::make_family("complete", n, seed);

  dist::DistSparsifyOptions dopt;
  dopt.rho = opt.get_double("rho", 16.0);
  dopt.t = static_cast<std::size_t>(opt.get_int("t", 1));
  dopt.seed = seed;
  const auto result = dist::distributed_parallel_sparsify(g, dopt);

  support::Table table({"round", "edges in", "edges out", "net rounds",
                        "messages", "words", "max round words"});
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    table.add_row({std::to_string(i + 1), std::to_string(r.edges_before),
                   std::to_string(r.edges_after),
                   std::to_string(r.metrics.rounds),
                   std::to_string(r.metrics.messages),
                   std::to_string(r.metrics.words),
                   std::to_string(r.metrics.max_round_words)});
  }
  table.print("E5 distributed: per-round protocol cost, complete n=" +
              std::to_string(n) + " rho=" + std::to_string(int(dopt.rho)));

  std::printf("\ntotals: %llu rounds, %llu messages, %llu words "
              "(busiest phase %llu words); final %zu of %zu edges\n",
              static_cast<unsigned long long>(result.metrics.rounds),
              static_cast<unsigned long long>(result.metrics.messages),
              static_cast<unsigned long long>(result.metrics.words),
              static_cast<unsigned long long>(result.metrics.max_round_words),
              result.sparsifier.num_edges(), g.num_edges());
  std::printf("Expected shape: messages/words strictly decreasing per round "
              "(geometric size decay); round 1 dominates.\n");
  return 0;
}
