// E5 (Theorem 5): PARALLELSPARSIFY -- rho sweep, per-round geometric decay,
// total work.
//
// Table A: rho sweep. Columns: output edges vs the m/rho term of the bound,
// certified eps, total work vs the m log^2 n log^3 rho / eps^2 shape.
// Table B: per-round statistics for one run -- off-bundle mass must drop by
// ~4x per round (the proof's geometric-decrease argument, which is also why
// the first round dominates the work).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "sparsify/sparsify.hpp"
#include "support/work_counter.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 19);
  const graph::Vertex n = static_cast<graph::Vertex>(opt.get_int("n", quick ? 200 : 400));

  const graph::Graph g = bench::make_family("er-dense", n, seed);
  std::vector<double> rhos = {2, 4, 8, 16, 32};
  if (quick) rhos = {2, 8};

  support::Table sweep({"rho", "rounds", "|G~|", "m/rho", "lower", "upper", "eps",
                        "work", "work/(m lg^2 n lg^3 rho)"});
  for (const double rho : rhos) {
    support::WorkCounter work;
    sparsify::SparsifyOptions sopt;
    sopt.epsilon = 1.0;
    sopt.rho = rho;
    sopt.t = 2;
    sopt.seed = seed;
    sopt.work = &work;
    const auto result = sparsify::parallel_sparsify(g, sopt);
    const auto bounds = bench::certify(g, result.sparsifier, seed);
    const double lg = bench::log2n(n);
    const double lgr = std::max(1.0, std::log2(rho));
    sweep.add_row({support::Table::cell(rho), std::to_string(result.rounds.size()),
                   std::to_string(result.sparsifier.num_edges()),
                   support::Table::cell(double(g.num_edges()) / rho),
                   support::Table::cell(bounds.lower),
                   support::Table::cell(bounds.upper),
                   support::Table::cell(bounds.epsilon()),
                   std::to_string(work.total()),
                   support::Table::cell(double(work.total()) /
                                        (double(g.num_edges()) * lg * lg * lgr * lgr * lgr))});
  }
  sweep.print("E5 / Theorem 5 (a): rho sweep on er-dense n=" + std::to_string(n));

  // Per-round decay for the largest rho.
  support::WorkCounter work;
  sparsify::SparsifyOptions sopt;
  sopt.epsilon = 1.0;
  sopt.rho = rhos.back();
  sopt.t = 2;
  sopt.seed = seed;
  sopt.work = &work;
  const auto result = sparsify::parallel_sparsify(g, sopt);
  support::Table rounds({"round", "edges in", "bundle", "off-bundle", "kept",
                         "edges out", "off-bundle keep ratio"});
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    const std::size_t off = r.edges_before - r.bundle_edges;
    rounds.add_row({std::to_string(i + 1), std::to_string(r.edges_before),
                    std::to_string(r.bundle_edges), std::to_string(off),
                    std::to_string(r.sampled_edges), std::to_string(r.edges_after),
                    off > 0 ? support::Table::cell(double(r.sampled_edges) / double(off))
                            : "-"});
  }
  rounds.print("E5 / Theorem 5 (b): per-round geometric decay (rho=" +
               std::to_string(int(rhos.back())) + ")");
  std::printf("\nExpected shape: off-bundle keep ratio ~0.25 per round; edge "
              "floor = bundle size; work column (a) roughly flat in rho.\n");
  return 0;
}
