// E1 (Theorem 1): Baswana-Sen spanner -- size O(n log n), work O(m log n),
// stretch <= 2 log n.
//
// Rows: one per (family, n). Columns report measured size / (n log2 n) and
// work / (m log2 n) (flat columns confirm the shape), the max measured
// stretch next to the 2k-1 bound, and wall time.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/stretch.hpp"
#include "support/stats.hpp"
#include "support/work_counter.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 7);

  std::vector<graph::Vertex> sizes = {256, 512, 1024, 2048, 4096};
  if (quick) sizes = {256, 512, 1024};
  const std::vector<std::string> families = {"er", "er-dense", "grid", "pa"};

  support::Table table({"family", "n", "m", "|H|", "|H|/(n lg n)", "work/(m lg n)",
                        "max_stretch", "bound 2k-1", "ms"});
  std::vector<double> ns, sizes_measured;

  for (const auto& family : families) {
    for (const graph::Vertex n : sizes) {
      const graph::Graph g = bench::make_family(family, n, seed);
      const graph::CSRGraph csr(g);
      support::WorkCounter work;
      support::Timer timer;
      const auto ids = spanner::baswana_sen_spanner(
          csr, nullptr, {.k = 0, .seed = seed, .work = &work});
      const double ms = timer.millis();

      const std::size_t k = spanner::auto_spanner_k(g.num_vertices());
      double max_stretch = 0.0;
      if (g.num_vertices() <= 1100) {  // exact verification is quadratic
        std::vector<bool> mask(g.num_edges(), false);
        for (auto id : ids) mask[id] = true;
        max_stretch = spanner::stretch_over_subgraph(g, mask).max_stretch;
      }

      const double lg = bench::log2n(n);
      table.add_row({family, std::to_string(n), std::to_string(g.num_edges()),
                     std::to_string(ids.size()),
                     support::Table::cell(double(ids.size()) / (n * lg)),
                     support::Table::cell(double(work.total()) /
                                          (double(g.num_edges()) * lg)),
                     max_stretch > 0 ? support::Table::cell(max_stretch) : "-",
                     std::to_string(2 * k - 1), support::Table::cell(ms)});
      if (family == "er") {
        ns.push_back(double(n));
        sizes_measured.push_back(double(ids.size()));
      }
    }
  }
  table.print("E1 / Theorem 1: Baswana-Sen spanner size, work, stretch");

  const auto fit = support::fit_power_law(ns, sizes_measured);
  std::printf("\nER-family size scaling: |H| ~ n^%.3f (R^2=%.4f); "
              "theory predicts ~n^1 (times log n)\n",
              fit.exponent, fit.r_squared);
  return 0;
}
