// E3 (Corollaries 2-3 + Lemma 1): t-bundle size O(t n log n) and the
// off-bundle leverage bound  w_e R_e[G] <= 2 log n / t.
//
// Rows: t sweep on dense graphs; the "max w_e R_e" column is computed from
// *exact* effective resistances (dense pinv) and must sit below the Lemma 1
// column -- that inequality is the paper's licence to uniformly sample.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "resistance/effective_resistance.hpp"
#include "spanner/bundle.hpp"
#include "support/work_counter.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 13);

  struct Case {
    std::string family;
    graph::Vertex n;
  };
  std::vector<Case> cases = {{"complete", 150}, {"er-dense", 400}, {"weighted-er", 400}};
  if (quick) cases = {{"complete", 100}, {"er-dense", 250}};
  std::vector<std::size_t> ts = {1, 2, 3, 4, 6, 8};
  if (quick) ts = {1, 2, 4};

  support::Table table({"family", "n", "m", "t", "|bundle|", "|bundle|/(t n lg n)",
                        "off-bundle", "max w_e*R_e", "Lemma1 2lg(n)/t", "work"});

  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);
    const auto resistances = resistance::exact_effective_resistances(g);
    for (const std::size_t t : ts) {
      support::WorkCounter work;
      const auto bundle =
          spanner::t_bundle(g, {.t = t, .seed = seed, .work = &work});
      double max_leverage = 0.0;
      for (graph::EdgeId id = 0; id < g.num_edges(); ++id) {
        if (!bundle.in_bundle[id])
          max_leverage = std::max(max_leverage, g.edge(id).w * resistances[id]);
      }
      const double lg = bench::log2n(c.n);
      table.add_row(
          {c.family, std::to_string(c.n), std::to_string(g.num_edges()),
           std::to_string(t), std::to_string(bundle.bundle_edge_count),
           support::Table::cell(double(bundle.bundle_edge_count) /
                                (double(t) * c.n * lg)),
           std::to_string(bundle.off_bundle_edge_count),
           bundle.off_bundle_edge_count > 0 ? support::Table::cell(max_leverage)
                                            : "-",
           support::Table::cell(2.0 * lg / double(t)),
           std::to_string(work.total())});
    }
  }
  table.print("E3 / Lemma 1 + Cor. 2: t-bundle size and off-bundle leverage");
  std::printf("\nEvery off-bundle leverage must (and does) sit below the Lemma 1 "
              "column; bundle size per component stays O(n log n).\n");
  return 0;
}
