// E11 (ingestion): graph I/O throughput -- the legacy line-at-a-time text
// parser vs the chunked parallel text parser vs the SPARBIN binary format,
// plus the csr_build serial/atomic-scatter crossover that decides
// CsrBuildPath::kAuto.
//
// The acceptance bar for PR 3 (BENCH_pr3.json): binary load >= 10x the legacy
// text path on a >= 1M-edge graph, and the parallel text parser beats the
// legacy path already at 1 thread.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "support/assert.hpp"
#include "graph/io.hpp"
#include "graph/io_binary.hpp"
#include "support/parallel.hpp"

using namespace spar;

namespace {

// The pre-PR 3 reader, verbatim: one istringstream per line. Kept here (not
// in the library) purely as the comparison baseline.
graph::Graph legacy_read_edge_list(std::istream& in) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  SPAR_CHECK(next_content_line(), "legacy: empty input");
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  SPAR_CHECK(static_cast<bool>(header >> n >> m), "legacy: bad header");
  graph::Graph g(static_cast<graph::Vertex>(n));
  g.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    SPAR_CHECK(next_content_line(), "legacy: truncated edge list");
    std::istringstream row(line);
    graph::Vertex u = 0, v = 0;
    double w = 1.0;
    SPAR_CHECK(static_cast<bool>(row >> u >> v), "legacy: bad edge row");
    row >> w;
    g.add_edge(u, v, w);
  }
  return g;
}

double mb(std::uintmax_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

bool identical(const graph::Graph& a, const graph::Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges())
    return false;
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    if (!(a.edge(i) == b.edge(i))) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 19);
  const auto n =
      static_cast<graph::Vertex>(opt.get_int("n", quick ? 20000 : 131072));
  const bool csr_sweep = opt.get_bool("csr", !quick);
  const std::vector<int> thread_counts = {1, 2, 4};
  const int hw = support::par::max_threads();

  std::printf("parallel backend: %s\n", support::par::backend_description().c_str());

  const graph::Graph g =
      graph::randomize_weights(bench::make_family("er", n, seed), 2.0, seed + 1);
  std::printf("workload: er n=%u m=%zu (randomized weights)\n", g.num_vertices(),
              g.num_edges());

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "spar_bench_io";
  fs::create_directories(dir);
  const std::string text_path = (dir / "g.txt").string();
  const std::string bin_path = (dir / "g.spb").string();

  support::Table table({"path", "threads", "ms", "MB/s", "vs legacy"});
  auto add = [&](const std::string& label, int threads, double ms,
                 std::uintmax_t bytes, double legacy_ms) {
    table.add_row({label, std::to_string(threads), support::Table::cell(ms),
                   support::Table::cell(mb(bytes) / (ms / 1e3)),
                   legacy_ms > 0 ? support::Table::cell(legacy_ms / ms) + "x" : "-"});
  };

  support::Timer t0;
  graph::save_edge_list(text_path, g);
  const double text_write_ms = t0.millis();
  const std::uintmax_t text_bytes = fs::file_size(text_path);

  t0.reset();
  std::ifstream in(text_path);
  const graph::Graph legacy = legacy_read_edge_list(in);
  in.close();
  const double legacy_ms = t0.millis();
  add("text load (legacy istringstream)", 1, legacy_ms, text_bytes, legacy_ms);

  graph::Graph parsed;
  for (const int threads : thread_counts) {
    support::par::set_num_threads(threads);
    t0.reset();
    graph::Graph got = graph::load_edge_list(text_path);
    const double ms = t0.millis();
    add("text load (parallel from_chars)", threads, ms, text_bytes, legacy_ms);
    if (threads == 1) parsed = std::move(got);
  }
  support::par::set_num_threads(hw);

  t0.reset();
  graph::save_binary(bin_path, g);
  const double bin_write_ms = t0.millis();
  const std::uintmax_t bin_bytes = fs::file_size(bin_path);

  graph::Graph from_bin;
  for (const int threads : thread_counts) {
    support::par::set_num_threads(threads);
    graph::EdgeArena arena;
    t0.reset();
    graph::load_binary(bin_path, arena);
    const double ms = t0.millis();
    add("binary load (SPARBIN -> arena)", threads, ms, bin_bytes, legacy_ms);
    if (threads == 1) from_bin = arena.to_graph();
  }
  support::par::set_num_threads(hw);

  table.print("E11: ingestion throughput, text " +
              std::to_string(static_cast<std::size_t>(mb(text_bytes))) + " MB, binary " +
              std::to_string(static_cast<std::size_t>(mb(bin_bytes))) + " MB");
  std::printf("text write %.1f ms, binary write %.1f ms\n", text_write_ms, bin_write_ms);
  const bool ok = identical(legacy, parsed) && identical(parsed, from_bin);
  std::printf("loads bit-identical across legacy/parallel/binary: %s\n",
              ok ? "yes" : "NO (BUG)");

  fs::remove(text_path);
  fs::remove(bin_path);
  fs::remove(dir);

  if (csr_sweep) {
    // What CsrBuildPath::kAuto is tuned from: forced-serial vs forced-atomic
    // scatter across m and thread budget. On a single-core container the
    // atomic path only ever loses; on real multicore it wins once
    // m / threads clears the per-thread threshold.
    support::Table csr({"m", "threads", "serial ms", "atomic ms", "auto picks"});
    for (const graph::Vertex cn : {std::uint32_t{2048}, std::uint32_t{16384},
                                   std::uint32_t{131072}}) {
      const graph::Graph cg = bench::make_family("er", cn, seed + cn);
      for (const int threads : thread_counts) {
        support::par::set_num_threads(threads);
        graph::set_csr_build_path(graph::CsrBuildPath::kSerial);
        support::Timer ts;
        const graph::CSRGraph serial_csr(cg);
        const double serial_ms = ts.millis();
        graph::set_csr_build_path(graph::CsrBuildPath::kParallel);
        support::Timer tp;
        const graph::CSRGraph atomic_csr(cg);
        const double atomic_ms = tp.millis();
        graph::set_csr_build_path(graph::CsrBuildPath::kAuto);
        csr.add_row({std::to_string(cg.num_edges()), std::to_string(threads),
                     support::Table::cell(serial_ms), support::Table::cell(atomic_ms),
                     graph::csr_parallel_build_enabled(cg.num_edges()) ? "atomic"
                                                                       : "serial"});
        (void)serial_csr;
        (void)atomic_csr;
      }
    }
    support::par::set_num_threads(hw);
    csr.print("csr_build crossover (forced paths; kAuto gate = 16k edges per "
              "effective thread)");
  }
  return ok ? 0 : 1;
}
