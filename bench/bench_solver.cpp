// E7 (Theorem 6 / Section 4): the Peng-Spielman chain solver with
// PARALLELSPARSIFY between levels, vs plain CG and Jacobi-PCG.
//
// Rows: (family, n) sweep. Columns: chain depth and total stored nonzeros
// (the "size of the approximate inverse chain" driving Theorem 6's work
// bound), PCG iterations for each method at equal tolerance, and wall time.
// The chain should cut iterations by a large factor on high-diameter graphs
// (grids), where CG's sqrt(kappa) iteration count hurts most.
#include <cstdio>
#include <vector>

#include <cmath>

#include "bench/common.hpp"
#include "solver/multigrid.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 29);

  struct Case {
    std::string family;
    graph::Vertex n;
  };
  std::vector<Case> cases = {{"grid", 1024}, {"grid", 4096}, {"er", 2048},
                             {"pa", 2048},   {"ws", 2048}};
  if (quick) cases = {{"grid", 1024}, {"er", 1024}};

  support::Table table({"family", "n", "m", "method", "iters", "residual",
                        "chain lvls", "chain nnz", "ms"});

  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);
    const solver::SDDMatrix m{graph::Graph(g)};
    support::Rng rng(seed);
    linalg::Vector b(m.dimension());
    for (double& v : b) v = rng.normal();
    linalg::remove_mean(b);

    solver::SolveOptions sopt;
    sopt.tolerance = 1e-8;
    sopt.chain.max_levels = 10;
    sopt.chain.rho = 8.0;
    sopt.chain.t = 1;

    {
      support::Timer timer;
      const auto report = solver::solve_sdd(m, b, sopt);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "chain-pcg", std::to_string(report.iterations),
                     support::Table::cell(report.relative_residual),
                     std::to_string(report.chain_levels),
                     std::to_string(report.chain_total_nnz),
                     support::Table::cell(timer.millis())});
    }
    {
      support::Timer timer;
      const auto report = solver::solve_cg(m, b, sopt);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "plain-cg", std::to_string(report.iterations),
                     support::Table::cell(report.relative_residual), "-", "-",
                     support::Table::cell(timer.millis())});
    }
    {
      support::Timer timer;
      const auto report = solver::solve_jacobi_pcg(m, b, sopt);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "jacobi-pcg", std::to_string(report.iterations),
                     support::Table::cell(report.relative_residual), "-", "-",
                     support::Table::cell(timer.millis())});
    }
    if (c.family == "grid") {
      // Remark 1 comparator: geometric multigrid on the grid instance class.
      const auto side = static_cast<std::size_t>(std::sqrt(double(c.n)));
      support::Timer timer;
      const auto report = solver::multigrid_solve(m, side, side, b, sopt.tolerance);
      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     "multigrid-pcg", std::to_string(report.iterations),
                     support::Table::cell(report.relative_residual),
                     std::to_string(report.levels), std::to_string(report.total_nnz),
                     support::Table::cell(timer.millis())});
    }
  }
  table.print("E7 / Theorem 6: chain-preconditioned CG vs baselines");
  std::printf("\nExpected shape: chain-pcg converges in O(1)-ish iterations "
              "(theory: the chain is an eps-approximate inverse); plain CG "
              "iterations grow with diameter/condition number. On grids, "
              "multigrid (Remark 1's specialized comparator) achieves the "
              "same flat iteration count with a far smaller hierarchy -- the "
              "gap Remark 3 conjectures can be closed.\n");
  return 0;
}
