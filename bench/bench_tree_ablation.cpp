// E8 (Remark 2): replacing spanner bundles with low-stretch-tree bundles.
//
// The remark claims tree bundles shave an O(log n) factor off the sparsifier
// size. Rows: t sweep with both bundle kinds. Columns: bundle size (trees:
// t(n-1) vs spanners: O(t n log n)), output edges, certified eps, and the
// measured mean/max stretch of one tree vs one spanner (the quality the
// bundle's Lemma 1 bound inherits).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/low_stretch_tree.hpp"
#include "spanner/stretch.hpp"
#include "sparsify/sample.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 31);
  const graph::Vertex n = static_cast<graph::Vertex>(opt.get_int("n", quick ? 150 : 300));

  const graph::Graph g = bench::make_family("er-dense", n, seed);

  // Single-component stretch comparison.
  {
    const graph::Graph tree = spanner::low_stretch_tree(g, {.seed = seed});
    const graph::Graph span = spanner::spanner(g, {.k = 0, .seed = seed});
    const auto tree_stretch = spanner::stretch_over_graph(g, tree);
    const auto span_stretch = spanner::stretch_over_graph(g, span);
    support::Table one({"object", "edges", "mean stretch", "max stretch"});
    one.add_row({"low-stretch tree", std::to_string(tree.num_edges()),
                 support::Table::cell(tree_stretch.mean_stretch),
                 support::Table::cell(tree_stretch.max_stretch)});
    one.add_row({"baswana-sen spanner", std::to_string(span.num_edges()),
                 support::Table::cell(span_stretch.mean_stretch),
                 support::Table::cell(span_stretch.max_stretch)});
    one.print("E8 / Remark 2 (a): one tree vs one spanner on er-dense n=" +
              std::to_string(n));
  }

  std::vector<std::size_t> ts = {1, 2, 4, 8};
  if (quick) ts = {1, 4};
  support::Table table({"bundle kind", "t", "bundle edges", "|G~|", "lower",
                        "upper", "eps"});
  for (const std::size_t t : ts) {
    for (const auto kind :
         {sparsify::BundleKind::kSpanner, sparsify::BundleKind::kTree}) {
      sparsify::SampleOptions sopt;
      sopt.t = t;
      sopt.bundle_kind = kind;
      sopt.seed = seed + t;
      const auto result = sparsify::parallel_sample(g, sopt);
      const auto bounds = bench::certify(g, result.sparsifier, seed);
      table.add_row({kind == sparsify::BundleKind::kSpanner ? "spanner" : "tree",
                     std::to_string(t), std::to_string(result.bundle_edges),
                     std::to_string(result.sparsifier.num_edges()),
                     support::Table::cell(bounds.lower),
                     support::Table::cell(bounds.upper),
                     support::Table::cell(bounds.epsilon())});
    }
  }
  table.print("E8 / Remark 2 (b): PARALLELSAMPLE with spanner vs tree bundles");
  std::printf("\nExpected shape: tree bundles are ~log n times smaller at the "
              "same t (Remark 2's size saving) at somewhat larger eps -- the "
              "stretch certified per component is looser.\n");
  return 0;
}
