// E14 (chain construction): dense vs streamed squaring in InverseChain.
//
// The fill-in cliff: every Peng-Spielman level squares its graph (vertices at
// hop distance 2 become adjacent), so the product A D^{-1} A is the largest
// object the whole solver ever touches -- the dense build materializes it per
// level before sparsifying it back down. ChainOptions::squaring = kStreamed
// instead fuses the sparsifier into the SpGEMM: the product streams through a
// merge-and-reduce tower in row blocks and is never resident.
//
// Table A: chain build per workload and mode (dense / streamed at each thread
// count), wall-clock, stored size, and the peak resident edges of the worst
// squaring step -- the number the streamed path exists to bound. Both chains
// then drive solve_sdd on the same right-hand side at the same tolerance.
//
// Table B: per-level detail of the streamed build (fill projection, tower
// passes, composed eps budget) on the first workload.
//
// Table C: small configs where the dense eigensolver certifies: the streamed
// square's graph part must land inside (1 +- eps) of the exact square's.
//
// Exit code: nonzero if any correctness invariant fails (a solve diverges,
// streamed iterations blow past the dense envelope, the streamed build is
// nondeterministic across thread counts, a small config fails certification,
// or streamed peak memory fails to undercut the materialized product).
// Wall-clock is reported, never asserted.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "solver/chain.hpp"
#include "solver/solver.hpp"
#include "solver/squaring.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

using namespace spar;

namespace {

/// Laplacian of `g` grounded at vertex 0: the near-singular SDD workload the
/// chain benches share (slack elsewhere would shorten the chain).
solver::SDDMatrix grounded(const graph::Graph& g) {
  linalg::Vector slack(g.num_vertices(), 0.0);
  slack[0] = 1.0;
  return solver::SDDMatrix(g, slack);
}

/// FNV-1a fingerprint of a built chain: level sizes plus the IEEE-754 bits of
/// one full apply on a fixed rhs (probes every stored weight). Equal hashes
/// across thread counts == bit-identical chains.
std::uint64_t chain_probe_hash(const solver::InverseChain& chain) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (const auto& info : chain.level_info()) {
    mix(info.edges);
    mix(info.edges_after_square);
  }
  const std::size_t n = chain.dimension();
  support::Rng rng(4242);
  linalg::Vector b(n), y(n);
  for (double& v : b) v = rng.normal();
  chain.apply(b, y);
  for (double v : y) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

struct BuildRecord {
  double build_ms = 0.0;
  std::size_t levels = 0;
  std::size_t total_nnz = 0;
  std::size_t peak_resident = 0;   ///< worst squaring step across levels
  std::size_t worst_projected = 0;  ///< largest fill projection across levels
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

BuildRecord run_mode(const solver::SDDMatrix& m, const solver::ChainOptions& copt,
                     double tol, solver::InverseChain** keep = nullptr) {
  BuildRecord rec;
  support::Timer timer;
  auto* chain = new solver::InverseChain(m, copt);
  rec.build_ms = timer.millis();
  rec.levels = chain->num_levels();
  rec.total_nnz = chain->total_nnz();
  for (const auto& info : chain->level_info()) {
    rec.peak_resident = std::max(rec.peak_resident, info.peak_resident_edges);
    rec.worst_projected = std::max(rec.worst_projected, info.projected_fill);
  }

  support::Rng rng(77);
  linalg::Vector b(m.dimension());
  for (double& v : b) v = rng.normal();
  solver::SolveOptions sopt;
  sopt.tolerance = tol;
  const solver::SolveReport rep = solver::solve_sdd(m, *chain, b, sopt);
  rec.iterations = rep.iterations;
  rec.residual = rep.relative_residual;
  rec.converged = rep.converged;

  if (keep != nullptr) {
    *keep = chain;
  } else {
    delete chain;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 31);
  const auto side =
      static_cast<graph::Vertex>(opt.get_int("grid-side", quick ? 48 : 1000));
  const auto er_n =
      static_cast<graph::Vertex>(opt.get_int("er-n", quick ? 2000 : 125000));
  const auto levels = static_cast<std::size_t>(opt.get_int("levels", 4));
  const double eps = opt.get_double("eps", 0.5);
  const double rho = opt.get_double("rho", 8.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 1));
  const auto batch =
      static_cast<std::size_t>(opt.get_int("batch", quick ? 4096 : 131072));
  const auto block =
      static_cast<std::size_t>(opt.get_int("block", quick ? 16384 : 1048576));
  const auto cap = static_cast<std::size_t>(opt.get_int("cap", 3));
  const double tol = opt.get_double("tol", 1e-6);
  const bool run_dense = opt.get_bool("dense", true);
  bool ok = true;

  std::printf("parallel backend: %s\n", support::par::backend_description().c_str());

  solver::ChainOptions base;
  base.level_epsilon = eps;
  base.rho = rho;
  base.t = t;
  base.max_levels = levels;
  base.seed = seed;
  base.stream_batch_edges = batch;
  base.stream_max_resident_levels = cap;
  base.stream_block_fill_edges = block;

  const struct {
    std::string name;
    graph::Graph graph;
  } workloads[] = {
      {"grid " + std::to_string(side) + "x" + std::to_string(side),
       graph::grid2d(side, side)},
      {"er n=" + std::to_string(er_n) + " deg~16", bench::make_family("er", er_n, seed)},
  };

  support::Table table({"workload", "mode", "threads", "build ms", "levels",
                        "total nnz", "peak resident", "peak/dense", "iters",
                        "residual"});
  bool printed_levels = false;

  for (const auto& w : workloads) {
    const solver::SDDMatrix m = grounded(w.graph);
    std::printf("workload: %s  (n=%zu m=%zu)\n", w.name.c_str(), m.dimension(),
                w.graph.num_edges());

    BuildRecord dense;
    if (run_dense) {
      solver::ChainOptions copt = base;
      copt.squaring = solver::SquaringMode::kDense;
      dense = run_mode(m, copt, tol);
      ok = ok && dense.converged;
      table.add_row({w.name, "dense", "-", support::Table::cell(dense.build_ms),
                     std::to_string(dense.levels), std::to_string(dense.total_nnz),
                     std::to_string(dense.peak_resident), "1.00",
                     std::to_string(dense.iterations),
                     support::Table::cell(dense.residual)});
    }

    solver::ChainOptions copt = base;
    copt.squaring = solver::SquaringMode::kStreamed;
    std::uint64_t first_hash = 0;
    BuildRecord streamed;
    for (const int threads : {1, 2, 4}) {
      support::par::ThreadLimit limit(threads);
      solver::InverseChain* chain = nullptr;
      streamed = run_mode(m, copt, tol, &chain);
      const std::uint64_t h = chain_probe_hash(*chain);
      if (threads == 1) {
        first_hash = h;
        if (!printed_levels) {
          support::Table lvls({"level", "edges", "after square", "projected fill",
                               "peak resident", "tower passes", "eps used", "gamma"});
          for (std::size_t i = 0; i < chain->level_info().size(); ++i) {
            const auto& info = chain->level_info()[i];
            lvls.add_row({std::to_string(i), std::to_string(info.edges),
                          std::to_string(info.edges_after_square),
                          std::to_string(info.projected_fill),
                          std::to_string(info.peak_resident_edges),
                          std::to_string(info.sparsify_passes),
                          support::Table::cell(info.epsilon_budget_used),
                          support::Table::cell(info.gamma)});
          }
          lvls.print("E14 (b): streamed per-level detail, " + w.name);
          printed_levels = true;
        }
      } else if (h != first_hash) {
        std::printf("BUG: streamed chain differs between 1 and %d threads\n", threads);
        ok = false;
      }
      delete chain;
      ok = ok && streamed.converged;
      const double vs_dense =
          run_dense ? double(streamed.peak_resident) /
                          double(std::max<std::size_t>(dense.peak_resident, 1))
                    : 0.0;
      table.add_row(
          {w.name, "streamed", std::to_string(threads),
           support::Table::cell(streamed.build_ms), std::to_string(streamed.levels),
           std::to_string(streamed.total_nnz), std::to_string(streamed.peak_resident),
           run_dense ? support::Table::cell(vs_dense) : std::string("-"),
           std::to_string(streamed.iterations), support::Table::cell(streamed.residual)});
    }

    if (run_dense) {
      // Same solve envelope: the streamed chain is the same quality class.
      if (streamed.iterations > 3 * dense.iterations + 20) {
        std::printf("BUG: streamed solve iterations (%zu) blow past dense (%zu)\n",
                    streamed.iterations, dense.iterations);
        ok = false;
      }
      // The whole point: the streamed build must undercut the materialized
      // product whenever the product dwarfs the tower granularity.
      if (dense.peak_resident > 4 * (block + batch) &&
          streamed.peak_resident >= dense.peak_resident) {
        std::printf("BUG: streamed peak (%zu) fails to undercut dense peak (%zu)\n",
                    streamed.peak_resident, dense.peak_resident);
        ok = false;
      }
    }
  }
  table.print("E14 (a): chain build dense vs streamed, eps=" + support::Table::cell(eps) +
              ", rho=" + support::Table::cell(rho) + ", t=" + std::to_string(t) +
              ", batch=" + std::to_string(batch) + ", block=" + std::to_string(block));

  // --- Table C: streamed square certifies against the exact square ----------
  support::Table cert({"graph", "product edges", "streamed edges", "lower", "upper",
                       "cert eps", "within eps"});
  const struct {
    const char* name;
    graph::Graph graph;
  } small_cases[] = {
      // Non-bipartite only: a bipartite graph's square splits into the two
      // parity classes and the exact certifier rejects disconnected inputs.
      {"weighted-er n=300", bench::make_family("weighted-er", 300, seed)},
      {"er-dense n=400", bench::make_family("er-dense", 400, seed)},
  };
  for (const auto& c : small_cases) {
    const solver::SDDMatrix m = grounded(c.graph);
    solver::SquaringStats dstats, sstats;
    const solver::SDDMatrix exact = solver::square(m, &dstats);
    // Gentle per-pass compression and coarse batches: a shallow tower keeps
    // the composed empirical error inside the requested eps on these small,
    // dense products (cf. Square.StreamedMatchesDenseSlackAndCertifiesGraph).
    solver::StreamedSquareOptions sqopt;
    sqopt.epsilon = eps;
    sqopt.rho = 2.0;
    sqopt.t = 6;
    sqopt.seed = seed;
    sqopt.batch_edges = 8192;
    sqopt.block_fill_edges = 32768;
    const solver::SDDMatrix streamed = solver::square_streamed(m, sqopt, &sstats);
    const auto bounds =
        bench::certify(exact.graph_part(), streamed.graph_part(), seed);
    const bool within = bounds.lower > 1.0 - eps && bounds.upper < 1.0 + eps;
    ok = ok && within;
    cert.add_row({c.name, std::to_string(dstats.output_edges),
                  std::to_string(sstats.output_edges),
                  support::Table::cell(bounds.lower), support::Table::cell(bounds.upper),
                  support::Table::cell(bounds.epsilon()), within ? "yes" : "NO (BUG)"});
  }
  cert.print("E14 (c): streamed square vs exact square, requested eps=" +
             support::Table::cell(eps));

  std::printf("\nacceptance: both modes converge at tol=%.1e within the shared "
              "envelope, streamed build bit-identical across thread counts, "
              "streamed peak undercuts the materialized product, small configs "
              "certify within eps: %s\n",
              tol, ok ? "correctness PASS" : "FAIL");
  return ok ? 0 : 1;
}
