// E17 (fully dynamic): incremental re-sparsification under mixed
// insert/delete streams vs from-scratch rebuilds.
//
// For each (family, delete fraction) cell a synthesized turnstile stream
// (every edge inserted once in shuffled order, a seeded subset deleted at a
// random later point) is driven through a DynamicSparsifier, serving C
// checkpoints along the way. The same C surviving graphs are then sparsified
// from scratch with whole-graph PARALLELSPARSIFY -- the rebuild baseline an
// application without the dynamic tower would run at every serving point.
// Reported: sustained ingest rate (updates/s including tower maintenance),
// total checkpoint cost of each path, and their ratio. The union-serving
// checkpoint makes the incremental path nearly free when the tower is clean:
// only levels dirtied since the last serving re-reduce, while the rebuild
// baseline pays one full pass over every live edge each time.
//
// Exit code: nonzero if any correctness invariant fails (live graph diverges
// from the exact replay oracle, certified epsilon over budget, small-config
// empirical certification outside eps, nondeterminism across thread counts).
// Wall-clock ratios are reported, not asserted -- CI boxes are too noisy to
// gate on timing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/dynamic.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"

using namespace spar;

namespace {

std::uint64_t edge_multiset_hash(const graph::Graph& g) {
  std::vector<graph::Edge> es(g.edges().begin(), g.edges().end());
  for (auto& e : es)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_vertices());
  mix(es.size());
  for (const auto& e : es) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wb = 0;
    std::memcpy(&wb, &e.w, sizeof(wb));
    mix(wb);
  }
  return h;
}

graph::Graph replay_survivors(const graph::UpdateBatch& u, std::size_t upto) {
  std::unordered_map<std::uint64_t, double> live;
  const auto key = [](graph::Vertex a, graph::Vertex b) {
    return (static_cast<std::uint64_t>(a < b ? a : b) << 32) | (a < b ? b : a);
  };
  for (std::size_t i = 0; i < upto; ++i) {
    const std::uint64_t k = key(u.u[i], u.v[i]);
    if (u.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert))
      live[k] = u.w[i];
    else
      live.erase(k);
  }
  graph::Graph g(u.num_vertices);
  for (const auto& [k, w] : live)
    g.add_edge(static_cast<graph::Vertex>(k >> 32),
               static_cast<graph::Vertex>(k & 0xffffffffULL), w);
  return g;
}

sparsify::DynamicOptions dynamic_options(double eps, double rho, std::size_t t,
                                         std::uint64_t seed, std::size_t batch) {
  sparsify::DynamicOptions opt;
  opt.epsilon = eps;
  opt.rho = rho;
  opt.t = t;
  opt.seed = seed;
  opt.batch_updates = batch;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 19);
  const double eps = opt.get_double("eps", 1.0);
  const double rho = opt.get_double("rho", 4.0);
  const auto t = static_cast<std::size_t>(opt.get_int("t", 3));
  const auto batch =
      static_cast<std::size_t>(opt.get_int("batch", quick ? 4096 : 32768));
  const auto serve = static_cast<std::size_t>(opt.get_int("checkpoints", 4));
  bool ok = true;

  std::printf("parallel backend: %s\n", support::par::backend_description().c_str());

  const struct {
    const char* name;
    graph::Graph g;
  } families[] = {
      {"grid", graph::randomize_weights(
                   bench::make_family("grid", quick ? 3600 : 90000, seed), 0.5,
                   seed + 1)},
      {"er", graph::randomize_weights(
                 bench::make_family("er", quick ? 4000 : 20000, seed), 0.5,
                 seed + 2)},
      {"complete", graph::randomize_weights(
                       graph::complete_graph(quick ? 300 : 700), 0.5, seed + 3)},
  };
  const double fractions[] = {0.0, 0.2, 0.5};

  support::Table table({"family", "del frac", "updates", "upd/s", "ingest ms",
                        "incr ckpt ms", "rebuild ms", "rebuild/incr",
                        "edges out", "peak resident", "rebuilds"});

  for (const auto& fam : families) {
    const std::size_t m = fam.g.num_edges();
    std::printf("workload: %s n=%u m=%zu\n", fam.name, fam.g.num_vertices(), m);
    for (const double fraction : fractions) {
      const graph::UpdateBatch u =
          graph::synthesize_updates(fam.g, fraction, seed + 7);

      // --- incremental path: ingest + C checkpoints -----------------------
      sparsify::DynamicSparsifier dyn(
          fam.g.num_vertices(), dynamic_options(eps, rho, t, seed, batch));
      std::vector<graph::Graph> survivors;  // untimed; the rebuild inputs
      std::vector<std::size_t> marks;
      for (std::size_t c = 1; c <= serve; ++c)
        marks.push_back(c * u.size() / serve);
      double ingest_ms = 0.0, incr_ckpt_ms = 0.0;
      sparsify::DynCheckpoint last;
      std::size_t at = 0;
      for (const std::size_t mark : marks) {
        if (mark > at) {
          graph::UpdateBatch chunk;
          chunk.num_vertices = u.num_vertices;
          chunk.append(u, at, mark);
          support::Timer ti;
          dyn.apply(chunk);
          ingest_ms += ti.millis();
          at = mark;
        }
        support::Timer tc;
        last = dyn.checkpoint();
        incr_ckpt_ms += tc.millis();
        survivors.push_back(dyn.live_graph());
      }

      // Exact oracle: the maintained edge set must replay bit for bit.
      if (edge_multiset_hash(survivors.back()) !=
          edge_multiset_hash(replay_survivors(u, u.size()))) {
        std::printf("BUG: %s f=%.1f live graph diverged from replay oracle\n",
                    fam.name, fraction);
        ok = false;
      }
      if (last.certified_epsilon > eps + 1e-12) {
        std::printf("BUG: %s f=%.1f certified eps %.4f over budget %.4f\n",
                    fam.name, fraction, last.certified_epsilon, eps);
        ok = false;
      }
      // Empirical certification where the dense eigensolver is exact.
      if (fam.g.num_vertices() <= 700 && survivors.back().num_edges() > 0) {
        const auto bounds = bench::certify(survivors.back(), last.sparsifier, seed);
        if (!(bounds.lower > 1.0 - eps && bounds.upper < 1.0 + eps)) {
          std::printf("BUG: %s f=%.1f checkpoint outside eps (%.4f, %.4f)\n",
                      fam.name, fraction, bounds.lower, bounds.upper);
          ok = false;
        }
      }

      // --- rebuild baseline: whole-graph sparsify at every serving point --
      sparsify::SparsifyOptions whole;
      whole.epsilon = eps;
      whole.rho = rho;
      whole.t = t;
      whole.seed = seed;
      double rebuild_ms = 0.0;
      for (const graph::Graph& live : survivors) {
        support::Timer tr;
        const auto r = sparsify::parallel_sparsify(live, whole);
        rebuild_ms += tr.millis();
        (void)r;
      }

      const double total_s = (ingest_ms + incr_ckpt_ms) / 1000.0;
      const auto& st = dyn.stats();
      table.add_row(
          {std::string(fam.name), support::Table::cell(fraction),
           std::to_string(u.size()),
           support::Table::cell(total_s > 0.0 ? double(u.size()) / total_s : 0.0),
           support::Table::cell(ingest_ms), support::Table::cell(incr_ckpt_ms),
           support::Table::cell(rebuild_ms),
           support::Table::cell(incr_ckpt_ms > 0.0 ? rebuild_ms / incr_ckpt_ms
                                                   : 0.0) +
               "x",
           std::to_string(last.sparsifier.num_edges()),
           std::to_string(st.peak_resident_edges), std::to_string(st.rebuilds)});
    }
  }
  table.print("E17: incremental maintenance vs from-scratch rebuild, " +
              std::to_string(serve) + " checkpoints, eps=" +
              support::Table::cell(eps) + ", batch=" + std::to_string(batch));

  // Determinism across thread counts on one mixed cell.
  {
    const graph::Graph g = graph::randomize_weights(
        graph::complete_graph(quick ? 200 : 400), 0.5, seed + 3);
    const graph::UpdateBatch u = graph::synthesize_updates(g, 0.2, seed + 7);
    const auto run = [&] {
      graph::MemoryUpdateStream stream(u);
      return sparsify::dynamic_sparsify(
          stream, dynamic_options(eps, rho, t, seed, batch));
    };
    support::par::ThreadLimit one(1);
    const auto a = run();
    support::par::ThreadLimit four(4);
    const auto b = run();
    if (!a.sparsifier.same_edges(b.sparsifier)) {
      std::printf("BUG: dynamic sparsifier differs between 1 and 4 threads\n");
      ok = false;
    }
  }

  std::printf(
      "\nacceptance: incremental checkpoints beat from-scratch rebuilds at "
      "delete fraction <= 0.2 on grid and er (rebuild/incr > 1), live graph "
      "== replay oracle, certified eps within budget, small configs certify, "
      "threads 1 == 4: %s\n",
      ok ? "correctness PASS" : "FAIL");
  return ok ? 0 : 1;
}
