// E13: batched multi-RHS chain solves vs the per-RHS loop.
//
// One InverseChain is built per instance and shared by both paths; the
// comparison is pure solve throughput at equal tolerance. The batched path
// (solve_sdd_multi) traverses each chain level's CSR once per PCG iteration
// for the whole block; the per-RHS loop (k calls to solve_sdd over the same
// chain) streams the chain k times. Batched per-column solutions must be
// BIT-identical to the per-RHS loop -- the binary exits nonzero if they
// differ or if any solve misses the tolerance, so CI can smoke it.
//
// A second table times the effective-resistance JL sketch, which routes
// through blocked CG: block_size=1 is the old probe-at-a-time schedule,
// block_size=16 the batched one; the sketch itself is identical bitwise.
//
//   ./bench_multi_rhs [--quick=1] [--seed=N] [--k=1,2,4,8,16,32,64] [--tol=1e-8]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "resistance/effective_resistance.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

using namespace spar;

namespace {

linalg::MultiVector rhs_block(std::size_t n, std::size_t k, std::uint64_t seed) {
  std::vector<linalg::Vector> cols;
  for (std::size_t j = 0; j < k; ++j) {
    support::Rng rng(support::mix64(seed, j));
    linalg::Vector b(n);
    for (double& v : b) v = rng.normal();
    linalg::remove_mean(b);
    cols.push_back(std::move(b));
  }
  return linalg::MultiVector::from_columns(cols);
}

std::vector<std::size_t> parse_k_list(const support::Options& opt, bool quick) {
  if (!opt.has("k")) {
    if (quick) return {1, 4, 16};
    return {1, 2, 4, 8, 16, 32, 64};
  }
  std::vector<std::size_t> out;
  const std::string s = opt.get("k", "");
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find(',', pos);
    const std::string tok = s.substr(pos, next == std::string::npos ? next : next - pos);
    out.push_back(support::parse_number<std::size_t>("--k", tok));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (out.empty()) throw spar::Error("--k needs at least one value");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 31);
  const double tol = opt.get_double("tol", 1e-8);
  const std::vector<std::size_t> k_list = parse_k_list(opt, quick);

  struct Case {
    std::string family;
    graph::Vertex n;
  };
  // Sized so the chain exceeds cache (the regime where one-traversal pays):
  // the 240x240 grid's chain is ~9.7M stored nnz (~116 MB of CSR data).
  // Bigger grids hit a squaring fill-in cliff in chain construction; keep
  // instances on the tractable side of it.
  std::vector<Case> cases = {{"grid", 57600}, {"er", 16384}};
  if (quick) cases = {{"grid", 4096}, {"er", 1024}};

  solver::SolveOptions sopt;
  sopt.tolerance = tol;
  sopt.chain.max_levels = 10;
  sopt.chain.rho = 8.0;
  sopt.chain.t = 1;

  support::Table table({"family", "n", "m", "k", "loop ms", "batched ms", "speedup",
                        "iters", "max resid", "bitwise"});
  bool ok = true;

  for (const auto& c : cases) {
    const graph::Graph g = bench::make_family(c.family, c.n, seed);
    const solver::SDDMatrix m{graph::Graph(g)};

    support::Timer chain_timer;
    const solver::InverseChain chain(m, sopt.chain);
    const double chain_ms = chain_timer.millis();
    std::printf("%s n=%zu m=%zu: chain %zu levels, %zu nnz, built in %.0f ms "
                "(shared by both paths)\n",
                c.family.c_str(), m.dimension(), g.num_edges(), chain.num_levels(),
                chain.total_nnz(), chain_ms);

    for (const std::size_t k : k_list) {
      const linalg::MultiVector b = rhs_block(m.dimension(), k, seed + 7);

      std::vector<linalg::Vector> b_cols;
      for (std::size_t j = 0; j < k; ++j) b_cols.push_back(b.column_copy(j));

      support::Timer loop_timer;
      std::vector<solver::SolveReport> loop_reports;
      for (std::size_t j = 0; j < k; ++j)
        loop_reports.push_back(solver::solve_sdd(m, chain, b_cols[j], sopt));
      const double loop_ms = loop_timer.millis();

      support::Timer batch_timer;
      const auto batched = solver::solve_sdd_multi(m, chain, b, sopt);
      const double batch_ms = batch_timer.millis();

      bool bitwise = true;
      double max_resid = 0.0;
      std::size_t iters = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const linalg::Vector col = batched.solutions.column_copy(j);
        bitwise = bitwise &&
                  std::memcmp(col.data(), loop_reports[j].solution.data(),
                              col.size() * sizeof(double)) == 0 &&
                  batched.columns[j].iterations == loop_reports[j].iterations;
        ok = ok && loop_reports[j].converged && batched.columns[j].converged;
        max_resid = std::max(max_resid, batched.columns[j].relative_residual);
        max_resid = std::max(max_resid, loop_reports[j].relative_residual);
        iters = std::max(iters, batched.columns[j].iterations);
      }
      ok = ok && bitwise;

      table.add_row({c.family, std::to_string(c.n), std::to_string(g.num_edges()),
                     std::to_string(k), support::Table::cell(loop_ms),
                     support::Table::cell(batch_ms),
                     support::Table::cell(loop_ms / batch_ms),
                     std::to_string(iters), support::Table::cell(max_resid),
                     bitwise ? "yes" : "NO"});
    }
  }
  table.print("E13: batched solve_sdd_multi vs per-RHS solve_sdd loop "
              "(shared prebuilt chain, equal tolerance)");

  // Effective-resistance sketch: the same multi-RHS argument end to end. The
  // sketch output is bit-identical for every block size; only throughput
  // moves.
  {
    const graph::Vertex n = quick ? 700 : 3000;
    const graph::Graph g = bench::make_family("er", n, seed + 3);
    resistance::ApproxResistanceOptions ropt;
    ropt.seed = seed;
    ropt.num_probes = quick ? 16 : 48;

    support::Table er_table({"n", "m", "probes", "block", "ms"});
    linalg::Vector reference;
    for (const std::size_t block : {std::size_t{1}, std::size_t{16}}) {
      ropt.block_size = block;
      support::Timer timer;
      const auto r = resistance::approx_effective_resistances(g, ropt);
      const double ms = timer.millis();
      if (reference.empty()) reference = r;
      ok = ok && r == reference;  // block size must not change the sketch
      er_table.add_row({std::to_string(n), std::to_string(g.num_edges()),
                        std::to_string(ropt.num_probes), std::to_string(block),
                        support::Table::cell(ms)});
    }
    er_table.print("E13b: effective-resistance JL sketch through blocked CG "
                   "(identical output, batched schedule)");
  }

  if (!ok) {
    std::fprintf(stderr, "bench_multi_rhs: FAILED (bitwise mismatch between "
                         "batched and per-RHS solutions, or missed tolerance)\n");
    return 1;
  }
  std::printf("\nbatched == per-RHS loop bit for bit at every k; speedup is the "
              "one-traversal effect (each chain level's CSR streamed once per "
              "iteration for the whole block instead of once per RHS).\n");
  return 0;
}
