// E9 (PRAM claims proxy): OpenMP strong scaling of the parallel kernels --
// CSR construction, Baswana-Sen spanner, PARALLELSPARSIFY, SpMV.
//
// The paper's parallel model is CRCW PRAM; work bounds are validated in
// E1/E5 via operation counts. This bench reports wall-clock across thread
// counts on this machine (a 1-core container only exercises the code paths;
// on real multicore hardware the spanner and SpMV scale near-linearly).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "linalg/laplacian.hpp"
#include "spanner/baswana_sen.hpp"
#include "sparsify/sparsify.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

using namespace spar;

int main(int argc, char** argv) {
  const support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::uint64_t seed = opt.get_int("seed", 37);
  const graph::Vertex n = static_cast<graph::Vertex>(opt.get_int("n", quick ? 20000 : 60000));

  const graph::Graph g = bench::make_family("er", n, seed);
  const linalg::CSRMatrix lap = linalg::laplacian_matrix(g);
  support::Rng rng(seed);
  linalg::Vector x(g.num_vertices()), y(g.num_vertices());
  for (double& v : x) v = rng.normal();

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = support::par::hardware_threads();
  std::printf("parallel backend: %s\n", support::par::backend_description().c_str());

  support::Table table({"threads", "csr build ms", "spanner ms", "sparsify ms",
                        "spmv x32 ms"});
  for (const int threads : thread_counts) {
    support::par::set_num_threads(threads);

    support::Timer t1;
    const graph::CSRGraph csr(g);
    const double csr_ms = t1.millis();

    support::Timer t2;
    const auto ids = spanner::baswana_sen_spanner(csr, nullptr, {.k = 0, .seed = seed});
    const double spanner_ms = t2.millis();

    support::Timer t3;
    sparsify::SparsifyOptions sopt;
    sopt.rho = 4.0;
    sopt.t = 1;
    sopt.seed = seed;
    const auto sp = sparsify::parallel_sparsify(g, sopt);
    const double sparsify_ms = t3.millis();

    support::Timer t4;
    for (int rep = 0; rep < 32; ++rep) lap.multiply(x, y);
    const double spmv_ms = t4.millis();

    table.add_row({std::to_string(threads), support::Table::cell(csr_ms),
                   support::Table::cell(spanner_ms),
                   support::Table::cell(sparsify_ms),
                   support::Table::cell(spmv_ms)});
    (void)ids;
    (void)sp;
  }
  support::par::set_num_threads(hw);
  table.print("E9: OpenMP strong scaling, er n=" + std::to_string(n));
  std::printf("\nDeterminism note: results are identical across thread counts "
              "(counter-based RNG streams), verified by the test suite.\n");
  return 0;
}
