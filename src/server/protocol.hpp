// Wire protocol for the solver service: length-prefixed, checksummed frames
// over a local stream socket.
//
// Every message is one frame:
//
//   [ FrameHeader : 40 bytes ][ payload : header.payload_len bytes ]
//
// with the header laid out as six little-endian 64/32-bit fields:
//
//   magic        8B  "SPARFRM\0"
//   version      4B  kProtocolVersion
//   type         4B  MsgType
//   request_id   8B  client-chosen; echoed verbatim in the response so an
//                    open-loop client can match replies to in-flight requests
//   payload_len  8B  bytes following the header
//   checksum     8B  framing::checksum_bytes(payload, payload_len,
//                    mix64(type, request_id)) -- the SAME chunked-FNV
//                    discipline as the SPARBIN file format (framing.hpp), so
//                    the digest is independent of thread count AND binds the
//                    header's type/id fields against splicing
//
// Payload layouts (all fields little-endian, doubles as raw IEEE-754 bits):
//
//   kRegisterGraph  u32 name_len, name bytes, u32 spec_len, spec bytes.
//                   The server materializes the graph from the gen spec
//                   (graph::generate_spec) or loads the path, and installs it
//                   in the chain registry under `name`. Reply: kOk.
//   kSolve         u32 name_len, name bytes, u64 n, n doubles (the RHS b).
//                   Reply: kSolveReply with u64 n, n doubles (x), u64
//                   iterations, double relative_residual, u8 converged,
//                   u32 batch_cols (how many columns the serving batch had),
//                   u64 queue_us, u64 solve_us.
//   kStats         empty. Reply: kStatsReply with u32 json_len, json bytes.
//   kShutdown      empty. Reply: kOk, then the server drains and exits.
//   kError         u32 text_len, text bytes (any request can fail this way).
//
// Responses on one connection are serialized by the server; a client may
// pipeline many kSolve requests and read replies in request order.
// Everything here is bounds-checked decode / append-only encode over byte
// vectors; the shared socket layer (support/net.hpp) moves the bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/net.hpp"

namespace spar::server {

// The service rides the shared hardened socket substrate (support/net.hpp),
// the same layer the sharded distributed runtime uses. Aliased here so the
// server code keeps its established vocabulary.
using support::net::Listener;
using support::net::Socket;
using support::net::connect_tcp;
using support::net::connect_unix;

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 40;
/// Refuse absurd frames before allocating (a corrupt length field must not
/// become a 2^60-byte allocation). 1 GiB >> any real RHS here.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class MsgType : std::uint32_t {
  kRegisterGraph = 1,
  kSolve = 2,
  kStats = 3,
  kShutdown = 4,
  kOk = 100,
  kSolveReply = 101,
  kStatsReply = 102,
  kError = 103,
};

/// Decoded frame header (host-order fields; see the layout comment above).
struct FrameHeader {
  std::uint32_t version = kProtocolVersion;
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;
};

/// One full message: header + payload bytes.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  MsgType type() const { return header.type; }
  std::uint64_t request_id() const { return header.request_id; }
};

/// Checksum a payload exactly as the wire requires (chunked FNV seeded with
/// mix64(type, request_id); see framing.hpp for the determinism argument).
std::uint64_t frame_checksum(MsgType type, std::uint64_t request_id,
                             std::span<const std::uint8_t> payload);

/// Writes one frame (header + payload) to the socket.
void send_frame(const Socket& sock, MsgType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload);

/// Reads one frame. Returns false on clean EOF at a frame boundary. Throws
/// spar::Error on malformed headers, oversized payloads, version mismatch,
/// or checksum failure.
bool recv_frame(const Socket& sock, Frame& out);

/// Append-only payload encoder (little-endian scalars, raw doubles).
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void f64_span(std::span<const double> v);
  void str(const std::string& s);  ///< u32 length + bytes
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked payload decoder; throws spar::Error on truncation.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void f64_span(std::span<double> out);
  std::string str();  ///< u32 length + bytes
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t k) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Convenience: send a kError frame carrying `text`.
void send_error(const Socket& sock, std::uint64_t request_id, const std::string& text);

}  // namespace spar::server
