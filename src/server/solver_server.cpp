// solver_server: the solver-as-a-service daemon.
//
// Listens on a UNIX socket, keeps named graphs with prebuilt inverse chains
// resident (chain_registry.hpp), and coalesces concurrent solve requests
// into blocked solves (service.hpp). One thread per connection reads
// frames; responses for a connection are written in request order.
//
//   solver_server --socket=/tmp/spar.sock
//     [--max-batch=16] [--deadline-us=2000] [--no-batching]
//     [--chain-memory-budget=BYTES] [--threads=N]
//     [--tolerance=1e-8] [--graph=name=gen:grid:64x64 ...]
//     [--tcp-port=P [--port-file=PATH]]
//
// --graph preloads name->spec pairs at startup (clients can also register
// graphs over the wire with kRegisterGraph). A kShutdown frame from any
// client drains the service and exits cleanly.
//
// --tcp-port=P listens on TCP 127.0.0.1:P instead of the UNIX socket
// (loopback only; see support/net.hpp). P=0 asks the kernel for a free
// port; --port-file records the bound port so clients can find it.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "server/protocol.hpp"
#include "server/service.hpp"
#include "support/error.hpp"
#include "support/options.hpp"

namespace {

using namespace spar;
using server::Frame;
using server::MsgType;
using server::PayloadReader;
using server::PayloadWriter;
using server::Socket;

graph::Graph load_spec(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) return graph::generate_spec(spec);
  return graph::load_graph(spec);
}

/// Per-connection state: frames in, frames out. Responses must go out in
/// request order even though batched solves complete asynchronously, so
/// each request gets a ticket and a writer lock serializes the socket.
class Connection {
 public:
  Connection(Socket sock, server::SolverService& service, std::atomic<bool>& stop)
      : sock_(std::move(sock)), service_(service), stop_flag_(stop) {}

  void run() {
    Frame frame;
    try {
      while (server::recv_frame(sock_, frame)) {
        switch (frame.type()) {
          case MsgType::kRegisterGraph:
            handle_register(frame);
            break;
          case MsgType::kSolve:
            handle_solve(frame);
            break;
          case MsgType::kStats:
            handle_stats(frame);
            break;
          case MsgType::kShutdown:
            reply_ok(frame.request_id());
            stop_flag_.store(true);
            return;
          default:
            server::send_error(sock_, frame.request_id(),
                               "unknown message type " +
                                   std::to_string(static_cast<unsigned>(
                                       frame.header.type)));
        }
      }
    } catch (const std::exception& e) {
      // Protocol violation or peer vanished mid-frame: drop the connection.
      std::fprintf(stderr, "[solver_server] connection error: %s\n", e.what());
    }
    drain_pending();
  }

  /// Unblocks a reader parked in recv_frame (shutdown path): the socket is
  /// half-closed, read sees EOF, run() unwinds. The fd itself stays owned
  /// by the Connection until its thread joins.
  void abort_socket() { sock_.shutdown_rw(); }

 private:
  void handle_register(const Frame& frame) {
    PayloadReader r(frame.payload);
    const std::string name = r.str();
    const std::string spec = r.str();
    try {
      service_.put_graph(name, load_spec(spec));
      reply_ok(frame.request_id());
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(write_mu_);
      server::send_error(sock_, frame.request_id(), e.what());
    }
  }

  void handle_solve(const Frame& frame) {
    PayloadReader r(frame.payload);
    const std::string name = r.str();
    const std::uint64_t n = r.u64();
    // n doubles must fit in the REMAINING payload bytes; comparing the count
    // against the byte length would let a 1 GiB frame demand an 8 GiB vector.
    if (n > r.remaining() / sizeof(double)) {
      server::send_error(sock_, frame.request_id(), "rhs length exceeds payload");
      return;
    }
    linalg::Vector rhs(static_cast<std::size_t>(n));
    r.f64_span(rhs);

    // Responses go out on THIS thread's socket from a service thread; the
    // pending counter lets the reader drain before closing.
    pending_.fetch_add(1);
    const std::uint64_t id = frame.request_id();
    try {
      service_.submit(name, std::move(rhs), [this, id](server::SolveResult res) {
        std::lock_guard<std::mutex> lock(write_mu_);
        try {
          if (!res.ok) {
            server::send_error(sock_, id, res.error);
          } else {
            PayloadWriter w;
            w.u64(res.solution.size());
            w.f64_span(res.solution);
            w.u64(res.iterations);
            w.f64(res.relative_residual);
            w.u8(res.converged ? 1 : 0);
            w.u32(res.batch_cols);
            w.u64(res.queue_us);
            w.u64(res.solve_us);
            server::send_frame(sock_, MsgType::kSolveReply, id, w.bytes());
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[solver_server] reply failed: %s\n", e.what());
        }
        if (pending_.fetch_sub(1) == 1) {
          // Lock before notify so the decrement can't slip between
          // drain_pending's predicate check and its sleep.
          std::lock_guard<std::mutex> pl(pending_mu_);
          pending_cv_.notify_all();
        }
      });
    } catch (const std::exception& e) {
      pending_.fetch_sub(1);
      std::lock_guard<std::mutex> lock(write_mu_);
      server::send_error(sock_, id, e.what());
    }
  }

  void handle_stats(const Frame& frame) {
    PayloadWriter w;
    w.str(service_.stats_json());
    std::lock_guard<std::mutex> lock(write_mu_);
    server::send_frame(sock_, MsgType::kStatsReply, frame.request_id(), w.bytes());
  }

  void reply_ok(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(write_mu_);
    server::send_frame(sock_, MsgType::kOk, id, {});
  }

  void drain_pending() {
    std::unique_lock<std::mutex> lock(pending_mu_);
    pending_cv_.wait(lock, [this] { return pending_.load() == 0; });
  }

  Socket sock_;
  server::SolverService& service_;
  std::atomic<bool>& stop_flag_;
  std::mutex write_mu_;
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::atomic<int> pending_{0};
};

int run(int argc, char** argv) {
  support::Options opt(argc, argv);
  const std::string socket_path = opt.get("socket", "/tmp/spar_solver.sock");

  server::ServiceOptions service_opt;
  service_opt.max_batch =
      static_cast<std::size_t>(opt.get_int("max-batch", 16));
  service_opt.deadline_us =
      static_cast<std::uint64_t>(opt.get_int("deadline-us", 2000));
  service_opt.batching = !opt.get_bool("no-batching", false);
  service_opt.tolerance = opt.get_double("tolerance", 1e-8);
  service_opt.max_iterations =
      static_cast<std::size_t>(opt.get_int("max-iterations", 20000));
  service_opt.registry.memory_budget_bytes =
      static_cast<std::size_t>(opt.get_int("chain-memory-budget", 0));
  service_opt.threads = static_cast<int>(opt.get_int("threads", 0));

  server::SolverService service(service_opt);

  // --graph=name=spec preloads; repeatable via comma separation.
  if (opt.has("graph")) {
    std::string list = opt.get("graph", "");
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t comma = list.find(',', pos);
      // gen specs contain ':' but not ','; commas split entries.
      if (comma == std::string::npos) comma = list.size();
      const std::string pair = list.substr(pos, comma - pos);
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos)
        throw Error("--graph wants name=spec, got: " + pair);
      service.put_graph(pair.substr(0, eq), load_spec(pair.substr(eq + 1)));
      pos = comma + 1;
    }
  }

  // Transport: UNIX socket by default, loopback TCP with --tcp-port (the
  // shared support/net listener both the service and src/dist use).
  const bool use_tcp = opt.has("tcp-port");
  server::Listener listener =
      use_tcp ? server::Listener::tcp(
                    static_cast<std::uint16_t>(opt.get_int("tcp-port", 0)))
              : server::Listener::unix_domain(socket_path);
  if (use_tcp && opt.has("port-file")) {
    // Written after listen() so a polling client never reads a dead port.
    const std::string port_file = opt.get("port-file", "");
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) throw Error("cannot write --port-file " + port_file);
    std::fprintf(f, "%u\n", static_cast<unsigned>(listener.port()));
    std::fclose(f);
  }
  std::atomic<bool> stop{false};
  if (use_tcp) {
    std::fprintf(stderr, "[solver_server] listening on 127.0.0.1:%u (max-batch=%zu deadline-us=%llu batching=%d)\n",
                 static_cast<unsigned>(listener.port()), service_opt.max_batch,
                 static_cast<unsigned long long>(service_opt.deadline_us),
                 service_opt.batching ? 1 : 0);
  } else {
    std::fprintf(stderr, "[solver_server] listening on %s (max-batch=%zu deadline-us=%llu batching=%d)\n",
                 socket_path.c_str(), service_opt.max_batch,
                 static_cast<unsigned long long>(service_opt.deadline_us),
                 service_opt.batching ? 1 : 0);
  }

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Connection>> connections;
  // The acceptor blocks in accept(); a kShutdown handler sets `stop` and a
  // watcher thread closes the listener to break the accept loop.
  std::thread watcher([&] {
    while (!stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.shutdown();
  });
  while (true) {
    Socket client = listener.accept();
    if (!client.valid()) break;  // listener shut down
    auto conn = std::make_shared<Connection>(std::move(client), service, stop);
    connections.push_back(conn);
    threads.emplace_back([conn] { conn->run(); });
  }
  stop.store(true);
  watcher.join();
  // Drain order matters: finish every in-flight solve first (all replies go
  // out inside service.shutdown()'s wait), THEN half-close the sockets so
  // connections idling in recv_frame -- e.g. a second client that never
  // sent kShutdown -- see EOF and unwind instead of pinning their threads.
  service.shutdown();
  for (const auto& conn : connections) conn->abort_socket();
  for (std::thread& t : threads) t.join();
  std::fprintf(stderr, "[solver_server] drained, exiting: %s\n",
               service.stats_json().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "solver_server: %s\n", e.what());
    return 1;
  }
}
