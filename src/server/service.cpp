#include "server/service.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "solver/solver.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace spar::server {

using Clock = std::chrono::steady_clock;

namespace {

std::uint64_t micros_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {  // remaining control chars: JSON demands \u00XX
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.registry),
      pool_(options_.threads),
      dispatcher_([this] { dispatcher_main(); }) {}

SolverService::~SolverService() { shutdown(); }

void SolverService::put_graph(const std::string& name, graph::Graph g) {
  registry_.put_graph(name, std::move(g));
}

void SolverService::submit(const std::string& name, linalg::Vector rhs, Callback cb) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw spar::Error("solver service: submit after shutdown");
    queue_.push_back(Pending{name, std::move(rhs), std::move(cb), Clock::now()});
    ++stats_.requests;
  }
  queue_cv_.notify_one();
}

void SolverService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher exits only once the queue is empty; wait for dispatched
  // batches still running on the pool.
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool SolverService::next_batch(Batch& out) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopping and drained

  // Seed the batch with the oldest request; only same-graph requests may
  // join it (one blocked solve = one matrix).
  out.clear();
  out.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Copy, not reference: admitting push_backs may reallocate `out`.
  const std::string name = out.front().name;
  const std::size_t max_batch = options_.batching ? options_.max_batch : 1;
  const auto deadline =
      out.front().enqueued + std::chrono::microseconds(options_.deadline_us);

  bool deadline_close = false;
  const std::size_t executors = static_cast<std::size_t>(pool_.workers());
  while (out.size() < max_batch) {
    // Admit every queued same-graph request, oldest first.
    for (auto it = queue_.begin(); it != queue_.end() && out.size() < max_batch;) {
      if (it->name == name) {
        out.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (out.size() >= max_batch) break;
    // Batch not full: hold for more arrivals until the OLDEST member's
    // deadline. Stopping forfeits the wait -- drain fast, batches may
    // close small.
    if (stopping_) {
      deadline_close = true;
      break;
    }
    const bool expired = Clock::now() >= deadline;
    if (expired && in_flight_ < executors) {
      deadline_close = true;
      break;
    }
    if (expired) {
      // Every pool worker is busy: closing now cannot start the solve any
      // sooner, it only fragments the queue into undersized batches that
      // pile up behind the running one. Keep admitting until a worker
      // frees (execute() signals queue_cv_) or the batch fills.
      queue_cv_.wait(lock);
    } else {
      queue_cv_.wait_until(lock, deadline);
    }
  }

  ++stats_.batches;
  if (out.size() >= 2) stats_.batched_requests += out.size();
  stats_.max_batch_seen = std::max(stats_.max_batch_seen, out.size());
  if (deadline_close && out.size() < max_batch)
    ++stats_.deadline_closes;
  else
    ++stats_.size_closes;
  ++in_flight_;
  return true;
}

void SolverService::dispatcher_main() {
  Batch batch;
  while (next_batch(batch)) {
    // Pool workers keep the pool "current", so the blocked solve's parallel
    // loops run on the same workers -- and the dispatcher is immediately
    // free to form the next batch while this one solves.
    pool_.submit([this, b = std::move(batch)]() mutable { execute(std::move(b)); });
    batch = Batch();
  }
}

void SolverService::execute(Batch batch) {
  const auto dispatched = Clock::now();
  auto finish_all = [&](const std::string& error) {
    for (Pending& p : batch) {
      SolveResult r;
      r.error = error;
      r.batch_cols = static_cast<std::uint32_t>(batch.size());
      r.queue_us = micros_between(p.enqueued, dispatched);
      if (p.cb) p.cb(std::move(r));
    }
  };

  try {
    const ChainHandle entry = registry_.acquire(batch.front().name);
    const std::size_t n = entry->matrix.dimension();
    for (const Pending& p : batch)
      if (p.rhs.size() != n)
        throw spar::Error("solve: rhs has " + std::to_string(p.rhs.size()) +
                          " entries, graph \"" + p.name + "\" has " +
                          std::to_string(n));

    std::vector<linalg::Vector> cols;
    cols.reserve(batch.size());
    for (Pending& p : batch) cols.push_back(std::move(p.rhs));
    const linalg::MultiVector b = linalg::MultiVector::from_columns(cols);

    solver::SolveOptions opt;
    opt.tolerance = options_.tolerance;
    opt.max_iterations = options_.max_iterations;
    opt.chain = registry_.options().chain;

    support::Timer timer;
    const auto report = solver::solve_sdd_multi(entry->matrix, entry->chain, b, opt);
    const auto solve_us = static_cast<std::uint64_t>(timer.seconds() * 1e6);

    for (std::size_t j = 0; j < batch.size(); ++j) {
      SolveResult r;
      r.ok = true;
      r.solution = report.solutions.column_copy(j);
      r.iterations = report.columns[j].iterations;
      r.relative_residual = report.columns[j].relative_residual;
      r.converged = report.columns[j].converged;
      r.batch_cols = static_cast<std::uint32_t>(batch.size());
      r.queue_us = micros_between(batch[j].enqueued, dispatched);
      r.solve_us = solve_us;
      if (batch[j].cb) batch[j].cb(std::move(r));
    }
  } catch (const std::exception& e) {
    finish_all(e.what());
  } catch (...) {
    finish_all("unknown error in batch execution");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  drained_cv_.notify_all();
  // A freed worker may let a deadline-expired batch close (see next_batch).
  queue_cv_.notify_all();
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string SolverService::stats_json() const {
  const ServiceStats s = stats();
  std::ostringstream out;
  out << "{\"requests\":" << s.requests << ",\"batches\":" << s.batches
      << ",\"batched_requests\":" << s.batched_requests
      << ",\"size_closes\":" << s.size_closes
      << ",\"deadline_closes\":" << s.deadline_closes
      << ",\"max_batch_seen\":" << s.max_batch_seen
      << ",\"max_batch\":" << options_.max_batch
      << ",\"deadline_us\":" << options_.deadline_us
      << ",\"batching\":" << (options_.batching ? "true" : "false")
      << ",\"registry\":{\"resident_bytes\":" << registry_.resident_bytes()
      << ",\"budget_bytes\":" << registry_.options().memory_budget_bytes
      << ",\"chains\":[";
  const auto chains = registry_.stats();
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const ChainStats& c = chains[i];
    out << (i ? "," : "") << "{\"name\":\"" << json_escape(c.name)
        << "\",\"hits\":" << c.hits << ",\"builds\":" << c.builds
        << ",\"evictions\":" << c.evictions
        << ",\"build_micros\":" << c.build_micros
        << ",\"resident\":" << (c.resident ? "true" : "false")
        << ",\"memory_bytes\":" << c.memory_bytes << "}";
  }
  out << "]}}";
  return out.str();
}

}  // namespace spar::server
