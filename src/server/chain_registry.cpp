#include "server/chain_registry.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/timer.hpp"

namespace spar::server {

namespace {

/// Approximate resident cost of an entry. The chain dominates: per stored
/// nonzero a CSR keeps one double and one index (~16B); per level it keeps
/// an n-vector of inverse diagonals; the source graph and its SDDMatrix
/// copy cost ~24B/edge (two endpoints + weight). An estimate is fine here:
/// the budget is a knob for "how many chains fit", not an allocator.
std::size_t entry_cost_bytes(const graph::Graph& g, const solver::InverseChain& chain) {
  const std::size_t n = chain.dimension();
  const std::size_t per_nnz = sizeof(double) + sizeof(std::uint32_t) * 2;
  const std::size_t chain_bytes =
      chain.total_nnz() * per_nnz + chain.num_levels() * n * sizeof(double);
  const std::size_t graph_bytes = g.num_edges() * 24 + n * sizeof(std::uint64_t);
  return chain_bytes + 2 * graph_bytes;  // graph + the SDDMatrix's copy
}

}  // namespace

ChainRegistry::ChainRegistry(RegistryOptions options) : options_(std::move(options)) {}

void ChainRegistry::put_graph(const std::string& name, graph::Graph g) {
  auto shared = std::make_shared<const graph::Graph>(std::move(g));
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[name];
  if (slot.entry) {
    resident_bytes_ -= slot.entry->memory_bytes;
    slot.entry.reset();
  }
  slot.graph = std::move(shared);
  // Invalidate any in-flight build of the OLD graph: bumping the generation
  // makes its builder discard the result instead of installing it, and
  // clearing `building` lets the next acquire start a fresh build from the
  // new graph. Waiters already parked on the old future still get the old
  // chain -- they raced put_graph, either order is a valid outcome.
  ++slot.generation;
  slot.building = {};
  slot.stats.name = name;
  slot.stats.resident = false;
  slot.stats.memory_bytes = 0;
}

bool ChainRegistry::has_graph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it != slots_.end() && it->second.graph != nullptr;
}

ChainHandle ChainRegistry::acquire(const std::string& name) {
  std::shared_ptr<const graph::Graph> graph;
  std::uint64_t generation = 0;
  std::promise<ChainHandle> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = slots_.find(name);
    if (it == slots_.end() || !it->second.graph)
      throw spar::Error("chain registry: unknown graph \"" + name + "\"");
    Slot& slot = it->second;
    if (slot.entry) {
      ++slot.stats.hits;
      slot.last_use = ++clock_;
      return slot.entry;
    }
    if (slot.building.valid()) {
      // Another thread is already building this chain: wait on ITS result
      // outside the lock. Counts as a hit -- the work is shared.
      auto shared = slot.building;
      ++slot.stats.hits;
      lock.unlock();
      return shared.get();  // rethrows the builder's exception, if any
    }
    slot.building = promise.get_future().share();
    graph = slot.graph;
    generation = slot.generation;
  }

  // Build outside the lock: hits and builds on OTHER graphs proceed.
  try {
    support::Timer timer;
    solver::SDDMatrix matrix(*graph);
    solver::InverseChain chain(matrix, options_.chain);
    const std::uint64_t micros =
        static_cast<std::uint64_t>(timer.seconds() * 1e6);
    auto entry = std::make_shared<ChainEntry>(ChainEntry{
        name, std::move(matrix), std::move(chain), 0});
    entry->memory_bytes = entry_cost_bytes(*graph, entry->chain);

    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_.at(name);
    if (slot.generation == generation) {
      slot.entry = entry;
      slot.last_use = ++clock_;
      ++slot.stats.builds;
      slot.stats.build_micros += micros;
      slot.stats.resident = true;
      slot.stats.memory_bytes = entry->memory_bytes;
      resident_bytes_ += entry->memory_bytes;
      slot.building = {};
      evict_to_budget_locked();
    }
    // Generation mismatch: put_graph replaced the graph mid-build. Do NOT
    // install (the slot would serve a chain for the wrong matrix) and do
    // not touch `building` -- it is empty or owned by a newer build. The
    // entry still satisfies this call and its pre-replacement waiters.
    promise.set_value(entry);
    return entry;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_.at(name);
      if (slot.generation == generation) slot.building = {};
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void ChainRegistry::evict_to_budget_locked() {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    // Pick the least-recently-used resident entry, but never the MOST
    // recent: the chain just used (or built) must survive so that a budget
    // smaller than one chain still makes forward progress.
    Slot* victim = nullptr;
    Slot* newest = nullptr;
    for (auto& [key, slot] : slots_) {
      if (!slot.entry) continue;
      if (!newest || slot.last_use > newest->last_use) newest = &slot;
      if (!victim || slot.last_use < victim->last_use) victim = &slot;
    }
    if (!victim || victim == newest) return;
    resident_bytes_ -= victim->entry->memory_bytes;
    victim->entry.reset();  // in-flight ChainHandles keep the entry alive
    ++victim->stats.evictions;
    victim->stats.resident = false;
    victim->stats.memory_bytes = 0;
  }
}

std::size_t ChainRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::vector<ChainStats> ChainRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChainStats> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) out.push_back(slot.stats);
  return out;
}

}  // namespace spar::server
