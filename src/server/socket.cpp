#include "server/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace spar::server {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw spar::Error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw spar::Error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::read_exact(void* data, std::size_t len) const {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd_, p + got, len - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw spar::Error("socket: EOF mid-message (truncated frame)");
    }
    if (errno == EINTR) continue;
    fail("socket read");
  }
  return true;
}

void Socket::write_exact(const void* data, std::size_t len) const {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE
    // (caught and logged per connection), not SIGPIPE killing the process.
    const ssize_t w = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    fail("socket write");
  }
}

void Socket::shutdown_rw() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener::Listener(const std::string& path, int backlog) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  ::unlink(path.c_str());  // remove a stale socket file from a dead server
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind " + path);
  if (::listen(fd_, backlog) != 0) fail("listen " + path);
}

Listener::~Listener() {
  shutdown();
  ::unlink(path_.c_str());
}

Socket Listener::accept() const {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    return Socket();  // listener closed (shutdown) or fatal: caller stops
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept(); close() releases the fd.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + path);
  }
  return Socket(fd);
}

}  // namespace spar::server
