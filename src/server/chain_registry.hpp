// Resident chain registry: named graphs with prebuilt inverse chains.
//
// The whole point of the solver service is that chain construction (the
// expensive PARALLELSPARSIFY tower, E9: orders of magnitude more work than
// one solve) happens ONCE per graph and every subsequent request reuses the
// resident InverseChain. The registry is the server-side cache that makes
// that true under concurrency and bounded memory:
//
//  * get-or-build is SINGLE-FLIGHT: when k requests for a cold graph arrive
//    together, one thread builds while the other k-1 wait on a shared
//    future -- never k duplicate builds of the same tower.
//  * eviction is LRU under a byte budget: entries are approximately costed
//    (chain nonzeros + per-level diagonals + the source graph) and the
//    least-recently-used chains are dropped when the budget is exceeded.
//    The most-recently-used entry is never evicted, so a budget smaller
//    than one chain still serves (it just rebuilds every time).
//  * eviction never invalidates in-flight solves: acquire() hands out
//    shared_ptr handles, so an evicted entry stays alive until the last
//    solve using it completes. Eviction drops the REGISTRY's reference.
//  * rebuild-after-evict is exact: chains are built deterministically from
//    the stored graph with the registry's fixed ChainOptions (seeded
//    sparsification), so a rebuilt chain is bit-identical to the evicted
//    one and responses stay reproducible across evictions.
//
// Thread safety: every public method is safe to call concurrently. Builds
// run OUTSIDE the registry mutex (only bookkeeping is locked), so a slow
// build never blocks hits on other graphs.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "solver/chain.hpp"

namespace spar::server {

struct RegistryOptions {
  /// Byte budget for resident chains; 0 = unlimited. The most-recently-used
  /// entry is exempt so a tiny budget degrades to rebuild-per-request
  /// instead of failing.
  std::size_t memory_budget_bytes = 0;
  /// Chain construction options shared by every build (fixed seed -> every
  /// rebuild of a graph yields the bit-identical chain).
  solver::ChainOptions chain;
};

/// One resident graph + its prebuilt chain. Immutable after construction;
/// handed out by shared_ptr so eviction can never pull it out from under an
/// in-flight solve.
struct ChainEntry {
  std::string name;
  solver::SDDMatrix matrix;
  solver::InverseChain chain;
  std::size_t memory_bytes = 0;  ///< approximate resident cost (see .cpp)
};

using ChainHandle = std::shared_ptr<const ChainEntry>;

/// Per-graph counters, exposed by stats().
struct ChainStats {
  std::string name;
  std::uint64_t hits = 0;        ///< acquire() served from the resident entry
  std::uint64_t builds = 0;      ///< chain constructions (cold or post-evict)
  std::uint64_t evictions = 0;   ///< times the entry was dropped for budget
  std::uint64_t build_micros = 0;  ///< total wall time spent building
  bool resident = false;         ///< entry currently held by the registry
  std::size_t memory_bytes = 0;  ///< cost of the resident entry (0 if not)
};

class ChainRegistry {
 public:
  explicit ChainRegistry(RegistryOptions options = {});

  /// Installs (or replaces) the graph behind `name`. Replacing drops any
  /// resident chain for the old graph and invalidates in-flight builds of
  /// it (their result is discarded, never installed); in-flight handles
  /// stay valid.
  void put_graph(const std::string& name, graph::Graph g);

  bool has_graph(const std::string& name) const;

  /// Returns the resident chain for `name`, building it if necessary.
  /// Single-flight: concurrent cold acquires share one build. Throws
  /// spar::Error if the name was never registered.
  ChainHandle acquire(const std::string& name);

  /// Sum of memory_bytes over resident entries.
  std::size_t resident_bytes() const;

  /// Counters for every registered name, sorted by name.
  std::vector<ChainStats> stats() const;

  const RegistryOptions& options() const { return options_; }

 private:
  struct Slot {
    std::shared_ptr<const graph::Graph> graph;
    ChainHandle entry;                          ///< null when not resident
    std::shared_future<ChainHandle> building;   ///< valid while a build runs
    /// Bumped by put_graph. A build captures the generation of the graph it
    /// started from and only installs its chain if the slot still has it --
    /// a chain built from a replaced graph must never become resident.
    std::uint64_t generation = 0;
    std::uint64_t last_use = 0;
    ChainStats stats;
  };

  /// Drops least-recently-used entries until the budget holds; never drops
  /// the entry with the highest last_use. Caller holds mu_.
  void evict_to_budget_locked();

  RegistryOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::uint64_t clock_ = 0;          ///< monotonic LRU tick
  std::size_t resident_bytes_ = 0;
};

}  // namespace spar::server
