#include "server/protocol.hpp"

#include <cstring>

#include "support/error.hpp"
#include "support/framing.hpp"
#include "support/rng.hpp"

namespace spar::server {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'A', 'R', 'F', 'R', 'M', '\0'};

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t frame_checksum(MsgType type, std::uint64_t request_id,
                             std::span<const std::uint8_t> payload) {
  const std::uint64_t seed =
      support::mix64(static_cast<std::uint64_t>(type), request_id);
  return support::framing::checksum_bytes(payload.data(), payload.size(), seed);
}

void send_frame(const Socket& sock, MsgType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload) {
  std::uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, kMagic, 8);
  put_u32(header + 8, kProtocolVersion);
  put_u32(header + 12, static_cast<std::uint32_t>(type));
  put_u64(header + 16, request_id);
  put_u64(header + 24, payload.size());
  put_u64(header + 32, frame_checksum(type, request_id, payload));
  sock.write_exact(header, sizeof(header));
  if (!payload.empty()) sock.write_exact(payload.data(), payload.size());
}

bool recv_frame(const Socket& sock, Frame& out) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!sock.read_exact(header, sizeof(header))) return false;
  if (std::memcmp(header, kMagic, 8) != 0)
    throw spar::Error("protocol: bad frame magic");
  out.header.version = get_u32(header + 8);
  if (out.header.version != kProtocolVersion)
    throw spar::Error("protocol: version mismatch (got " +
                      std::to_string(out.header.version) + ", want " +
                      std::to_string(kProtocolVersion) + ")");
  out.header.type = static_cast<MsgType>(get_u32(header + 12));
  out.header.request_id = get_u64(header + 16);
  out.header.payload_len = get_u64(header + 24);
  out.header.checksum = get_u64(header + 32);
  if (out.header.payload_len > kMaxPayloadBytes)
    throw spar::Error("protocol: payload too large (" +
                      std::to_string(out.header.payload_len) + " bytes)");
  out.payload.resize(static_cast<std::size_t>(out.header.payload_len));
  if (!out.payload.empty() &&
      !sock.read_exact(out.payload.data(), out.payload.size()))
    throw spar::Error("protocol: EOF inside payload");
  const std::uint64_t want =
      frame_checksum(out.header.type, out.header.request_id, out.payload);
  if (want != out.header.checksum)
    throw spar::Error("protocol: payload checksum mismatch");
  return true;
}

void PayloadWriter::u32(std::uint32_t v) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 4);
  put_u32(bytes_.data() + at, v);
}

void PayloadWriter::u64(std::uint64_t v) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 8);
  put_u64(bytes_.data() + at, v);
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::f64_span(std::span<const double> v) {
  // Doubles go over the wire as their little-endian IEEE-754 bit patterns;
  // bit-identity end to end is part of the service contract.
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 8 * v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &v[i], sizeof(bits));
    put_u64(bytes_.data() + at + 8 * i, bits);
  }
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadReader::need(std::size_t k) const {
  if (pos_ + k > bytes_.size())
    throw spar::Error("protocol: truncated payload (want " + std::to_string(k) +
                      " more bytes, have " + std::to_string(bytes_.size() - pos_) +
                      ")");
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t PayloadReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PayloadReader::f64_span(std::span<double> out) {
  need(8 * out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t bits = get_u64(bytes_.data() + pos_ + 8 * i);
    std::memcpy(&out[i], &bits, sizeof(double));
  }
  pos_ += 8 * out.size();
}

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

void send_error(const Socket& sock, std::uint64_t request_id, const std::string& text) {
  PayloadWriter w;
  w.str(text);
  send_frame(sock, MsgType::kError, request_id, w.bytes());
}

}  // namespace spar::server
