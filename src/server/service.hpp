// SolverService: the solver-as-a-service core -- an admission queue that
// coalesces concurrently arriving right-hand sides for the same graph into
// blocked solve_sdd_multi calls over registry-resident chains.
//
// Why batching wins: solve_sdd_multi traverses each chain level's CSR once
// per iteration for ALL columns in the block (PR 5 measured 2.5-3.5x total
// throughput at k = 16 vs per-RHS solves). A service with concurrent
// clients can manufacture that block shape at runtime: hold the first
// request of a batch for at most deadline_us, admit same-graph arrivals
// until the batch reaches max_batch columns, then dispatch. The tradeoff is
// explicit and bounded:
//
//   batch closes at max_batch columns  -> throughput-optimal block
//   ... or at the OLDEST request's     -> p99 latency never pays more than
//       deadline_us, whichever first      deadline_us of queueing
//
// Coalescing invariance: solve_sdd_multi's per-column bit-identity contract
// means a request's solution does not depend on WHICH batch served it or on
// how many neighbours it had -- responses are bit-identical to a standalone
// solve_sdd against the same chain. Batching changes throughput, never
// bytes. The load generator asserts exactly this end to end.
//
// Execution: batches are dispatched onto the service's persistent TaskPool
// (support/task_pool.hpp). Pool workers are "current" on the pool, so the
// blocked kernels' parallel_for calls nest into the same workers -- no
// oversubscription, and chunk-deterministic results (identical across
// backends) by the substrate's contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "linalg/multivector.hpp"
#include "server/chain_registry.hpp"
#include "support/task_pool.hpp"

namespace spar::server {

struct ServiceOptions {
  /// Max right-hand sides coalesced into one blocked solve.
  std::size_t max_batch = 16;
  /// Max microseconds the oldest request of a forming batch may queue
  /// before the batch is dispatched regardless of size.
  std::uint64_t deadline_us = 2000;
  /// false = dispatch every request alone (the baseline the E15 bench
  /// compares against); equivalent to max_batch = 1.
  bool batching = true;
  double tolerance = 1e-8;             ///< per-solve target relative residual
  std::size_t max_iterations = 20000;  ///< per-solve PCG iteration cap
  RegistryOptions registry;            ///< chain cache budget + build options
  /// TaskPool worker threads backing batch execution (clamped to >= 1).
  int threads = 1;
};

/// Outcome of one submitted request, delivered to its callback.
struct SolveResult {
  bool ok = false;
  std::string error;               ///< set when !ok
  linalg::Vector solution;
  std::uint64_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::uint32_t batch_cols = 0;    ///< columns in the batch that served this
  std::uint64_t queue_us = 0;      ///< submit -> dispatch wait
  std::uint64_t solve_us = 0;      ///< blocked solve wall time (whole batch)
};

/// Service-level counters (registry counters live in ChainRegistry::stats).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;          ///< blocked solves dispatched
  std::uint64_t batched_requests = 0; ///< requests served in a batch with k >= 2
  std::uint64_t size_closes = 0;      ///< batches closed by reaching max_batch
  std::uint64_t deadline_closes = 0;  ///< batches closed by deadline expiry
  std::size_t max_batch_seen = 0;
};

class SolverService {
 public:
  using Callback = std::function<void(SolveResult)>;

  explicit SolverService(ServiceOptions options);
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Installs (or replaces) a named graph in the registry.
  void put_graph(const std::string& name, graph::Graph g);

  /// Enqueues one solve of L(name) x = rhs. The callback fires exactly once,
  /// from a service thread, when the request's batch completes (or fails).
  /// Throws spar::Error after shutdown() has begun.
  void submit(const std::string& name, linalg::Vector rhs, Callback cb);

  /// Stops admission, drains every queued request (their callbacks still
  /// fire), and joins the dispatcher. Idempotent.
  void shutdown();

  ServiceStats stats() const;
  const ChainRegistry& registry() const { return registry_; }

  /// Everything above as a JSON object (service counters + per-chain
  /// registry stats), for the kStats RPC and ops logging.
  std::string stats_json() const;

 private:
  struct Pending {
    std::string name;
    linalg::Vector rhs;
    Callback cb;
    std::chrono::steady_clock::time_point enqueued;
  };
  using Batch = std::vector<Pending>;

  void dispatcher_main();
  /// Collects the next batch under the queue lock discipline; returns false
  /// when stopping and drained.
  bool next_batch(Batch& out);
  /// Runs one batch: acquire chain, blocked solve, per-column callbacks.
  void execute(Batch batch);

  ServiceOptions options_;
  ChainRegistry registry_;
  support::par::TaskPool pool_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    ///< arrivals wake the dispatcher
  std::condition_variable drained_cv_;  ///< in-flight batches -> shutdown
  std::deque<Pending> queue_;
  ServiceStats stats_;
  std::size_t in_flight_ = 0;  ///< batches dispatched, not yet completed
  bool stopping_ = false;

  std::thread dispatcher_;
};

}  // namespace spar::server
