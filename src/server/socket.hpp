// Minimal AF_UNIX stream-socket wrappers for the solver service.
//
// The service is local-only by design (a solver daemon sharing prebuilt
// inverse chains between processes on one machine), so UNIX domain sockets
// are the right transport: no TCP stack, no address configuration, file
// permissions as access control. These wrappers add exactly what the wire
// protocol needs on top of the raw fds:
//
//  * read_exact / write_exact - full-length transfers with EINTR retry
//    (short reads/writes are normal on stream sockets; the framing layer
//    must never see them)
//  * RAII ownership - a Socket closes its fd on destruction, so an error
//    path can't leak descriptors
//
// Nothing here knows about frames or messages; see protocol.hpp for that.
#pragma once

#include <cstddef>
#include <string>

namespace spar::server {

/// One connected UNIX-domain stream socket (client side or an accepted
/// server-side connection). Move-only; closes the fd on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `len` bytes, retrying on EINTR and short reads. Returns
  /// false on clean EOF before the first byte; throws spar::Error on I/O
  /// errors or EOF mid-message (a truncated frame is a protocol violation,
  /// not a clean shutdown).
  bool read_exact(void* data, std::size_t len) const;

  /// Writes exactly `len` bytes, retrying on EINTR and short writes.
  /// Sends with MSG_NOSIGNAL: a closed peer throws spar::Error (EPIPE)
  /// instead of raising SIGPIPE against the whole process.
  void write_exact(const void* data, std::size_t len) const;

  /// Half-closes both directions without releasing the fd: a thread blocked
  /// in read_exact sees EOF and unwinds while the owner still holds the
  /// Socket. Safe to call from another thread; idempotent.
  void shutdown_rw() const;

  void close();

 private:
  int fd_ = -1;
};

/// A listening UNIX-domain socket bound to a filesystem path. Unlinks any
/// stale socket file at bind time and removes its own on destruction.
class Listener {
 public:
  explicit Listener(const std::string& path, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks until a client connects; returns the accepted connection.
  /// Returns an invalid Socket if the listener was shut down concurrently.
  Socket accept() const;

  /// Wakes any blocked accept() by closing the listening fd (idempotent).
  void shutdown();

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening UNIX socket at `path`. Throws spar::Error if the
/// server is not there.
Socket connect_unix(const std::string& path);

}  // namespace spar::server
