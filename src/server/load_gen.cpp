// load_gen: replay client + correctness oracle for solver_server (E15).
//
// Drives the service with deterministic, seeded right-hand sides and
// measures end-to-end latency/throughput at several load levels:
//
//  * open-loop mode (--rates=R1,R2,...): requests arrive by a Poisson
//    process at R requests/second REGARDLESS of completions -- the honest
//    way to measure a service's latency under load (closed-loop clients
//    self-throttle and hide queueing). Reports p50/p99 sojourn time
//    (arrival -> reply) and achieved QPS per level.
//  * closed-loop mode (--concurrency=C): C requests pipelined on the
//    connection, each completion immediately replaced -- measures peak
//    sustainable throughput at a fixed offered concurrency. This is the
//    mode the E15 batching-vs-no-batching comparison uses.
//
// Correctness: every reply is checked BIT-FOR-BIT against a local oracle
// (the same graph spec -> SDDMatrix -> InverseChain with the server's
// default options -> per-RHS solve_sdd). This asserts the service's
// coalescing invariance end to end: batching, request interleaving, the
// wire round trip, and chain eviction/rebuild must never change a single
// bit of any solution. A mismatch is a hard failure (exit 1).
//
// By default one warmup request is sent (and discarded) before the timed
// levels so they measure steady-state serving, not the one-time chain
// build -- the build cost is reported separately in the server's registry
// stats (build_micros). --warmup=0 includes the cold build in level 1.
//
//   load_gen --socket=/tmp/spar.sock --spec=gen:grid:64x64
//     [--requests=200] [--rates=4,16,64 | --concurrency=16]
//     [--seed=1] [--warmup=1] [--quick] [--json=out.json] [--no-verify]
//     [--shutdown-server]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "linalg/vector_ops.hpp"
#include "server/protocol.hpp"
#include "solver/solver.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

namespace {

using namespace spar;
using server::Frame;
using server::MsgType;
using server::PayloadReader;
using server::PayloadWriter;
using server::Socket;
using Clock = std::chrono::steady_clock;

struct Reply {
  linalg::Vector solution;
  std::uint64_t iterations = 0;
  bool converged = false;
  std::uint32_t batch_cols = 0;
  double latency_ms = 0.0;  ///< arrival (scheduled) -> reply received
};

struct LevelResult {
  std::string mode;       ///< "open" or "closed"
  double offered = 0.0;   ///< rate (req/s) or concurrency
  std::size_t requests = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_cols = 0.0;
  std::uint64_t total_iterations = 0;
};

/// Deterministic RHS for request `i`: the stream both the client and the
/// oracle regenerate independently. Mean-free for singular Laplacians so
/// the system is consistent.
linalg::Vector make_rhs(std::size_t n, std::uint64_t seed, std::uint64_t i,
                        bool mean_free) {
  support::Rng rng(support::mix64(seed, i));
  linalg::Vector b(n);
  for (double& v : b) v = rng.normal();
  if (mean_free) linalg::remove_mean(b);
  return b;
}

void send_solve(const Socket& sock, std::mutex& write_mu, const std::string& name,
                std::uint64_t id, const linalg::Vector& rhs) {
  PayloadWriter w;
  w.str(name);
  w.u64(rhs.size());
  w.f64_span(rhs);
  std::lock_guard<std::mutex> lock(write_mu);
  server::send_frame(sock, MsgType::kSolve, id, w.bytes());
}

Reply parse_reply(const Frame& frame) {
  if (frame.type() == MsgType::kError) {
    PayloadReader r(frame.payload);
    throw Error("server error for request " + std::to_string(frame.request_id()) +
                ": " + r.str());
  }
  if (frame.type() != MsgType::kSolveReply)
    throw Error("unexpected reply type " +
                std::to_string(static_cast<unsigned>(frame.header.type)));
  PayloadReader r(frame.payload);
  Reply out;
  const std::uint64_t n = r.u64();
  // n doubles must fit in the remaining payload; a corrupt length must not
  // become an 8n-byte allocation before f64_span would catch it.
  if (n > r.remaining() / sizeof(double))
    throw Error("solve reply declares more doubles than the payload carries");
  out.solution.resize(static_cast<std::size_t>(n));
  r.f64_span(out.solution);
  out.iterations = r.u64();
  r.f64();  // relative_residual (oracle re-derives it)
  out.converged = r.u8() != 0;
  out.batch_cols = r.u32();
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

LevelResult summarize(const std::vector<Reply>& replies, double wall_seconds) {
  LevelResult lvl;
  lvl.requests = replies.size();
  lvl.qps = static_cast<double>(replies.size()) / wall_seconds;
  std::vector<double> lat;
  lat.reserve(replies.size());
  double cols = 0.0;
  for (const Reply& r : replies) {
    lat.push_back(r.latency_ms);
    cols += r.batch_cols;
    lvl.total_iterations += r.iterations;
  }
  lvl.p50_ms = percentile(lat, 0.50);
  lvl.p99_ms = percentile(lat, 0.99);
  lvl.mean_batch_cols = replies.empty() ? 0.0 : cols / static_cast<double>(replies.size());
  return lvl;
}

/// Open-loop Poisson level: a sender thread fires requests on schedule, the
/// caller's thread collects replies. Latency is reply_time - SCHEDULED
/// arrival, so queueing delay from falling behind the schedule is charged
/// to the server (open-loop semantics).
LevelResult run_open_loop(const Socket& sock, const std::string& name, std::size_t n,
                          bool mean_free, std::uint64_t seed, std::size_t requests,
                          double rate, std::vector<Reply>& replies_out) {
  std::mutex write_mu;
  std::vector<Clock::time_point> scheduled(requests);
  const Clock::time_point start = Clock::now();

  // Pre-draw deterministic Poisson inter-arrival gaps.
  {
    support::Rng rng(support::mix64(seed, 0xA221));
    double t = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
      t += -std::log(1.0 - rng.uniform()) / rate;
      scheduled[i] = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(t));
    }
  }

  std::thread sender([&] {
    for (std::size_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(scheduled[i]);
      send_solve(sock, write_mu, name, i, make_rhs(n, seed, i, mean_free));
    }
  });

  std::vector<Reply> replies(requests);
  Frame frame;
  for (std::size_t got = 0; got < requests; ++got) {
    if (!server::recv_frame(sock, frame)) throw Error("server closed mid-level");
    Reply r = parse_reply(frame);
    const std::uint64_t id = frame.request_id();
    if (id >= requests) throw Error("reply for unknown request id");
    r.latency_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - scheduled[id]).count();
    replies[id] = std::move(r);
  }
  sender.join();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  LevelResult lvl = summarize(replies, wall);
  lvl.mode = "open";
  lvl.offered = rate;
  replies_out = std::move(replies);
  return lvl;
}

/// Closed-loop level: `concurrency` requests pipelined; every reply
/// immediately refills the window. Latency is send -> reply.
LevelResult run_closed_loop(const Socket& sock, const std::string& name,
                            std::size_t n, bool mean_free, std::uint64_t seed,
                            std::size_t requests, std::size_t concurrency,
                            std::vector<Reply>& replies_out) {
  std::mutex write_mu;
  std::vector<Clock::time_point> sent(requests);
  const Clock::time_point start = Clock::now();
  std::size_t next = 0;
  auto fire = [&](std::size_t i) {
    sent[i] = Clock::now();
    send_solve(sock, write_mu, name, i, make_rhs(n, seed, i, mean_free));
  };
  for (; next < std::min(concurrency, requests); ++next) fire(next);

  std::vector<Reply> replies(requests);
  Frame frame;
  for (std::size_t got = 0; got < requests; ++got) {
    if (!server::recv_frame(sock, frame)) throw Error("server closed mid-level");
    Reply r = parse_reply(frame);
    const std::uint64_t id = frame.request_id();
    if (id >= requests) throw Error("reply for unknown request id");
    r.latency_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - sent[id]).count();
    replies[id] = std::move(r);
    if (next < requests) fire(next++);
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  LevelResult lvl = summarize(replies, wall);
  lvl.mode = "closed";
  lvl.offered = static_cast<double>(concurrency);
  replies_out = std::move(replies);
  return lvl;
}

std::vector<double> parse_csv(const std::string& s, const char* what) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(support::parse_number<double>(what, s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

int run(int argc, char** argv) {
  support::Options opt(argc, argv);
  const bool quick = opt.get_bool("quick", false);
  const std::string socket_path = opt.get("socket", "/tmp/spar_solver.sock");
  const std::string spec = opt.get("spec", quick ? "gen:grid:24x24" : "gen:grid:64x64");
  const std::string name = opt.get("graph", "g");
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const std::size_t requests =
      static_cast<std::size_t>(opt.get_int("requests", quick ? 48 : 200));
  const double tolerance = opt.get_double("tolerance", 1e-8);
  const bool verify = !opt.get_bool("no-verify", false);

  // Local twin of the server-side graph: the oracle and the RHS shapes.
  const graph::Graph g = spec.rfind("gen:", 0) == 0 ? graph::generate_spec(spec)
                                                    : graph::load_graph(spec);
  const solver::SDDMatrix m(g);
  const std::size_t n = m.dimension();
  const bool mean_free = m.is_singular();

  // --tcp-port connects over loopback TCP (matching solver_server
  // --tcp-port); the default stays the UNIX socket path.
  Socket sock = opt.has("tcp-port")
                    ? server::connect_tcp(static_cast<std::uint16_t>(
                          opt.get_int("tcp-port", 0)))
                    : server::connect_unix(socket_path);

  // Register the graph (idempotent: replaces any previous binding of name).
  {
    PayloadWriter w;
    w.str(name);
    w.str(spec);
    server::send_frame(sock, MsgType::kRegisterGraph, 0, w.bytes());
    Frame frame;
    if (!server::recv_frame(sock, frame))
      throw Error("graph registration failed: server closed the connection");
    if (frame.type() != MsgType::kOk) {
      std::string detail;
      if (frame.type() == MsgType::kError) {
        PayloadReader r(frame.payload);
        detail = ": " + r.str();
      }
      throw Error("graph registration failed" + detail);
    }
  }

  // Warmup: force the server-side chain build before any timed level.
  {
    const std::size_t warmup =
        static_cast<std::size_t>(opt.get_int("warmup", 1));
    std::mutex write_mu;
    for (std::size_t i = 0; i < warmup; ++i)
      send_solve(sock, write_mu, name, i,
                 make_rhs(n, seed, 0x57A0000 + i, mean_free));
    Frame frame;
    for (std::size_t i = 0; i < warmup; ++i) {
      if (!server::recv_frame(sock, frame))
        throw Error("server closed during warmup");
      parse_reply(frame);  // discard; throws on kError
    }
  }

  std::vector<LevelResult> levels;
  std::vector<std::vector<Reply>> level_replies;
  if (opt.has("concurrency")) {
    for (double c : parse_csv(opt.get("concurrency", "16"), "--concurrency")) {
      std::vector<Reply> replies;
      levels.push_back(run_closed_loop(sock, name, n, mean_free, seed, requests,
                                       static_cast<std::size_t>(c), replies));
      level_replies.push_back(std::move(replies));
    }
  } else {
    const std::string rates = opt.get("rates", quick ? "200" : "4,16,64");
    for (double rate : parse_csv(rates, "--rates")) {
      std::vector<Reply> replies;
      levels.push_back(
          run_open_loop(sock, name, n, mean_free, seed, requests, rate, replies));
      level_replies.push_back(std::move(replies));
    }
  }

  // Bit-identity oracle: per-RHS solve_sdd against a locally built chain
  // (same spec, same default ChainOptions => same seeded construction as
  // the server's registry). Any deviation -- batching, eviction/rebuild,
  // the wire -- is a contract violation.
  std::size_t verified = 0;
  if (verify) {
    solver::SolveOptions sopt;
    sopt.tolerance = tolerance;
    const solver::InverseChain chain(m, sopt.chain);
    for (std::size_t l = 0; l < level_replies.size(); ++l) {
      for (std::size_t i = 0; i < level_replies[l].size(); ++i) {
        const auto local =
            solver::solve_sdd(m, chain, make_rhs(n, seed, i, mean_free), sopt);
        const linalg::Vector& remote = level_replies[l][i].solution;
        if (remote.size() != local.solution.size() ||
            std::memcmp(remote.data(), local.solution.data(),
                        remote.size() * sizeof(double)) != 0)
          throw Error("BIT-IDENTITY VIOLATION: level " + std::to_string(l) +
                      " request " + std::to_string(i) +
                      " differs from local solve_sdd");
        if (level_replies[l][i].iterations != local.iterations)
          throw Error("iteration-count mismatch at level " + std::to_string(l) +
                      " request " + std::to_string(i));
        ++verified;
      }
    }
  }

  if (opt.get_bool("shutdown-server", false)) {
    server::send_frame(sock, MsgType::kShutdown, 0, {});
    Frame frame;
    if (!server::recv_frame(sock, frame) || frame.type() != MsgType::kOk)
      throw Error("shutdown handshake failed");
  }

  std::ostringstream json;
  json << "{\"spec\":\"" << spec << "\",\"n\":" << n << ",\"requests\":" << requests
       << ",\"verified_bit_identical\":" << verified << ",\"levels\":[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& l = levels[i];
    json << (i ? "," : "") << "{\"mode\":\"" << l.mode << "\",\"offered\":" << l.offered
         << ",\"qps\":" << l.qps << ",\"p50_ms\":" << l.p50_ms
         << ",\"p99_ms\":" << l.p99_ms << ",\"mean_batch_cols\":" << l.mean_batch_cols
         << ",\"total_iterations\":" << l.total_iterations << "}";
  }
  json << "]}";

  for (const LevelResult& l : levels)
    std::printf("%-6s offered=%-8.0f qps=%-9.1f p50=%-8.3fms p99=%-8.3fms avg_batch=%.2f\n",
                l.mode.c_str(), l.offered, l.qps, l.p50_ms, l.p99_ms,
                l.mean_batch_cols);
  if (verify)
    std::printf("bit-identity: %zu/%zu replies match local solve_sdd exactly\n",
                verified, verified);

  if (opt.has("json")) {
    std::ofstream out(opt.get("json", ""));
    out << json.str() << "\n";
  } else {
    std::printf("%s\n", json.str().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_gen: %s\n", e.what());
    return 1;
  }
}
