// Algorithm 1 (PARALLELSAMPLE) of the paper.
//
//   1. Compute a (24 log^2 n / eps^2)-bundle spanner H of G.
//   2. G~ := H.
//   3. Every edge e not in H joins G~ with probability 1/4 at weight 4 w_e.
//
// Theorem 4: with probability 1 - 1/n^2 the output is a (1 +- eps)
// approximation with at most O(n log^3 n / eps^2) + m/2 edges.
//
// The theoretical bundle width t = ceil(24 log^2 n / eps^2) exceeds any
// feasible edge budget for real n (a theory constant, see DESIGN.md), so the
// options expose both the paper's setting (BundleWidth::kTheory) and a
// practical width (explicit t); the sampling mechanism -- the paper's
// contribution -- is identical in both. Benches certify the resulting
// (1 +- eps) empirically.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "spanner/bundle.hpp"
#include "sparsify/round_context.hpp"
#include "support/work_counter.hpp"

namespace spar::sparsify {

enum class BundleKind {
  kSpanner,  ///< Definition 1 bundles (the paper's algorithm)
  kTree,     ///< Remark 2: low-stretch-tree bundles
};

struct SampleOptions {
  double epsilon = 0.5;
  /// Bundle width. 0 = the paper's theoretical t = ceil(24 log2(n)^2/eps^2);
  /// any positive value overrides (the practical setting).
  std::size_t t = 0;
  /// Keep-probability for off-bundle edges; kept edges are reweighted by 1/p.
  /// The paper fixes p = 1/4.
  double keep_probability = 0.25;
  BundleKind bundle_kind = BundleKind::kSpanner;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
};

struct SampleResult {
  graph::Graph sparsifier;
  std::size_t bundle_edges = 0;
  std::size_t off_bundle_edges = 0;  ///< candidates for sampling
  std::size_t sampled_edges = 0;     ///< coin flips that kept the edge
  std::size_t t_used = 0;
};

/// The paper's theoretical bundle width for given n and eps (log base 2).
std::size_t theory_bundle_width(std::size_t n, double epsilon);

/// One PARALLELSAMPLE round executed in place on the round pipeline's
/// context: bundle on the reusable CSR scratch, verdicts, then index
/// compaction with in-place reweighting. No Graph is materialized; the
/// shrunken universe stays in ctx's arena for the next round.
SampleRoundStats parallel_sample_round(RoundContext& ctx,
                                       const SampleOptions& options);

/// Boundary wrapper: runs one round on a fresh RoundContext and materializes
/// the result as a Graph. Output is identical to the pre-arena
/// implementation (golden-hash pinned).
SampleResult parallel_sample(const graph::Graph& g, const SampleOptions& options);

}  // namespace spar::sparsify
