// Merge-and-reduce streaming sparsification.
//
// PARALLELSPARSIFY composes: a sparsifier of a union of graph pieces can
// itself be sparsified, and the result still approximates the union (Section
// 2's approximation relation is transitive up to multiplied error). That is
// exactly the classic semi-streaming merge-and-reduce recipe (Goel-Kapralov-
// Khanna refinement sampling; Baswana's streaming spanners): consume the edge
// stream in bounded batches and maintain a binary-counter tower of level
// sketches, where the level-i sketch is a sparsifier of the union of at most
// 2^i batches.
//
//  * An arriving batch lands raw at level 0 when that slot is free.
//  * Otherwise the batch and the occupied levels 0..j-1 (j = first free
//    level) are concatenated -- oldest edges first, so the merged arena is
//    the edge list a serial arrival-order append would build -- and reduced
//    by ONE in-place PARALLELSPARSIFY round loop (parallel_sparsify_rounds)
//    into the level-j sketch. The multiway merge costs every participating
//    edge a single sparsify pass, so an edge's pass count never exceeds its
//    sketch's level.
//  * A resident-level cap (StreamOptions::max_resident_levels) collapses the
//    whole tower into one higher-level sketch when too many levels are
//    occupied, which bounds peak memory at ~(cap sketches + 1 batch) without
//    deepening the tower (a collapse is also one pass).
//  * finish() concatenates the surviving levels and runs one last reduce:
//    the final sparsifier plus a StreamReport.
//
// Epsilon budget: with B planned batches and cap resident levels, an edge
// participates in at most D sparsify passes, where D = ceil(log2 B) + 2
// (up to ceil(log2 B) carries, the final flush, and one spare pass of
// headroom for the flush landing above the natural top) when the cap is at
// least the natural tower height ceil(log2 B) + 1, plus one pass per cap
// collapse (at most B / cap of them) when the cap binds -- bounded memory is
// bought with budget depth.
// Each pass runs at eps_level = (1 + eps)^(1/D) - 1, so the composed error is
// at most (1 + eps_level)^D = 1 + eps on the upper side, and on the lower
// side (1 - eps_level)^D >= 1 - D*eps_level >= 1 - eps since eps_level <=
// eps/D by concavity. The report records both the planned depth and the
// depth actually used. See DESIGN.md ("merge-and-reduce streaming tower").
//
// Unknown batch count (bare push API, planned_batches == 0): there is no D to
// split by, and assuming a huge one (this code used to plan for 2^20 batches,
// a ~22-deep split) starves every pass of budget no matter how short the
// stream really is. Instead each pass draws from a geometric schedule keyed
// by the depth it produces: the pass that lifts edges to depth k spends a
// 2^-k fraction of the log-budget, log(1 + eps_k) = 2^-k log(1 + eps). An
// edge's pass depths are strictly increasing, so its composed log-error is a
// subset sum of {2^-1, 2^-2, ...} times log(1 + eps) -- below log(1 + eps)
// for ANY stream length, with no up-front plan. finish() then derives
// depth_planned from the real batch count and the report tracks the exact
// composed budget along the deepest merge chain.
//
// Determinism: batch boundaries are a pure function of (source, batch_edges),
// concatenation order is a pure function of the arrival sequence, and every
// reduce pass runs the round pipeline's counter-based per-edge coins -- so
// the final sparsifier is bit-identical for any thread count and for the
// OpenMP-off build, for a fixed (seed, batch size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "sparsify/sparsify.hpp"

namespace spar::sparsify {

struct StreamOptions {
  double epsilon = 0.5;  ///< end-to-end target; split per level (see header)
  double rho = 4.0;      ///< per-reduce sparsification factor
  /// Per-round bundle width of each reduce pass; 0 = theory value.
  std::size_t t = 3;
  double keep_probability = 0.25;
  BundleKind bundle_kind = BundleKind::kSpanner;
  std::uint64_t seed = 1;
  /// Batch granularity: the unit of resident memory.
  std::size_t batch_edges = std::size_t{1} << 17;
  /// Batches the eps budget is planned for. The stream drivers know the total
  /// up front and set it; 0 = unknown (bare push API), which switches every
  /// pass to the geometric depth-keyed budget schedule (see header comment)
  /// and derives the report's depth_planned from the real count at finish().
  std::size_t planned_batches = 0;
  /// Collapse the tower once more than this many level sketches are
  /// resident: peak memory ~ (cap sketches + 1 batch). A cap below the
  /// natural tower height ceil(log2 B) + 1 widens the planned depth by the
  /// collapse allowance B / cap (see planned_depth in stream.cpp) -- tighter
  /// memory is bought with epsilon budget.
  std::size_t max_resident_levels = 3;
  support::WorkCounter* work = nullptr;
};

/// Wire-style accounting, mirroring dist::DistMetrics: an edge is a 3-word
/// message (u, v, w), ingest is the stream's inbound traffic, merges are the
/// words the tower moves internally.
struct StreamMetrics {
  std::uint64_t edges_ingested = 0;
  std::uint64_t words_ingested = 0;   ///< 3 per ingested edge
  std::uint64_t merge_edges = 0;      ///< edges entering reduce passes
  std::uint64_t merge_words = 0;      ///< 3 per merged edge
};

struct StreamReport {
  std::size_t batches = 0;
  std::size_t batch_edges = 0;     ///< granularity the run used
  std::size_t levels_used = 0;     ///< highest occupied level + 1, over the run
  std::size_t depth_planned = 0;   ///< sparsify passes budgeted per edge
  std::size_t depth_used = 0;      ///< passes the deepest edge actually took
  /// Uniform per-pass eps when the batch count was planned; in bare-push
  /// (unknown-plan) mode, the eps of the deepest pass actually run.
  double per_level_epsilon = 0.0;
  /// Exact composed budget along the deepest merge chain:
  /// exp(max over levels of sum of log(1 + pass eps)) - 1. Always <= epsilon.
  double epsilon_budget_used = 0.0;
  std::size_t sparsify_calls = 0;
  std::vector<std::size_t> sparsify_calls_per_level;  ///< by target level
  std::size_t peak_resident_edges = 0;  ///< max simultaneously held edges
  std::size_t final_edges = 0;
  StreamMetrics metrics;
};

struct StreamResult {
  graph::Graph sparsifier;
  StreamReport report;
};

/// Incremental push API: feed batches, then finish() exactly once.
class StreamSparsifier {
 public:
  StreamSparsifier(graph::Vertex num_vertices, const StreamOptions& options);

  /// Fold the next batch of the stream into the tower. Batches must share the
  /// constructor's vertex count; the view is copied, the caller's buffer can
  /// be reused immediately.
  void push_batch(const graph::EdgeView& batch);

  /// Move-in variant: the tower adopts the arena (a free level-0 landing is
  /// zero-copy, and the batch is never resident twice). This is what the
  /// EdgeStream driver uses, so file streaming holds each batch exactly once.
  void push_batch(graph::EdgeArena&& batch);

  /// Flush the tower into the final sparsifier. The object is spent after.
  StreamResult finish();

  /// Running report (final_edges/depth_used filled in by finish()).
  const StreamReport& report() const { return report_; }

 private:
  struct Level {
    graph::EdgeArena arena;
    std::size_t batches = 0;  ///< batches covered; <= 2^level
    std::size_t depth = 0;    ///< max sparsify passes any contained edge took
    double log_err = 0.0;     ///< max composed log(1 + eps) along any edge's passes
    bool occupied = false;
  };

  std::size_t resident_edges() const;
  void note_resident(std::size_t extra);
  /// Shared core of both push_batch overloads; `owned` non-null when the
  /// tower may adopt the batch's buffers.
  void ingest(const graph::EdgeView& batch, graph::EdgeArena* owned);
  /// Concatenate levels [0, top] (descending, oldest first) plus `batch`
  /// (null = none) and reduce with one round-loop pass into level `target`.
  void reduce_into(std::size_t target, std::size_t top_level,
                   const graph::EdgeView* batch);

  graph::Vertex n_ = 0;
  StreamOptions opt_;
  bool adaptive_budget_ = false;  ///< planned_batches == 0: depth-keyed eps
  double max_log_err_ = 0.0;      ///< deepest composed log(1 + eps) so far
  std::uint64_t pass_seed_base_ = 0;
  std::size_t passes_ = 0;
  std::vector<Level> levels_;
  StreamReport report_;
  bool finished_ = false;
};

/// Sparsify a resident edge set through the streaming tower (slab-order
/// batches of options.batch_edges). Decoupled-memory semantics aside, this is
/// the reference the file drivers must match bit for bit.
StreamResult stream_sparsify(const graph::EdgeView& edges, const StreamOptions& options);

/// Drive the tower from any batched edge source.
StreamResult stream_sparsify(graph::EdgeStream& stream, const StreamOptions& options);

/// Open `path` (SPARBIN / edge-list text / MatrixMarket, auto-detected) as a
/// batched stream and sparsify it without ever holding the whole graph
/// (MatrixMarket excepted -- its symmetry reconciliation is global).
StreamResult stream_sparsify_file(const std::string& path, const StreamOptions& options);

}  // namespace spar::sparsify
