// Internal pieces of PARALLELSAMPLE shared by the shared-memory path
// (sample.cpp) and the distributed simulator (dist/dist_spanner.cpp).
//
// Both must derive the SAME per-stage seeds and make the SAME per-edge coin
// decisions so the distributed protocol reproduces the shared-memory
// sparsifier bit for bit (pinned by
// tests/integration/test_parallel_determinism.cpp). Keeping the derivation
// and the verdict/compaction pass here makes that contract un-breakable by a
// one-sided edit: both pipelines hand their RoundContext to
// apply_sample_verdicts and get the identical in-place result.
//
// Not installed API: everything here lives in spar::sparsify::detail.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {
class RoundContext;
}  // namespace spar::sparsify

namespace spar::sparsify::detail {

/// Seed of the bundle-peeling stage under a PARALLELSAMPLE master seed.
inline std::uint64_t bundle_seed(std::uint64_t seed) {
  return support::mix64(seed, 0x6b756e646cULL);  // "bundl"
}

/// Seed of the off-bundle coin flips under a PARALLELSAMPLE master seed.
inline std::uint64_t coin_seed(std::uint64_t seed) {
  return support::mix64(seed, 0x636f696eULL);  // "coin"
}

/// The per-edge coin: a pure function of (coin seed, edge id), so any thread
/// layout -- or network node -- makes the same decision.
inline bool keeps_edge(std::uint64_t coin_seed_value, graph::EdgeId id,
                       double keep_probability) {
  return support::stream_uniform(coin_seed_value, id) < keep_probability;
}

/// Per-edge round verdicts written into RoundContext::verdict().
enum Verdict : std::uint8_t {
  kVerdictDrop = 0,
  kVerdictBundle = 1,
  kVerdictSampled = 2,
};

/// Algorithm 1, steps 2-3, in place: classify every edge of ctx's arena
/// (bundle / sampled-with-coin / dropped; edge-parallel, one pure coin per
/// edge id), then compact the arena so survivors keep their relative order
/// and sampled edges land reweighted by 1/p. The survivor ranks equal the
/// edge ids a serial filter-append loop would assign, so downstream rounds
/// see identical ids. Returns the number of sampled (coin-kept off-bundle)
/// edges.
std::size_t apply_sample_verdicts(RoundContext& ctx,
                                  const std::vector<bool>& in_bundle,
                                  double keep_probability,
                                  std::uint64_t coin_seed_value);

}  // namespace spar::sparsify::detail
