// Internal pieces of PARALLELSAMPLE shared by the shared-memory path
// (sample.cpp) and the distributed simulator (dist/dist_spanner.cpp).
//
// Both must derive the SAME per-stage seeds and make the SAME per-edge coin
// decisions so the distributed protocol reproduces the shared-memory
// sparsifier bit for bit (pinned by
// tests/integration/test_parallel_determinism.cpp). Keeping the derivation
// and the coin/append pass here makes that contract un-breakable by a
// one-sided edit.
//
// Not installed API: everything here lives in spar::sparsify::detail.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace spar::sparsify::detail {

/// Seed of the bundle-peeling stage under a PARALLELSAMPLE master seed.
inline std::uint64_t bundle_seed(std::uint64_t seed) {
  return support::mix64(seed, 0x6b756e646cULL);  // "bundl"
}

/// Seed of the off-bundle coin flips under a PARALLELSAMPLE master seed.
inline std::uint64_t coin_seed(std::uint64_t seed) {
  return support::mix64(seed, 0x636f696eULL);  // "coin"
}

/// The per-edge coin: a pure function of (coin seed, edge id), so any thread
/// layout -- or network node -- makes the same decision.
inline bool keeps_edge(std::uint64_t coin_seed_value, graph::EdgeId id,
                       double keep_probability) {
  return support::stream_uniform(coin_seed_value, id) < keep_probability;
}

/// G~ := bundle + surviving off-bundle edges reweighted by 1/p (Algorithm 1,
/// steps 2-3). The decision pass runs edge-parallel; the append is serial.
/// Writes the number of surviving off-bundle edges to *sampled_edges.
graph::Graph assemble_sparsifier(const graph::Graph& g,
                                 const std::vector<bool>& in_bundle,
                                 double keep_probability,
                                 std::uint64_t coin_seed_value,
                                 std::size_t* sampled_edges);

}  // namespace spar::sparsify::detail
