// Spectral-approximation certification.
//
// H (beta/alpha)-approximates G when  alpha x^T L_H x <= x^T L_G x <= beta x^T L_H x
// (Section 2). Equivalently, with bounds stated the way Theorems 4/5 use
// them: lower * L_G <= L_H <= upper * L_G, where lower/upper are the extreme
// generalized eigenvalues of the pencil (L_H, L_G) on range(L_G). A
// (1 +- eps) sparsifier has lower >= 1-eps and upper <= 1+eps.
//
// Two certification paths:
//  * exact_relative_bounds  - dense: project L_H onto the eigenbasis of L_G
//    (whitening), then a symmetric eigensolve. O(n^3), ground truth for
//    n <= ~1500.
//  * approx_relative_bounds - matrix-free: power iteration on pinv(L_G) L_H
//    (and on the swapped pencil for the lower bound), each step one CG solve.
//    Used by benches at large n.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace spar::sparsify {

struct ApproxBounds {
  double lower = 0.0;  ///< largest a with a*L_G <= L_H
  double upper = 0.0;  ///< smallest b with L_H <= b*L_G
  bool defined = false;

  /// eps such that the pair certifies a (1 +- eps) approximation.
  double epsilon() const {
    const double lo = 1.0 - lower;
    const double hi = upper - 1.0;
    return lo > hi ? lo : hi;
  }
};

/// Dense-exact bounds. G must be connected; if H does not connect G's vertex
/// set, lower = 0 (the pencil degenerates), which correctly fails any eps.
ApproxBounds exact_relative_bounds(const graph::Graph& g, const graph::Graph& h);

struct CertOptions {
  std::uint64_t seed = 17;
  double tolerance = 1e-6;        ///< power-iteration Rayleigh tolerance
  std::size_t max_iterations = 300;
  double cg_tolerance = 1e-9;
  std::size_t cg_max_iterations = 20000;
};

/// Matrix-free bounds via power iteration + CG. The returned values are
/// inner estimates (lower is an over-, upper an under-estimate) converging
/// from inside; with the default iteration budget they are accurate to ~3
/// digits on the graphs in bench/.
ApproxBounds approx_relative_bounds(const graph::Graph& g, const graph::Graph& h,
                                    const CertOptions& options = {});

}  // namespace spar::sparsify
