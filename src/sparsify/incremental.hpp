// Incremental sparsification in the Koutis-Miller-Peng style (the paper's
// refs [15, 16], the lineage its solver improves on): keep a low-stretch
// spanning tree T, estimate every off-tree edge's leverage by its *tree
// stretch* st_T(e) = w_e * dist_T(u, v) (an upper bound on w_e R_e by
// Rayleigh monotonicity, exactly the Lemma 1 reasoning with t = 1 and a tree
// instead of a spanner bundle), and oversample off-tree edges proportionally
// to stretch.
//
// This gives the "mildly sparser" incremental sparsifier used inside
// near-m-log-n solvers: T survives whole, heavy-stretch edges are kept with
// near-certainty, and the expected edge count is
//   (n - 1) + O(total_stretch * log n / eps^2)  [KMP oversampling lemma].
//
// Included both as a feature (it shares all substrates with Algorithm 1) and
// as a third comparator for E6: solve-free like the paper's method, but
// tree-based like the prior work.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "spanner/low_stretch_tree.hpp"

namespace spar::sparsify {

struct IncrementalOptions {
  double epsilon = 1.0;
  /// Number of with-replacement samples; 0 = auto:
  /// ceil(sample_factor * total_stretch * log2(n) / eps^2).
  std::size_t num_samples = 0;
  double sample_factor = 0.5;
  std::uint64_t seed = 1;
  spanner::LowStretchTreeOptions tree;
};

struct IncrementalResult {
  graph::Graph sparsifier;
  std::size_t tree_edges = 0;
  std::size_t off_tree_edges = 0;   ///< candidates
  std::size_t distinct_sampled = 0; ///< distinct off-tree edges kept
  double total_stretch = 0.0;       ///< sum of off-tree stretches
  std::size_t samples_drawn = 0;
};

/// Requires a connected input graph.
IncrementalResult incremental_sparsify(const graph::Graph& g,
                                       const IncrementalOptions& options = {});

}  // namespace spar::sparsify
