// Zero-copy state for the PARALLELSPARSIFY round loop.
//
// Algorithm 2 runs ceil(log2 rho) rounds of PARALLELSAMPLE over a shrinking
// edge universe. Pre-refactor each round copied the input Graph, rebuilt a
// CSRGraph from scratch, and emitted its output through a serial add_edge
// loop -- O(m) serial work and three O(m) allocations per round. RoundContext
// owns the state that instead persists ACROSS rounds:
//
//  * the SoA EdgeArena holding the current universe, mutated in place
//    (sampled edges reweight w *= 1/p, survivors compact down, drops vanish),
//  * the CSR adjacency scratch, rebuilt each round into the same buffers,
//  * the per-edge verdict buffer the classification pass writes.
//
// A round therefore allocates nothing in steady state, and the edge ids it
// works with are exactly the ranks the old serial append assigned, so the
// output is bit-identical to the pre-refactor pipeline (pinned by the
// golden-hash test in tests/integration/test_parallel_determinism.cpp).
//
// Graph objects appear only at the API boundary: RoundContext(Graph) on the
// way in, arena().to_graph() on the way out. Both the shared-memory round
// (sparsify::parallel_sample_round) and the distributed simulator's round
// (dist/dist_spanner.cpp) drive this same context through the same
// sample_core.hpp verdict/compaction core, which is what keeps the two
// pipelines bit-identical by construction. See DESIGN.md ("round-pipeline
// memory model").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_view.hpp"
#include "graph/graph.hpp"

namespace spar::sparsify {

class RoundContext {
 public:
  explicit RoundContext(const graph::Graph& g) : arena_(g) {}

  /// Adopt an already-populated arena (zero-copy entry for callers that never
  /// had a Graph -- the streaming merge-and-reduce tower concatenates level
  /// arenas and hands the result straight to the round loop).
  explicit RoundContext(graph::EdgeArena arena) : arena_(std::move(arena)) {}

  graph::EdgeArena& arena() { return arena_; }
  const graph::EdgeArena& arena() const { return arena_; }

  graph::Vertex num_vertices() const { return arena_.num_vertices(); }
  std::size_t num_edges() const { return arena_.size(); }

  /// Rebuild the CSR scratch from the arena's active slab, reusing buffers.
  /// The result is identical to CSRGraph(arena().to_graph()).
  const graph::CSRGraph& rebuild_csr() {
    csr_.rebuild(arena_.view());
    return csr_;
  }

  /// Per-edge verdict buffer (kDrop/kBundle/kSampled), reused across rounds.
  std::vector<std::uint8_t>& verdict() { return verdict_; }

 private:
  graph::EdgeArena arena_;
  graph::CSRGraph csr_;
  std::vector<std::uint8_t> verdict_;
};

/// Statistics of one in-place PARALLELSAMPLE round.
struct SampleRoundStats {
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  std::size_t bundle_edges = 0;
  std::size_t off_bundle_edges = 0;  ///< candidates for sampling
  std::size_t sampled_edges = 0;     ///< coin flips that kept the edge
  std::size_t t_used = 0;
};

}  // namespace spar::sparsify
