#include "sparsify/stream.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sparsify/round_context.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeArena;
using graph::EdgeView;
using graph::Graph;

namespace {

constexpr std::uint64_t kStreamSeedTag = 0x73747265616dULL;  // "stream"
constexpr std::uint64_t kWordsPerEdge = 3;                   // (u, v, w)

std::size_t ceil_log2(std::size_t x) {
  std::size_t bits = 0;
  while (bits < 63 && (std::size_t{1} << bits) < x) ++bits;
  return bits;
}

/// Sparsify passes an edge can take under a plan of `batches` batches with
/// `cap` resident levels: up to ceil(log2 B) carries, one flush, one spare
/// pass of headroom (the flush can land above the natural top), and -- when
/// the cap is tighter than the natural tower height, so collapses actually
/// fire -- one extra pass per collapse.
/// A collapse resets the tower to one sketch and the next needs cap more
/// batches, so collapses <= batches / cap. With cap >= ceil(log2 B) + 1 the
/// counter never overflows the cap and the budget is the pure log bound.
std::size_t planned_depth(std::size_t batches, std::size_t cap) {
  const std::size_t b = std::max<std::size_t>(batches, 1);
  const std::size_t log_depth = ceil_log2(b) + 2;
  if (cap >= ceil_log2(b) + 1) return log_depth;
  return log_depth + b / std::max<std::size_t>(cap, 1);
}

/// Per-level epsilon such that D composed (1 +- eps_level) approximations
/// stay inside (1 +- eps): (1 + eps)^(1/D) - 1. Lower side holds because
/// eps_level <= eps / D (concavity), see stream.hpp.
double per_level_epsilon(double eps, std::size_t depth) {
  return std::expm1(std::log1p(eps) / static_cast<double>(std::max<std::size_t>(depth, 1)));
}

/// Unknown-plan (bare push) schedule: the pass lifting edges to depth k
/// spends a 2^-k fraction of the log-budget. Pass depths along any edge's
/// history are strictly increasing, so the composed error stays inside
/// (1 +- eps) for any stream length (see stream.hpp).
double adaptive_pass_epsilon(double eps, std::size_t depth) {
  const int k = static_cast<int>(std::min<std::size_t>(std::max<std::size_t>(depth, 1), 60));
  return std::expm1(std::log1p(eps) * std::ldexp(1.0, -k));
}

}  // namespace

StreamSparsifier::StreamSparsifier(graph::Vertex num_vertices,
                                   const StreamOptions& options)
    : n_(num_vertices), opt_(options) {
  SPAR_CHECK(opt_.epsilon > 0.0, "stream_sparsify: epsilon must be positive");
  SPAR_CHECK(opt_.rho >= 1.0, "stream_sparsify: rho must be >= 1");
  SPAR_CHECK(opt_.batch_edges > 0, "stream_sparsify: batch_edges must be positive");
  SPAR_CHECK(opt_.max_resident_levels >= 1,
             "stream_sparsify: max_resident_levels must be >= 1");
  adaptive_budget_ = opt_.planned_batches == 0;
  pass_seed_base_ = support::mix64(opt_.seed, kStreamSeedTag);
  report_.batch_edges = opt_.batch_edges;
  if (!adaptive_budget_) {
    report_.depth_planned = planned_depth(opt_.planned_batches, opt_.max_resident_levels);
    report_.per_level_epsilon = per_level_epsilon(opt_.epsilon, report_.depth_planned);
  }
  // Bare push (planned_batches == 0): no up-front split -- each pass draws
  // from the depth-keyed geometric schedule and finish() derives the plan
  // from the real batch count.
}

std::size_t StreamSparsifier::resident_edges() const {
  std::size_t total = 0;
  for (const Level& level : levels_)
    if (level.occupied) total += level.arena.size();
  return total;
}

void StreamSparsifier::note_resident(std::size_t extra) {
  report_.peak_resident_edges =
      std::max(report_.peak_resident_edges, resident_edges() + extra);
}

void StreamSparsifier::reduce_into(std::size_t target, std::size_t top_level,
                                   const EdgeView* batch) {
  const std::size_t batch_size = batch != nullptr ? batch->size : 0;

  // Concatenate oldest-first: the highest level covers the earliest batches.
  // Moving the top level into the merge arena (instead of copying it) keeps
  // the transient overhead to one lower level at a time; each appended level
  // is released as soon as its edges are copied.
  EdgeArena merged;
  std::size_t batches_covered = 0;
  std::size_t depth = 0;
  double log_err = 0.0;
  for (std::size_t i = top_level + 1; i-- > 0;) {
    Level& level = levels_[i];
    if (!level.occupied) continue;
    if (merged.size() == 0 && merged.num_vertices() == 0) {
      merged = std::move(level.arena);
    } else {
      // Transient: merged + the level being copied + this level's original.
      note_resident(batch_size + merged.size() + level.arena.size());
      merged.append(level.arena.view());
    }
    level.arena.release();
    level.occupied = false;
    batches_covered += level.batches;
    depth = std::max(depth, level.depth);
    log_err = std::max(log_err, level.log_err);
    level.batches = 0;
    level.depth = 0;
    level.log_err = 0.0;
  }
  if (batch != nullptr) {
    if (merged.num_vertices() == 0 && merged.size() == 0) merged.resize(n_, 0);
    merged.append(*batch);
    batches_covered += 1;
  }
  // The caller's batch buffer coexists with its copy inside `merged`.
  note_resident(batch_size + merged.size());

  report_.metrics.merge_edges += merged.size();
  report_.metrics.merge_words += kWordsPerEdge * merged.size();

  // One in-place PARALLELSPARSIFY round loop at the per-level budget; the
  // pass seed is a pure function of (stream seed, pass index), and the pass
  // sequence is a pure function of the arrival sequence. Every merged edge
  // comes out at depth + 1, which keys the adaptive (unknown-plan) schedule.
  const std::size_t pass_depth = depth + 1;
  const double pass_epsilon = adaptive_budget_
                                  ? adaptive_pass_epsilon(opt_.epsilon, pass_depth)
                                  : report_.per_level_epsilon;
  SparsifyOptions sopt;
  sopt.epsilon = pass_epsilon;
  sopt.rho = opt_.rho;
  sopt.t = opt_.t;
  sopt.keep_probability = opt_.keep_probability;
  sopt.bundle_kind = opt_.bundle_kind;
  sopt.seed = support::mix64(pass_seed_base_, ++passes_);
  sopt.work = opt_.work;
  RoundContext ctx(std::move(merged));
  parallel_sparsify_rounds(ctx, sopt);

  if (target >= levels_.size()) levels_.resize(target + 1);
  Level& dst = levels_[target];
  dst.arena = std::move(ctx.arena());
  dst.batches = batches_covered;
  dst.depth = pass_depth;
  dst.log_err = log_err + std::log1p(pass_epsilon);
  dst.occupied = true;
  max_log_err_ = std::max(max_log_err_, dst.log_err);

  report_.sparsify_calls += 1;
  if (report_.sparsify_calls_per_level.size() <= target)
    report_.sparsify_calls_per_level.resize(target + 1, 0);
  report_.sparsify_calls_per_level[target] += 1;
  report_.levels_used = std::max(report_.levels_used, target + 1);
  report_.depth_used = std::max(report_.depth_used, dst.depth);
}

void StreamSparsifier::ingest(const EdgeView& batch, EdgeArena* owned) {
  SPAR_CHECK(!finished_, "stream_sparsify: push_batch after finish");
  SPAR_CHECK(batch.num_vertices == n_,
             "stream_sparsify: batch vertex count mismatch");
  // A planned budget is split for exactly planned_batches batches; pushing
  // more would deepen the tower past depth_planned and silently void the
  // composed (1 +- eps) guarantee. Overflow is a caller bug, not a rescale.
  SPAR_CHECK(adaptive_budget_ || report_.batches < opt_.planned_batches,
             "stream_sparsify: more batches pushed than planned_batches = " +
                 std::to_string(opt_.planned_batches) +
                 " (use planned_batches = 0 for unknown-length streams)");

  report_.batches += 1;
  report_.metrics.edges_ingested += batch.size;
  report_.metrics.words_ingested += kWordsPerEdge * batch.size;
  note_resident(batch.size);

  // Binary-counter step with multiway carry: j = first free level; the batch
  // plus levels 0..j-1 (together <= 2^j batches) become the level-j sketch in
  // one pass. j == 0 lands the batch raw -- moved in when the tower owns the
  // buffer, copied otherwise.
  std::size_t j = 0;
  while (j < levels_.size() && levels_[j].occupied) ++j;
  if (j == 0) {
    if (levels_.empty()) levels_.resize(1);
    Level& slot = levels_[0];
    if (owned != nullptr) {
      slot.arena = std::move(*owned);  // zero-copy landing; `batch` is dead now
    } else {
      slot.arena.resize(n_, 0);
      slot.arena.append(batch);
      note_resident(batch.size);  // caller's buffer + its level-0 copy
    }
    slot.batches = 1;
    slot.depth = 0;
    slot.occupied = true;
    report_.levels_used = std::max<std::size_t>(report_.levels_used, 1);
  } else {
    reduce_into(j, j - 1, &batch);
    if (owned != nullptr) owned->release();
  }

  // Resident-level cap: collapse the whole tower into one sketch above the
  // current top. Coverage stays <= 2^(top+1), so the level invariant holds,
  // and the collapse is one pass for every participating edge.
  std::size_t occupied = 0, top = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].occupied) continue;
    ++occupied;
    top = i;
  }
  if (occupied > opt_.max_resident_levels) reduce_into(top + 1, top, nullptr);
}

void StreamSparsifier::push_batch(const EdgeView& batch) { ingest(batch, nullptr); }

void StreamSparsifier::push_batch(EdgeArena&& batch) {
  ingest(batch.view(), &batch);
}

StreamResult StreamSparsifier::finish() {
  SPAR_CHECK(!finished_, "stream_sparsify: finish called twice");
  finished_ = true;

  StreamResult result;
  std::size_t top = levels_.size();
  while (top > 0 && !levels_[top - 1].occupied) --top;
  if (top == 0) {
    result.sparsifier = Graph(n_);  // empty stream
  } else {
    // Final flush: concatenate every surviving level and reduce once more, so
    // the output gets the same compression treatment regardless of whether
    // the batch count was a power of two.
    reduce_into(top, top - 1, nullptr);
    result.sparsifier = levels_[top].arena.to_graph();
    levels_[top].arena.release();
    levels_[top].occupied = false;
  }
  report_.final_edges = result.sparsifier.num_edges();
  if (adaptive_budget_) {
    // The plan the run would have gotten had the batch count been known;
    // the tower mechanics bound depth_used by it regardless of the budget
    // schedule (same carries/flush/collapse counting as the planned mode).
    report_.depth_planned =
        planned_depth(std::max<std::size_t>(report_.batches, 1),
                      opt_.max_resident_levels);
    report_.per_level_epsilon =
        report_.depth_used > 0
            ? adaptive_pass_epsilon(opt_.epsilon, report_.depth_used)
            : opt_.epsilon;
  }
  // Exact composed budget along the deepest merge chain (== the uniform
  // depth_used * log1p(per-pass eps) in planned mode).
  report_.epsilon_budget_used = std::expm1(max_log_err_);
  result.report = report_;
  return result;
}

StreamResult stream_sparsify(const EdgeView& edges, const StreamOptions& options) {
  StreamOptions opt = options;
  if (opt.planned_batches == 0)
    opt.planned_batches =
        std::max<std::size_t>(1, (edges.size + opt.batch_edges - 1) / opt.batch_edges);
  StreamSparsifier tower(edges.num_vertices, opt);
  for (std::size_t at = 0; at < edges.size; at += opt.batch_edges)
    tower.push_batch(edges.slab(at, std::min(edges.size, at + opt.batch_edges)));
  return tower.finish();
}

StreamResult stream_sparsify(graph::EdgeStream& stream, const StreamOptions& options) {
  StreamOptions opt = options;
  if (opt.planned_batches == 0)
    opt.planned_batches = std::max<std::size_t>(
        1, (stream.num_edges() + opt.batch_edges - 1) / opt.batch_edges);
  StreamSparsifier tower(stream.num_vertices(), opt);
  for (;;) {
    EdgeArena batch;
    if (stream.next_batch(batch, opt.batch_edges) == 0) break;
    tower.push_batch(std::move(batch));  // tower adopts: one resident copy
  }
  return tower.finish();
}

StreamResult stream_sparsify_file(const std::string& path, const StreamOptions& options) {
  const auto stream = graph::open_edge_stream(path);
  return stream_sparsify(*stream, options);
}

}  // namespace spar::sparsify
