#include "sparsify/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeId;
using graph::Graph;
using graph::Vertex;

IncrementalResult incremental_sparsify(const Graph& g,
                                       const IncrementalOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "incremental_sparsify: epsilon must be positive");
  const Vertex n = g.num_vertices();
  SPAR_CHECK(n >= 2, "incremental_sparsify: need at least 2 vertices");

  IncrementalResult result;

  // 1. Low-stretch spanning tree.
  spanner::LowStretchTreeOptions topt = options.tree;
  if (topt.seed == spanner::LowStretchTreeOptions{}.seed)
    topt.seed = support::mix64(options.seed, 0x17ee5ULL);
  const std::vector<EdgeId> tree_ids = spanner::low_stretch_tree_ids(g, topt);
  SPAR_CHECK(tree_ids.size() == static_cast<std::size_t>(n) - 1,
             "incremental_sparsify: input graph must be connected");
  std::vector<bool> in_tree(g.num_edges(), false);
  for (EdgeId id : tree_ids) in_tree[id] = true;
  result.tree_edges = tree_ids.size();

  // 2. Tree stretches of off-tree edges: group queries per source vertex,
  // one tree Dijkstra covers all queries from that source.
  const Graph tree = g.filtered(in_tree);
  const graph::CSRGraph tree_csr(tree);
  std::vector<EdgeId> off_tree;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (!in_tree[id]) off_tree.push_back(id);
  result.off_tree_edges = off_tree.size();

  std::sort(off_tree.begin(), off_tree.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).u < g.edge(b).u;
  });
  std::vector<double> stretch(off_tree.size(), 0.0);
  {
    std::size_t i = 0;
    while (i < off_tree.size()) {
      const Vertex source = g.edge(off_tree[i]).u;
      const auto dist = graph::dijkstra(tree_csr, source);
      while (i < off_tree.size() && g.edge(off_tree[i]).u == source) {
        const auto& e = g.edge(off_tree[i]);
        SPAR_DASSERT(dist[e.v] != graph::kInfDist);
        stretch[i] = e.w * dist[e.v];
        result.total_stretch += stretch[i];
        ++i;
      }
    }
  }

  // 3. Oversample off-tree edges with p_e ~ st_T(e).
  Graph sparsifier(n);
  for (EdgeId id : tree_ids)
    sparsifier.add_edge(g.edge(id).u, g.edge(id).v, g.edge(id).w);

  if (!off_tree.empty() && result.total_stretch > 0.0) {
    const std::size_t q =
        options.num_samples != 0
            ? options.num_samples
            : static_cast<std::size_t>(std::ceil(
                  options.sample_factor * result.total_stretch *
                  std::log2(std::max<double>(n, 2.0)) /
                  (options.epsilon * options.epsilon)));
    result.samples_drawn = q;

    std::vector<double> cumulative(off_tree.size());
    double running = 0.0;
    for (std::size_t i = 0; i < off_tree.size(); ++i) {
      running += stretch[i] / result.total_stretch;
      cumulative[i] = running;
    }
    cumulative.back() = 1.0;

    std::vector<double> accumulated(off_tree.size(), 0.0);
    support::Rng rng(support::mix64(options.seed, 0x5a3bULL));
    for (std::size_t s = 0; s < q; ++s) {
      const double u = rng.uniform();
      const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
      const auto idx = static_cast<std::size_t>(it - cumulative.begin());
      const double p = stretch[idx] / result.total_stretch;
      accumulated[idx] += g.edge(off_tree[idx]).w / (static_cast<double>(q) * p);
    }
    for (std::size_t i = 0; i < off_tree.size(); ++i) {
      if (accumulated[i] > 0.0) {
        const auto& e = g.edge(off_tree[i]);
        sparsifier.add_edge(e.u, e.v, accumulated[i]);
        ++result.distinct_sampled;
      }
    }
  }

  result.sparsifier = std::move(sparsifier);
  return result;
}

}  // namespace spar::sparsify
