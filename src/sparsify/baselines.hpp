// Comparator sparsifiers for the E6 experiment (Remark 4 positioning):
//
//  * uniform_sparsify       - the null hypothesis: keep every edge with
//    probability p and reweight by 1/p. Fine on expanders, loses the
//    dumbbell bridge with probability 1-p, i.e. no spectral guarantee.
//  * spielman_srivastava    - the standard strong baseline: q independent
//    samples from p_e ~ w_e R_e (effective-resistance / leverage-score
//    sampling), each adding w_e/(q p_e) of weight; duplicates coalesce.
//    Needs effective resistances, i.e. a solver (exact dense for small n,
//    JL + CG otherwise) -- exactly the dependency the paper's solve-free
//    scheme removes.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "resistance/effective_resistance.hpp"

namespace spar::sparsify {

/// Keep each edge independently with probability `keep_probability` at
/// weight w/p.
graph::Graph uniform_sparsify(const graph::Graph& g, double keep_probability,
                              std::uint64_t seed);

enum class ResistanceMode {
  kExactDense,   ///< O(n^3) pseudoinverse; ground truth, small n
  kApproxSolver, ///< Spielman-Srivastava JL + CG estimates
};

struct SpielmanSrivastavaOptions {
  double epsilon = 0.5;
  /// Number of samples; 0 = auto: ceil(sample_factor * n log2(n) / eps^2).
  std::size_t num_samples = 0;
  double sample_factor = 4.0;
  ResistanceMode resistance_mode = ResistanceMode::kApproxSolver;
  resistance::ApproxResistanceOptions resistance_options;
  std::uint64_t seed = 1;
};

struct SSResult {
  graph::Graph sparsifier;
  std::size_t samples_drawn = 0;
  std::size_t distinct_edges = 0;
};

SSResult spielman_srivastava(const graph::Graph& g,
                             const SpielmanSrivastavaOptions& options = {});

}  // namespace spar::sparsify
