// Algorithm 2 (PARALLELSPARSIFY) of the paper: ceil(log2 rho) rounds of
// PARALLELSAMPLE at per-round accuracy eps / ceil(log2 rho).
//
// (The paper's line 3 calls PARALLELSPARSIFY recursively -- an evident typo
// for PARALLELSAMPLE; the proof of Theorem 5 iterates PARALLELSAMPLE and so
// do we. See DESIGN.md.)
//
// Theorem 5: the result is a (1 +- eps) approximation w.h.p. with
// O(n log^3 n log^3 rho / eps^2 + m/rho) edges after
// O(m log^2 n log^3 rho / eps^2) work; off-bundle mass halves per round so
// the first round dominates the work.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsify/sample.hpp"

namespace spar::sparsify {

struct SparsifyOptions {
  double epsilon = 0.5;
  double rho = 4.0;  ///< target sparsification factor (paper's parameter)
  /// Per-round bundle width; 0 = the paper's theoretical value for the
  /// per-round eps. Practical runs set this to a small constant.
  std::size_t t = 0;
  double keep_probability = 0.25;
  BundleKind bundle_kind = BundleKind::kSpanner;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
  /// Stop early once a round has no off-bundle edges left (the bundle is the
  /// whole graph and further rounds are identities). The paper iterates a
  /// fixed count; early exit changes nothing in the output.
  bool stop_when_saturated = true;
};

struct RoundStats {
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  std::size_t bundle_edges = 0;
  std::size_t sampled_edges = 0;
  std::size_t t_used = 0;
};

struct SparsifyResult {
  graph::Graph sparsifier;
  std::vector<RoundStats> rounds;
  std::size_t rounds_planned = 0;
  double per_round_epsilon = 0.0;
};

/// Round statistics of an in-place parallel_sparsify_rounds run (everything
/// SparsifyResult carries except the materialized Graph).
struct SparsifyRoundsResult {
  std::vector<RoundStats> rounds;
  std::size_t rounds_planned = 0;
  double per_round_epsilon = 0.0;
};

/// The PARALLELSPARSIFY round loop executed in place on an existing context:
/// ctx's arena shrinks to the sparsifier, no Graph is materialized. This is
/// the shared core behind parallel_sparsify(Graph) and the streaming
/// merge-and-reduce driver (stream.hpp), so both emit bit-identical edge
/// universes for the same (input, options).
SparsifyRoundsResult parallel_sparsify_rounds(RoundContext& ctx,
                                              const SparsifyOptions& options);

SparsifyResult parallel_sparsify(const graph::Graph& g, const SparsifyOptions& options);

}  // namespace spar::sparsify
