#include "sparsify/presets.hpp"

#include <cmath>

namespace spar::sparsify {

std::size_t theory_applicability_threshold(std::size_t n, double epsilon) {
  const double log_n = std::log2(std::max<double>(n, 2.0));
  return static_cast<std::size_t>(
      std::ceil(double(theory_bundle_width(n, epsilon)) * double(n) * log_n));
}

SampleOptions make_sample_options(Preset preset, double epsilon, std::uint64_t seed,
                                  std::size_t practical_t) {
  SampleOptions opt;
  opt.epsilon = epsilon;
  opt.seed = seed;
  opt.t = preset == Preset::kTheory ? 0 : practical_t;
  return opt;
}

SparsifyOptions make_sparsify_options(Preset preset, double epsilon, double rho,
                                      std::uint64_t seed, std::size_t practical_t) {
  SparsifyOptions opt;
  opt.epsilon = epsilon;
  opt.rho = rho;
  opt.seed = seed;
  opt.t = preset == Preset::kTheory ? 0 : practical_t;
  return opt;
}

}  // namespace spar::sparsify
