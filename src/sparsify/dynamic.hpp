// Fully dynamic sparsification: a certified (1 +- eps) sparsifier maintained
// under a mixed insert/delete edge-update stream (graph/update_stream.hpp).
//
// The insert-only streaming tower (stream.hpp) cannot delete: a sketch keeps
// a sampled, reweighted subset, so the edge a delete names may be gone or may
// carry w/p. DynamicSparsifier therefore keeps, per tower level, BOTH
//
//  * the EXACT live-edge segment of that level (an EdgeArena of original
//    weights) -- deletions compact it exactly, and
//  * a cached SKETCH of the segment (one parallel_sparsify_rounds pass over
//    the exact edges), which is what checkpoints serve. Segments a pass
//    could not compress -- smaller than sketch_min_edges, or sparser than
//    sketch_density edges per (t x touched vertex), where the t-spanner
//    bundle would keep everything anyway -- serve their exact edges and
//    carry zero error.
//
// Updates batch through a guttering buffer (GraphStreamingCC's ingest shape:
// DynamicOptions::batch_updates per tower batch, so batch boundaries are a
// pure function of the update sequence, independent of arrival chunking).
// Applying a batch:
//
//  1. Cancellation scan: an insert-then-delete pair inside the batch
//     annihilates before touching the tower (the turnstile contract makes
//     this exact). Duplicate inserts and deletes of absent edges are
//     diagnosed spar::Error.
//  2. Deletes route through the edge directory (packed (u,v) key -> weight +
//     owning level; lookups only, never iterated) to their levels: the exact
//     segment and any cached sketch are compacted, removing those keys.
//  3. Inserts land as a NEW level in the first free slot. No eager merging:
//     the union of per-level sparsifiers over disjoint edge sets composes
//     its error as a MAX across levels, not a sum, so merging untouched
//     levels would only force checkpoints to re-reduce edges that never
//     changed -- the tower merges only when the resident-level cap
//     (max_resident_levels) is exceeded or a rebuild collapses it. Sketches
//     are built LAZILY at checkpoint, so a level that is deleted or merged
//     away before ever serving costs no sparsify pass, and a checkpoint's
//     cost is proportional to the edges CHANGED since the last serving, not
//     to the live graph.
//
// Staleness/eps budget. A sketch computed before some of its segment's edges
// were deleted is STALE: compacting the deleted keys out of it leaves the
// survivors' sampled weights calibrated for the old segment. The distortion
// is charged as log(1 + 2r), r = deleted_weight / weight_at_reduce -- the
// deleted fraction of the segment's total weight at sketch time, doubled to
// cover both pencil sides. The log-error budget log(1 + eps) splits
//
//     (1 - s)/2  level pass  +  s  staleness  +  (1 - s)/2  checkpoint pass
//
// (s = staleness_eps_share), so every pass runs at eps_pass =
// (1 + eps)^((1 - s)/2) - 1, and a level whose charge would exceed the
// staleness share -- or whose deleted fraction exceeds max_staleness -- drops
// its sketch and is re-reduced from its (exact, already-compacted) segment at
// the next checkpoint. Composed error along any edge is therefore at most
// one level pass + the staleness allowance + (when compact_checkpoints) one
// checkpoint pass, i.e. certified_epsilon <= eps by construction, for any
// update sequence; the checkpoint share is headroom otherwise. When
// one batch dirties segments holding >= rebuild_fraction of the live edges,
// patching level by level is pointless and the tower collapses into a single
// level (stats().rebuilds) -- the incremental-vs-rebuild crossover E17
// measures.
//
// Determinism: batch boundaries, carry targets, and compactions are pure
// functions of (update sequence, options); every sparsify pass runs the
// counter-based per-edge coins at seed mix64(base, pass index); hash
// containers are used for lookup only, never iterated. Checkpoints are
// bit-identical across thread counts and the OpenMP-off build (golden-hash
// tests in tests/sparsify/test_dynamic.cpp); against a from-scratch
// parallel_sparsify oracle of the surviving edges they certify within the
// same eps (tests/sparsify/test_dynamic_oracle.cpp). See DESIGN.md
// ("fully dynamic sparsification").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"
#include "graph/update_stream.hpp"
#include "sparsify/sparsify.hpp"

namespace spar::sparsify {

struct DynamicOptions {
  double epsilon = 0.5;  ///< end-to-end certification target
  double rho = 4.0;      ///< per-pass sparsification factor
  std::size_t t = 3;     ///< per-round bundle width of each pass; 0 = theory
  double keep_probability = 0.25;
  BundleKind bundle_kind = BundleKind::kSpanner;
  std::uint64_t seed = 1;
  /// Updates gathered in the gutter before one tower batch is applied; the
  /// unit that makes batch boundaries arrival-chunking-invariant.
  std::size_t batch_updates = std::size_t{1} << 16;
  /// Drop a level's sketch once the deleted fraction of the segment weight it
  /// was computed over exceeds this (re-reduced at the next checkpoint).
  double max_staleness = 0.25;
  /// Fraction s of the log-eps budget reserved for staleness; the remainder
  /// splits evenly between the level pass and the checkpoint pass.
  double staleness_eps_share = 0.25;
  /// Collapse the whole tower instead of patching levels when one batch
  /// leaves >= this fraction of the live edges in sketchless segments.
  double rebuild_fraction = 0.5;
  /// Segments below this size serve their exact edges (zero error, no pass).
  std::size_t sketch_min_edges = 4096;
  /// A segment is only worth a sparsify pass when it is denser than this
  /// many edges per (t x touched vertex): below that the t-spanner bundle
  /// would keep essentially everything, so the pass is pure overhead and the
  /// segment serves its exact edges instead (zero error). This is what keeps
  /// incremental checkpoints cheap on bounded-degree families (E17's grid).
  double sketch_density = 2.0;
  /// Collapse the tower into one level once more than this many levels are
  /// occupied (bounds per-checkpoint concatenation overhead; error does not
  /// grow with level count, it composes as a max over levels).
  std::size_t max_resident_levels = 16;
  /// Run one final reduce pass over the concatenated serving views at every
  /// checkpoint. Off (the default), a checkpoint returns the UNION of the
  /// per-level serving views -- itself a certified sparsifier, since the
  /// approximation relation composes over the levels' disjoint edge sets --
  /// and costs only the dirty levels' re-reduces, which is what makes
  /// incremental maintenance beat a from-scratch rebuild even on inputs the
  /// bundle covers entirely (E17's grid workload). On, the output compacts
  /// to a single sketch at the cost of one pass over the union.
  bool compact_checkpoints = false;
  support::WorkCounter* work = nullptr;
};

/// Wire-style accounting, mirroring StreamMetrics: an update is a 3-word
/// message (endpoints + weight/op word), reduces are the words the tower
/// moves through sparsify passes.
struct DynMetrics {
  std::uint64_t updates_ingested = 0;
  std::uint64_t words_ingested = 0;  ///< 3 per update
  std::uint64_t reduce_edges = 0;    ///< edges entering sparsify passes
  std::uint64_t reduce_words = 0;    ///< 3 per reduced edge
};

struct DynStats {
  std::uint64_t inserts_applied = 0;   ///< tower inserts (post-cancellation)
  std::uint64_t deletes_applied = 0;   ///< tower deletes (post-cancellation)
  std::uint64_t cancelled_pairs = 0;   ///< insert+delete annihilated in-batch
  std::size_t batches = 0;             ///< gutter flushes into the tower
  std::size_t levels_dirtied = 0;      ///< level visits by a delete compaction
  std::size_t carry_reduces = 0;       ///< sketch passes after carry/collapse
  std::size_t re_reduces = 0;          ///< sketch passes forced by staleness
  std::size_t rebuilds = 0;            ///< full tower collapses
  std::size_t checkpoints = 0;
  std::size_t live_edges = 0;          ///< current surviving edge count
  std::size_t peak_resident_edges = 0; ///< max exact+sketch+gutter held
  std::size_t levels_used = 0;         ///< highest occupied level + 1, over run
  double per_pass_epsilon = 0.0;       ///< eps_pass every pass runs at
  double stale_epsilon_budget = 0.0;   ///< eps-equivalent staleness allowance
  double max_composed_epsilon = 0.0;   ///< worst certified bound returned
  DynMetrics metrics;
};

/// One serving of the maintained sparsifier: the union of the per-level
/// serving views (one final reduce pass over it when compact_checkpoints),
/// plus the certified composed error bound.
struct DynCheckpoint {
  graph::Graph sparsifier;
  double certified_epsilon = 0.0;
};

class DynamicSparsifier {
 public:
  DynamicSparsifier(graph::Vertex num_vertices, const DynamicOptions& options);

  /// Queue one update; the gutter flushes into the tower every batch_updates.
  void push_insert(graph::Vertex u, graph::Vertex v, double w);
  void push_delete(graph::Vertex u, graph::Vertex v);
  /// Queue a whole batch (same gutter boundaries as per-update pushes).
  void apply(const graph::UpdateBatch& updates);

  /// Apply a partial gutter now (checkpoint() and live_graph() call this).
  void flush();

  /// Serve the sparsifier: flushes, lazily (re-)reduces dirty levels --
  /// collapsing the tower first when they hold >= rebuild_fraction of the
  /// live edges -- then returns the union of the per-level serving views
  /// (reduced by one more pass when compact_checkpoints). Non-destructive:
  /// the tower keeps its segments and sketches, so a checkpoint over a clean
  /// tower costs only the concatenation.
  DynCheckpoint checkpoint();

  /// The exact surviving edge multiset (flushes first). Oracle input.
  graph::Graph live_graph();

  /// Number of currently live edges.
  std::size_t live_edges() const { return directory_.size(); }

  /// Force a full collapse: every live edge into one exact segment.
  void rebuild();

  const DynStats& stats() const { return stats_; }
  const DynamicOptions& options() const { return opt_; }

 private:
  /// Why a level has no valid sketch (selects the stats counter its next
  /// sketch pass increments).
  enum class Dirty : std::uint8_t { kNone, kCarry, kStale };

  struct Level {
    graph::EdgeArena exact;   ///< live edges of this level, original weights
    graph::EdgeArena sketch;  ///< cached reduce of `exact`; valid iff has_sketch
    bool occupied = false;
    bool has_sketch = false;
    Dirty dirty = Dirty::kNone;
    double weight_at_reduce = 0.0;  ///< exact total weight when sketch was built
    double deleted_weight = 0.0;    ///< weight deleted from it since
    std::size_t batches = 0;        ///< tower batches this level covers
  };

  struct DirEntry {
    double weight = 0.0;       ///< original insert weight
    std::uint32_t level = 0;   ///< owning tower level
  };

  void apply_batch(const graph::UpdateBatch& batch);
  /// Land `batch` (may be empty) as a new level in the first free slot,
  /// collapsing the tower first if the resident-level cap is exceeded.
  void carry_inserts(graph::EdgeArena&& batch, std::size_t batch_count);
  /// Collapse every occupied level into one exact segment (rebuilds++).
  void collapse_tower();
  /// One parallel_sparsify_rounds pass over `level`'s exact segment.
  void build_sketch(Level& level);
  /// Would a pass over this segment actually compress it? (Size and density
  /// gates: small or bundle-covered segments serve exact instead.)
  bool worth_sketching(const Level& level) const;
  /// Point the directory entries of every edge in `arena` at `level`.
  void relevel(const graph::EdgeArena& arena, std::size_t level);
  double staleness_charge(const Level& level) const;
  std::size_t resident_edges() const;
  void note_resident();
  SparsifyOptions pass_options();

  graph::Vertex n_ = 0;
  DynamicOptions opt_;
  double log_budget_ = 0.0;    ///< log(1 + epsilon)
  double stale_budget_ = 0.0;  ///< staleness share of it
  double eps_pass_ = 0.0;
  std::uint64_t pass_seed_base_ = 0;
  std::size_t passes_ = 0;
  graph::UpdateBatch gutter_;
  std::vector<Level> levels_;
  std::unordered_map<std::uint64_t, DirEntry> directory_;
  DynStats stats_;
};

struct DynResult {
  graph::Graph sparsifier;
  double certified_epsilon = 0.0;
  DynStats stats;
};

/// Drive a whole update stream through a DynamicSparsifier and serve one
/// final checkpoint. What `sparsify_tool --updates` runs.
DynResult dynamic_sparsify(graph::UpdateStream& updates, const DynamicOptions& options);

}  // namespace spar::sparsify
