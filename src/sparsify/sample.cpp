#include "sparsify/sample.hpp"

#include <cmath>

#include "sparsify/sample_core.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeId;
using graph::Graph;

namespace detail {

std::size_t apply_sample_verdicts(RoundContext& ctx,
                                  const std::vector<bool>& in_bundle,
                                  double keep_probability,
                                  std::uint64_t coin_seed_value) {
  namespace par = support::par;
  const std::size_t m = ctx.num_edges();
  const double inv_p = 1.0 / keep_probability;

  // One independent coin per off-bundle edge; pure function of
  // (seed, edge id), so the decision pass runs edge-parallel. Writing the
  // verdicts and counting the sampled edges share one chunked pass; the
  // chunk-ordered integer sum is thread-count independent.
  std::vector<std::uint8_t>& verdict = ctx.verdict();
  verdict.assign(m, kVerdictDrop);
  const auto sampled = static_cast<std::size_t>(par::parallel_reduce(
      0, static_cast<std::int64_t>(m), std::int64_t{0},
      [&](std::int64_t cb, std::int64_t ce) {
        std::int64_t count = 0;
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto id = static_cast<std::size_t>(i);
          if (in_bundle[id]) {
            verdict[id] = kVerdictBundle;
          } else if (keeps_edge(coin_seed_value, static_cast<EdgeId>(id),
                                keep_probability)) {
            verdict[id] = kVerdictSampled;
            ++count;
          }
        }
        return count;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; },
      {.enable = m > (1u << 12)}));

  // Survivors compact in index order; sampled edges reweight by 1/p as they
  // land. Same ids and same weights the serial append produced.
  graph::EdgeArena& arena = ctx.arena();
  arena.compact(
      [&](std::size_t i) { return verdict[i] != kVerdictDrop; },
      [&](std::size_t i) {
        return verdict[i] == kVerdictSampled ? arena.weight(i) * inv_p
                                             : arena.weight(i);
      });
  return sampled;
}

}  // namespace detail

std::size_t theory_bundle_width(std::size_t n, double epsilon) {
  SPAR_CHECK(epsilon > 0.0, "theory_bundle_width: epsilon must be positive");
  const double log_n = std::log2(std::max<double>(n, 2.0));
  return static_cast<std::size_t>(std::ceil(24.0 * log_n * log_n / (epsilon * epsilon)));
}

SampleRoundStats parallel_sample_round(RoundContext& ctx,
                                       const SampleOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "parallel_sample: keep_probability must be in (0, 1]");

  SampleRoundStats stats;
  stats.edges_before = ctx.num_edges();
  stats.t_used = options.t != 0
                     ? options.t
                     : theory_bundle_width(ctx.num_vertices(), options.epsilon);

  spanner::BundleOptions bopt;
  bopt.t = stats.t_used;
  bopt.seed = detail::bundle_seed(options.seed);
  bopt.work = options.work;
  const spanner::Bundle bundle =
      options.bundle_kind == BundleKind::kSpanner
          ? spanner::t_bundle(ctx.num_edges(), ctx.rebuild_csr(), bopt)
          // Tree bundles build low-stretch trees of the remainder; that path
          // works on Graphs, so convert at the boundary (trees are the cold
          // variant -- Remark 2).
          : spanner::tree_bundle(ctx.arena().to_graph(), bopt);
  stats.bundle_edges = bundle.bundle_edge_count;
  stats.off_bundle_edges = bundle.off_bundle_edge_count;

  support::WorkScope work(options.work);
  work.add(stats.edges_before);
  stats.sampled_edges = detail::apply_sample_verdicts(
      ctx, bundle.in_bundle, options.keep_probability,
      detail::coin_seed(options.seed));
  stats.edges_after = ctx.num_edges();
  return stats;
}

SampleResult parallel_sample(const Graph& g, const SampleOptions& options) {
  RoundContext ctx(g);
  const SampleRoundStats stats = parallel_sample_round(ctx, options);
  SampleResult result;
  result.sparsifier = ctx.arena().to_graph();
  result.bundle_edges = stats.bundle_edges;
  result.off_bundle_edges = stats.off_bundle_edges;
  result.sampled_edges = stats.sampled_edges;
  result.t_used = stats.t_used;
  return result;
}

}  // namespace spar::sparsify
