#include "sparsify/sample.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeId;
using graph::Graph;

std::size_t theory_bundle_width(std::size_t n, double epsilon) {
  SPAR_CHECK(epsilon > 0.0, "theory_bundle_width: epsilon must be positive");
  const double log_n = std::log2(std::max<double>(n, 2.0));
  return static_cast<std::size_t>(std::ceil(24.0 * log_n * log_n / (epsilon * epsilon)));
}

SampleResult parallel_sample(const Graph& g, const SampleOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "parallel_sample: keep_probability must be in (0, 1]");

  SampleResult result;
  result.t_used = options.t != 0
                      ? options.t
                      : theory_bundle_width(g.num_vertices(), options.epsilon);

  spanner::BundleOptions bopt;
  bopt.t = result.t_used;
  bopt.seed = support::mix64(options.seed, 0x6b756e646cULL);  // "bundl"
  bopt.work = options.work;
  const spanner::Bundle bundle = options.bundle_kind == BundleKind::kSpanner
                                     ? spanner::t_bundle(g, bopt)
                                     : spanner::tree_bundle(g, bopt);
  result.bundle_edges = bundle.bundle_edge_count;
  result.off_bundle_edges = bundle.off_bundle_edge_count;

  // G~ := H, then one independent coin per off-bundle edge. The coin is a
  // pure function of (seed, edge id): thread-count independent.
  Graph sparsifier(g.num_vertices());
  sparsifier.reserve(bundle.bundle_edge_count + bundle.off_bundle_edge_count / 2);
  const auto edges = g.edges();
  const double inv_p = 1.0 / options.keep_probability;
  const std::uint64_t coin_seed = support::mix64(options.seed, 0x636f696eULL);  // "coin"
  support::WorkScope work(options.work);
  work.add(edges.size());
  for (EdgeId id = 0; id < edges.size(); ++id) {
    if (bundle.in_bundle[id]) {
      sparsifier.add_edge(edges[id].u, edges[id].v, edges[id].w);
    } else if (support::stream_uniform(coin_seed, id) < options.keep_probability) {
      sparsifier.add_edge(edges[id].u, edges[id].v, edges[id].w * inv_p);
      ++result.sampled_edges;
    }
  }
  result.sparsifier = std::move(sparsifier);
  return result;
}

}  // namespace spar::sparsify
