#include "sparsify/sample.hpp"

#include <cmath>

#include "sparsify/sample_core.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeId;
using graph::Graph;

namespace detail {

Graph assemble_sparsifier(const Graph& g, const std::vector<bool>& in_bundle,
                          double keep_probability, std::uint64_t coin_seed_value,
                          std::size_t* sampled_edges) {
  const auto edges = g.edges();
  const double inv_p = 1.0 / keep_probability;

  // One independent coin per off-bundle edge; pure function of
  // (seed, edge id), so the decision pass runs edge-parallel and only the
  // append is serial.
  enum : std::uint8_t { kDrop = 0, kBundle = 1, kSampled = 2 };
  std::vector<std::uint8_t> verdict(edges.size(), kDrop);
  support::par::parallel_for(
      0, static_cast<std::int64_t>(edges.size()),
      [&](std::int64_t id) {
        if (in_bundle[static_cast<std::size_t>(id)]) {
          verdict[static_cast<std::size_t>(id)] = kBundle;
        } else if (keeps_edge(coin_seed_value, static_cast<EdgeId>(id),
                              keep_probability)) {
          verdict[static_cast<std::size_t>(id)] = kSampled;
        }
      },
      {.enable = edges.size() > (1u << 12)});

  Graph sparsifier(g.num_vertices());
  sparsifier.reserve(edges.size() / 2);
  std::size_t sampled = 0;
  for (EdgeId id = 0; id < edges.size(); ++id) {
    if (verdict[id] == kBundle) {
      sparsifier.add_edge(edges[id].u, edges[id].v, edges[id].w);
    } else if (verdict[id] == kSampled) {
      sparsifier.add_edge(edges[id].u, edges[id].v, edges[id].w * inv_p);
      ++sampled;
    }
  }
  *sampled_edges = sampled;
  return sparsifier;
}

}  // namespace detail

std::size_t theory_bundle_width(std::size_t n, double epsilon) {
  SPAR_CHECK(epsilon > 0.0, "theory_bundle_width: epsilon must be positive");
  const double log_n = std::log2(std::max<double>(n, 2.0));
  return static_cast<std::size_t>(std::ceil(24.0 * log_n * log_n / (epsilon * epsilon)));
}

SampleResult parallel_sample(const Graph& g, const SampleOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "parallel_sample: keep_probability must be in (0, 1]");

  SampleResult result;
  result.t_used = options.t != 0
                      ? options.t
                      : theory_bundle_width(g.num_vertices(), options.epsilon);

  spanner::BundleOptions bopt;
  bopt.t = result.t_used;
  bopt.seed = detail::bundle_seed(options.seed);
  bopt.work = options.work;
  const spanner::Bundle bundle = options.bundle_kind == BundleKind::kSpanner
                                     ? spanner::t_bundle(g, bopt)
                                     : spanner::tree_bundle(g, bopt);
  result.bundle_edges = bundle.bundle_edge_count;
  result.off_bundle_edges = bundle.off_bundle_edge_count;

  support::WorkScope work(options.work);
  work.add(g.num_edges());
  result.sparsifier = detail::assemble_sparsifier(
      g, bundle.in_bundle, options.keep_probability,
      detail::coin_seed(options.seed), &result.sampled_edges);
  return result;
}

}  // namespace spar::sparsify
