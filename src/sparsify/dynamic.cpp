#include "sparsify/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "sparsify/round_context.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

namespace {

constexpr std::uint64_t kDynSeedTag = 0x64796e616d6963ULL;  // "dynamic"

std::uint64_t edge_key(graph::Vertex a, graph::Vertex b) {
  const graph::Vertex lo = a < b ? a : b;
  const graph::Vertex hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::string edge_name(std::uint64_t key) {
  return "{" + std::to_string(key >> 32) + ", " +
         std::to_string(key & 0xffffffffULL) + "}";
}

}  // namespace

DynamicSparsifier::DynamicSparsifier(graph::Vertex num_vertices,
                                     const DynamicOptions& options)
    : n_(num_vertices), opt_(options) {
  SPAR_CHECK(n_ > 0, "dynamic: need at least one vertex");
  SPAR_CHECK(opt_.epsilon > 0.0, "dynamic: epsilon must be positive");
  SPAR_CHECK(opt_.rho >= 1.0, "dynamic: rho must be >= 1");
  SPAR_CHECK(opt_.keep_probability > 0.0 && opt_.keep_probability <= 1.0,
             "dynamic: keep_probability must be in (0, 1]");
  SPAR_CHECK(opt_.batch_updates > 0, "dynamic: batch_updates must be positive");
  SPAR_CHECK(opt_.max_staleness > 0.0, "dynamic: max_staleness must be positive");
  SPAR_CHECK(opt_.staleness_eps_share > 0.0 && opt_.staleness_eps_share < 1.0,
             "dynamic: staleness_eps_share must be in (0, 1)");
  SPAR_CHECK(opt_.rebuild_fraction > 0.0 && opt_.rebuild_fraction <= 1.0,
             "dynamic: rebuild_fraction must be in (0, 1]");
  SPAR_CHECK(opt_.max_resident_levels >= 1,
             "dynamic: max_resident_levels must be >= 1");
  SPAR_CHECK(opt_.sketch_density > 0.0, "dynamic: sketch_density must be positive");
  log_budget_ = std::log1p(opt_.epsilon);
  stale_budget_ = opt_.staleness_eps_share * log_budget_;
  eps_pass_ = std::expm1(0.5 * (1.0 - opt_.staleness_eps_share) * log_budget_);
  pass_seed_base_ = support::mix64(opt_.seed, kDynSeedTag);
  gutter_.num_vertices = n_;
  stats_.per_pass_epsilon = eps_pass_;
  stats_.stale_epsilon_budget = std::expm1(stale_budget_);
}

SparsifyOptions DynamicSparsifier::pass_options() {
  SparsifyOptions s;
  s.epsilon = eps_pass_;
  s.rho = opt_.rho;
  s.t = opt_.t;
  s.keep_probability = opt_.keep_probability;
  s.bundle_kind = opt_.bundle_kind;
  s.seed = support::mix64(pass_seed_base_, ++passes_);
  s.work = opt_.work;
  return s;
}

void DynamicSparsifier::push_insert(graph::Vertex u, graph::Vertex v, double w) {
  gutter_.push_insert(u, v, w);
  stats_.metrics.updates_ingested += 1;
  stats_.metrics.words_ingested += 3;
  if (gutter_.size() >= opt_.batch_updates) flush();
}

void DynamicSparsifier::push_delete(graph::Vertex u, graph::Vertex v) {
  gutter_.push_delete(u, v);
  stats_.metrics.updates_ingested += 1;
  stats_.metrics.words_ingested += 3;
  if (gutter_.size() >= opt_.batch_updates) flush();
}

void DynamicSparsifier::apply(const graph::UpdateBatch& updates) {
  SPAR_CHECK(updates.num_vertices == n_,
             "dynamic: update batch vertex count mismatch");
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert))
      push_insert(updates.u[i], updates.v[i], updates.w[i]);
    else
      push_delete(updates.u[i], updates.v[i]);
  }
}

void DynamicSparsifier::flush() {
  if (gutter_.size() == 0) return;
  gutter_.validate();
  apply_batch(gutter_);
  gutter_.clear();
  stats_.live_edges = directory_.size();
  note_resident();
}

double DynamicSparsifier::staleness_charge(const Level& level) const {
  if (!level.has_sketch || level.deleted_weight <= 0.0) return 0.0;
  return std::log1p(2.0 * level.deleted_weight / level.weight_at_reduce);
}

std::size_t DynamicSparsifier::resident_edges() const {
  std::size_t total = gutter_.size();
  for (const Level& level : levels_) {
    total += level.exact.size();
    if (level.has_sketch) total += level.sketch.size();
  }
  return total;
}

void DynamicSparsifier::note_resident() {
  stats_.peak_resident_edges = std::max(stats_.peak_resident_edges, resident_edges());
}

void DynamicSparsifier::apply_batch(const graph::UpdateBatch& batch) {
  stats_.batches += 1;

  // 1. Cancellation scan (sequential: batch order is load-bearing). Pending
  // inserts keep arrival order so the carried arena is deterministic;
  // scheduled tower deletes keep arrival order so weight sums are too.
  std::vector<graph::Vertex> ins_u, ins_v;
  std::vector<double> ins_w;
  std::vector<std::uint8_t> ins_alive;
  std::unordered_map<std::uint64_t, std::size_t> batch_pos;  // key -> ins index
  std::vector<std::pair<std::uint64_t, double>> sched;  // tower deletes, in order
  std::unordered_set<std::uint64_t> sched_keys;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::uint64_t key = edge_key(batch.u[i], batch.v[i]);
    const bool pending =
        batch_pos.count(key) != 0 && ins_alive[batch_pos[key]] != 0;
    if (batch.op[i] == static_cast<std::uint8_t>(graph::UpdateOp::kInsert)) {
      const bool live = directory_.count(key) != 0 && sched_keys.count(key) == 0;
      SPAR_CHECK(!pending && !live,
                 "dynamic: duplicate insert of live edge " + edge_name(key));
      batch_pos[key] = ins_u.size();
      ins_u.push_back(batch.u[i]);
      ins_v.push_back(batch.v[i]);
      ins_w.push_back(batch.w[i]);
      ins_alive.push_back(1);
    } else if (pending) {
      ins_alive[batch_pos[key]] = 0;  // annihilate inside the batch
      stats_.cancelled_pairs += 1;
    } else {
      const auto it = directory_.find(key);
      SPAR_CHECK(it != directory_.end() && sched_keys.count(key) == 0,
                 "dynamic: delete of absent edge " + edge_name(key));
      sched.emplace_back(key, it->second.weight);
      sched_keys.insert(key);
    }
  }

  // 2. Deletes, grouped by owning level: compact the exact segment (and any
  // cached sketch) down to the surviving keys, charge the sketch's staleness.
  if (!sched.empty()) {
    std::vector<std::unordered_set<std::uint64_t>> del(levels_.size());
    std::vector<double> del_weight(levels_.size(), 0.0);
    for (const auto& [key, weight] : sched) {
      const auto it = directory_.find(key);
      del[it->second.level].insert(key);
      del_weight[it->second.level] += weight;
      directory_.erase(it);
    }
    stats_.deletes_applied += sched.size();
    for (std::size_t li = 0; li < levels_.size(); ++li) {
      if (del[li].empty()) continue;
      Level& level = levels_[li];
      stats_.levels_dirtied += 1;
      const std::unordered_set<std::uint64_t>& gone = del[li];
      level.exact.compact([&](std::size_t i) {
        return gone.count(edge_key(level.exact.u(i), level.exact.v(i))) == 0;
      });
      if (level.exact.size() == 0) {
        level = Level{};  // fully deleted: free the slot and its arenas
        continue;
      }
      level.deleted_weight += del_weight[li];
      if (level.has_sketch) {
        level.sketch.compact([&](std::size_t i) {
          return gone.count(edge_key(level.sketch.u(i), level.sketch.v(i))) == 0;
        });
        const double r = level.deleted_weight / level.weight_at_reduce;
        if (r > opt_.max_staleness || staleness_charge(level) > stale_budget_) {
          level.sketch.release();
          level.has_sketch = false;
          level.dirty = Dirty::kStale;
        }
      }
    }
  }

  // 3. Inserts: binary-counter carry of the surviving pending inserts.
  std::size_t alive = 0;
  for (const std::uint8_t a : ins_alive) alive += a;
  graph::EdgeArena fresh(n_);
  if (alive > 0) {
    fresh.resize(n_, alive);
    auto u = fresh.mutable_u();
    auto v = fresh.mutable_v();
    auto w = fresh.weights();
    std::size_t at = 0;
    for (std::size_t i = 0; i < ins_u.size(); ++i) {
      if (!ins_alive[i]) continue;
      u[at] = ins_u[i];
      v[at] = ins_v[i];
      w[at] = ins_w[i];
      ++at;
    }
    stats_.inserts_applied += alive;
  }
  carry_inserts(std::move(fresh), 1);
}

void DynamicSparsifier::carry_inserts(graph::EdgeArena&& batch,
                                      std::size_t batch_count) {
  if (batch.size() == 0) return;
  // Land the batch in the first free slot WITHOUT merging the levels below.
  // Union serving composes the per-level error as a MAX over the levels'
  // disjoint edge sets, not a sum, so eager binary-counter merging would buy
  // no accuracy -- it would only force checkpoints to re-reduce edges that
  // never changed. Merging happens when the resident-level cap is exceeded
  // (below) or a rebuild collapses the tower.
  std::size_t target = 0;
  while (target < levels_.size() && levels_[target].occupied) ++target;
  if (target >= levels_.size()) levels_.resize(target + 1);
  Level& landing = levels_[target];
  landing.exact = std::move(batch);
  landing.occupied = true;
  landing.has_sketch = false;
  landing.dirty = Dirty::kCarry;
  landing.weight_at_reduce = 0.0;
  landing.deleted_weight = 0.0;
  landing.batches = batch_count;
  relevel(landing.exact, target);
  stats_.levels_used = std::max(stats_.levels_used, target + 1);

  std::size_t occupied = 0;
  for (const Level& level : levels_) occupied += level.occupied ? 1 : 0;
  if (occupied > opt_.max_resident_levels) collapse_tower();
}

void DynamicSparsifier::relevel(const graph::EdgeArena& arena, std::size_t level) {
  const auto lvl = static_cast<std::uint32_t>(level);
  for (std::size_t i = 0; i < arena.size(); ++i)
    directory_.insert_or_assign(edge_key(arena.u(i), arena.v(i)),
                                DirEntry{arena.weight(i), lvl});
}

void DynamicSparsifier::collapse_tower() {
  std::size_t top = levels_.size();
  while (top > 0 && !levels_[top - 1].occupied) --top;
  if (top == 0) return;
  graph::EdgeArena merged(n_);
  std::size_t covered = 0;
  for (std::size_t li = top; li-- > 0;) {
    if (!levels_[li].occupied) continue;
    merged.append(levels_[li].exact.view());
    covered += levels_[li].batches;
    levels_[li] = Level{};
  }
  Level& landing = levels_[top - 1];
  landing.exact = std::move(merged);
  landing.occupied = true;
  landing.has_sketch = false;
  landing.dirty = Dirty::kCarry;
  landing.batches = covered;
  relevel(landing.exact, top - 1);
  stats_.rebuilds += 1;
}

bool DynamicSparsifier::worth_sketching(const Level& level) const {
  const std::size_t m = level.exact.size();
  if (m < opt_.sketch_min_edges) return false;
  // Count the vertices the segment touches (lookup-only set; never iterated,
  // so determinism is unaffected). A t-spanner bundle keeps O(t) edges per
  // touched vertex, so below the density threshold a pass cannot compress.
  std::unordered_set<graph::Vertex> touched;
  touched.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    touched.insert(level.exact.u(i));
    touched.insert(level.exact.v(i));
  }
  const auto t_eff = static_cast<double>(opt_.t > 0 ? opt_.t : 1);
  return static_cast<double>(m) >
         opt_.sketch_density * t_eff * static_cast<double>(touched.size());
}

void DynamicSparsifier::build_sketch(Level& level) {
  graph::EdgeArena copy(n_);
  copy.append(level.exact.view());
  stats_.metrics.reduce_edges += copy.size();
  stats_.metrics.reduce_words += 3 * copy.size();
  RoundContext ctx(std::move(copy));
  parallel_sparsify_rounds(ctx, pass_options());
  level.sketch = std::move(ctx.arena());
  level.has_sketch = true;
  level.weight_at_reduce = level.exact.total_weight();
  level.deleted_weight = 0.0;
  if (level.dirty == Dirty::kStale)
    stats_.re_reduces += 1;
  else
    stats_.carry_reduces += 1;
  level.dirty = Dirty::kNone;
}

void DynamicSparsifier::rebuild() {
  flush();
  collapse_tower();
  note_resident();
}

DynCheckpoint DynamicSparsifier::checkpoint() {
  flush();
  stats_.checkpoints += 1;

  // Re-reduce dirty levels lazily -- or collapse first when the dirty
  // segments hold most of the live edges and per-level patching would cost
  // as much as one pass over everything anyway.
  const auto needs_sketch = [&](const Level& level) {
    return level.occupied && !level.has_sketch && worth_sketching(level);
  };
  std::size_t dirty_edges = 0, occupied = 0;
  for (const Level& level : levels_) {
    occupied += level.occupied ? 1 : 0;
    if (needs_sketch(level)) dirty_edges += level.exact.size();
  }
  if (occupied > 1 && directory_.size() > 0 &&
      static_cast<double>(dirty_edges) >=
          opt_.rebuild_fraction * static_cast<double>(directory_.size()))
    collapse_tower();
  for (std::size_t li = levels_.size(); li-- > 0;)
    if (needs_sketch(levels_[li])) build_sketch(levels_[li]);
  note_resident();

  // Serve: concatenate the per-level serving views oldest first. The union
  // is itself certified (the approximation relation composes over the
  // levels' disjoint edge sets), so the extra compaction pass is opt-in.
  double max_level_log = 0.0;
  graph::EdgeArena serving(n_);
  for (std::size_t li = levels_.size(); li-- > 0;) {
    const Level& level = levels_[li];
    if (!level.occupied) continue;
    if (level.has_sketch) {
      serving.append(level.sketch.view());
      max_level_log = std::max(
          max_level_log, std::log1p(eps_pass_) + staleness_charge(level));
    } else {
      serving.append(level.exact.view());  // exact serving: zero error
    }
  }
  DynCheckpoint out;
  if (opt_.compact_checkpoints) {
    stats_.metrics.reduce_edges += serving.size();
    stats_.metrics.reduce_words += 3 * serving.size();
    RoundContext ctx(std::move(serving));
    parallel_sparsify_rounds(ctx, pass_options());
    out.sparsifier = ctx.arena().to_graph();
    max_level_log += std::log1p(eps_pass_);
  } else {
    out.sparsifier = serving.to_graph();
  }
  out.certified_epsilon = directory_.empty() ? 0.0 : std::expm1(max_level_log);
  stats_.max_composed_epsilon =
      std::max(stats_.max_composed_epsilon, out.certified_epsilon);
  return out;
}

graph::Graph DynamicSparsifier::live_graph() {
  flush();
  graph::EdgeArena all(n_);
  for (std::size_t li = levels_.size(); li-- > 0;)
    if (levels_[li].occupied) all.append(levels_[li].exact.view());
  return all.to_graph();
}

DynResult dynamic_sparsify(graph::UpdateStream& updates,
                           const DynamicOptions& options) {
  DynamicSparsifier dyn(updates.num_vertices(), options);
  graph::UpdateBatch batch;
  while (updates.next_batch(batch, options.batch_updates) > 0) dyn.apply(batch);
  DynCheckpoint cp = dyn.checkpoint();
  return {std::move(cp.sparsifier), cp.certified_epsilon, dyn.stats()};
}

}  // namespace spar::sparsify
