#include "sparsify/sparsify.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::Graph;

SparsifyResult parallel_sparsify(const Graph& g, const SparsifyOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "parallel_sparsify: epsilon must be positive");
  SPAR_CHECK(options.rho >= 1.0, "parallel_sparsify: rho must be >= 1");

  SparsifyResult result;
  result.rounds_planned =
      static_cast<std::size_t>(std::ceil(std::log2(std::max(options.rho, 1.0))));
  if (result.rounds_planned == 0) {
    result.sparsifier = g;
    result.per_round_epsilon = options.epsilon;
    return result;
  }
  result.per_round_epsilon =
      options.epsilon / static_cast<double>(result.rounds_planned);

  // The whole round loop runs in place on one RoundContext: the edge arena
  // shrinks by compaction, the CSR scratch and verdict buffer are reused, and
  // a Graph is materialized only once, at the end.
  RoundContext ctx(g);
  for (std::size_t round = 0; round < result.rounds_planned; ++round) {
    SampleOptions sopt;
    sopt.epsilon = result.per_round_epsilon;
    sopt.t = options.t;
    sopt.keep_probability = options.keep_probability;
    sopt.bundle_kind = options.bundle_kind;
    sopt.seed = support::mix64(options.seed, round + 1);
    sopt.work = options.work;

    const SampleRoundStats sample = parallel_sample_round(ctx, sopt);

    RoundStats stats;
    stats.edges_before = sample.edges_before;
    stats.edges_after = sample.edges_after;
    stats.bundle_edges = sample.bundle_edges;
    stats.sampled_edges = sample.sampled_edges;
    stats.t_used = sample.t_used;
    result.rounds.push_back(stats);

    if (options.stop_when_saturated && stats.sampled_edges == 0 &&
        stats.bundle_edges == stats.edges_before) {
      break;  // bundle swallowed the whole graph; further rounds are identities
    }
  }
  result.sparsifier = ctx.arena().to_graph();
  return result;
}

}  // namespace spar::sparsify
