#include "sparsify/sparsify.hpp"

#include <cmath>
#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::Graph;

SparsifyRoundsResult parallel_sparsify_rounds(RoundContext& ctx,
                                              const SparsifyOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "parallel_sparsify: epsilon must be positive");
  SPAR_CHECK(options.rho >= 1.0, "parallel_sparsify: rho must be >= 1");

  SparsifyRoundsResult result;
  result.rounds_planned =
      static_cast<std::size_t>(std::ceil(std::log2(std::max(options.rho, 1.0))));
  if (result.rounds_planned == 0) {
    result.per_round_epsilon = options.epsilon;
    return result;  // rho < 2: zero rounds, ctx is untouched (identity)
  }
  result.per_round_epsilon =
      options.epsilon / static_cast<double>(result.rounds_planned);

  // The whole round loop runs in place on one RoundContext: the edge arena
  // shrinks by compaction, the CSR scratch and verdict buffer are reused, and
  // no Graph is materialized here.
  for (std::size_t round = 0; round < result.rounds_planned; ++round) {
    SampleOptions sopt;
    sopt.epsilon = result.per_round_epsilon;
    sopt.t = options.t;
    sopt.keep_probability = options.keep_probability;
    sopt.bundle_kind = options.bundle_kind;
    sopt.seed = support::mix64(options.seed, round + 1);
    sopt.work = options.work;

    const SampleRoundStats sample = parallel_sample_round(ctx, sopt);

    RoundStats stats;
    stats.edges_before = sample.edges_before;
    stats.edges_after = sample.edges_after;
    stats.bundle_edges = sample.bundle_edges;
    stats.sampled_edges = sample.sampled_edges;
    stats.t_used = sample.t_used;
    result.rounds.push_back(stats);

    if (options.stop_when_saturated && stats.sampled_edges == 0 &&
        stats.bundle_edges == stats.edges_before) {
      break;  // bundle swallowed the whole graph; further rounds are identities
    }
  }
  return result;
}

SparsifyResult parallel_sparsify(const Graph& g, const SparsifyOptions& options) {
  RoundContext ctx(g);
  SparsifyRoundsResult rounds = parallel_sparsify_rounds(ctx, options);
  SparsifyResult result;
  result.rounds = std::move(rounds.rounds);
  result.rounds_planned = rounds.rounds_planned;
  result.per_round_epsilon = rounds.per_round_epsilon;
  result.sparsifier = ctx.arena().to_graph();
  return result;
}

}  // namespace spar::sparsify
