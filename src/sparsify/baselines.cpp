#include "sparsify/baselines.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::EdgeId;
using graph::Graph;
using linalg::Vector;

Graph uniform_sparsify(const Graph& g, double keep_probability, std::uint64_t seed) {
  SPAR_CHECK(keep_probability > 0.0 && keep_probability <= 1.0,
             "uniform_sparsify: keep_probability must be in (0, 1]");
  Graph out(g.num_vertices());
  const auto edges = g.edges();
  const double inv_p = 1.0 / keep_probability;
  for (EdgeId id = 0; id < edges.size(); ++id) {
    if (support::stream_uniform(seed, id) < keep_probability)
      out.add_edge(edges[id].u, edges[id].v, edges[id].w * inv_p);
  }
  return out;
}

SSResult spielman_srivastava(const Graph& g, const SpielmanSrivastavaOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0, "spielman_srivastava: epsilon must be positive");
  const std::size_t n = g.num_vertices();
  const auto edges = g.edges();
  SPAR_CHECK(!edges.empty(), "spielman_srivastava: graph has no edges");

  const Vector resistances =
      options.resistance_mode == ResistanceMode::kExactDense
          ? resistance::exact_effective_resistances(g)
          : resistance::approx_effective_resistances(g, options.resistance_options);

  // p_e ~ w_e R_e; sum_e w_e R_e = n - 1 exactly (total leverage), but the
  // estimates need explicit normalization.
  Vector prob(edges.size());
  double total = 0.0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    prob[i] = std::max(edges[i].w * resistances[i], 0.0);
    total += prob[i];
  }
  SPAR_CHECK(total > 0.0, "spielman_srivastava: degenerate leverage scores");
  for (double& p : prob) p /= total;

  // Cumulative table + binary search per sample; q log m total.
  Vector cumulative(edges.size());
  double running = 0.0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    running += prob[i];
    cumulative[i] = running;
  }
  cumulative.back() = 1.0;

  const std::size_t q =
      options.num_samples != 0
          ? options.num_samples
          : static_cast<std::size_t>(
                std::ceil(options.sample_factor * static_cast<double>(n) *
                          std::log2(std::max<double>(n, 2.0)) /
                          (options.epsilon * options.epsilon)));

  Vector accumulated(edges.size(), 0.0);
  support::Rng rng(options.seed);
  for (std::size_t s = 0; s < q; ++s) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto idx = static_cast<std::size_t>(it - cumulative.begin());
    accumulated[idx] += edges[idx].w / (static_cast<double>(q) * prob[idx]);
  }

  SSResult result;
  result.samples_drawn = q;
  Graph out(g.num_vertices());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (accumulated[i] > 0.0) {
      out.add_edge(edges[i].u, edges[i].v, accumulated[i]);
      ++result.distinct_edges;
    }
  }
  result.sparsifier = std::move(out);
  return result;
}

}  // namespace spar::sparsify
