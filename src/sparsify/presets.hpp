// Parameter presets: the paper's theoretical constants versus the practical
// settings the benches use. One place to see (and document) the gap.
//
// Theory (Theorems 4/5, verbatim constants):
//   bundle width    t   = ceil(24 log2(n)^2 / eps^2)
//   keep prob.      p   = 1/4, reweight 4w
//   rounds          ceil(log2 rho) at per-round eps' = eps / ceil(log2 rho)
// Feasibility: the bundle alone holds ~ t * n * log2 n edges, so theory
// settings only sparsify graphs with m >> 24 n log^3 n / eps^2 -- beyond any
// feasible dense instance (it exceeds binomial(n,2) until n ~ 10^6 for
// eps = 1). The practical preset keeps the mechanism and lets benches pick a
// small t; the certified eps is then measured instead of promised.
#pragma once

#include "sparsify/sample.hpp"
#include "sparsify/sparsify.hpp"

namespace spar::sparsify {

enum class Preset {
  kTheory,     ///< paper constants; refuses nothing, but usually returns G itself
  kPractical,  ///< small bundle width; certified quality measured a posteriori
};

/// Smallest edge count at which the theory-t bundle leaves anything to
/// sample: m must exceed roughly t(n, eps) * n * log2(n).
std::size_t theory_applicability_threshold(std::size_t n, double epsilon);

/// Sampling options for one PARALLELSAMPLE round.
SampleOptions make_sample_options(Preset preset, double epsilon,
                                  std::uint64_t seed = 1,
                                  std::size_t practical_t = 3);

/// Options for the full PARALLELSPARSIFY loop.
SparsifyOptions make_sparsify_options(Preset preset, double epsilon, double rho,
                                      std::uint64_t seed = 1,
                                      std::size_t practical_t = 3);

}  // namespace spar::sparsify
