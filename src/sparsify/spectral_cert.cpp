#include "sparsify/spectral_cert.hpp"

#include <cmath>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::Graph;
using linalg::DenseMatrix;
using linalg::Vector;

ApproxBounds exact_relative_bounds(const Graph& g, const Graph& h) {
  SPAR_CHECK(g.num_vertices() == h.num_vertices(),
             "exact_relative_bounds: vertex count mismatch");
  const std::size_t n = g.num_vertices();
  SPAR_CHECK(n >= 2, "exact_relative_bounds: need n >= 2");
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "exact_relative_bounds: G must be connected");

  const DenseMatrix lg = DenseMatrix::from_csr(linalg::laplacian_matrix(g));
  const DenseMatrix lh = DenseMatrix::from_csr(linalg::laplacian_matrix(h));
  const auto eig = linalg::symmetric_eigen(lg);

  // Whitening basis B = V_r diag(lambda_r^{-1/2}) over the nonzero spectrum.
  const double lambda_max = eig.eigenvalues.back();
  const double cut = 1e-10 * lambda_max;
  std::size_t first = 0;
  while (first < n && eig.eigenvalues[first] <= cut) ++first;
  const std::size_t r = n - first;
  SPAR_CHECK(r >= 1, "exact_relative_bounds: G Laplacian has empty range");

  DenseMatrix basis(n, r);
  for (std::size_t j = 0; j < r; ++j) {
    const double s = 1.0 / std::sqrt(eig.eigenvalues[first + j]);
    const auto src = eig.eigenvectors.column(first + j);
    auto dst = basis.column(j);
    for (std::size_t i = 0; i < n; ++i) dst[i] = s * src[i];
  }
  // S = B^T L_H B is r x r symmetric; its extreme eigenvalues are the pencil
  // bounds on range(L_G). Only the values are needed, so skip eigenvector
  // accumulation.
  const DenseMatrix lh_b = lh.multiply(basis);
  const DenseMatrix s = basis.transpose().multiply(lh_b);
  const Vector spec = linalg::symmetric_eigenvalues(s);

  ApproxBounds bounds;
  bounds.lower = std::max(0.0, spec.front());
  bounds.upper = spec.back();
  bounds.defined = true;
  return bounds;
}

namespace {

// Largest generalized eigenvalue of (L_num, L_den) via power iteration on
// pinv(L_den) L_num. Rayleigh quotient x^T L_num x / x^T L_den x is exact at
// each step, so the returned value is always a certified *inner* bound.
double max_generalized_eigenvalue(const Graph& num, const Graph& den,
                                  const CertOptions& options, std::uint64_t salt) {
  const std::size_t n = num.num_vertices();
  const linalg::LaplacianOperator lap_num(num);
  const linalg::LaplacianOperator lap_den(den);
  const linalg::LinearOperator den_op{
      n, [&lap_den](std::span<const double> x, std::span<double> y) {
        lap_den.apply(x, y);
      }};

  support::Rng rng(support::mix64(options.seed, salt));
  Vector x(n);
  for (double& xi : x) xi = rng.normal();
  linalg::remove_mean(x);

  Vector y(n), z(n);
  double lambda = 0.0;
  linalg::CGOptions cg;
  cg.tolerance = options.cg_tolerance;
  cg.max_iterations = options.cg_max_iterations;
  cg.project_constant = true;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double den_q = lap_den.quadratic_form(x);
    if (den_q <= 0.0) break;
    const double num_q = lap_num.quadratic_form(x);
    const double rayleigh = num_q / den_q;
    if (it > 0 && std::abs(rayleigh - lambda) <=
                      options.tolerance * std::max(1.0, std::abs(rayleigh))) {
      return rayleigh;
    }
    lambda = rayleigh;
    // x <- pinv(L_den) L_num x, renormalized.
    lap_num.apply(x, y);
    linalg::remove_mean(y);
    linalg::fill(z, 0.0);
    linalg::conjugate_gradient(den_op, y, z, cg);
    const double nrm = linalg::norm2(z);
    if (nrm == 0.0) break;
    linalg::scale(1.0 / nrm, z);
    std::swap(x, z);
  }
  return lambda;
}

}  // namespace

ApproxBounds approx_relative_bounds(const Graph& g, const Graph& h,
                                    const CertOptions& options) {
  SPAR_CHECK(g.num_vertices() == h.num_vertices(),
             "approx_relative_bounds: vertex count mismatch");
  ApproxBounds bounds;
  bounds.defined = true;
  bounds.upper = max_generalized_eigenvalue(h, g, options, 0xabcdULL);
  if (!graph::is_connected(graph::CSRGraph(h))) {
    bounds.lower = 0.0;  // pencil degenerates: some cut has zero H-weight
    return bounds;
  }
  const double inv_lower = max_generalized_eigenvalue(g, h, options, 0xdcbaULL);
  bounds.lower = inv_lower > 0.0 ? 1.0 / inv_lower : 0.0;
  return bounds;
}

}  // namespace spar::sparsify
