// Sparsifier quality diagnostics beyond the eigenvalue certificate.
//
// The pencil bounds (spectral_cert.hpp) are the ground truth, but users
// commonly want cheaper, more interpretable diagnostics:
//  * random-vector quadratic-form ratios  x^T L_H x / x^T L_G x  (inner
//    estimates of the pencil interval; O(m) per probe),
//  * random-cut weight ratios (cut sparsification is implied by spectral,
//    with cut vectors being 0/1 probes),
//  * structural checks: connectivity, edge/weight totals.
// quality_report() bundles these into one struct; benches and examples print
// it, and property tests assert its internal consistency.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace spar::sparsify {

struct QualityOptions {
  std::size_t gaussian_probes = 64;  ///< random x ~ N(0, I), mean-removed
  std::size_t cut_probes = 64;       ///< random bipartitions
  std::uint64_t seed = 101;
};

struct QualityReport {
  // Quadratic-form ratio extremes over Gaussian probes (inner estimates of
  // the pencil interval [lower, upper]).
  double min_quadratic_ratio = 0.0;
  double max_quadratic_ratio = 0.0;
  // Cut-weight ratio extremes over random bipartitions.
  double min_cut_ratio = 0.0;
  double max_cut_ratio = 0.0;
  // Structure.
  bool sparsifier_connected = false;
  std::size_t edges_original = 0;
  std::size_t edges_sparsifier = 0;
  double weight_original = 0.0;
  double weight_sparsifier = 0.0;

  double edge_reduction() const {
    return edges_sparsifier == 0
               ? 0.0
               : static_cast<double>(edges_original) /
                     static_cast<double>(edges_sparsifier);
  }
};

/// Diagnostics of `h` as a sparsifier of `g` (same vertex set required).
QualityReport quality_report(const graph::Graph& g, const graph::Graph& h,
                             const QualityOptions& options = {});

}  // namespace spar::sparsify
