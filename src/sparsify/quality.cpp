#include "sparsify/quality.hpp"

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::sparsify {

using graph::Graph;

QualityReport quality_report(const Graph& g, const Graph& h,
                             const QualityOptions& options) {
  SPAR_CHECK(g.num_vertices() == h.num_vertices(),
             "quality_report: vertex count mismatch");
  const std::size_t n = g.num_vertices();
  QualityReport report;
  report.edges_original = g.num_edges();
  report.edges_sparsifier = h.num_edges();
  report.weight_original = g.total_weight();
  report.weight_sparsifier = h.total_weight();
  report.sparsifier_connected = graph::is_connected(graph::CSRGraph(h));
  if (n < 2) return report;

  support::Rng rng(options.seed);
  linalg::Vector x(n);

  bool first = true;
  for (std::size_t probe = 0; probe < options.gaussian_probes; ++probe) {
    for (double& v : x) v = rng.normal();
    linalg::remove_mean(x);
    const double qg = linalg::laplacian_quadratic_form(g, x);
    if (qg <= 0.0) continue;  // degenerate draw (disconnected + constant parts)
    const double ratio = linalg::laplacian_quadratic_form(h, x) / qg;
    if (first) {
      report.min_quadratic_ratio = report.max_quadratic_ratio = ratio;
      first = false;
    } else {
      report.min_quadratic_ratio = std::min(report.min_quadratic_ratio, ratio);
      report.max_quadratic_ratio = std::max(report.max_quadratic_ratio, ratio);
    }
  }

  first = true;
  for (std::size_t probe = 0; probe < options.cut_probes; ++probe) {
    for (double& v : x) v = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double qg = linalg::laplacian_quadratic_form(g, x);
    if (qg <= 0.0) continue;  // one side empty or cut misses every edge
    const double ratio = linalg::laplacian_quadratic_form(h, x) / qg;
    if (first) {
      report.min_cut_ratio = report.max_cut_ratio = ratio;
      first = false;
    } else {
      report.min_cut_ratio = std::min(report.min_cut_ratio, ratio);
      report.max_cut_ratio = std::max(report.max_cut_ratio, ratio);
    }
  }
  return report;
}

}  // namespace spar::sparsify
