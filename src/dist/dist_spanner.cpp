#include "dist/dist_spanner.hpp"

#include <algorithm>
#include <cmath>

#include "sparsify/sample.hpp"
#include "sparsify/sample_core.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/bs_core.hpp"
#include "spanner/bundle.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::dist {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

// Every simulated message is one tag word plus two payload words (an edge id
// or a (center, coin) pair) -- the O(log n)-bit budget of Theorem 2.
constexpr std::uint64_t kWordsPerMessage = 3;

// The decision logic lives in spanner/bs_core.hpp, shared with the
// shared-memory implementation so both make bit-identical choices.
namespace bs = spar::spanner::detail;

}  // namespace

DistSpannerResult distributed_spanner(const CSRGraph& csr,
                                      const std::vector<bool>* alive,
                                      const DistSpannerOptions& options) {
  const Vertex n = csr.num_vertices();
  const std::size_t m = csr.num_arcs() / 2;
  const std::size_t k =
      options.k != 0 ? options.k : spanner::auto_spanner_k(n);
  support::WorkScope work(options.work);

  DistSpannerResult result;
  result.metrics.max_message_words = kWordsPerMessage;

  if (alive != nullptr)
    SPAR_CHECK(alive->size() == m, "distributed_spanner: alive mask size mismatch");
  std::vector<bs::EdgeState> state = bs::initial_states(m, alive);

  std::vector<Vertex> center(n), new_center(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) center[v] = v;

  const double sample_p = bs::sample_probability(n, k);
  bs::ClusterScratch scratch(n);
  bs::Decisions decisions;
  std::vector<std::uint8_t> sampled(n, 0);

  // ---- Phase 1: k-1 clustering iterations (each a protocol super-step) ----
  for (std::size_t iter = 1; iter < k; ++iter) {
    // Cluster centers flip their coin locally and disseminate it through the
    // cluster tree; after iteration i the tree has radius <= i, so the
    // dissemination plus the neighbour exchange and the selection
    // announcements cost i + 2 synchronous rounds. Summed over the k-1
    // iterations this is the Theorem 2 O(log^2 n) round budget.
    result.metrics.rounds += static_cast<std::uint64_t>(iter) + 2;

    for (Vertex c = 0; c < n; ++c)
      sampled[c] = bs::cluster_sampled(options.seed, iter, c, sample_p);

    // Every endpoint of an alive edge exchanges (center, coin) with its
    // neighbour; phase1_decide reports how many such messages each vertex
    // sends. Each selected spanner edge is announced with one more message.
    std::uint64_t alive_arcs = 0;
    for (Vertex v = 0; v < n; ++v) {
      alive_arcs += bs::phase1_decide(csr, v, center, sampled, state, scratch,
                                      decisions, new_center, work);
    }
    const std::uint64_t added = bs::commit(decisions, state, result.spanner_edges);
    result.metrics.messages += alive_arcs + added;
    center.swap(new_center);
    std::fill(new_center.begin(), new_center.end(), kInvalidVertex);
  }

  // ---- Phase 2: vertex-cluster joining (one exchange + one announcement) --
  result.metrics.rounds += 2;
  std::uint64_t alive_arcs = 0;
  for (Vertex v = 0; v < n; ++v)
    alive_arcs += bs::phase2_decide(csr, v, center, state, scratch, decisions, work);
  const std::uint64_t added = bs::commit(decisions, state, result.spanner_edges);
  result.metrics.messages += alive_arcs + added;
  result.metrics.words = result.metrics.messages * kWordsPerMessage;

  std::sort(result.spanner_edges.begin(), result.spanner_edges.end());
  return result;
}

DistSampleResult distributed_parallel_sample(const Graph& g,
                                             const DistSampleOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "distributed_parallel_sample: keep_probability must be in (0, 1]");

  DistSampleResult result;
  result.metrics.max_message_words = kWordsPerMessage;
  result.t_used =
      options.t != 0
          ? options.t
          : sparsify::theory_bundle_width(g.num_vertices(), options.epsilon);

  const CSRGraph csr(g);

  // Peel the t-bundle with t runs of the distributed spanner protocol.
  // spanner::detail::peel_bundle and the sparsify::detail seed derivations
  // are the same code the shared-memory path runs, so the bundle -- and
  // below, the coin flips -- reproduce the shared-memory sparsifier bit for
  // bit, while the metrics account for what the network did.
  const spanner::Bundle bundle = spanner::detail::peel_bundle(
      g.num_edges(), result.t_used,
      sparsify::detail::bundle_seed(options.seed),
      [&](std::uint64_t component_seed, const std::vector<bool>& alive) {
        DistSpannerOptions sopt;
        sopt.k = 0;
        sopt.seed = component_seed;
        sopt.work = options.work;
        DistSpannerResult component = distributed_spanner(csr, &alive, sopt);
        result.metrics.absorb(component.metrics);
        return std::move(component.spanner_edges);
      });
  result.bundle_edges = bundle.bundle_edge_count;
  result.off_bundle_edges = bundle.off_bundle_edge_count;

  // Off-bundle coins are local: each edge owner evaluates the same pure
  // function of (seed, edge id) the shared-memory path uses, then announces
  // only the kept edges (one message each) in a single round.
  support::WorkScope work(options.work);
  work.add(g.num_edges());
  result.sparsifier = sparsify::detail::assemble_sparsifier(
      g, bundle.in_bundle, options.keep_probability,
      sparsify::detail::coin_seed(options.seed), &result.sampled_edges);
  result.metrics.rounds += 1;
  result.metrics.messages += result.sampled_edges;
  result.metrics.words += result.sampled_edges * kWordsPerMessage;
  return result;
}

DistSparsifyResult distributed_parallel_sparsify(const Graph& g,
                                                 const DistSparsifyOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sparsify: epsilon must be positive");
  SPAR_CHECK(options.rho >= 1.0, "distributed_parallel_sparsify: rho must be >= 1");

  DistSparsifyResult result;
  result.metrics.max_message_words = kWordsPerMessage;
  const auto rounds_planned =
      static_cast<std::size_t>(std::ceil(std::log2(std::max(options.rho, 1.0))));
  if (rounds_planned == 0) {
    result.sparsifier = g;
    return result;
  }
  const double per_round_epsilon =
      options.epsilon / static_cast<double>(rounds_planned);

  Graph current = g;
  for (std::size_t round = 0; round < rounds_planned; ++round) {
    DistSampleOptions sopt;
    sopt.epsilon = per_round_epsilon;
    sopt.t = options.t;
    sopt.keep_probability = options.keep_probability;
    sopt.seed = support::mix64(options.seed, round + 1);
    sopt.work = options.work;

    DistSampleResult sample = distributed_parallel_sample(current, sopt);

    DistRound stats;
    stats.edges_before = current.num_edges();
    stats.edges_after = sample.sparsifier.num_edges();
    stats.metrics = sample.metrics;
    result.rounds.push_back(stats);
    result.metrics.absorb(sample.metrics);

    const bool saturated = sample.sampled_edges == 0 &&
                           sample.bundle_edges == stats.edges_before;
    current = std::move(sample.sparsifier);
    if (options.stop_when_saturated && saturated)
      break;  // bundle swallowed the graph; rest are identities
  }
  result.sparsifier = std::move(current);
  return result;
}

}  // namespace spar::dist
