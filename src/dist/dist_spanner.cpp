// Legacy entry points of the distributed protocols, since PR 8 thin wrappers
// that run the sharded SPMD core (dist/shard.cpp) on a one-shard loopback
// mesh. One shard owns every vertex, so no message crosses a shard boundary
// (wire.words == 0) and the run IS the PR 1 sequential simulator: same
// decisions, same edge sets, same model-level DistMetrics. dist/runner.hpp
// scales the identical core to S threads or processes.
#include "dist/dist_spanner.hpp"

#include <utility>
#include <vector>

#include "dist/shard.hpp"
#include "graph/edge_view.hpp"
#include "support/assert.hpp"

namespace spar::dist {

using graph::CSRGraph;
using graph::Graph;
using graph::Vertex;

namespace {

// The sharded core wants the edge universe as an EdgeView (that is what a
// shard's directory replicates); the legacy spanner API hands us the CSR the
// caller already built. Rebuild the id-indexed SoA from the arcs: every edge
// appears as exactly two arcs carrying the same global id, so the first
// visit of an id fixes its endpoints and weight.
graph::EdgeArena arena_from_csr(const CSRGraph& csr) {
  const Vertex n = csr.num_vertices();
  const std::size_t m = csr.num_arcs() / 2;
  graph::EdgeArena arena;
  arena.resize(n, m);
  auto u = arena.mutable_u();
  auto v = arena.mutable_v();
  auto w = arena.weights();
  std::vector<bool> seen(m, false);
  for (Vertex x = 0; x < n; ++x) {
    for (const graph::Arc& arc : csr.neighbors(x)) {
      SPAR_CHECK(arc.id < m, "distributed_spanner: arc id out of range");
      if (!seen[arc.id]) {
        seen[arc.id] = true;
        u[arc.id] = x;
        v[arc.id] = arc.to;
        w[arc.id] = arc.w;
      }
    }
  }
  return arena;
}

}  // namespace

DistSpannerResult distributed_spanner(const CSRGraph& csr,
                                      const std::vector<bool>* alive,
                                      const DistSpannerOptions& options) {
  const graph::EdgeArena arena = arena_from_csr(csr);
  LoopbackHub hub(1);
  ShardSpannerOutput out =
      run_shard_spanner(hub.endpoint(0), arena.view(), alive, options);

  DistSpannerResult result;
  result.spanner_edges = std::move(out.owned_spanner_edges);
  result.metrics = out.metrics;
  result.wire = hub.endpoint(0).wire();
  return result;
}

DistSampleResult distributed_parallel_sample(const Graph& g,
                                             const DistSampleOptions& options) {
  LoopbackHub hub(1);
  ShardSampleOutput out = run_shard_sample(hub.endpoint(0), g, options);

  DistSampleResult result;
  result.bundle_edges = out.bundle_edges;
  result.off_bundle_edges = out.off_bundle_edges;
  result.sampled_edges = out.sampled_edges;
  result.t_used = out.t_used;
  result.metrics = out.metrics;
  result.wire = hub.endpoint(0).wire();
  std::vector<ShardEdges> slices;
  slices.push_back(std::move(out.owned));
  result.sparsifier =
      merge_shard_edges(g.num_vertices(), out.final_edges, slices);
  return result;
}

DistSparsifyResult distributed_parallel_sparsify(const Graph& g,
                                                 const DistSparsifyOptions& options) {
  LoopbackHub hub(1);
  ShardSparsifyOutput out = run_shard_sparsify(hub.endpoint(0), g, options);

  DistSparsifyResult result;
  result.rounds = std::move(out.rounds);
  result.metrics = out.metrics;
  result.wire = hub.endpoint(0).wire();
  std::vector<ShardEdges> slices;
  slices.push_back(std::move(out.owned));
  result.sparsifier =
      merge_shard_edges(g.num_vertices(), out.final_edges, slices);
  return result;
}

}  // namespace spar::dist
