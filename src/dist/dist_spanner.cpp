#include "dist/dist_spanner.hpp"

#include <algorithm>
#include <cmath>

#include "sparsify/sample.hpp"
#include "sparsify/sample_core.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/bs_core.hpp"
#include "spanner/bundle.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::dist {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

// Every simulated message is one tag word plus two payload words (an edge id
// or a (center, coin) pair) -- the O(log n)-bit budget of Theorem 2.
constexpr std::uint64_t kWordsPerMessage = 3;

// The decision logic lives in spanner/bs_core.hpp, shared with the
// shared-memory implementation so both make bit-identical choices.
namespace bs = spar::spanner::detail;

}  // namespace

DistSpannerResult distributed_spanner(const CSRGraph& csr,
                                      const std::vector<bool>* alive,
                                      const DistSpannerOptions& options) {
  const Vertex n = csr.num_vertices();
  const std::size_t m = csr.num_arcs() / 2;
  const std::size_t k =
      options.k != 0 ? options.k : spanner::auto_spanner_k(n);
  support::WorkScope work(options.work);

  DistSpannerResult result;
  result.metrics.max_message_words = kWordsPerMessage;

  if (alive != nullptr)
    SPAR_CHECK(alive->size() == m, "distributed_spanner: alive mask size mismatch");
  std::vector<bs::EdgeState> state = bs::initial_states(m, alive);

  std::vector<Vertex> center(n), new_center(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) center[v] = v;

  const double sample_p = bs::sample_probability(n, k);
  bs::ClusterScratch scratch(n);
  bs::Decisions decisions;
  std::vector<std::uint8_t> sampled(n, 0);

  // ---- Phase 1: k-1 clustering iterations (each a protocol super-step) ----
  for (std::size_t iter = 1; iter < k; ++iter) {
    // Cluster centers flip their coin locally and disseminate it through the
    // cluster tree; after iteration i the tree has radius <= i, so the
    // dissemination plus the neighbour exchange and the selection
    // announcements cost i + 2 synchronous rounds. Summed over the k-1
    // iterations this is the Theorem 2 O(log^2 n) round budget.
    result.metrics.rounds += static_cast<std::uint64_t>(iter) + 2;

    for (Vertex c = 0; c < n; ++c)
      sampled[c] = bs::cluster_sampled(options.seed, iter, c, sample_p);

    // Every endpoint of an alive edge exchanges (center, coin) with its
    // neighbour; phase1_decide reports how many such messages each vertex
    // sends. Each selected spanner edge is announced with one more message.
    std::uint64_t alive_arcs = 0;
    for (Vertex v = 0; v < n; ++v) {
      alive_arcs += bs::phase1_decide(csr, v, center, sampled, state, scratch,
                                      decisions, new_center, work);
    }
    const std::uint64_t added = bs::commit(decisions, state, result.spanner_edges);
    result.metrics.messages += alive_arcs + added;
    center.swap(new_center);
    std::fill(new_center.begin(), new_center.end(), kInvalidVertex);
  }

  // ---- Phase 2: vertex-cluster joining (one exchange + one announcement) --
  result.metrics.rounds += 2;
  std::uint64_t alive_arcs = 0;
  for (Vertex v = 0; v < n; ++v)
    alive_arcs += bs::phase2_decide(csr, v, center, state, scratch, decisions, work);
  const std::uint64_t added = bs::commit(decisions, state, result.spanner_edges);
  result.metrics.messages += alive_arcs + added;
  result.metrics.words = result.metrics.messages * kWordsPerMessage;

  std::sort(result.spanner_edges.begin(), result.spanner_edges.end());
  return result;
}

namespace {

// One distributed PARALLELSAMPLE round executed in place on the shared round
// pipeline: the t-bundle is peeled with t runs of the distributed spanner
// protocol over ctx's reusable CSR scratch, then the verdict/compaction core
// (sparsify::detail::apply_sample_verdicts -- the exact code the
// shared-memory round runs) shrinks the arena. peel_bundle and the seed
// derivations are also the shared-memory code, so the round reproduces the
// shared-memory sparsifier bit for bit while `metrics` accounts for what the
// network did.
sparsify::SampleRoundStats dist_sample_round(sparsify::RoundContext& ctx,
                                             const DistSampleOptions& options,
                                             DistMetrics& metrics) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "distributed_parallel_sample: keep_probability must be in (0, 1]");

  sparsify::SampleRoundStats stats;
  stats.edges_before = ctx.num_edges();
  stats.t_used = options.t != 0
                     ? options.t
                     : sparsify::theory_bundle_width(ctx.num_vertices(),
                                                     options.epsilon);

  const CSRGraph& csr = ctx.rebuild_csr();
  const spanner::Bundle bundle = spanner::detail::peel_bundle(
      ctx.num_edges(), stats.t_used,
      sparsify::detail::bundle_seed(options.seed),
      [&](std::uint64_t component_seed, const std::vector<bool>& alive) {
        DistSpannerOptions sopt;
        sopt.k = 0;
        sopt.seed = component_seed;
        sopt.work = options.work;
        DistSpannerResult component = distributed_spanner(csr, &alive, sopt);
        metrics.absorb(component.metrics);
        return std::move(component.spanner_edges);
      });
  stats.bundle_edges = bundle.bundle_edge_count;
  stats.off_bundle_edges = bundle.off_bundle_edge_count;

  // Off-bundle coins are local: each edge owner evaluates the same pure
  // function of (seed, edge id) the shared-memory path uses, then announces
  // only the kept edges (one message each) in a single round.
  support::WorkScope work(options.work);
  work.add(stats.edges_before);
  stats.sampled_edges = sparsify::detail::apply_sample_verdicts(
      ctx, bundle.in_bundle, options.keep_probability,
      sparsify::detail::coin_seed(options.seed));
  stats.edges_after = ctx.num_edges();
  metrics.rounds += 1;
  metrics.messages += stats.sampled_edges;
  metrics.words += stats.sampled_edges * kWordsPerMessage;
  return stats;
}

}  // namespace

DistSampleResult distributed_parallel_sample(const Graph& g,
                                             const DistSampleOptions& options) {
  DistSampleResult result;
  result.metrics.max_message_words = kWordsPerMessage;
  sparsify::RoundContext ctx(g);
  const sparsify::SampleRoundStats stats =
      dist_sample_round(ctx, options, result.metrics);
  result.sparsifier = ctx.arena().to_graph();
  result.bundle_edges = stats.bundle_edges;
  result.off_bundle_edges = stats.off_bundle_edges;
  result.sampled_edges = stats.sampled_edges;
  result.t_used = stats.t_used;
  return result;
}

DistSparsifyResult distributed_parallel_sparsify(const Graph& g,
                                                 const DistSparsifyOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sparsify: epsilon must be positive");
  SPAR_CHECK(options.rho >= 1.0, "distributed_parallel_sparsify: rho must be >= 1");

  DistSparsifyResult result;
  result.metrics.max_message_words = kWordsPerMessage;
  const auto rounds_planned =
      static_cast<std::size_t>(std::ceil(std::log2(std::max(options.rho, 1.0))));
  if (rounds_planned == 0) {
    result.sparsifier = g;
    return result;
  }
  const double per_round_epsilon =
      options.epsilon / static_cast<double>(rounds_planned);

  // Same zero-copy round loop as sparsify::parallel_sparsify: one
  // RoundContext threads the arena, CSR scratch and verdict buffer through
  // every protocol round; a Graph exists only at the boundary.
  sparsify::RoundContext ctx(g);
  for (std::size_t round = 0; round < rounds_planned; ++round) {
    DistSampleOptions sopt;
    sopt.epsilon = per_round_epsilon;
    sopt.t = options.t;
    sopt.keep_probability = options.keep_probability;
    sopt.seed = support::mix64(options.seed, round + 1);
    sopt.work = options.work;

    DistRound stats;
    stats.metrics.max_message_words = kWordsPerMessage;
    const sparsify::SampleRoundStats sample =
        dist_sample_round(ctx, sopt, stats.metrics);
    stats.edges_before = sample.edges_before;
    stats.edges_after = sample.edges_after;
    result.rounds.push_back(stats);
    result.metrics.absorb(stats.metrics);

    const bool saturated = sample.sampled_edges == 0 &&
                           sample.bundle_edges == sample.edges_before;
    if (options.stop_when_saturated && saturated)
      break;  // bundle swallowed the graph; rest are identities
  }
  result.sparsifier = ctx.arena().to_graph();
  return result;
}

}  // namespace spar::dist
