#include "dist/shard.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/shard_slice.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/bs_core.hpp"
#include "spanner/bundle.hpp"
#include "sparsify/sample.hpp"
#include "sparsify/sample_core.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::dist {

using graph::EdgeId;
using graph::EdgeView;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace bs = spar::spanner::detail;

namespace {

// Message tags of the shard protocol. One enum across all supersteps: a
// message is self-describing, so a mis-routed frame fails loudly instead of
// being misread.
enum Tag : std::uint64_t {
  kTagCenter = 1,   ///< a = vertex, b = its new cluster center
  kTagAdd = 2,      ///< a = global edge id selected into the spanner
  kTagDiscard = 3,  ///< a = global edge id discarded
  kTagStats = 4,    ///< a, b = local contributions to an allreduce
  kTagBundle = 5,   ///< a = global edge id entering the bundle
};

/// Everything one shard holds between supersteps: its identity, the
/// replicated edge directory, and the derived owned-vertex/owned-edge views.
struct World {
  Transport& net;
  graph::VertexPartition part;
  std::size_t self;
  std::size_t shards;

  // Replicated edge directory: u/v/w by global edge id, identical on every
  // shard and evolving identically through compaction rounds (survivor masks
  // are pure functions of exchanged data). It backs ghost-edge weights in
  // the adjacency and the O(1) ownership routing owner(du[e]).
  Vertex n = 0;
  std::vector<Vertex> du, dv;
  std::vector<double> dw;

  graph::ShardSlice slice;     // owned edges (arena + global ids)
  graph::ShardAdjacency adj;   // owned vertices, global edge ids

  // Ghost routing: for owned vertex with local index l, the shards owning at
  // least one of its neighbours (flattened CSR). Rebuilt with the adjacency.
  std::vector<std::size_t> ghost_off;
  std::vector<std::uint32_t> ghost_dst;

  // Superstep buffers, reused across the whole run.
  std::vector<std::vector<Message>> outbox, inbox;

  World(Transport& transport, Vertex num_vertices)
      : net(transport),
        part{num_vertices, transport.shard_count()},
        self(transport.shard_id()),
        shards(transport.shard_count()),
        n(num_vertices) {
    outbox.resize(shards);
  }

  std::size_t num_edges() const { return du.size(); }

  EdgeView directory_view() const {
    return {n, du.size(), du.data(), dv.data(), dw.data()};
  }

  bool owns_edge(EdgeId id) const { return part.owner(du[id]) == self; }

  void rebuild_adjacency() {
    adj.rebuild(directory_view(), part, self);
    const Vertex first = part.begin(self);
    const Vertex owned = part.owned(self);
    ghost_off.assign(owned + 1, 0);
    ghost_dst.clear();
    std::vector<std::uint32_t> dests;
    for (Vertex l = 0; l < owned; ++l) {
      dests.clear();
      for (const graph::Arc& arc : adj.neighbors(first + l)) {
        const auto d = static_cast<std::uint32_t>(part.owner(arc.to));
        if (d != self) dests.push_back(d);
      }
      std::sort(dests.begin(), dests.end());
      dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
      ghost_dst.insert(ghost_dst.end(), dests.begin(), dests.end());
      ghost_off[l + 1] = ghost_dst.size();
    }
  }

  void clear_outbox() {
    for (auto& batch : outbox) batch.clear();
  }

  /// Route one edge decision to the other trackers of the edge (the owners
  /// of both endpoints, minus this shard).
  void route_edge(Tag tag, EdgeId id) {
    const std::size_t ou = part.owner(du[id]);
    const std::size_t ov = part.owner(dv[id]);
    if (ou != self) outbox[ou].push_back({tag, id, 0});
    if (ov != self && ov != ou) outbox[ov].push_back({tag, id, 0});
  }

  /// Superstep C: sum a pair of local counters over all shards. Every shard
  /// obtains the identical global value, which is what keeps model metrics
  /// and loop decisions in lock-step across the mesh.
  std::pair<std::uint64_t, std::uint64_t> allreduce(std::uint64_t a,
                                                    std::uint64_t b) {
    clear_outbox();
    for (std::size_t d = 0; d < shards; ++d)
      if (d != self) outbox[d].push_back({kTagStats, a, b});
    net.exchange(outbox, inbox);
    for (std::size_t s = 0; s < shards; ++s) {
      for (const Message& msg : inbox[s]) {
        SPAR_CHECK(msg.tag == kTagStats, "allreduce superstep got tag " +
                                             std::to_string(msg.tag));
        a += msg.a;
        b += msg.b;
      }
    }
    return {a, b};
  }

  /// Superstep D: publish this shard's owned ids to every peer; return the
  /// global union (owned first, then peers in ascending shard order).
  std::vector<EdgeId> broadcast_ids(Tag tag, std::vector<EdgeId> owned) {
    clear_outbox();
    for (std::size_t d = 0; d < shards; ++d) {
      if (d == self) continue;
      outbox[d].reserve(owned.size());
      for (EdgeId id : owned) outbox[d].push_back({tag, id, 0});
    }
    net.exchange(outbox, inbox);
    for (std::size_t s = 0; s < shards; ++s) {
      for (const Message& msg : inbox[s]) {
        SPAR_CHECK(msg.tag == tag, "broadcast superstep got tag " +
                                       std::to_string(msg.tag));
        owned.push_back(static_cast<EdgeId>(msg.a));
      }
    }
    return owned;
  }
};

World make_world(Transport& net, const EdgeView& edges) {
  World w(net, edges.num_vertices);
  w.du.assign(edges.u, edges.u + edges.size);
  w.dv.assign(edges.v, edges.v + edges.size);
  w.dw.assign(edges.w, edges.w + edges.size);
  return w;
}

World make_world(Transport& net, const Graph& g) {
  World w(net, g.num_vertices());
  const auto edges = g.edges();
  w.du.reserve(edges.size());
  w.dv.reserve(edges.size());
  w.dw.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    w.du.push_back(e.u);
    w.dv.push_back(e.v);
    w.dw.push_back(e.w);
  }
  return w;
}

// ---------------------------------------------------------------------------
// Spanner
// ---------------------------------------------------------------------------

/// The sharded Theorem 2 protocol. Requires w.rebuild_adjacency() to reflect
/// the current directory. Model metrics follow the PR 1 simulator formulas
/// exactly, evaluated on the allreduced global sums, so every shard (and
/// every shard COUNT) reports the same DistMetrics.
ShardSpannerOutput spanner_impl(World& w, const std::vector<bool>* alive,
                                const DistSpannerOptions& options) {
  const Vertex n = w.n;
  const std::size_t m = w.num_edges();
  const std::size_t k =
      options.k != 0 ? options.k : spanner::auto_spanner_k(n);
  support::WorkScope work(options.work);

  ShardSpannerOutput out;
  out.metrics.max_message_words = kWordsPerMessage;

  if (alive != nullptr)
    SPAR_CHECK(alive->size() == m,
               "run_shard_spanner: alive mask size mismatch");
  std::vector<bs::EdgeState> state = bs::initial_states(m, alive);

  std::vector<Vertex> center(n), new_center(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) center[v] = v;

  const double sample_p = bs::sample_probability(n, k);
  bs::ClusterScratch scratch(n);
  bs::Decisions decisions;
  std::vector<std::uint8_t> sampled(n, 0);

  const Vertex vbeg = w.part.begin(w.self);
  const Vertex vend = w.part.end(w.self);
  const auto owns = [&w](EdgeId id) { return w.owns_edge(id); };

  // Drain superstep-A/B messages: ghost centers land in new_center, remote
  // decisions append after the local ones (source order is the shard order,
  // so the merged batch is identical on every run; commit sorts the adds, so
  // merge order cannot change the outcome anyway).
  const auto drain_sync = [&]() {
    for (std::size_t s = 0; s < w.shards; ++s) {
      for (const Message& msg : w.inbox[s]) {
        switch (msg.tag) {
          case kTagCenter:
            new_center[static_cast<Vertex>(msg.a)] =
                static_cast<Vertex>(msg.b);
            break;
          case kTagAdd:
            decisions.add.push_back(static_cast<EdgeId>(msg.a));
            break;
          case kTagDiscard:
            decisions.discard.push_back(static_cast<EdgeId>(msg.a));
            break;
          default:
            SPAR_CHECK(false, "spanner sync superstep got tag " +
                                  std::to_string(msg.tag));
        }
      }
    }
  };

  const auto send_centers = [&]() {
    for (Vertex l = 0; l < vend - vbeg; ++l) {
      const Vertex v = vbeg + l;
      // A ghost copy already knows a retired vertex stays retired; only
      // live-or-just-retired centers need the wire.
      if (center[v] == kInvalidVertex && new_center[v] == kInvalidVertex)
        continue;
      for (std::size_t g = w.ghost_off[l]; g < w.ghost_off[l + 1]; ++g)
        w.outbox[w.ghost_dst[g]].push_back(
            {kTagCenter, v, static_cast<std::uint64_t>(new_center[v])});
    }
  };

  const auto route_decisions = [&]() {
    for (EdgeId id : decisions.add) w.route_edge(kTagAdd, id);
    for (EdgeId id : decisions.discard) w.route_edge(kTagDiscard, id);
  };

  // ---- Phase 1: k-1 clustering iterations --------------------------------
  for (std::size_t iter = 1; iter < k; ++iter) {
    out.metrics.rounds += static_cast<std::uint64_t>(iter) + 2;

    // The coin is a pure function of (seed, iter, cluster): every shard
    // evaluates the full table locally, nothing to exchange.
    for (Vertex c = 0; c < n; ++c)
      sampled[c] = bs::cluster_sampled(options.seed, iter, c, sample_p);

    std::uint64_t alive_local = 0;
    for (Vertex v = vbeg; v < vend; ++v) {
      alive_local += bs::phase1_decide(w.adj, v, center, sampled, state,
                                       scratch, decisions, new_center, work);
    }

    // Superstep A+B (one exchange): ghost centers + border-edge decisions.
    w.clear_outbox();
    send_centers();
    route_decisions();
    w.net.exchange(w.outbox, w.inbox);
    drain_sync();

    const std::uint64_t added_local =
        bs::commit_owned(decisions, state, out.owned_spanner_edges, owns);

    // Superstep C: the simulator's per-iteration message count, allreduced.
    const auto [alive_g, added_g] = w.allreduce(alive_local, added_local);
    out.metrics.messages += alive_g + added_g;
    const std::uint64_t iter_words = (alive_g + added_g) * kWordsPerMessage;
    if (iter_words > out.metrics.max_round_words)
      out.metrics.max_round_words = iter_words;

    center.swap(new_center);
    std::fill(new_center.begin(), new_center.end(), kInvalidVertex);
  }

  // ---- Phase 2: vertex-cluster joining -----------------------------------
  out.metrics.rounds += 2;
  std::uint64_t alive_local = 0;
  for (Vertex v = vbeg; v < vend; ++v)
    alive_local +=
        bs::phase2_decide(w.adj, v, center, state, scratch, decisions, work);

  w.clear_outbox();
  route_decisions();
  w.net.exchange(w.outbox, w.inbox);
  drain_sync();
  const std::uint64_t added_local =
      bs::commit_owned(decisions, state, out.owned_spanner_edges, owns);

  const auto [alive_g, added_g] = w.allreduce(alive_local, added_local);
  out.metrics.messages += alive_g + added_g;
  const std::uint64_t p2_words = (alive_g + added_g) * kWordsPerMessage;
  if (p2_words > out.metrics.max_round_words)
    out.metrics.max_round_words = p2_words;

  out.metrics.words = out.metrics.messages * kWordsPerMessage;
  std::sort(out.owned_spanner_edges.begin(), out.owned_spanner_edges.end());
  return out;
}

// ---------------------------------------------------------------------------
// PARALLELSAMPLE round
// ---------------------------------------------------------------------------

struct RoundStats {
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  std::size_t bundle_edges = 0;
  std::size_t off_bundle_edges = 0;
  std::size_t sampled_edges = 0;
  std::size_t t_used = 0;
};

/// One sharded PARALLELSAMPLE round over the world's current directory and
/// slice. Mirrors dist_sample_round / sparsify::parallel_sample_round: same
/// seed derivations (bundle_seed, coin_seed, mix64(seed, i+1) per peel
/// component), same verdict arithmetic, same model metrics.
RoundStats shard_sample_round(World& w, const DistSampleOptions& options,
                              DistMetrics& metrics) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sample: epsilon must be positive");
  SPAR_CHECK(options.keep_probability > 0.0 && options.keep_probability <= 1.0,
             "distributed_parallel_sample: keep_probability must be in (0, 1]");

  RoundStats stats;
  const std::size_t m = w.num_edges();
  stats.edges_before = m;
  stats.t_used = options.t != 0
                     ? options.t
                     : sparsify::theory_bundle_width(w.n, options.epsilon);

  w.rebuild_adjacency();

  // The shared peel loop drives t sharded spanner runs; superstep D after
  // each component gives every shard the full component edge set, so the
  // alive/in-bundle masks -- and the peel's own termination test -- evolve
  // identically on every shard. The broadcast costs wire only: the model
  // already priced the component's announcements inside spanner metrics.
  const spanner::Bundle bundle = spanner::detail::peel_bundle(
      m, stats.t_used, sparsify::detail::bundle_seed(options.seed),
      [&](std::uint64_t component_seed, const std::vector<bool>& alive) {
        DistSpannerOptions sopt;
        sopt.k = 0;
        sopt.seed = component_seed;
        sopt.work = options.work;
        ShardSpannerOutput component = spanner_impl(w, &alive, sopt);
        metrics.absorb(component.metrics);
        return w.broadcast_ids(kTagBundle,
                               std::move(component.owned_spanner_edges));
      });
  stats.bundle_edges = bundle.bundle_edge_count;
  stats.off_bundle_edges = bundle.off_bundle_edge_count;

  // Off-bundle coins are pure functions of (coin seed, global id): each
  // shard flips for its OWNED edges (the per-edge work is partitioned), and
  // one allreduce recovers the model's announcement count.
  support::WorkScope work(options.work);
  work.add(w.slice.size());
  const double keep_p = options.keep_probability;
  const double inv_p = 1.0 / keep_p;
  const std::uint64_t cseed = sparsify::detail::coin_seed(options.seed);

  std::uint64_t sampled_local = 0;
  for (std::size_t i = 0; i < w.slice.size(); ++i) {
    const EdgeId gid = w.slice.global_ids[i];
    if (!bundle.in_bundle[gid] &&
        sparsify::detail::keeps_edge(cseed, gid, keep_p))
      ++sampled_local;
  }
  const auto [sampled_g, zero] = w.allreduce(sampled_local, 0);
  (void)zero;
  metrics.rounds += 1;
  metrics.messages += sampled_g;
  metrics.words += sampled_g * kWordsPerMessage;
  const std::uint64_t coin_words = sampled_g * kWordsPerMessage;
  if (coin_words > metrics.max_round_words)
    metrics.max_round_words = coin_words;
  stats.sampled_edges = static_cast<std::size_t>(sampled_g);

  // Survivors and their global ranks are recomputed identically on every
  // shard (bundle mask is global state, coins are pure). new_id[e] is the
  // rank a serial filter-append loop would assign -- the id contract every
  // downstream round depends on.
  std::vector<EdgeId> new_id(m);
  std::vector<bool> survives(m);
  std::size_t rank = 0;
  for (std::size_t e = 0; e < m; ++e) {
    const bool keep =
        bundle.in_bundle[e] ||
        sparsify::detail::keeps_edge(cseed, static_cast<EdgeId>(e), keep_p);
    survives[e] = keep;
    new_id[e] = rank;
    if (keep) ++rank;
  }

  // Directory compaction (replicated, in place, index order preserved).
  std::size_t at = 0;
  for (std::size_t e = 0; e < m; ++e) {
    if (!survives[e]) continue;
    w.du[at] = w.du[e];
    w.dv[at] = w.dv[e];
    w.dw[at] = bundle.in_bundle[e] ? w.dw[e] : w.dw[e] * inv_p;
    ++at;
  }
  w.du.resize(at);
  w.dv.resize(at);
  w.dw.resize(at);

  // Owned-slice compaction through the arena (stable, reweight-on-compact),
  // then remap the surviving global ids to their new ranks.
  const std::vector<EdgeId>& gids = w.slice.global_ids;
  w.slice.arena.compact(
      [&](std::size_t i) { return survives[gids[i]]; },
      [&](std::size_t i) {
        return bundle.in_bundle[gids[i]] ? w.slice.arena.weight(i)
                                         : w.slice.arena.weight(i) * inv_p;
      });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < w.slice.global_ids.size(); ++i) {
    const EdgeId gid = w.slice.global_ids[i];
    if (survives[gid]) w.slice.global_ids[kept++] = new_id[gid];
  }
  w.slice.global_ids.resize(kept);
  SPAR_ASSERT(kept == w.slice.arena.size());

  stats.edges_after = at;
  return stats;
}

ShardEdges slice_to_edges(const graph::ShardSlice& slice) {
  ShardEdges out;
  const std::size_t count = slice.size();
  out.ids = slice.global_ids;
  out.u.reserve(count);
  out.v.reserve(count);
  out.w.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.u.push_back(slice.arena.u(i));
    out.v.push_back(slice.arena.v(i));
    out.w.push_back(slice.arena.weight(i));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public SPMD entry points
// ---------------------------------------------------------------------------

ShardSpannerOutput run_shard_spanner(Transport& net, const EdgeView& edges,
                                     const std::vector<bool>* alive,
                                     const DistSpannerOptions& options) {
  World w = make_world(net, edges);
  w.rebuild_adjacency();
  return spanner_impl(w, alive, options);
}

ShardSampleOutput run_shard_sample(Transport& net, const Graph& g,
                                   const DistSampleOptions& options) {
  World w = make_world(net, g);
  w.slice = graph::make_shard_slice(w.directory_view(), w.part, w.self);

  ShardSampleOutput out;
  out.metrics.max_message_words = kWordsPerMessage;
  const RoundStats stats = shard_sample_round(w, options, out.metrics);
  out.owned = slice_to_edges(w.slice);
  out.final_edges = stats.edges_after;
  out.bundle_edges = stats.bundle_edges;
  out.off_bundle_edges = stats.off_bundle_edges;
  out.sampled_edges = stats.sampled_edges;
  out.t_used = stats.t_used;
  return out;
}

ShardSparsifyOutput run_shard_sparsify(Transport& net, const Graph& g,
                                       const DistSparsifyOptions& options) {
  SPAR_CHECK(options.epsilon > 0.0,
             "distributed_parallel_sparsify: epsilon must be positive");
  SPAR_CHECK(options.rho >= 1.0,
             "distributed_parallel_sparsify: rho must be >= 1");

  World w = make_world(net, g);
  w.slice = graph::make_shard_slice(w.directory_view(), w.part, w.self);

  ShardSparsifyOutput out;
  out.metrics.max_message_words = kWordsPerMessage;
  const auto rounds_planned = static_cast<std::size_t>(
      std::ceil(std::log2(std::max(options.rho, 1.0))));
  if (rounds_planned > 0) {
    const double per_round_epsilon =
        options.epsilon / static_cast<double>(rounds_planned);
    for (std::size_t round = 0; round < rounds_planned; ++round) {
      DistSampleOptions sopt;
      sopt.epsilon = per_round_epsilon;
      sopt.t = options.t;
      sopt.keep_probability = options.keep_probability;
      sopt.seed = support::mix64(options.seed, round + 1);
      sopt.work = options.work;

      DistRound stats;
      stats.metrics.max_message_words = kWordsPerMessage;
      const RoundStats sample = shard_sample_round(w, sopt, stats.metrics);
      stats.edges_before = sample.edges_before;
      stats.edges_after = sample.edges_after;
      out.rounds.push_back(stats);
      out.metrics.absorb(stats.metrics);

      const bool saturated = sample.sampled_edges == 0 &&
                             sample.bundle_edges == sample.edges_before;
      if (options.stop_when_saturated && saturated)
        break;  // bundle swallowed the graph; rest are identities
    }
  }
  out.owned = slice_to_edges(w.slice);
  out.final_edges = w.num_edges();
  return out;
}

Graph merge_shard_edges(Vertex n, std::size_t final_edges,
                        const std::vector<ShardEdges>& slices) {
  std::size_t total = 0;
  for (const ShardEdges& s : slices) total += s.size();
  SPAR_CHECK(total == final_edges,
             "merge_shard_edges: slices cover " + std::to_string(total) +
                 " of " + std::to_string(final_edges) + " edges");

  graph::EdgeArena arena;
  arena.resize(n, final_edges);
  std::vector<bool> placed(final_edges, false);
  auto u = arena.mutable_u();
  auto v = arena.mutable_v();
  auto w = arena.weights();
  for (const ShardEdges& s : slices) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const EdgeId id = s.ids[i];
      SPAR_CHECK(id < final_edges && !placed[id],
                 "merge_shard_edges: id " + std::to_string(id) +
                     " out of range or duplicated");
      placed[id] = true;
      u[id] = s.u[i];
      v[id] = s.v[i];
      w[id] = s.w[i];
    }
  }
  return arena.to_graph();
}

}  // namespace spar::dist
