#include "dist/transport.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/framing.hpp"
#include "support/rng.hpp"

namespace spar::dist {

namespace {

// Refuse absurd frames before allocating for them: a superstep batch in
// these protocols is O(m) messages, and every test graph is far below this.
constexpr std::uint64_t kMaxBatchMessages = (1ULL << 32);

}  // namespace

// ---------------------------------------------------------------------------
// Transport: accounting + the reconciliation assert, backend-independent.
// ---------------------------------------------------------------------------

void Transport::exchange(std::vector<std::vector<Message>>& out,
                         std::vector<std::vector<Message>>& in) {
  const std::size_t shards = shard_count();
  SPAR_CHECK(out.size() == shards,
             "exchange: out has " + std::to_string(out.size()) +
                 " batches for " + std::to_string(shards) + " shards");
  std::uint64_t remote_messages = 0;
  for (std::size_t d = 0; d < shards; ++d) {
    if (d == shard_id()) continue;
    remote_messages += out[d].size();
  }
  const std::uint64_t words = remote_messages * kWordsPerMessage;
  const std::uint64_t payload = words * sizeof(std::uint64_t);
  const std::uint64_t frames = shards > 1 ? shards - 1 : 0;

  const std::uint64_t wrote = ship(out, in);

  // The wire identity: every word the protocol deposited is on the wire
  // exactly once, plus one frame header per peer -- nothing hidden, nothing
  // dropped. This runs on EVERY superstep of every run, not just in tests.
  SPAR_CHECK(wrote == payload + frames * frame_overhead_bytes(),
             "wire reconciliation failed: wrote " + std::to_string(wrote) +
                 " bytes, expected " + std::to_string(payload) +
                 " payload + " + std::to_string(frames) + " x " +
                 std::to_string(frame_overhead_bytes()) + " framing");

  wire_.supersteps += 1;
  wire_.frames += frames;
  wire_.messages += remote_messages;
  wire_.words += words;
  wire_.payload_bytes += payload;
  wire_.wire_bytes += wrote;
  if (words > wire_.max_round_words) wire_.max_round_words = words;
}

// ---------------------------------------------------------------------------
// LoopbackTransport
// ---------------------------------------------------------------------------

struct LoopbackHub::Impl {
  class Endpoint final : public Transport {
   public:
    Endpoint(Impl& hub, std::size_t shard) : hub_(hub), shard_(shard) {}

    std::size_t shard_count() const override { return hub_.shards; }
    std::size_t shard_id() const override { return shard_; }
    std::size_t frame_overhead_bytes() const override { return 0; }

   protected:
    std::uint64_t ship(std::vector<std::vector<Message>>& out,
                       std::vector<std::vector<Message>>& in) override {
      return hub_.ship(shard_, out, in);
    }

   private:
    Impl& hub_;
    std::size_t shard_;
  };

  explicit Impl(std::size_t shard_count) : shards(shard_count) {
    SPAR_CHECK(shards >= 1, "LoopbackHub wants at least 1 shard");
    for (int parity = 0; parity < 2; ++parity)
      mail[parity].assign(shards, std::vector<std::vector<Message>>(shards));
    endpoints.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      endpoints.push_back(std::make_unique<Endpoint>(*this, s));
  }

  std::uint64_t ship(std::size_t self, std::vector<std::vector<Message>>& out,
                     std::vector<std::vector<Message>>& in) {
    std::uint64_t bytes = 0;
    const int parity = static_cast<int>(round[self] & 1);
    // Deposit: slot (parity, dst, self) is written only by `self` this
    // round and read only after the barrier, so no lock is needed; the
    // barrier's mutex publishes the writes.
    for (std::size_t d = 0; d < shards; ++d) {
      if (d != self)
        bytes += out[d].size() * sizeof(Message);
      mail[parity][d][self] = std::move(out[d]);
      out[d].clear();
    }

    // Generation barrier: last arriver flips the generation and wakes the
    // cohort. abort() wakes everyone with `aborted` set instead.
    {
      std::unique_lock<std::mutex> lock(mu);
      const std::uint64_t my_gen = generation;
      if (++arrived == shards) {
        arrived = 0;
        ++generation;
        cv.notify_all();
      } else {
        cv.wait(lock, [&] { return generation != my_gen || aborted; });
      }
      if (aborted)
        throw Error("loopback transport aborted: a sibling shard failed");
    }

    in.resize(shards);
    for (std::size_t s = 0; s < shards; ++s)
      in[s] = std::move(mail[parity][self][s]);
    ++round[self];
    // Loopback "wire" bytes are the payload bytes moved between shards --
    // reconciles with zero framing overhead.
    return bytes;
  }

  std::size_t shards;
  // mail[parity][dst][src]: parity double-buffering lets a fast shard
  // deposit round r+1 while a slow one is still collecting round r.
  std::vector<std::vector<std::vector<Message>>> mail[2];
  std::vector<std::uint64_t> round = std::vector<std::uint64_t>(shards, 0);
  std::vector<std::unique_ptr<Endpoint>> endpoints;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;
};

LoopbackHub::LoopbackHub(std::size_t shards) : impl_(new Impl(shards)) {}
LoopbackHub::~LoopbackHub() { delete impl_; }

std::size_t LoopbackHub::shards() const { return impl_->shards; }

Transport& LoopbackHub::endpoint(std::size_t shard) {
  SPAR_CHECK(shard < impl_->shards,
             "endpoint " + std::to_string(shard) + " of " +
                 std::to_string(impl_->shards));
  return *impl_->endpoints[shard];
}

void LoopbackHub::abort() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->aborted = true;
  impl_->cv.notify_all();
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

namespace {

// One frame per (peer, superstep): fixed header + count raw Messages. The
// checksum seed binds (src, round, count) so a frame replayed into another
// round -- or truncated and spliced -- fails verification, same discipline
// as SPARBIN section checksums.
struct FrameHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t src = 0;
  std::uint64_t round = 0;
  std::uint64_t count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(FrameHeader) == 48, "frame header must pack to 48 bytes");

constexpr std::uint64_t kFrameMagic = 0x5350415244535446ULL;  // "SPARDSTF"
constexpr std::uint32_t kFrameVersion = 1;
// Rendezvous hello: a zero-payload frame in a round no superstep uses.
constexpr std::uint64_t kHelloRound = ~0ULL;

std::uint64_t frame_seed(std::uint32_t src, std::uint64_t round,
                         std::uint64_t count) {
  return support::mix64(support::mix64(src, round), count);
}

void send_hello(const support::net::Socket& sock, std::size_t self) {
  FrameHeader h;
  h.magic = kFrameMagic;
  h.version = kFrameVersion;
  h.src = static_cast<std::uint32_t>(self);
  h.round = kHelloRound;
  h.checksum = support::framing::checksum_bytes(nullptr, 0,
                                                frame_seed(h.src, h.round, 0));
  sock.write_exact(&h, sizeof(h));
}

std::size_t recv_hello(const support::net::Socket& sock) {
  FrameHeader h;
  if (!sock.read_exact(&h, sizeof(h)))
    throw Error("shard mesh rendezvous: peer closed before hello");
  SPAR_CHECK(h.magic == kFrameMagic && h.version == kFrameVersion,
             "shard mesh rendezvous: bad hello frame");
  SPAR_CHECK(h.round == kHelloRound && h.count == 0 && h.payload_bytes == 0,
             "shard mesh rendezvous: hello carries a payload");
  return h.src;
}

std::string port_file(const SocketMeshOptions& opt, std::size_t shard) {
  return opt.tcp_rendezvous_dir + "/port." + std::to_string(shard);
}

/// Publish this shard's bound port. Write-then-rename so a polling peer
/// never reads a half-written file.
void publish_port(const SocketMeshOptions& opt, std::size_t shard,
                  std::uint16_t port) {
  const std::string final_path = port_file(opt, shard);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  SPAR_CHECK(f != nullptr, "cannot write rendezvous file " + tmp_path);
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  SPAR_CHECK(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
             "cannot publish rendezvous file " + final_path);
}

/// Poll a peer's port file until it appears (or the deadline passes).
std::uint16_t read_port(const SocketMeshOptions& opt, std::size_t peer,
                        std::chrono::steady_clock::time_point deadline) {
  const std::string path = port_file(opt, peer);
  for (;;) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      unsigned port = 0;
      const int got = std::fscanf(f, "%u", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port <= 65535)
        return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() >= deadline)
      throw Error("shard mesh rendezvous: no port file from shard " +
                  std::to_string(peer));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

support::net::Socket connect_with_retry(const SocketMeshOptions& opt,
                                        std::size_t peer) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.connect_timeout_ms);
  for (;;) {
    try {
      if (!opt.unix_base.empty())
        return support::net::connect_unix(opt.unix_base + "." +
                                          std::to_string(peer));
      return support::net::connect_tcp(read_port(opt, peer, deadline));
    } catch (const Error&) {
      // Peer process may still be booting its listener; retry until the
      // rendezvous deadline.
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace

SocketTransport::SocketTransport(std::size_t shard, std::size_t shards,
                                 const SocketMeshOptions& options)
    : shard_(shard), shards_(shards) {
  SPAR_CHECK(shards_ >= 1 && shard_ < shards_,
             "socket transport shard " + std::to_string(shard_) + " of " +
                 std::to_string(shards_));
  SPAR_CHECK(options.unix_base.empty() != options.tcp_rendezvous_dir.empty(),
             "socket mesh wants exactly one of unix_base / tcp_rendezvous_dir");
  peers_.resize(shards_);
  if (shards_ == 1) return;

  // Rendezvous: everyone listens; shard s dials every lower-numbered peer
  // (so each edge of the mesh has exactly one dialer) and identifies itself
  // with a hello frame; accepted connections are filed under the shard id
  // their hello announces, which makes accept order irrelevant. TCP shards
  // bind port 0 and publish the kernel's pick through the rendezvous dir.
  support::net::Listener listener =
      !options.unix_base.empty()
          ? support::net::Listener::unix_domain(options.unix_base + "." +
                                                std::to_string(shard_))
          : support::net::Listener::tcp(0);
  if (options.unix_base.empty())
    publish_port(options, shard_, listener.port());

  for (std::size_t peer = 0; peer < shard_; ++peer) {
    support::net::Socket sock = connect_with_retry(options, peer);
    send_hello(sock, shard_);
    peers_[peer] = std::move(sock);
  }
  for (std::size_t expected = shard_ + 1; expected < shards_; ++expected) {
    support::net::Socket sock = listener.accept();
    SPAR_CHECK(sock.valid(), "shard mesh rendezvous: listener closed early");
    const std::size_t who = recv_hello(sock);
    SPAR_CHECK(who > shard_ && who < shards_ && !peers_[who].valid(),
               "shard mesh rendezvous: unexpected hello from shard " +
                   std::to_string(who));
    peers_[who] = std::move(sock);
  }
}

SocketTransport::~SocketTransport() = default;

std::size_t SocketTransport::frame_overhead_bytes() const {
  return sizeof(FrameHeader);
}

void SocketTransport::send_batch(std::size_t peer,
                                 const std::vector<Message>& batch,
                                 std::uint64_t& bytes_written) {
  FrameHeader h;
  h.magic = kFrameMagic;
  h.version = kFrameVersion;
  h.src = static_cast<std::uint32_t>(shard_);
  h.round = round_;
  h.count = batch.size();
  h.payload_bytes = batch.size() * sizeof(Message);
  h.checksum = support::framing::checksum_bytes(
      batch.data(), h.payload_bytes, frame_seed(h.src, h.round, h.count));
  peers_[peer].write_exact(&h, sizeof(h));
  if (h.payload_bytes > 0) peers_[peer].write_exact(batch.data(), h.payload_bytes);
  bytes_written += sizeof(h) + h.payload_bytes;
}

void SocketTransport::recv_batch(std::size_t peer, std::vector<Message>& batch) {
  FrameHeader h;
  if (!peers_[peer].read_exact(&h, sizeof(h)))
    throw Error("shard " + std::to_string(peer) +
                " closed its connection mid-run (peer crashed?)");
  SPAR_CHECK(h.magic == kFrameMagic && h.version == kFrameVersion,
             "bad frame from shard " + std::to_string(peer));
  SPAR_CHECK(h.src == peer, "frame from shard " + std::to_string(h.src) +
                                " on shard " + std::to_string(peer) +
                                "'s connection");
  SPAR_CHECK(h.round == round_,
             "superstep skew: shard " + std::to_string(peer) + " is at round " +
                 std::to_string(h.round) + ", we are at " +
                 std::to_string(round_));
  SPAR_CHECK(h.count <= kMaxBatchMessages &&
                 h.payload_bytes == h.count * sizeof(Message),
             "frame from shard " + std::to_string(peer) +
                 " declares inconsistent payload");
  batch.resize(static_cast<std::size_t>(h.count));
  if (h.payload_bytes > 0) {
    if (!peers_[peer].read_exact(batch.data(), h.payload_bytes))
      throw Error("shard " + std::to_string(peer) + " truncated a frame");
  }
  const std::uint64_t sum = support::framing::checksum_bytes(
      batch.data(), h.payload_bytes, frame_seed(h.src, h.round, h.count));
  SPAR_CHECK(sum == h.checksum,
             "frame checksum mismatch from shard " + std::to_string(peer) +
                 " at round " + std::to_string(round_));
}

std::uint64_t SocketTransport::ship(std::vector<std::vector<Message>>& out,
                                    std::vector<std::vector<Message>>& in) {
  in.resize(shards_);
  in[shard_] = std::move(out[shard_]);
  out[shard_].clear();
  if (shards_ == 1) {
    ++round_;
    return 0;
  }

  // Sends run on a helper thread while this thread drains the peers in
  // ascending order: with every shard writing and reading concurrently the
  // mesh cannot deadlock on full kernel send buffers, whatever the batch
  // sizes. Empty batches still frame -- the frame IS the round barrier.
  std::uint64_t bytes_written = 0;
  std::exception_ptr send_error;
  std::thread sender([&] {
    try {
      for (std::size_t peer = 0; peer < shards_; ++peer) {
        if (peer == shard_) continue;
        send_batch(peer, out[peer], bytes_written);
      }
    } catch (...) {
      send_error = std::current_exception();
    }
  });
  std::exception_ptr recv_error;
  try {
    for (std::size_t peer = 0; peer < shards_; ++peer) {
      if (peer == shard_) continue;
      recv_batch(peer, in[peer]);
    }
  } catch (...) {
    recv_error = std::current_exception();
    // Unblock the sender if it is parked on a dead peer's full buffer.
    for (std::size_t peer = 0; peer < shards_; ++peer)
      if (peer != shard_) peers_[peer].shutdown_rw();
  }
  sender.join();
  if (recv_error) std::rethrow_exception(recv_error);
  if (send_error) std::rethrow_exception(send_error);

  for (std::size_t peer = 0; peer < shards_; ++peer) out[peer].clear();
  ++round_;
  return bytes_written;
}

}  // namespace spar::dist
