// The sharded SPMD core of the distributed protocols (Theorem 2 spanner,
// Theorem 5 distributed PARALLELSPARSIFY).
//
// Every shard of a Transport mesh calls the same entry point with the same
// input graph and options; vertices are split into contiguous owned ranges
// (graph::VertexPartition) and each shard decides ONLY for its owned
// vertices, using the exact per-vertex decision functions of
// spanner/bs_core.hpp over a graph::ShardAdjacency that carries global edge
// ids. Cross-shard coupling is a handful of superstep kinds:
//
//   A. center sync    -- owned border vertices push their new cluster center
//                        to every shard holding them as a ghost;
//   B. decision sync  -- add/discard verdicts on border edges go to the other
//                        endpoint's owner, so both trackers of an edge replay
//                        the identical commit (bs_core::commit_owned);
//   C. stats allreduce -- per-iteration (alive arcs, added) sums, so every
//                        shard computes the SAME model-level DistMetrics the
//                        PR 1 sequential simulator produced;
//   D. bundle publish -- each peel component's owned spanner edges broadcast
//                        so every shard keeps the full alive/in-bundle masks
//                        (the t-bundle loop is then shared code:
//                        spanner::detail::peel_bundle, verbatim).
//
// Everything else is shard-local: sampling coins and off-bundle coin flips
// are pure functions of (seed, id), so survivor masks and the global
// compaction ranks are recomputed identically everywhere instead of being
// communicated. The result is bit-identical output for ANY shard count and
// either transport -- the same edge sets, in the same order, with the same
// model metrics as the one-process simulator and the shared-memory
// implementations (pinned by tests/dist/test_shard.cpp).
//
// Each shard holds its owned edges as a graph::ShardSlice (EdgeArena slice,
// compacted in place every sparsify round) plus a replicated read-mostly
// edge directory (u/v/w by global id) that backs ghost adjacency and
// ownership routing; see DESIGN.md §8 for the layout discussion.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/dist_spanner.hpp"
#include "dist/transport.hpp"
#include "graph/edge_view.hpp"
#include "graph/graph.hpp"

namespace spar::dist {

/// One shard's share of a spanner run. `metrics` is the model-level account
/// and comes out IDENTICAL on every shard (superstep C).
struct ShardSpannerOutput {
  std::vector<graph::EdgeId> owned_spanner_edges;  ///< sorted global ids
  DistMetrics metrics;
};

/// SPMD spanner: every shard of `net` calls this with the same `edges`,
/// `alive` mask and options. The union of owned_spanner_edges over shards
/// equals distributed_spanner's (and baswana_sen_spanner's) edge set.
ShardSpannerOutput run_shard_spanner(Transport& net,
                                     const graph::EdgeView& edges,
                                     const std::vector<bool>* alive,
                                     const DistSpannerOptions& options);

/// A shard's owned slice of a result edge universe: edge ids are the FINAL
/// global ids (compaction ranks), so slices from all shards reassemble into
/// the exact edge list the shared-memory pipeline produces.
struct ShardEdges {
  std::vector<graph::EdgeId> ids;
  std::vector<graph::Vertex> u;
  std::vector<graph::Vertex> v;
  std::vector<double> w;

  std::size_t size() const { return ids.size(); }
};

struct ShardSampleOutput {
  ShardEdges owned;              ///< this shard's slice of the sparsifier
  std::size_t final_edges = 0;   ///< global sparsifier size (same on all shards)
  std::size_t bundle_edges = 0;
  std::size_t off_bundle_edges = 0;
  std::size_t sampled_edges = 0;
  std::size_t t_used = 0;
  DistMetrics metrics;
};

/// SPMD PARALLELSAMPLE round (mirrors distributed_parallel_sample).
ShardSampleOutput run_shard_sample(Transport& net, const graph::Graph& g,
                                   const DistSampleOptions& options);

struct ShardSparsifyOutput {
  ShardEdges owned;
  std::size_t final_edges = 0;
  std::vector<DistRound> rounds;
  DistMetrics metrics;
};

/// SPMD PARALLELSPARSIFY (mirrors distributed_parallel_sparsify).
ShardSparsifyOutput run_shard_sparsify(Transport& net, const graph::Graph& g,
                                       const DistSparsifyOptions& options);

/// Reassemble the full result edge list from every shard's owned slice.
/// Slices must cover [0, final_edges) with disjoint id sets (which the
/// ownership rule guarantees); throws otherwise.
graph::Graph merge_shard_edges(graph::Vertex n, std::size_t final_edges,
                               const std::vector<ShardEdges>& slices);

}  // namespace spar::dist
