// Result-file format between dist_worker processes and the launcher
// (dist/runner.cpp). Internal to src/dist; not installed API.
//
// A worker's whole output -- its owned edge slice, per-run stats, model
// metrics and wire metrics -- is flattened into a word stream (doubles
// bit-cast), framed as magic + word count + payload + chunked-FNV checksum
// (support/framing.hpp, seeded with the count). The launcher refuses a
// truncated or corrupted file instead of merging garbage.
#pragma once

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dist/shard.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/framing.hpp"

namespace spar::dist::detail {

inline constexpr std::uint64_t kWorkerFileMagic = 0x5350415257524b52ULL;  // "SPARWRKR"

/// Union of every mode's outputs; unused sections stay empty.
struct WorkerResult {
  std::vector<graph::EdgeId> spanner_ids;  // spanner mode
  ShardEdges owned;                        // sample / sparsify modes
  std::uint64_t final_edges = 0;
  std::uint64_t bundle_edges = 0;
  std::uint64_t off_bundle_edges = 0;
  std::uint64_t sampled_edges = 0;
  std::uint64_t t_used = 0;
  std::vector<DistRound> rounds;  // sparsify mode
  DistMetrics metrics;
  WireMetrics wire;
  std::uint64_t work = 0;  // WorkCounter total of this shard's share
};

class WordWriter {
 public:
  void u64(std::uint64_t x) { words_.push_back(x); }
  void f64(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    words_.push_back(bits);
  }
  template <typename T>
  void u64_span(const std::vector<T>& xs) {
    u64(xs.size());
    for (const T& x : xs) u64(static_cast<std::uint64_t>(x));
  }
  void f64_span(const std::vector<double>& xs) {
    u64(xs.size());
    for (double x : xs) f64(x);
  }
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
};

class WordReader {
 public:
  explicit WordReader(const std::vector<std::uint64_t>& words)
      : words_(words) {}
  std::uint64_t u64() {
    SPAR_CHECK(at_ < words_.size(), "worker result: truncated word stream");
    return words_[at_++];
  }
  double f64() {
    const std::uint64_t bits = u64();
    double x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  }
  template <typename T>
  std::vector<T> u64_span() {
    const std::uint64_t count = u64();
    SPAR_CHECK(count <= words_.size() - at_,
               "worker result: array length exceeds stream");
    std::vector<T> xs(static_cast<std::size_t>(count));
    for (auto& x : xs) x = static_cast<T>(u64());
    return xs;
  }
  std::vector<double> f64_span() {
    const std::uint64_t count = u64();
    SPAR_CHECK(count <= words_.size() - at_,
               "worker result: array length exceeds stream");
    std::vector<double> xs(static_cast<std::size_t>(count));
    for (auto& x : xs) x = f64();
    return xs;
  }
  bool done() const { return at_ == words_.size(); }

 private:
  const std::vector<std::uint64_t>& words_;
  std::size_t at_ = 0;
};

inline void encode_metrics(WordWriter& w, const DistMetrics& m) {
  w.u64(m.rounds);
  w.u64(m.messages);
  w.u64(m.words);
  w.u64(m.max_message_words);
  w.u64(m.max_round_words);
}

inline DistMetrics decode_metrics(WordReader& r) {
  DistMetrics m;
  m.rounds = r.u64();
  m.messages = r.u64();
  m.words = r.u64();
  m.max_message_words = r.u64();
  m.max_round_words = r.u64();
  return m;
}

inline void encode_wire(WordWriter& w, const WireMetrics& m) {
  w.u64(m.supersteps);
  w.u64(m.frames);
  w.u64(m.messages);
  w.u64(m.words);
  w.u64(m.payload_bytes);
  w.u64(m.wire_bytes);
  w.u64(m.max_round_words);
}

inline WireMetrics decode_wire(WordReader& r) {
  WireMetrics m;
  m.supersteps = r.u64();
  m.frames = r.u64();
  m.messages = r.u64();
  m.words = r.u64();
  m.payload_bytes = r.u64();
  m.wire_bytes = r.u64();
  m.max_round_words = r.u64();
  return m;
}

inline void write_worker_result(const std::string& path,
                                const WorkerResult& res) {
  WordWriter w;
  w.u64_span(res.spanner_ids);
  w.u64_span(res.owned.ids);
  w.u64_span(res.owned.u);
  w.u64_span(res.owned.v);
  w.f64_span(res.owned.w);
  w.u64(res.final_edges);
  w.u64(res.bundle_edges);
  w.u64(res.off_bundle_edges);
  w.u64(res.sampled_edges);
  w.u64(res.t_used);
  w.u64(res.rounds.size());
  for (const DistRound& r : res.rounds) {
    w.u64(r.edges_before);
    w.u64(r.edges_after);
    encode_metrics(w, r.metrics);
  }
  encode_metrics(w, res.metrics);
  encode_wire(w, res.wire);
  w.u64(res.work);

  const std::vector<std::uint64_t>& words = w.words();
  const std::uint64_t count = words.size();
  const std::uint64_t checksum = support::framing::checksum_bytes(
      words.data(), count * sizeof(std::uint64_t), count);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SPAR_CHECK(out.good(), "dist_worker: cannot write " + path);
  out.write(reinterpret_cast<const char*>(&kWorkerFileMagic),
            sizeof(kWorkerFileMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  SPAR_CHECK(out.good(), "dist_worker: write failed for " + path);
}

inline WorkerResult read_worker_result(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPAR_CHECK(in.good(), "shard launcher: cannot read result " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  SPAR_CHECK(in.good() && magic == kWorkerFileMagic,
             "shard launcher: bad result header in " + path);
  SPAR_CHECK(count < (1ULL << 32),
             "shard launcher: absurd result size in " + path);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  SPAR_CHECK(in.good(), "shard launcher: truncated result " + path);
  const std::uint64_t expect = support::framing::checksum_bytes(
      words.data(), count * sizeof(std::uint64_t), count);
  SPAR_CHECK(checksum == expect,
             "shard launcher: result checksum mismatch in " + path);

  WordReader r(words);
  WorkerResult res;
  res.spanner_ids = r.u64_span<graph::EdgeId>();
  res.owned.ids = r.u64_span<graph::EdgeId>();
  res.owned.u = r.u64_span<graph::Vertex>();
  res.owned.v = r.u64_span<graph::Vertex>();
  res.owned.w = r.f64_span();
  res.final_edges = r.u64();
  res.bundle_edges = r.u64();
  res.off_bundle_edges = r.u64();
  res.sampled_edges = r.u64();
  res.t_used = r.u64();
  const std::uint64_t num_rounds = r.u64();
  SPAR_CHECK(num_rounds < (1ULL << 20), "shard launcher: absurd round count");
  res.rounds.resize(static_cast<std::size_t>(num_rounds));
  for (DistRound& round : res.rounds) {
    round.edges_before = static_cast<std::size_t>(r.u64());
    round.edges_after = static_cast<std::size_t>(r.u64());
    round.metrics = decode_metrics(r);
  }
  res.metrics = decode_metrics(r);
  res.wire = decode_wire(r);
  res.work = r.u64();
  SPAR_CHECK(r.done(), "shard launcher: trailing bytes in " + path);
  SPAR_CHECK(res.owned.ids.size() == res.owned.u.size() &&
                 res.owned.ids.size() == res.owned.v.size() &&
                 res.owned.ids.size() == res.owned.w.size(),
             "shard launcher: ragged owned slice in " + path);
  return res;
}

}  // namespace spar::dist::detail
