// Transport abstraction for the sharded distributed runtime.
//
// The protocols in src/dist are bulk-synchronous: a superstep has every
// shard deposit one batch of fixed-size messages per destination shard,
// then a barrier, then every shard reads the batches addressed to it. A
// message is the simulator's O(log n)-bit unit made concrete: exactly three
// machine words (tag, payload, payload). Two backends implement the same
// contract:
//
//  * LoopbackTransport -- all shards in one process, batches moved between
//    per-(src,dst) mailboxes under a generation barrier. Zero-copy, zero
//    framing: this is the PR 1 simulator's semantics as a backend. With one
//    shard it degenerates to the sequential simulator exactly.
//  * SocketTransport -- one OS process per shard, full-mesh stream sockets
//    (UNIX-domain or loopback TCP via support/net.hpp), one checksummed
//    length-prefixed frame per (peer, superstep) -- empty batches still
//    frame, which is what makes a superstep a barrier. The checksum is the
//    SPARBIN chunked-FNV discipline (support/framing.hpp) seeded with
//    (src, round, count) so spliced or reordered frames fail verification.
//
// Wire accounting is part of the contract, not a debug feature: exchange()
// counts the words the protocol handed it and asserts, EVERY superstep,
// that the bytes actually written to the wire reconcile exactly:
//
//     wire_bytes == words * 8  +  frames * frame_overhead_bytes()
//
// (overhead is 0 for loopback, one 48-byte header per peer frame for
// sockets). DistMetrics words therefore stop being a model statement and
// become a measurement -- see DESIGN.md §8.
#pragma once

#include <cstdint>
#include <vector>

#include "support/net.hpp"

namespace spar::dist {

/// One protocol message: the CONGEST O(log n)-bit unit, concretely one tag
/// word plus two payload words. Sent raw on same-machine wires (the mesh
/// never crosses an endianness boundary).
struct Message {
  std::uint64_t tag = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(Message) == 24, "Message must pack to 3 words");

/// Words per message (the simulator's constant, now the framing constant).
inline constexpr std::uint64_t kWordsPerMessage = 3;

/// Measured transport traffic of one shard across a run. `words` here are
/// wire words (messages that crossed a shard boundary x 3); intra-shard
/// deliveries are free and uncounted, unlike the model-level DistMetrics.
struct WireMetrics {
  std::uint64_t supersteps = 0;      ///< exchange() calls (barrier rounds)
  std::uint64_t frames = 0;          ///< per-peer batches shipped
  std::uint64_t messages = 0;        ///< messages that crossed shards
  std::uint64_t words = 0;           ///< 3 * messages
  std::uint64_t payload_bytes = 0;   ///< words * 8
  std::uint64_t wire_bytes = 0;      ///< bytes handed to the socket layer
  std::uint64_t max_round_words = 0; ///< congestion: largest single superstep

  void absorb(const WireMetrics& other) {
    supersteps += other.supersteps;
    frames += other.frames;
    messages += other.messages;
    words += other.words;
    payload_bytes += other.payload_bytes;
    wire_bytes += other.wire_bytes;
    if (other.max_round_words > max_round_words)
      max_round_words = other.max_round_words;
  }
};

/// Synchronous batched message transport between `shard_count()` shards.
/// exchange() is collective: EVERY shard must call it the same number of
/// times with structurally matching supersteps, or the mesh deadlocks (the
/// protocols in shard.cpp guarantee this by construction -- every superstep
/// is executed unconditionally by every shard).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::size_t shard_count() const = 0;
  virtual std::size_t shard_id() const = 0;

  /// Bytes of framing per shipped batch (0 loopback, header size sockets).
  virtual std::size_t frame_overhead_bytes() const = 0;

  /// One superstep: deposit out[d] for every shard d (out[shard_id()] is
  /// delivered locally, never framed), barrier, receive. On return in[s]
  /// holds the batch shard s addressed to us this superstep, in s's send
  /// order; out is left empty. Asserts the wire reconciliation identity
  /// (see file comment) against the bytes the backend actually wrote.
  void exchange(std::vector<std::vector<Message>>& out,
                std::vector<std::vector<Message>>& in);

  /// Accumulated traffic of this shard (sent-side accounting).
  const WireMetrics& wire() const { return wire_; }

 protected:
  /// Backend hook: ship the remote batches, fill the inboxes, return the
  /// bytes actually written to the wire (0 for in-process delivery).
  virtual std::uint64_t ship(std::vector<std::vector<Message>>& out,
                             std::vector<std::vector<Message>>& in) = 0;

 private:
  WireMetrics wire_;
};

/// In-process backend: S endpoints sharing parity-double-buffered mailboxes
/// under a generation barrier. Endpoints are driven by S caller threads (or
/// called inline when S == 1). abort() releases every blocked endpoint with
/// an error so one failing shard cannot deadlock the others.
class LoopbackHub {
 public:
  explicit LoopbackHub(std::size_t shards);
  ~LoopbackHub();

  LoopbackHub(const LoopbackHub&) = delete;
  LoopbackHub& operator=(const LoopbackHub&) = delete;

  std::size_t shards() const;
  Transport& endpoint(std::size_t shard);

  /// Wake every endpoint blocked at the barrier with a spar::Error. Called
  /// by the runner when a sibling shard thread failed.
  void abort();

 private:
  struct Impl;
  Impl* impl_;
};

/// Where a socket mesh lives: exactly one of the two address families.
struct SocketMeshOptions {
  /// AF_UNIX: shard s listens on "<unix_base>.<s>". Empty = use TCP.
  std::string unix_base;
  /// TCP (127.0.0.1 only): every shard binds a kernel-assigned port and
  /// publishes it as "<tcp_rendezvous_dir>/port.<s>" (written atomically);
  /// dialers poll peers' port files. No pre-agreed ports, no bind races.
  std::string tcp_rendezvous_dir;
  /// How long the rendezvous retries while peers are still starting up.
  int connect_timeout_ms = 15000;
};

/// Multi-process backend: a full mesh of stream sockets, one frame per
/// (peer, superstep). Construction performs the mesh rendezvous (listen,
/// cross-connect, hello exchange) and blocks until every peer is wired.
class SocketTransport final : public Transport {
 public:
  SocketTransport(std::size_t shard, std::size_t shards,
                  const SocketMeshOptions& options);
  ~SocketTransport() override;

  std::size_t shard_count() const override { return shards_; }
  std::size_t shard_id() const override { return shard_; }
  std::size_t frame_overhead_bytes() const override;

 protected:
  std::uint64_t ship(std::vector<std::vector<Message>>& out,
                     std::vector<std::vector<Message>>& in) override;

 private:
  void send_batch(std::size_t peer, const std::vector<Message>& batch,
                  std::uint64_t& bytes_written);
  void recv_batch(std::size_t peer, std::vector<Message>& batch);

  std::size_t shard_ = 0;
  std::size_t shards_ = 1;
  std::uint64_t round_ = 0;
  std::vector<support::net::Socket> peers_;  // by shard id; self invalid
};

}  // namespace spar::dist
