// Distributed (synchronous message-passing) statements of the paper:
// Theorem 2 (distributed Baswana-Sen) and Theorem 5's distributed
// PARALLELSPARSIFY.
//
// The protocols run on a simulator of the synchronous CONGEST-style model the
// paper assumes: one round lets every node send one O(log n)-bit message (a
// tag word plus two payload words) to each neighbour. The simulator executes
// the exact same per-vertex decision logic as the shared-memory
// implementation in src/spanner -- the coins are the same counter-based
// functions of (seed, iteration, cluster) -- so for a fixed seed the
// distributed spanner selects the SAME edge set as
// spanner::baswana_sen_spanner, while additionally accounting for every
// round, message and word the protocol would put on the wire:
//
//  * per clustering iteration i: cluster centers disseminate their coin
//    through their (radius <= i) cluster tree, every endpoint of an alive
//    edge exchanges (center, coin) with its neighbour, and each selected
//    spanner edge is announced -- i + 2 rounds, one message per alive arc
//    plus one per selection;
//  * Theorem 2 budgets: O(log^2 n) rounds and O(m log n) messages of
//    O(log n) bits, which bench_dist_spanner instantiates next to the
//    measured counts.
//
// Since PR 8 the protocols execute on the sharded SPMD core (dist/shard.hpp)
// behind a Transport (dist/transport.hpp): the entry points below run the
// core on a one-shard loopback mesh, and dist/runner.hpp scales the SAME
// code to S shards as threads (LoopbackTransport) or real processes over
// sockets (SocketTransport). Outputs -- edge sets AND model metrics -- are
// bit-identical for every shard count, every transport, and every
// shared-memory thread count (tests/integration/test_determinism.cpp,
// tests/dist/test_shard.cpp). DistMetrics stays the protocol-node account of
// the CONGEST model; the transport's WireMetrics separately measures what a
// run put on actual wires, reconciled byte-for-byte every superstep.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/transport.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "support/work_counter.hpp"

namespace spar::dist {

/// Totals a protocol run puts on the model network: counted at protocol-node
/// granularity (one message per alive arc / announcement, 3 words each),
/// NOT at shard granularity -- so the numbers are invariant under resharding
/// and match the paper's Theorem 2 budgets. See WireMetrics for what a
/// concrete mesh actually shipped.
struct DistMetrics {
  std::uint64_t rounds = 0;    ///< synchronous rounds consumed
  std::uint64_t messages = 0;  ///< point-to-point messages sent
  std::uint64_t words = 0;     ///< machine words on the wire (3 per message)
  std::uint64_t max_message_words = 0;  ///< largest single message, in words
  /// Congestion: the largest single protocol phase (one clustering
  /// iteration's exchange+announce, or one coin round), in words.
  std::uint64_t max_round_words = 0;

  void absorb(const DistMetrics& other) {
    rounds += other.rounds;
    messages += other.messages;
    words += other.words;
    if (other.max_message_words > max_message_words)
      max_message_words = other.max_message_words;
    if (other.max_round_words > max_round_words)
      max_round_words = other.max_round_words;
  }
};

struct DistSpannerOptions {
  /// Clustering levels; stretch is 2k-1. 0 = auto (ceil(log2 n)), matching
  /// spanner::auto_spanner_k.
  std::size_t k = 0;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
};

struct DistSpannerResult {
  std::vector<graph::EdgeId> spanner_edges;
  DistMetrics metrics;
  /// Measured transport traffic, summed over shards (all-zero words on a
  /// one-shard mesh: nothing crosses a shard boundary).
  WireMetrics wire;
};

/// Theorem 2: distributed Baswana-Sen over the subgraph given by
/// alive[id] == true (alive == nullptr means all edges). For a fixed seed the
/// returned edge set equals spanner::baswana_sen_spanner's.
DistSpannerResult distributed_spanner(const graph::CSRGraph& csr,
                                      const std::vector<bool>* alive,
                                      const DistSpannerOptions& options);

struct DistSampleOptions {
  double epsilon = 0.5;
  /// Bundle width; 0 = the paper's theoretical t (see sparsify::theory_bundle_width).
  std::size_t t = 0;
  double keep_probability = 0.25;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
};

struct DistSampleResult {
  graph::Graph sparsifier;
  std::size_t bundle_edges = 0;
  std::size_t off_bundle_edges = 0;
  std::size_t sampled_edges = 0;
  std::size_t t_used = 0;
  DistMetrics metrics;
  WireMetrics wire;  ///< measured transport traffic, summed over shards
};

/// Distributed PARALLELSAMPLE: the t-bundle is peeled with t runs of the
/// distributed spanner protocol; off-bundle coin flips are local decisions
/// (the coin is a pure function of seed and edge id) and only the kept edges
/// are announced. Seeds are derived exactly as in sparsify::parallel_sample,
/// so the output sparsifier is identical to the shared-memory one.
DistSampleResult distributed_parallel_sample(const graph::Graph& g,
                                             const DistSampleOptions& options);

struct DistSparsifyOptions {
  double epsilon = 0.5;
  double rho = 4.0;
  std::size_t t = 0;
  double keep_probability = 0.25;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
  /// Stop once a round has no off-bundle edges left, mirroring
  /// sparsify::SparsifyOptions::stop_when_saturated (early exit changes
  /// nothing in the output; further rounds are identities).
  bool stop_when_saturated = true;
};

/// One PARALLELSAMPLE round of the distributed sparsifier.
struct DistRound {
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  DistMetrics metrics;
};

struct DistSparsifyResult {
  graph::Graph sparsifier;
  std::vector<DistRound> rounds;
  DistMetrics metrics;
  WireMetrics wire;  ///< measured transport traffic, summed over shards
};

/// Theorem 5 (distributed statement): ceil(log2 rho) rounds of distributed
/// PARALLELSAMPLE. Off-bundle mass halves per round, so round 1 dominates the
/// communication -- bench_dist_sparsify prints the per-round decay.
DistSparsifyResult distributed_parallel_sparsify(const graph::Graph& g,
                                                 const DistSparsifyOptions& options);

}  // namespace spar::dist
