#include "dist/runner.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/shard.hpp"
#include "dist/worker_io.hpp"
#include "graph/edge_view.hpp"
#include "graph/io_binary.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/work_counter.hpp"

namespace spar::dist {
namespace {

bool same_metrics(const DistMetrics& a, const DistMetrics& b) {
  return a.rounds == b.rounds && a.messages == b.messages &&
         a.words == b.words && a.max_message_words == b.max_message_words &&
         a.max_round_words == b.max_round_words;
}

/// Every shard must have computed the identical model-level account
/// (superstep C makes this structural; a mismatch means a protocol bug,
/// so fail loudly rather than averaging it away).
void check_metrics_agree(const std::vector<detail::WorkerResult>& shards) {
  for (std::size_t s = 1; s < shards.size(); ++s) {
    SPAR_CHECK(same_metrics(shards[s].metrics, shards[0].metrics),
               "dist runner: shard " + std::to_string(s) +
                   " disagrees with shard 0 on model metrics");
    SPAR_CHECK(shards[s].rounds.size() == shards[0].rounds.size(),
               "dist runner: shard " + std::to_string(s) +
                   " disagrees with shard 0 on round count");
    SPAR_CHECK(shards[s].final_edges == shards[0].final_edges &&
                   shards[s].bundle_edges == shards[0].bundle_edges &&
                   shards[s].off_bundle_edges == shards[0].off_bundle_edges &&
                   shards[s].sampled_edges == shards[0].sampled_edges &&
                   shards[s].t_used == shards[0].t_used,
               "dist runner: shard " + std::to_string(s) +
                   " disagrees with shard 0 on edge totals");
  }
}

enum class Mode { kSpanner, kSample, kSparsify };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSpanner: return "spanner";
    case Mode::kSample: return "sample";
    case Mode::kSparsify: return "sparsify";
  }
  return "?";
}

/// All three protocol option sets flattened for the worker command line.
struct ProtoOptions {
  std::size_t k = 0;
  double epsilon = 0.5;
  double rho = 4.0;
  std::size_t t = 0;
  double keep_probability = 0.25;
  std::uint64_t seed = 1;
  bool stop_when_saturated = true;
};

detail::WorkerResult run_one_shard(Transport& net, Mode mode,
                                   const graph::Graph& g,
                                   const graph::EdgeView& edges,
                                   const ProtoOptions& proto,
                                   support::WorkCounter* work) {
  detail::WorkerResult res;
  switch (mode) {
    case Mode::kSpanner: {
      DistSpannerOptions opt;
      opt.k = proto.k;
      opt.seed = proto.seed;
      opt.work = work;
      ShardSpannerOutput out = run_shard_spanner(net, edges, nullptr, opt);
      res.spanner_ids = std::move(out.owned_spanner_edges);
      res.metrics = out.metrics;
      break;
    }
    case Mode::kSample: {
      DistSampleOptions opt;
      opt.epsilon = proto.epsilon;
      opt.t = proto.t;
      opt.keep_probability = proto.keep_probability;
      opt.seed = proto.seed;
      opt.work = work;
      ShardSampleOutput out = run_shard_sample(net, g, opt);
      res.owned = std::move(out.owned);
      res.final_edges = out.final_edges;
      res.bundle_edges = out.bundle_edges;
      res.off_bundle_edges = out.off_bundle_edges;
      res.sampled_edges = out.sampled_edges;
      res.t_used = out.t_used;
      res.metrics = out.metrics;
      break;
    }
    case Mode::kSparsify: {
      DistSparsifyOptions opt;
      opt.epsilon = proto.epsilon;
      opt.rho = proto.rho;
      opt.t = proto.t;
      opt.keep_probability = proto.keep_probability;
      opt.seed = proto.seed;
      opt.work = work;
      opt.stop_when_saturated = proto.stop_when_saturated;
      ShardSparsifyOutput out = run_shard_sparsify(net, g, opt);
      res.owned = std::move(out.owned);
      res.final_edges = out.final_edges;
      res.rounds = std::move(out.rounds);
      res.metrics = out.metrics;
      break;
    }
  }
  res.wire = net.wire();
  return res;
}

std::vector<detail::WorkerResult> run_loopback(std::size_t shards, Mode mode,
                                               const graph::Graph& g,
                                               const ProtoOptions& proto,
                                               support::WorkCounter* work) {
  graph::EdgeArena arena(g);
  const graph::EdgeView edges = arena.view();
  LoopbackHub hub(shards);
  std::vector<detail::WorkerResult> results(shards);

  if (shards == 1) {
    results[0] = run_one_shard(hub.endpoint(0), mode, g, edges, proto, work);
    return results;
  }

  // WorkCounter slots are keyed by OpenMP thread id, which every plain
  // std::thread shares; give each shard thread a private counter and fold
  // the totals in after the join.
  std::vector<support::WorkCounter> local_work(shards);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      try {
        results[s] = run_one_shard(hub.endpoint(s), mode, g, edges, proto,
                                   work != nullptr ? &local_work[s] : nullptr);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        hub.abort();  // release siblings parked at the barrier
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  if (work != nullptr) {
    for (const support::WorkCounter& c : local_work) work->add(c.total());
  }
  return results;
}

std::string fmt_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::vector<detail::WorkerResult> run_sockets(const DistExecOptions& exec,
                                              Mode mode, const graph::Graph& g,
                                              const ProtoOptions& proto,
                                              support::WorkCounter* work) {
  std::string worker = exec.worker_path;
  if (worker.empty()) {
    const char* env = std::getenv("SPAR_DIST_WORKER");
    SPAR_CHECK(env != nullptr && env[0] != '\0',
               "dist runner: socket backend needs DistExecOptions::worker_path "
               "or $SPAR_DIST_WORKER pointing at the dist_worker binary");
    worker = env;
  }

  std::string scratch = exec.scratch_dir;
  bool cleanup = false;
  if (scratch.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
        "/spar-dist.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    SPAR_CHECK(::mkdtemp(buf.data()) != nullptr,
               "dist runner: mkdtemp failed under " + tmpl);
    scratch = buf.data();
    cleanup = true;
  }

  std::vector<detail::WorkerResult> results;
  try {
    const std::string graph_path = scratch + "/graph.bin";
    graph::save_binary(graph_path, g);

    const std::size_t shards = exec.shards;
    std::vector<pid_t> pids(shards, -1);
    for (std::size_t s = 0; s < shards; ++s) {
      std::vector<std::string> args = {
          worker,
          "--graph", graph_path,
          "--mode", mode_name(mode),
          "--shard", std::to_string(s),
          "--shards", std::to_string(shards),
          "--out", scratch + "/result." + std::to_string(s),
          "--k", std::to_string(proto.k),
          "--epsilon", fmt_double(proto.epsilon),
          "--rho", fmt_double(proto.rho),
          "--t", std::to_string(proto.t),
          "--keep-probability", fmt_double(proto.keep_probability),
          "--seed", std::to_string(proto.seed),
          "--stop-when-saturated", proto.stop_when_saturated ? "1" : "0",
      };
      if (exec.backend == DistBackend::kSocketUnix) {
        args.push_back("--unix-base");
        args.push_back(scratch + "/mesh");
      } else {
        args.push_back("--tcp-dir");
        args.push_back(scratch);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);

      const pid_t pid = ::fork();
      SPAR_CHECK(pid >= 0, "dist runner: fork failed for shard " +
                               std::to_string(s));
      if (pid == 0) {
        ::execv(worker.c_str(), argv.data());
        std::perror("dist runner: execv dist_worker");
        ::_exit(127);
      }
      pids[s] = pid;
    }

    // Reap everything before judging, so a failing shard never leaves
    // zombies; then report the first failure (its stderr already went to
    // ours). Surviving shards of a failed mesh exit on their own -- the dead
    // peer's sockets EOF/EPIPE out of the barrier -- but belt-and-braces
    // kill them anyway.
    std::vector<int> status(shards, 0);
    bool any_failed = false;
    for (std::size_t s = 0; s < shards; ++s) {
      if (::waitpid(pids[s], &status[s], 0) < 0) status[s] = -1;
      if (!WIFEXITED(status[s]) || WEXITSTATUS(status[s]) != 0) {
        if (!any_failed) {
          any_failed = true;
          for (std::size_t o = 0; o < shards; ++o) {
            if (o != s && pids[o] > 0) ::kill(pids[o], SIGTERM);
          }
        }
      }
    }
    for (std::size_t s = 0; s < shards; ++s) {
      SPAR_CHECK(WIFEXITED(status[s]) && WEXITSTATUS(status[s]) == 0,
                 "dist runner: dist_worker shard " + std::to_string(s) +
                     " failed (status " + std::to_string(status[s]) + ")");
    }

    results.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      results.push_back(detail::read_worker_result(scratch + "/result." +
                                                   std::to_string(s)));
    }
  } catch (...) {
    if (cleanup) {
      std::error_code ec;
      std::filesystem::remove_all(scratch, ec);
    }
    throw;
  }
  if (cleanup) {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }
  if (work != nullptr) {
    for (const detail::WorkerResult& r : results) work->add(r.work);
  }
  return results;
}

std::vector<detail::WorkerResult> run_mesh(const graph::Graph& g, Mode mode,
                                           const ProtoOptions& proto,
                                           support::WorkCounter* work,
                                           const DistExecOptions& exec) {
  SPAR_CHECK(exec.shards >= 1, "dist runner: shards must be >= 1");
  std::vector<detail::WorkerResult> results;
  if (exec.backend == DistBackend::kLoopback) {
    results = run_loopback(exec.shards, mode, g, proto, work);
  } else {
    results = run_sockets(exec, mode, g, proto, work);
  }
  check_metrics_agree(results);
  return results;
}

WireMetrics sum_wire(const std::vector<detail::WorkerResult>& shards) {
  WireMetrics wire;
  for (const detail::WorkerResult& r : shards) wire.absorb(r.wire);
  return wire;
}

std::vector<ShardEdges> take_slices(std::vector<detail::WorkerResult>& shards) {
  std::vector<ShardEdges> slices;
  slices.reserve(shards.size());
  for (detail::WorkerResult& r : shards) slices.push_back(std::move(r.owned));
  return slices;
}

}  // namespace

DistSpannerResult run_distributed_spanner(const graph::Graph& g,
                                          const DistSpannerOptions& options,
                                          const DistExecOptions& exec) {
  ProtoOptions proto;
  proto.k = options.k;
  proto.seed = options.seed;
  std::vector<detail::WorkerResult> shards =
      run_mesh(g, Mode::kSpanner, proto, options.work, exec);

  DistSpannerResult result;
  result.metrics = shards[0].metrics;
  result.wire = sum_wire(shards);
  for (const detail::WorkerResult& r : shards) {
    result.spanner_edges.insert(result.spanner_edges.end(),
                                r.spanner_ids.begin(), r.spanner_ids.end());
  }
  std::sort(result.spanner_edges.begin(), result.spanner_edges.end());
  return result;
}

DistSampleResult run_distributed_sample(const graph::Graph& g,
                                        const DistSampleOptions& options,
                                        const DistExecOptions& exec) {
  ProtoOptions proto;
  proto.epsilon = options.epsilon;
  proto.t = options.t;
  proto.keep_probability = options.keep_probability;
  proto.seed = options.seed;
  std::vector<detail::WorkerResult> shards =
      run_mesh(g, Mode::kSample, proto, options.work, exec);

  DistSampleResult result;
  result.bundle_edges = static_cast<std::size_t>(shards[0].bundle_edges);
  result.off_bundle_edges =
      static_cast<std::size_t>(shards[0].off_bundle_edges);
  result.sampled_edges = static_cast<std::size_t>(shards[0].sampled_edges);
  result.t_used = static_cast<std::size_t>(shards[0].t_used);
  result.metrics = shards[0].metrics;
  result.wire = sum_wire(shards);
  const std::size_t final_edges =
      static_cast<std::size_t>(shards[0].final_edges);
  result.sparsifier = merge_shard_edges(g.num_vertices(), final_edges,
                                        take_slices(shards));
  return result;
}

DistSparsifyResult run_distributed_sparsify(const graph::Graph& g,
                                            const DistSparsifyOptions& options,
                                            const DistExecOptions& exec) {
  ProtoOptions proto;
  proto.epsilon = options.epsilon;
  proto.rho = options.rho;
  proto.t = options.t;
  proto.keep_probability = options.keep_probability;
  proto.seed = options.seed;
  proto.stop_when_saturated = options.stop_when_saturated;
  std::vector<detail::WorkerResult> shards =
      run_mesh(g, Mode::kSparsify, proto, options.work, exec);

  DistSparsifyResult result;
  result.rounds = shards[0].rounds;
  result.metrics = shards[0].metrics;
  result.wire = sum_wire(shards);
  const std::size_t final_edges =
      static_cast<std::size_t>(shards[0].final_edges);
  result.sparsifier = merge_shard_edges(g.num_vertices(), final_edges,
                                        take_slices(shards));
  return result;
}

}  // namespace spar::dist
