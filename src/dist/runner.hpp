// Execution harness that scales the sharded SPMD core (dist/shard.hpp) from
// one shard to S shards, as threads or as real OS processes.
//
//  * kLoopback    -- S threads over a LoopbackHub in this process (S == 1
//                    runs inline; this is exactly the legacy simulator).
//  * kSocketUnix  -- S forked dist_worker processes meshed over UNIX-domain
//                    sockets in a scratch directory.
//  * kSocketTcp   -- ditto over loopback TCP, ports agreed through the
//                    scratch-directory rendezvous (see SocketMeshOptions).
//
// Whatever the backend and shard count, the merged result is bit-identical:
// the same edge set, in the same order, with the same model-level
// DistMetrics (the runner asserts every shard reported identical metrics).
// Only `wire` varies -- it reports what the chosen mesh actually shipped,
// summed over shards.
//
// The socket backends serialize the input graph to the scratch directory
// (graph/io_binary.hpp), exec one dist_worker per shard, and reassemble the
// per-shard result files (dist/worker_io.hpp). The worker binary is located
// through DistExecOptions::worker_path, falling back to $SPAR_DIST_WORKER.
#pragma once

#include <string>

#include "dist/dist_spanner.hpp"
#include "graph/graph.hpp"

namespace spar::dist {

enum class DistBackend {
  kLoopback,
  kSocketUnix,
  kSocketTcp,
};

struct DistExecOptions {
  std::size_t shards = 1;
  DistBackend backend = DistBackend::kLoopback;
  /// dist_worker binary for the socket backends; empty = $SPAR_DIST_WORKER.
  std::string worker_path;
  /// Scratch directory for graph/result/socket files; empty = a fresh
  /// mkdtemp under $TMPDIR (removed on completion). A caller-provided
  /// directory must exist and is left in place.
  std::string scratch_dir;
};

/// Theorem 2 spanner on `exec.shards` shards. Equals
/// distributed_spanner(csr(g), nullptr, options) for every backend.
DistSpannerResult run_distributed_spanner(const graph::Graph& g,
                                          const DistSpannerOptions& options,
                                          const DistExecOptions& exec);

/// One distributed PARALLELSAMPLE round on `exec.shards` shards.
DistSampleResult run_distributed_sample(const graph::Graph& g,
                                        const DistSampleOptions& options,
                                        const DistExecOptions& exec);

/// Theorem 5 distributed PARALLELSPARSIFY on `exec.shards` shards.
DistSparsifyResult run_distributed_sparsify(const graph::Graph& g,
                                            const DistSparsifyOptions& options,
                                            const DistExecOptions& exec);

}  // namespace spar::dist
