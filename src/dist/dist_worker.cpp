// One shard of the distributed mesh, as an OS process.
//
// Launched S times (by dist/runner.cpp, scripts/check.sh or by hand), each
// instance loads the same graph, joins the socket mesh, runs the sharded
// protocol core for its --shard, and serializes its share of the result to
// --out (dist/worker_io.hpp). Exit 0 on success; any failure prints to
// stderr and exits 1, which EOFs this shard's sockets and releases every
// peer blocked on the superstep barrier.
//
//   dist_worker --graph g.bin --mode spanner|sample|sparsify
//               --shard S_ID --shards S --out result.bin
//               (--unix-base PATH | --tcp-dir DIR)
//               [--k N] [--epsilon E] [--rho R] [--t T]
//               [--keep-probability P] [--seed S] [--stop-when-saturated 0|1]
//               [--connect-timeout-ms MS]
#include <cstdio>
#include <exception>
#include <string>

#include "dist/shard.hpp"
#include "dist/transport.hpp"
#include "dist/worker_io.hpp"
#include "graph/edge_view.hpp"
#include "graph/graph.hpp"
#include "graph/io_binary.hpp"
#include "support/assert.hpp"
#include "support/options.hpp"
#include "support/work_counter.hpp"

namespace {

using namespace spar;

int run(int argc, char** argv) {
  support::Options opts(argc, argv);

  const std::string graph_path = opts.get("graph", "");
  const std::string mode = opts.get("mode", "");
  const std::string out_path = opts.get("out", "");
  const auto shard = static_cast<std::size_t>(opts.get_int("shard", 0));
  const auto shards = static_cast<std::size_t>(opts.get_int("shards", 1));
  SPAR_CHECK(!graph_path.empty() && !mode.empty() && !out_path.empty(),
             "dist_worker: --graph, --mode and --out are required");
  SPAR_CHECK(shard < shards, "dist_worker: --shard out of range");

  dist::SocketMeshOptions mesh;
  mesh.unix_base = opts.get("unix-base", "");
  mesh.tcp_rendezvous_dir = opts.get("tcp-dir", "");
  mesh.connect_timeout_ms =
      static_cast<int>(opts.get_int("connect-timeout-ms", 15000));
  SPAR_CHECK(mesh.unix_base.empty() != mesh.tcp_rendezvous_dir.empty(),
             "dist_worker: exactly one of --unix-base / --tcp-dir required");

  const graph::Graph g = graph::load_binary(graph_path);
  dist::SocketTransport net(shard, shards, mesh);
  support::WorkCounter work;
  dist::detail::WorkerResult res;

  if (mode == "spanner") {
    dist::DistSpannerOptions opt;
    opt.k = static_cast<std::size_t>(opts.get_int("k", 0));
    opt.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    opt.work = &work;
    graph::EdgeArena arena(g);
    dist::ShardSpannerOutput out =
        dist::run_shard_spanner(net, arena.view(), nullptr, opt);
    res.spanner_ids = std::move(out.owned_spanner_edges);
    res.metrics = out.metrics;
  } else if (mode == "sample") {
    dist::DistSampleOptions opt;
    opt.epsilon = opts.get_double("epsilon", 0.5);
    opt.t = static_cast<std::size_t>(opts.get_int("t", 0));
    opt.keep_probability = opts.get_double("keep-probability", 0.25);
    opt.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    opt.work = &work;
    dist::ShardSampleOutput out = dist::run_shard_sample(net, g, opt);
    res.owned = std::move(out.owned);
    res.final_edges = out.final_edges;
    res.bundle_edges = out.bundle_edges;
    res.off_bundle_edges = out.off_bundle_edges;
    res.sampled_edges = out.sampled_edges;
    res.t_used = out.t_used;
    res.metrics = out.metrics;
  } else if (mode == "sparsify") {
    dist::DistSparsifyOptions opt;
    opt.epsilon = opts.get_double("epsilon", 0.5);
    opt.rho = opts.get_double("rho", 4.0);
    opt.t = static_cast<std::size_t>(opts.get_int("t", 0));
    opt.keep_probability = opts.get_double("keep-probability", 0.25);
    opt.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    opt.work = &work;
    opt.stop_when_saturated = opts.get_bool("stop-when-saturated", true);
    dist::ShardSparsifyOutput out = dist::run_shard_sparsify(net, g, opt);
    res.owned = std::move(out.owned);
    res.final_edges = out.final_edges;
    res.rounds = std::move(out.rounds);
    res.metrics = out.metrics;
  } else {
    SPAR_CHECK(false, "dist_worker: unknown --mode " + mode);
  }

  res.wire = net.wire();
  res.work = work.total();
  dist::detail::write_worker_result(out_path, res);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_worker: %s\n", e.what());
    return 1;
  }
}
