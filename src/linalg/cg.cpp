#include "linalg/cg.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {

// Shared CG skeleton; `precondition` may be null for plain CG.
CGReport cg_impl(const LinearOperator& a, const LinearOperator* m_inverse,
                 std::span<const double> b, std::span<double> x,
                 const CGOptions& options) {
  const std::size_t n = a.dim;
  SPAR_CHECK(b.size() == n && x.size() == n, "cg: size mismatch");
  CGReport report;

  Vector rhs(b.begin(), b.end());
  if (options.project_constant) remove_mean(rhs);
  const double b_norm = norm2(rhs);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    report.converged = true;
    return report;
  }

  Vector r(n), z(n), p(n), ap(n);
  if (options.project_constant) remove_mean(x);
  a.apply(x, ap);
  ++report.matvec_count;
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  if (options.project_constant) remove_mean(r);

  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (m_inverse != nullptr) {
      m_inverse->apply(in, out);
      if (options.project_constant) remove_mean(out);
    } else {
      copy(in, out);
    }
  };

  apply_precond(r, z);
  copy(z, p);
  double rz = dot(r, z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double r_norm = norm2(r);
    report.relative_residual = r_norm / b_norm;
    if (report.relative_residual <= options.tolerance) {
      report.converged = true;
      return report;
    }
    a.apply(p, ap);
    ++report.matvec_count;
    if (options.project_constant) remove_mean(ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // operator not PD on this subspace; bail out
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    if (options.project_constant) remove_mean(r);
    apply_precond(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    support::par::parallel_for(
        0, static_cast<std::int64_t>(n),
        [&](std::int64_t i) { p[i] = z[i] + beta * p[i]; },
        {.enable = n > (1u << 14)});
    ++report.iterations;
  }
  report.relative_residual = norm2(r) / b_norm;
  report.converged = report.relative_residual <= options.tolerance;
  return report;
}

}  // namespace

CGReport conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                            std::span<double> x, const CGOptions& options) {
  return cg_impl(a, nullptr, b, x, options);
}

CGReport preconditioned_cg(const LinearOperator& a, const LinearOperator& m_inverse,
                           std::span<const double> b, std::span<double> x,
                           const CGOptions& options) {
  return cg_impl(a, &m_inverse, b, x, options);
}

}  // namespace spar::linalg
