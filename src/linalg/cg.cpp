#include "linalg/cg.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {

// Shared CG skeleton; `precondition` may be null for plain CG.
CGReport cg_impl(const LinearOperator& a, const LinearOperator* m_inverse,
                 std::span<const double> b, std::span<double> x,
                 const CGOptions& options) {
  const std::size_t n = a.dim;
  SPAR_CHECK(b.size() == n && x.size() == n, "cg: size mismatch");
  CGReport report;

  Vector rhs(b.begin(), b.end());
  if (options.project_constant) remove_mean(rhs);
  const double b_norm = norm2(rhs);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    report.converged = true;
    return report;
  }

  Vector r(n), z(n), p(n), ap(n);
  if (options.project_constant) remove_mean(x);
  a.apply(x, ap);
  ++report.matvec_count;
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  if (options.project_constant) remove_mean(r);

  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (m_inverse != nullptr) {
      m_inverse->apply(in, out);
      if (options.project_constant) remove_mean(out);
    } else {
      copy(in, out);
    }
  };

  apply_precond(r, z);
  copy(z, p);
  double rz = dot(r, z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double r_norm = norm2(r);
    report.relative_residual = r_norm / b_norm;
    if (report.relative_residual <= options.tolerance) {
      report.converged = true;
      return report;
    }
    a.apply(p, ap);
    ++report.matvec_count;
    if (options.project_constant) remove_mean(ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // operator not PD on this subspace; bail out
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    if (options.project_constant) remove_mean(r);
    apply_precond(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    support::par::parallel_for(
        0, static_cast<std::int64_t>(n),
        [&](std::int64_t i) { p[i] = z[i] + beta * p[i]; },
        {.enable = n > (1u << 14)});
    ++report.iterations;
  }
  report.relative_residual = norm2(r) / b_norm;
  report.converged = report.relative_residual <= options.tolerance;
  return report;
}

// Blocked CG skeleton: cg_impl run on k columns in lockstep. Per-column
// reductions go through the fused column_* kernels, whose chunking and
// combine order replicate the single-vector vector_ops primitives bit for
// bit; every update replicates cg_impl's expression and order. Columns
// freeze (convergence mask) exactly where the single-RHS loop would have
// exited; frozen columns still ride along in the blocked operator
// applications (their output is simply never read) -- that is what lets A
// and the preconditioner traverse their sparse structure once per iteration
// for the whole block.
BlockCGReport blocked_cg_impl(const BlockOperator& a, const BlockOperator* m_inverse,
                              const MultiVector& b, MultiVector& x,
                              const CGOptions& options) {
  namespace par = support::par;
  const std::size_t n = a.dim;
  const std::size_t k = b.cols();
  SPAR_CHECK(b.rows() == n && x.rows() == n && x.cols() == k,
             "blocked cg: size mismatch");
  BlockCGReport report;
  report.columns.resize(k);
  if (k == 0) return report;

  MultiVector rhs = b;
  if (options.project_constant) remove_mean_columns(rhs);
  const Vector b_norm = column_norms(rhs);
  std::vector<std::uint8_t> active(k, 1);
  for (std::size_t j = 0; j < k; ++j) {
    if (b_norm[j] == 0.0) {
      for (std::size_t i = 0; i < n; ++i) x.at(i, j) = 0.0;
      report.columns[j].converged = true;
      active[j] = 0;
    }
  }
  const auto none_active = [&] {
    for (std::uint8_t a_j : active)
      if (a_j) return false;
    return true;
  };
  if (none_active()) return report;

  // Masked elementwise sweep: f(row pointer pairs) applied to active columns
  // only (i-outer, j-inner: one contiguous pass over the interleaved block).
  const auto masked_rows = [&](std::span<const std::uint8_t> mask, auto&& f) {
    par::parallel_for(
        0, static_cast<std::int64_t>(n),
        [&](std::int64_t i) { f(static_cast<std::size_t>(i), mask); },
        {.enable = n > (1u << 14)});
  };

  MultiVector r(n, k), z(n, k), p(n, k), ap(n, k);
  if (options.project_constant) remove_mean_columns(x);
  a.apply(x, ap);
  ++report.block_applies;
  masked_rows(active, [&](std::size_t i, std::span<const std::uint8_t> mask) {
    for (std::size_t j = 0; j < k; ++j)
      if (mask[j]) r.at(i, j) = rhs.at(i, j) - ap.at(i, j);
  });
  if (options.project_constant) remove_mean_columns(r, active);

  const auto apply_precond = [&] {
    if (m_inverse != nullptr) {
      m_inverse->apply(r, z);
      if (options.project_constant) remove_mean_columns(z, active);
    } else {
      masked_rows(active, [&](std::size_t i, std::span<const std::uint8_t> mask) {
        for (std::size_t j = 0; j < k; ++j)
          if (mask[j]) z.at(i, j) = r.at(i, j);
      });
    }
  };

  apply_precond();
  masked_rows(active, [&](std::size_t i, std::span<const std::uint8_t> mask) {
    for (std::size_t j = 0; j < k; ++j)
      if (mask[j]) p.at(i, j) = z.at(i, j);
  });
  Vector rz = column_dots(r, z);

  Vector alpha(k, 0.0), neg_alpha(k, 0.0), beta(k, 0.0);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const Vector r_norms = column_norms(r);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      report.columns[j].relative_residual = r_norms[j] / b_norm[j];
      if (report.columns[j].relative_residual <= options.tolerance) {
        report.columns[j].converged = true;
        active[j] = 0;  // freeze: exactly where the single-RHS loop returns
      }
    }
    if (none_active()) break;
    a.apply(p, ap);
    ++report.block_applies;
    if (options.project_constant) remove_mean_columns(ap, active);
    const Vector p_ap = column_dots(p, ap);
    // `advance` = columns that run this iteration's updates; a column whose
    // search direction is not PD-positive stalls here, exactly where the
    // single-RHS loop breaks and re-derives convergence from the untouched
    // residual.
    std::vector<std::uint8_t> advance = active;
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      if (p_ap[j] <= 0.0) {
        report.columns[j].converged =
            report.columns[j].relative_residual <= options.tolerance;
        active[j] = 0;
        advance[j] = 0;
        continue;
      }
      alpha[j] = rz[j] / p_ap[j];
      neg_alpha[j] = -alpha[j];
    }
    if (none_active()) break;
    column_axpy(alpha, p, x, advance);
    column_axpy(neg_alpha, ap, r, advance);
    if (options.project_constant) remove_mean_columns(r, advance);
    apply_precond();
    const Vector rz_next = column_dots(r, z);
    for (std::size_t j = 0; j < k; ++j) {
      if (!advance[j]) continue;
      beta[j] = rz_next[j] / rz[j];
      rz[j] = rz_next[j];
    }
    masked_rows(advance, [&](std::size_t i, std::span<const std::uint8_t> mask) {
      for (std::size_t j = 0; j < k; ++j)
        if (mask[j]) p.at(i, j) = z.at(i, j) + beta[j] * p.at(i, j);
    });
    for (std::size_t j = 0; j < k; ++j)
      if (advance[j]) report.columns[j].iterations = it + 1;
  }
  {
    const Vector r_norms = column_norms(r);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;  // ran out of iterations with this column live
      report.columns[j].relative_residual = r_norms[j] / b_norm[j];
      report.columns[j].converged =
          report.columns[j].relative_residual <= options.tolerance;
    }
  }
  for (const BlockColumnStats& c : report.columns)
    report.iterations = std::max(report.iterations, c.iterations);
  return report;
}

}  // namespace

CGReport conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                            std::span<double> x, const CGOptions& options) {
  return cg_impl(a, nullptr, b, x, options);
}

CGReport preconditioned_cg(const LinearOperator& a, const LinearOperator& m_inverse,
                           std::span<const double> b, std::span<double> x,
                           const CGOptions& options) {
  return cg_impl(a, &m_inverse, b, x, options);
}

BlockCGReport blocked_conjugate_gradient(const BlockOperator& a, const MultiVector& b,
                                         MultiVector& x, const CGOptions& options) {
  return blocked_cg_impl(a, nullptr, b, x, options);
}

BlockCGReport blocked_pcg(const BlockOperator& a, const BlockOperator& m_inverse,
                          const MultiVector& b, MultiVector& x,
                          const CGOptions& options) {
  return blocked_cg_impl(a, &m_inverse, b, x, options);
}

}  // namespace spar::linalg
