#include "linalg/vector_ops.hpp"

#include <cmath>
#include <cstdint>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {
constexpr std::int64_t kParThreshold = 1 << 14;  // below this, serial is faster

namespace par = support::par;
}  // namespace

double dot(std::span<const double> a, std::span<const double> b) {
  SPAR_DASSERT(a.size() == b.size());
  const auto n = static_cast<std::int64_t>(a.size());
  // parallel_reduce chunks identically for every thread count, so dot() is
  // bit-deterministic across 1..N threads (the raw OpenMP reduction was not).
  return par::parallel_sum(
      0, n, [&](std::int64_t i) { return a[i] * b[i]; },
      {.enable = n >= kParThreshold});
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SPAR_DASSERT(x.size() == y.size());
  const auto n = static_cast<std::int64_t>(x.size());
  par::parallel_for(
      0, n, [&](std::int64_t i) { y[i] += alpha * x[i]; },
      {.enable = n >= kParThreshold});
}

void scale(double alpha, std::span<double> x) {
  const auto n = static_cast<std::int64_t>(x.size());
  par::parallel_for(
      0, n, [&](std::int64_t i) { x[i] *= alpha; },
      {.enable = n >= kParThreshold});
}

void copy(std::span<const double> x, std::span<double> y) {
  SPAR_DASSERT(x.size() == y.size());
  const auto n = static_cast<std::int64_t>(x.size());
  par::parallel_for(
      0, n, [&](std::int64_t i) { y[i] = x[i]; },
      {.enable = n >= kParThreshold});
}

void fill(std::span<double> x, double value) {
  const auto n = static_cast<std::int64_t>(x.size());
  par::parallel_for(
      0, n, [&](std::int64_t i) { x[i] = value; },
      {.enable = n >= kParThreshold});
}

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const auto n = static_cast<std::int64_t>(x.size());
  const double sum = par::parallel_sum(
      0, n, [&](std::int64_t i) { return x[i]; },
      {.enable = n >= kParThreshold});
  return sum / static_cast<double>(x.size());
}

void remove_mean(std::span<double> x) {
  const double m = mean(x);
  const auto n = static_cast<std::int64_t>(x.size());
  par::parallel_for(
      0, n, [&](std::int64_t i) { x[i] -= m; },
      {.enable = n >= kParThreshold});
}

}  // namespace spar::linalg
