#include "linalg/vector_ops.hpp"

#include <cmath>
#include <cstdint>

#include "support/assert.hpp"

namespace spar::linalg {

namespace {
constexpr std::int64_t kParThreshold = 1 << 14;  // below this, serial is faster
}

double dot(std::span<const double> a, std::span<const double> b) {
  SPAR_DASSERT(a.size() == b.size());
  const auto n = static_cast<std::int64_t>(a.size());
  double sum = 0.0;
  if (n >= kParThreshold) {
#pragma omp parallel for schedule(static) reduction(+ : sum)
    for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  }
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SPAR_DASSERT(x.size() == y.size());
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void copy(std::span<const double> x, std::span<double> y) {
  SPAR_DASSERT(x.size() == y.size());
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i];
}

void fill(std::span<double> x, double value) {
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) x[i] = value;
}

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) reduction(+ : sum) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) sum += x[i];
  return sum / static_cast<double>(x.size());
}

void remove_mean(std::span<double> x) {
  const double m = mean(x);
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static) if (n >= kParThreshold)
  for (std::int64_t i = 0; i < n; ++i) x[i] -= m;
}

}  // namespace spar::linalg
