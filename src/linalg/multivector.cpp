#include "linalg/multivector.hpp"

#include <cmath>

#include "linalg/operator.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {
// Mirrors vector_ops.cpp's threshold so the fused reductions enable
// parallelism exactly where the single-vector primitives do (chunk
// boundaries, and therefore bits, must match).
constexpr std::int64_t kParThreshold = 1 << 14;

namespace par = support::par;

// Fused per-column reduction: map_row(i, partial[k]) accumulates row i into
// the per-column partials. Chunking and the ascending-chunk combine replicate
// par::parallel_sum over [0, rows) per column, so each out[j] is bit-identical
// to the scalar reduction on column j alone.
template <typename MapRow>
Vector column_reduce(std::size_t rows, std::size_t cols, MapRow&& map_row) {
  const auto n = static_cast<std::int64_t>(rows);
  return par::parallel_reduce<Vector>(
      0, n, Vector(cols, 0.0),
      [&](std::int64_t cb, std::int64_t ce) {
        Vector partial(cols, 0.0);
        for (std::int64_t i = cb; i < ce; ++i) map_row(static_cast<std::size_t>(i), partial);
        return partial;
      },
      [](Vector acc, const Vector& p) {
        for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += p[j];
        return acc;
      },
      {.enable = n >= kParThreshold});
}

}  // namespace

MultiVector MultiVector::from_columns(std::span<const Vector> columns) {
  MultiVector out;
  if (columns.empty()) return out;
  const std::size_t n = columns.front().size();
  out = MultiVector(n, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    SPAR_CHECK(columns[j].size() == n, "MultiVector::from_columns: ragged columns");
    out.set_column(j, columns[j]);
  }
  return out;
}

Vector MultiVector::column_copy(std::size_t j) const {
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = at(i, j);
  return out;
}

void MultiVector::set_column(std::size_t j, std::span<const double> values) {
  SPAR_CHECK(values.size() == rows_, "MultiVector::set_column: size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) at(i, j) = values[i];
}

void MultiVector::fill_all(double value) { fill(data_, value); }

Vector column_dots(const MultiVector& a, const MultiVector& b) {
  SPAR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "column_dots: shape mismatch");
  const std::size_t k = a.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  return column_reduce(a.rows(), k, [&](std::size_t i, Vector& partial) {
    const double* ra = pa + i * k;
    const double* rb = pb + i * k;
    for (std::size_t j = 0; j < k; ++j) partial[j] += ra[j] * rb[j];
  });
}

Vector column_norms(const MultiVector& a) {
  Vector out = column_dots(a, a);
  for (double& v : out) v = std::sqrt(v);
  return out;
}

Vector column_means(const MultiVector& x) {
  const std::size_t k = x.cols();
  if (x.rows() == 0) return Vector(k, 0.0);
  const double* px = x.data().data();
  Vector out = column_reduce(x.rows(), k, [&](std::size_t i, Vector& partial) {
    const double* rx = px + i * k;
    for (std::size_t j = 0; j < k; ++j) partial[j] += rx[j];
  });
  for (double& v : out) v /= static_cast<double>(x.rows());
  return out;
}

void remove_mean_columns(MultiVector& x, std::span<const std::uint8_t> mask) {
  SPAR_CHECK(mask.empty() || mask.size() == x.cols(),
             "remove_mean_columns: mask size mismatch");
  const Vector means = column_means(x);
  const auto n = static_cast<std::int64_t>(x.rows());
  const std::size_t k = x.cols();
  double* px = x.data().data();
  par::parallel_for(
      0, n,
      [&](std::int64_t i) {
        double* row = px + static_cast<std::size_t>(i) * k;
        for (std::size_t j = 0; j < k; ++j)
          if (mask.empty() || mask[j]) row[j] -= means[j];
      },
      {.enable = n >= kParThreshold});
}

void column_axpy(std::span<const double> alpha, const MultiVector& x, MultiVector& y,
                 std::span<const std::uint8_t> mask) {
  SPAR_CHECK(x.rows() == y.rows() && x.cols() == y.cols() &&
                 alpha.size() == x.cols() && (mask.empty() || mask.size() == x.cols()),
             "column_axpy: shape mismatch");
  const auto n = static_cast<std::int64_t>(x.rows());
  const std::size_t k = x.cols();
  const double* px = x.data().data();
  double* py = y.data().data();
  par::parallel_for(
      0, n,
      [&](std::int64_t i) {
        const double* rx = px + static_cast<std::size_t>(i) * k;
        double* ry = py + static_cast<std::size_t>(i) * k;
        for (std::size_t j = 0; j < k; ++j)
          if (mask.empty() || mask[j]) ry[j] += alpha[j] * rx[j];
      },
      {.enable = n >= kParThreshold});
}

BlockOperator column_block_operator(const LinearOperator& op) {
  // Captures the LinearOperator by value: the returned BlockOperator owns its
  // copy and stays valid after the argument goes out of scope. Columns round
  // trip through contiguous buffers, so per-column results are exactly the
  // wrapped operator's.
  return {op.dim, [op](const MultiVector& x, MultiVector& y) {
            Vector in(x.rows()), out(x.rows());
            for (std::size_t j = 0; j < x.cols(); ++j) {
              for (std::size_t i = 0; i < x.rows(); ++i) in[i] = x.at(i, j);
              op.apply(in, out);
              y.set_column(j, out);
            }
          }};
}

}  // namespace spar::linalg
