#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

DenseMatrix DenseMatrix::from_csr(const CSRMatrix& m) {
  DenseMatrix d(m.rows(), m.cols());
  const auto offsets = m.row_offsets();
  const auto cols = m.col_indices();
  const auto vals = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
      d.at(r, cols[k]) += vals[k];
  return d;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d.at(i, i) = 1.0;
  return d;
}

Vector DenseMatrix::multiply(std::span<const double> x) const {
  SPAR_CHECK(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    const auto col = column(c);
    for (std::size_t r = 0; r < rows_; ++r) y[r] += col[r] * xc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  SPAR_CHECK(cols_ == other.rows_, "DenseMatrix::multiply: shape mismatch");
  DenseMatrix out(rows_, other.cols_);
  support::par::parallel_for(
      0, static_cast<std::int64_t>(other.cols_),
      [&](std::int64_t c) {
        for (std::size_t k = 0; k < cols_; ++k) {
          const double b = other.at(k, static_cast<std::size_t>(c));
          if (b == 0.0) continue;
          const auto colk = column(k);
          auto outc = out.column(static_cast<std::size_t>(c));
          for (std::size_t r = 0; r < rows_; ++r) outc[r] += colk[r] * b;
        }
      },
      {.enable = rows_ * other.cols_ > (1u << 16)});
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t r = 0; r < rows_; ++r) out.at(c, r) = at(r, c);
  return out;
}

double DenseMatrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

EigenDecomposition symmetric_eigen(const DenseMatrix& m, double tol, int max_sweeps) {
  SPAR_CHECK(m.rows() == m.cols(), "symmetric_eigen: matrix must be square");
  const std::size_t n = m.rows();
  DenseMatrix a = m;
  DenseMatrix v = DenseMatrix::identity(n);

  double fro = 0.0;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) fro += a.at(r, c) * a.at(r, c);
  fro = std::sqrt(fro);
  const double threshold = tol * std::max(fro, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += 2.0 * a.at(p, q) * a.at(p, q);
    if (std::sqrt(off) <= threshold) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p, q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.eigenvalues[i] = a.at(i, i);
  // Sort ascending with matching vectors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return out.eigenvalues[x] < out.eigenvalues[y];
  });
  Vector sorted_vals(n);
  DenseMatrix sorted_vecs(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_vals[i] = out.eigenvalues[order[i]];
    copy(v.column(order[i]), sorted_vecs.column(i));
  }
  out.eigenvalues = std::move(sorted_vals);
  out.eigenvectors = std::move(sorted_vecs);
  return out;
}

DenseMatrix cholesky(const DenseMatrix& m) {
  SPAR_CHECK(m.rows() == m.cols(), "cholesky: matrix must be square");
  const std::size_t n = m.rows();
  DenseMatrix lower(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = m.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= lower.at(j, k) * lower.at(j, k);
    SPAR_CHECK(d > 0.0, "cholesky: matrix is not positive definite");
    const double ljj = std::sqrt(d);
    lower.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = m.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= lower.at(i, k) * lower.at(j, k);
      lower.at(i, j) = s / ljj;
    }
  }
  return lower;
}

Vector cholesky_solve(const DenseMatrix& lower, std::span<const double> b) {
  const std::size_t n = lower.rows();
  SPAR_CHECK(b.size() == n, "cholesky_solve: size mismatch");
  Vector y(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) y[i] -= lower.at(i, k) * y[k];
    y[i] /= lower.at(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) y[ii] -= lower.at(k, ii) * y[k];
    y[ii] /= lower.at(ii, ii);
  }
  return y;
}

DenseMatrix symmetric_pinv(const DenseMatrix& m, double rel_tol) {
  const auto eig = symmetric_eigen(m);
  const std::size_t n = m.rows();
  double lambda_max = 0.0;
  for (double l : eig.eigenvalues) lambda_max = std::max(lambda_max, std::abs(l));
  const double cut = rel_tol * std::max(lambda_max, 1e-300);
  DenseMatrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double l = eig.eigenvalues[k];
    if (std::abs(l) <= cut) continue;
    const double inv = 1.0 / l;
    const auto vk = eig.eigenvectors.column(k);
    for (std::size_t c = 0; c < n; ++c) {
      const double f = inv * vk[c];
      if (f == 0.0) continue;
      auto col = out.column(c);
      for (std::size_t r = 0; r < n; ++r) col[r] += vk[r] * f;
    }
  }
  return out;
}

}  // namespace spar::linalg
