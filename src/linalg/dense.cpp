#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

DenseMatrix DenseMatrix::from_csr(const CSRMatrix& m) {
  DenseMatrix d(m.rows(), m.cols());
  const auto offsets = m.row_offsets();
  const auto cols = m.col_indices();
  const auto vals = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
      d.at(r, cols[k]) += vals[k];
  return d;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d.at(i, i) = 1.0;
  return d;
}

Vector DenseMatrix::multiply(std::span<const double> x) const {
  SPAR_CHECK(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    const auto col = column(c);
    for (std::size_t r = 0; r < rows_; ++r) y[r] += col[r] * xc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  SPAR_CHECK(cols_ == other.rows_, "DenseMatrix::multiply: shape mismatch");
  DenseMatrix out(rows_, other.cols_);
  support::par::parallel_for(
      0, static_cast<std::int64_t>(other.cols_),
      [&](std::int64_t c) {
        for (std::size_t k = 0; k < cols_; ++k) {
          const double b = other.at(k, static_cast<std::size_t>(c));
          if (b == 0.0) continue;
          const auto colk = column(k);
          auto outc = out.column(static_cast<std::size_t>(c));
          for (std::size_t r = 0; r < rows_; ++r) outc[r] += colk[r] * b;
        }
      },
      {.enable = rows_ * other.cols_ > (1u << 16)});
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t r = 0; r < rows_; ++r) out.at(c, r) = at(r, c);
  return out;
}

double DenseMatrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

namespace {

// Householder reduction of the symmetric matrix in `z` to tridiagonal form
// (diagonal d, sub-diagonal e with e[0] = 0). With accumulate == true, z is
// overwritten with the orthogonal Q such that input = Q * T * Q^T; otherwise
// z's contents are scratch afterwards. Classic tred2 scheme, O(n^3) with a
// ~4/3 constant -- an order of magnitude cheaper than the Jacobi sweeps this
// replaced on the n ~ few-hundred certification path.
void householder_tridiagonalize(DenseMatrix& z, Vector& d, Vector& e,
                                bool accumulate) {
  const std::size_t n = z.rows();
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(z.at(i, k));
      if (scale == 0.0) {
        e[i] = z.at(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z.at(i, k) /= scale;
          h += z.at(i, k) * z.at(i, k);
        }
        double f = z.at(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z.at(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          if (accumulate) z.at(j, i) = z.at(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z.at(j, k) * z.at(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z.at(k, j) * z.at(i, k);
          e[j] = g / h;
          f += e[j] * z.at(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z.at(i, j);
          const double ej = e[j] - hh * f;
          e[j] = ej;
          for (std::size_t k = 0; k <= j; ++k)
            z.at(j, k) -= f * e[k] + ej * z.at(i, k);
        }
      }
    } else {
      e[i] = z.at(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (accumulate) {
      if (d[i] != 0.0) {  // accumulate this step's Householder transform
        for (std::size_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < i; ++k) g += z.at(i, k) * z.at(k, j);
          for (std::size_t k = 0; k < i; ++k) z.at(k, j) -= g * z.at(k, i);
        }
      }
      d[i] = z.at(i, i);
      z.at(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) z.at(j, i) = z.at(i, j) = 0.0;
    } else {
      d[i] = z.at(i, i);
    }
  }
}

// Implicit-shift QL on the tridiagonal (d, e); converges each eigenvalue to
// machine precision. When z != nullptr its columns are rotated along, so a
// tridiagonalization basis turns into the eigenvector matrix.
void tridiagonal_ql(Vector& d, Vector& e, DenseMatrix* z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  constexpr double kEps = 2.220446049250313e-16;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= kEps * dd) break;
      }
      if (m != l) {
        SPAR_CHECK(iter++ < 50, "symmetric_eigen: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {  // negligible rotation: deflate and restart
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            auto zi = z->column(i);
            auto zi1 = z->column(i + 1);
            for (std::size_t k = 0; k < z->rows(); ++k) {
              f = zi1[k];
              zi1[k] = s * zi[k] + c * f;
              zi[k] = c * zi[k] - s * f;
            }
          }
        }
        if (!underflow) {
          d[l] -= p;
          e[l] = g;
          e[m] = 0.0;
        }
      }
    } while (m != l);
  }
}

}  // namespace

EigenDecomposition symmetric_eigen(const DenseMatrix& m) {
  SPAR_CHECK(m.rows() == m.cols(), "symmetric_eigen: matrix must be square");
  const std::size_t n = m.rows();
  EigenDecomposition out;
  out.eigenvectors = m;
  out.eigenvalues.assign(n, 0.0);
  Vector e(n, 0.0);
  if (n == 0) return out;
  householder_tridiagonalize(out.eigenvectors, out.eigenvalues, e, true);
  tridiagonal_ql(out.eigenvalues, e, &out.eigenvectors);

  // Sort ascending with matching vectors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return out.eigenvalues[x] < out.eigenvalues[y];
  });
  Vector sorted_vals(n);
  DenseMatrix sorted_vecs(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_vals[i] = out.eigenvalues[order[i]];
    copy(out.eigenvectors.column(order[i]), sorted_vecs.column(i));
  }
  out.eigenvalues = std::move(sorted_vals);
  out.eigenvectors = std::move(sorted_vecs);
  return out;
}

Vector symmetric_eigenvalues(const DenseMatrix& m) {
  SPAR_CHECK(m.rows() == m.cols(), "symmetric_eigenvalues: matrix must be square");
  const std::size_t n = m.rows();
  Vector d(n, 0.0);
  if (n == 0) return d;
  DenseMatrix scratch = m;
  Vector e(n, 0.0);
  householder_tridiagonalize(scratch, d, e, false);
  tridiagonal_ql(d, e, nullptr);
  std::sort(d.begin(), d.end());
  return d;
}

DenseMatrix cholesky(const DenseMatrix& m) {
  SPAR_CHECK(m.rows() == m.cols(), "cholesky: matrix must be square");
  const std::size_t n = m.rows();
  DenseMatrix lower(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = m.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= lower.at(j, k) * lower.at(j, k);
    SPAR_CHECK(d > 0.0, "cholesky: matrix is not positive definite");
    const double ljj = std::sqrt(d);
    lower.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = m.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= lower.at(i, k) * lower.at(j, k);
      lower.at(i, j) = s / ljj;
    }
  }
  return lower;
}

Vector cholesky_solve(const DenseMatrix& lower, std::span<const double> b) {
  const std::size_t n = lower.rows();
  SPAR_CHECK(b.size() == n, "cholesky_solve: size mismatch");
  Vector y(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) y[i] -= lower.at(i, k) * y[k];
    y[i] /= lower.at(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) y[ii] -= lower.at(k, ii) * y[k];
    y[ii] /= lower.at(ii, ii);
  }
  return y;
}

DenseMatrix symmetric_pinv(const DenseMatrix& m, double rel_tol) {
  const auto eig = symmetric_eigen(m);
  const std::size_t n = m.rows();
  double lambda_max = 0.0;
  for (double l : eig.eigenvalues) lambda_max = std::max(lambda_max, std::abs(l));
  const double cut = rel_tol * std::max(lambda_max, 1e-300);
  DenseMatrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double l = eig.eigenvalues[k];
    if (std::abs(l) <= cut) continue;
    const double inv = 1.0 / l;
    const auto vk = eig.eigenvectors.column(k);
    for (std::size_t c = 0; c < n; ++c) {
      const double f = inv * vk[c];
      if (f == 0.0) continue;
      auto col = out.column(c);
      for (std::size_t r = 0; r < n; ++r) col[r] += vk[r] * f;
    }
  }
  return out;
}

RayleighRitz rayleigh_ritz(const DenseMatrix& q, const DenseMatrix& aq) {
  const std::size_t n = q.rows();
  const std::size_t k = q.cols();
  SPAR_CHECK(aq.rows() == n && aq.cols() == k,
             "rayleigh_ritz: basis/image shape mismatch");
  SPAR_CHECK(k >= 1, "rayleigh_ritz: need at least one basis column");

  // T = q^T aq, symmetrized: with an orthonormal q the exact T is symmetric,
  // so averaging the two off-diagonal estimates only removes roundoff.
  DenseMatrix t(k, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < k; ++j) {
      const double tij = dot(q.column(i), aq.column(j));
      const double tji = dot(q.column(j), aq.column(i));
      t.at(i, j) = t.at(j, i) = 0.5 * (tij + tji);
    }
  EigenDecomposition eig = symmetric_eigen(t);

  RayleighRitz out;
  out.values = std::move(eig.eigenvalues);
  out.basis = DenseMatrix(n, k);
  // basis = q * Y; rows are independent, each row's inner loop runs in a
  // fixed order, so the rotation is deterministic for any thread count.
  support::par::parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t r) {
        const auto row = static_cast<std::size_t>(r);
        for (std::size_t j = 0; j < k; ++j) {
          double acc = 0.0;
          for (std::size_t l = 0; l < k; ++l)
            acc += q.at(row, l) * eig.eigenvectors.at(l, j);
          out.basis.at(row, j) = acc;
        }
      },
      {.enable = n * k > (1u << 14)});
  return out;
}

}  // namespace spar::linalg
