// Matrix-free symmetric linear operator abstractions shared by the iterative
// solvers and eigenvalue estimators: single-vector (LinearOperator) and
// column-blocked multi-RHS (BlockOperator).
#pragma once

#include <functional>
#include <span>

#include "linalg/multivector.hpp"

namespace spar::linalg {

struct LinearOperator {
  std::size_t dim = 0;
  /// y = A x. Must be linear and (for CG / Lanczos users) symmetric PSD.
  std::function<void(std::span<const double>, std::span<double>)> apply;
};

/// Blocked operator: applies A to every column of a MultiVector in one call,
/// so implementations can traverse their sparse structure once for all
/// columns. The per-column result must be bit-identical to applying the
/// equivalent LinearOperator to that column alone -- the blocked solvers'
/// determinism contract rests on it.
struct BlockOperator {
  std::size_t dim = 0;
  /// Y = A X, column by column; X and Y have `dim` rows and equal width.
  std::function<void(const MultiVector&, MultiVector&)> apply;
};

/// A BlockOperator that applies `op` to each column in turn (the fallback
/// for operators without a native blocked kernel; per-column bit-identity is
/// trivial).
BlockOperator column_block_operator(const LinearOperator& op);

}  // namespace spar::linalg
