// Matrix-free symmetric linear operator abstraction shared by the iterative
// solvers and eigenvalue estimators.
#pragma once

#include <functional>
#include <span>

namespace spar::linalg {

struct LinearOperator {
  std::size_t dim = 0;
  /// y = A x. Must be linear and (for CG / Lanczos users) symmetric PSD.
  std::function<void(std::span<const double>, std::span<double>)> apply;
};

}  // namespace spar::linalg
