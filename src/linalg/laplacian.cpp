#include "linalg/laplacian.hpp"

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {
namespace par = support::par;
}  // namespace

CSRMatrix laplacian_matrix(const graph::Graph& g) {
  std::vector<Triplet> t;
  t.reserve(4 * g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    t.push_back({e.u, e.v, -e.w});
    t.push_back({e.v, e.u, -e.w});
    t.push_back({e.u, e.u, e.w});
    t.push_back({e.v, e.v, e.w});
  }
  return CSRMatrix::from_triplets(g.num_vertices(), g.num_vertices(), std::move(t),
                                  /*drop_zeros=*/false);
}

Vector degree_vector(const graph::Graph& g) {
  Vector d(g.num_vertices(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    d[e.u] += e.w;
    d[e.v] += e.w;
  }
  return d;
}

CSRMatrix adjacency_matrix(const graph::Graph& g) {
  std::vector<Triplet> t;
  t.reserve(2 * g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    t.push_back({e.u, e.v, e.w});
    t.push_back({e.v, e.u, e.w});
  }
  return CSRMatrix::from_triplets(g.num_vertices(), g.num_vertices(), std::move(t),
                                  /*drop_zeros=*/false);
}

void LaplacianOperator::apply(std::span<const double> x, std::span<double> y) const {
  SPAR_CHECK(x.size() == dimension() && y.size() == dimension(),
             "LaplacianOperator::apply: size mismatch");
  fill(y, 0.0);
  // Edge-parallel apply would race on y; vertex-parallel needs CSR. For the
  // matrix-free path the edge list is walked serially per thread over disjoint
  // chunks with atomic adds -- measured faster than building CSR for one-shot
  // applies, and exact either way.
  const auto edges = g_->edges();
  const bool parallel = edges.size() > (1u << 15) && par::max_threads() > 1;
  if (!parallel) {
    for (const graph::Edge& e : edges) {
      const double flow = e.w * (x[e.u] - x[e.v]);
      y[e.u] += flow;
      y[e.v] -= flow;
    }
    return;
  }
  // Edge-parallel scatter would race on y; atomics would fix the race but
  // leave the floating-point accumulation order thread-dependent, breaking
  // the library-wide bit-determinism contract. Instead: compute all flows in
  // parallel (the multiplies), then scatter serially in edge order -- the
  // exact order of the serial path, so results are identical to it. The flow
  // buffer lives on the operator so repeated applies (CG) do not reallocate.
  flow_scratch_.resize(edges.size());
  par::parallel_for(0, static_cast<std::int64_t>(edges.size()), [&](std::int64_t i) {
    const graph::Edge& e = edges[i];
    flow_scratch_[static_cast<std::size_t>(i)] = e.w * (x[e.u] - x[e.v]);
  });
  for (std::size_t i = 0; i < edges.size(); ++i) {
    y[edges[i].u] += flow_scratch_[i];
    y[edges[i].v] -= flow_scratch_[i];
  }
}

Vector LaplacianOperator::apply(std::span<const double> x) const {
  Vector y(dimension());
  apply(x, y);
  return y;
}

double LaplacianOperator::quadratic_form(std::span<const double> x) const {
  return laplacian_quadratic_form(*g_, x);
}

double laplacian_quadratic_form(const graph::Graph& g, std::span<const double> x) {
  SPAR_CHECK(x.size() == g.num_vertices(), "quadratic_form: size mismatch");
  const auto edges = g.edges();
  return par::parallel_sum(
      0, static_cast<std::int64_t>(edges.size()),
      [&](std::int64_t i) {
        const graph::Edge& e = edges[i];
        const double d = x[e.u] - x[e.v];
        return e.w * d * d;
      },
      {.enable = edges.size() > (1u << 15)});
}

}  // namespace spar::linalg
