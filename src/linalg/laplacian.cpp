#include "linalg/laplacian.hpp"

#include "support/assert.hpp"

namespace spar::linalg {

CSRMatrix laplacian_matrix(const graph::Graph& g) {
  std::vector<Triplet> t;
  t.reserve(4 * g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    t.push_back({e.u, e.v, -e.w});
    t.push_back({e.v, e.u, -e.w});
    t.push_back({e.u, e.u, e.w});
    t.push_back({e.v, e.v, e.w});
  }
  return CSRMatrix::from_triplets(g.num_vertices(), g.num_vertices(), std::move(t),
                                  /*drop_zeros=*/false);
}

Vector degree_vector(const graph::Graph& g) {
  Vector d(g.num_vertices(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    d[e.u] += e.w;
    d[e.v] += e.w;
  }
  return d;
}

CSRMatrix adjacency_matrix(const graph::Graph& g) {
  std::vector<Triplet> t;
  t.reserve(2 * g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    t.push_back({e.u, e.v, e.w});
    t.push_back({e.v, e.u, e.w});
  }
  return CSRMatrix::from_triplets(g.num_vertices(), g.num_vertices(), std::move(t),
                                  /*drop_zeros=*/false);
}

void LaplacianOperator::apply(std::span<const double> x, std::span<double> y) const {
  SPAR_CHECK(x.size() == dimension() && y.size() == dimension(),
             "LaplacianOperator::apply: size mismatch");
  fill(y, 0.0);
  // Edge-parallel apply would race on y; vertex-parallel needs CSR. For the
  // matrix-free path the edge list is walked serially per thread over disjoint
  // chunks with atomic adds -- measured faster than building CSR for one-shot
  // applies, and exact either way.
  const auto edges = g_->edges();
#pragma omp parallel for schedule(static) if (edges.size() > (1u << 15))
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(edges.size()); ++i) {
    const graph::Edge& e = edges[i];
    const double flow = e.w * (x[e.u] - x[e.v]);
#pragma omp atomic
    y[e.u] += flow;
#pragma omp atomic
    y[e.v] -= flow;
  }
}

Vector LaplacianOperator::apply(std::span<const double> x) const {
  Vector y(dimension());
  apply(x, y);
  return y;
}

double LaplacianOperator::quadratic_form(std::span<const double> x) const {
  return laplacian_quadratic_form(*g_, x);
}

double laplacian_quadratic_form(const graph::Graph& g, std::span<const double> x) {
  SPAR_CHECK(x.size() == g.num_vertices(), "quadratic_form: size mismatch");
  const auto edges = g.edges();
  double sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum) \
    if (edges.size() > (1u << 15))
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(edges.size()); ++i) {
    const graph::Edge& e = edges[i];
    const double d = x[e.u] - x[e.v];
    sum += e.w * d * d;
  }
  return sum;
}

}  // namespace spar::linalg
