// Dense symmetric linear algebra for exact verification paths:
//  * DenseMatrix with column-major storage,
//  * symmetric eigensolver: Householder tridiagonalization + implicit-shift
//    QL (O(n^3) with small constants; n <= ~1500), with a values-only
//    variant for paths that never touch eigenvectors,
//  * Cholesky factorization/solve,
//  * Laplacian pseudoinverse via eigendecomposition.
//
// These exist so the randomized algorithms can be certified against exact
// spectra in tests and small benches; large-n paths use Lanczos + CG instead.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace spar::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix from_csr(const CSRMatrix& m);
  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[c * rows_ + r]; }
  double at(std::size_t r, std::size_t c) const { return data_[c * rows_ + r]; }

  std::span<double> column(std::size_t c) { return {data_.data() + c * rows_, rows_}; }
  std::span<const double> column(std::size_t c) const {
    return {data_.data() + c * rows_, rows_};
  }

  Vector multiply(std::span<const double> x) const;
  DenseMatrix multiply(const DenseMatrix& other) const;
  DenseMatrix transpose() const;

  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;  // column-major
};

struct EigenDecomposition {
  Vector eigenvalues;      ///< ascending
  DenseMatrix eigenvectors;///< column k pairs with eigenvalues[k]
};

/// Full symmetric eigendecomposition: Householder tridiagonalization plus
/// implicit-shift QL (converges to machine precision). `m` must be symmetric.
EigenDecomposition symmetric_eigen(const DenseMatrix& m);

/// Eigenvalues only (ascending), skipping eigenvector accumulation -- about
/// half the work of symmetric_eigen; the certification path uses this for
/// pencils where only the extreme eigenvalues matter.
Vector symmetric_eigenvalues(const DenseMatrix& m);

/// In-place Cholesky of an SPD matrix; returns lower factor. Throws on
/// non-positive pivot.
DenseMatrix cholesky(const DenseMatrix& m);

/// Solve L L^T x = b given the lower factor.
Vector cholesky_solve(const DenseMatrix& lower, std::span<const double> b);

/// Moore-Penrose pseudoinverse of a symmetric PSD matrix via eigen-
/// decomposition; eigenvalues below rel_tol * lambda_max are treated as zero.
DenseMatrix symmetric_pinv(const DenseMatrix& m, double rel_tol = 1e-10);

/// Outcome of a Rayleigh-Ritz projection (values ascending, column k of
/// `basis` pairs with values[k]).
struct RayleighRitz {
  Vector values;     ///< Ritz values of the projected operator, ascending
  DenseMatrix basis; ///< n-by-k rotated basis; column k pairs with values[k]
};

/// Rayleigh-Ritz projection of a symmetric operator A onto the span of the
/// orthonormal columns of `q` (n-by-k): forms T = q^T (aq) with aq = A q,
/// symmetrizes it against roundoff, eigendecomposes the small k-by-k system
/// and returns the Ritz values with the rotated basis q * Y. This is the
/// dense kernel of block inverse-power iteration (apps/partition.hpp): the
/// subspace is refined by large solves, the k-by-k projection extracts the
/// eigenpair estimates. All reductions run through the deterministic
/// chunk-ordered dot, so the result is bit-identical across thread counts.
RayleighRitz rayleigh_ritz(const DenseMatrix& q, const DenseMatrix& aq);

}  // namespace spar::linalg
