// Column-blocked dense multi-vector: k vectors of dimension n stored as one
// contiguous row-interleaved buffer -- entry (i, j) lives at data[i*k + j],
// so a row holds all k columns adjacently. This is the substrate of the
// batched multi-RHS solve path: blocked SpMV kernels traverse a sparse
// matrix ONCE and, per nonzero, one cache line of x serves every column --
// the layout that turns k memory-bound passes into one (column-major blocks
// would gather k independent streams and lose the win again).
//
// Determinism contract: every per-column reduction below (dot, norm, mean)
// is computed with the SAME chunk boundaries and chunk-order combine as the
// single-vector vector_ops primitive -- the fused kernels accumulate one
// partial per column per chunk and combine per column in ascending chunk
// order. A blocked solve's column j is therefore bit-identical to a
// single-RHS solve of that column, at any thread count
// (tests/solver/test_multi_rhs.cpp pins it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace spar::linalg {

class MultiVector {
 public:
  MultiVector() = default;

  /// n-by-k block, every entry set to `value`.
  MultiVector(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Deep copy of `cols` equally sized vectors into a block.
  static MultiVector from_columns(std::span<const Vector> columns);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Entry (i, j); unchecked hot-path accessor (row-interleaved layout).
  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// Row i: the k column values of entry i, contiguous.
  std::span<double> row(std::size_t i) { return {data_.data() + i * cols_, cols_}; }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  /// Column j copied out as an owning contiguous Vector.
  Vector column_copy(std::size_t j) const;

  /// Overwrites column j from a contiguous vector.
  void set_column(std::size_t j, std::span<const double> values);

  /// The whole buffer (row-interleaved, size rows*cols).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Sets every entry of every column to `value`.
  void fill_all(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Per-column dot products in ONE fused pass: out[j] = dot(col_j(a),
/// col_j(b)), bit-identical to linalg::dot on contiguous copies of the
/// columns (same chunking, same combine order).
Vector column_dots(const MultiVector& a, const MultiVector& b);

/// Per-column Euclidean norms (sqrt of the fused dots, matching norm2).
Vector column_norms(const MultiVector& a);

/// Per-column means, fused; bit-identical to linalg::mean per column.
Vector column_means(const MultiVector& x);

/// Per-column mean removal (projection onto range(L) for connected
/// Laplacians), identical to remove_mean on a contiguous copy of each
/// column. `mask` selects columns (empty = all).
void remove_mean_columns(MultiVector& x, std::span<const std::uint8_t> mask = {});

/// y.column(j) += alpha[j] * x.column(j) for every j with mask[j] nonzero
/// (mask may be empty = all columns).
void column_axpy(std::span<const double> alpha, const MultiVector& x,
                 MultiVector& y, std::span<const std::uint8_t> mask = {});

}  // namespace spar::linalg
