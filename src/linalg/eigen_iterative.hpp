// Iterative extremal eigenvalue estimation for symmetric operators:
//  * power_iteration: dominant eigenvalue,
//  * lanczos_extreme: both ends of the spectrum via a small Krylov basis with
//    full reorthogonalization.
//
// Used by the large-n spectral certification path: the relative condition
// number of (L_H, L_G) is estimated from extreme eigenvalues of
// pinv(L_G) L_H without densifying anything.
#pragma once

#include <cstdint>

#include "linalg/operator.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::linalg {

struct PowerIterationResult {
  double eigenvalue = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Largest-magnitude eigenvalue of symmetric `a`. If project_constant, all
/// iterates stay orthogonal to the all-ones vector.
PowerIterationResult power_iteration(const LinearOperator& a, std::uint64_t seed,
                                     double tolerance = 1e-8,
                                     std::size_t max_iterations = 2000,
                                     bool project_constant = false);

struct LanczosResult {
  double min_eigenvalue = 0.0;
  double max_eigenvalue = 0.0;
  std::size_t steps = 0;
};

/// Extremal Ritz values of symmetric `a` after `steps` Lanczos steps with
/// full reorthogonalization. Ritz values converge to the extreme eigenvalues
/// from inside, so min is an over- and max an under-estimate.
LanczosResult lanczos_extreme(const LinearOperator& a, std::uint64_t seed,
                              std::size_t steps = 60, bool project_constant = false);

}  // namespace spar::linalg
