#include "linalg/chebyshev.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

ChebyshevReport chebyshev_solve(const LinearOperator& a, std::span<const double> b,
                                std::span<double> x, const ChebyshevOptions& options) {
  const std::size_t n = a.dim;
  SPAR_CHECK(b.size() == n && x.size() == n, "chebyshev_solve: size mismatch");
  SPAR_CHECK(options.lambda_min > 0.0 && options.lambda_max >= options.lambda_min,
             "chebyshev_solve: need 0 < lambda_min <= lambda_max");

  const double center = 0.5 * (options.lambda_max + options.lambda_min);
  const double half_width = 0.5 * (options.lambda_max - options.lambda_min);

  Vector rhs(b.begin(), b.end());
  if (options.project_constant) remove_mean(rhs);
  const double b_norm = norm2(rhs);
  ChebyshevReport report;
  if (b_norm == 0.0) {
    fill(x, 0.0);
    return report;
  }

  // Standard three-term recurrence on the residual polynomial.
  Vector r(n), p(n), ap(n);
  if (options.project_constant) remove_mean(x);
  a.apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  if (options.project_constant) remove_mean(r);

  double alpha = 0.0;
  double beta = 0.0;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (it == 0) {
      copy(r, p);
      alpha = 1.0 / center;
    } else {
      const double half_alpha = half_width * alpha / 2.0;
      beta = half_alpha * half_alpha;
      alpha = 1.0 / (center - beta / alpha);
      support::par::parallel_for(
          0, static_cast<std::int64_t>(n),
          [&](std::int64_t i) { p[i] = r[i] + beta * p[i]; },
          {.enable = n > (1u << 14)});
    }
    axpy(alpha, p, x);
    a.apply(p, ap);
    if (options.project_constant) remove_mean(ap);
    axpy(-alpha, ap, r);
    ++report.iterations;
  }
  report.relative_residual = norm2(r) / b_norm;
  return report;
}

}  // namespace spar::linalg
