#include "linalg/chebyshev.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

ChebyshevReport chebyshev_solve(const LinearOperator& a, std::span<const double> b,
                                std::span<double> x, const ChebyshevOptions& options) {
  const std::size_t n = a.dim;
  SPAR_CHECK(b.size() == n && x.size() == n, "chebyshev_solve: size mismatch");
  SPAR_CHECK(options.lambda_min > 0.0 && options.lambda_max >= options.lambda_min,
             "chebyshev_solve: need 0 < lambda_min <= lambda_max");

  const double center = 0.5 * (options.lambda_max + options.lambda_min);
  const double half_width = 0.5 * (options.lambda_max - options.lambda_min);

  Vector rhs(b.begin(), b.end());
  if (options.project_constant) remove_mean(rhs);
  const double b_norm = norm2(rhs);
  ChebyshevReport report;
  if (b_norm == 0.0) {
    fill(x, 0.0);
    return report;
  }

  // Standard three-term recurrence on the residual polynomial.
  Vector r(n), p(n), ap(n);
  if (options.project_constant) remove_mean(x);
  a.apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  if (options.project_constant) remove_mean(r);

  double alpha = 0.0;
  double beta = 0.0;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (it == 0) {
      copy(r, p);
      alpha = 1.0 / center;
    } else {
      const double half_alpha = half_width * alpha / 2.0;
      beta = half_alpha * half_alpha;
      alpha = 1.0 / (center - beta / alpha);
      support::par::parallel_for(
          0, static_cast<std::int64_t>(n),
          [&](std::int64_t i) { p[i] = r[i] + beta * p[i]; },
          {.enable = n > (1u << 14)});
    }
    axpy(alpha, p, x);
    a.apply(p, ap);
    if (options.project_constant) remove_mean(ap);
    axpy(-alpha, ap, r);
    ++report.iterations;
  }
  report.relative_residual = norm2(r) / b_norm;
  return report;
}

std::vector<ChebyshevReport> chebyshev_solve(const BlockOperator& a,
                                             const MultiVector& b, MultiVector& x,
                                             const ChebyshevOptions& options) {
  const std::size_t n = a.dim;
  const std::size_t k = b.cols();
  SPAR_CHECK(b.rows() == n && x.rows() == n && x.cols() == k,
             "chebyshev_solve: block size mismatch");
  SPAR_CHECK(options.lambda_min > 0.0 && options.lambda_max >= options.lambda_min,
             "chebyshev_solve: need 0 < lambda_min <= lambda_max");
  std::vector<ChebyshevReport> reports(k);
  if (k == 0) return reports;

  const double center = 0.5 * (options.lambda_max + options.lambda_min);
  const double half_width = 0.5 * (options.lambda_max - options.lambda_min);

  MultiVector rhs = b;
  if (options.project_constant) remove_mean_columns(rhs);
  const Vector b_norm = column_norms(rhs);
  std::vector<std::uint8_t> active(k, 1);
  bool any_active = false;
  for (std::size_t j = 0; j < k; ++j) {
    if (b_norm[j] == 0.0) {
      for (std::size_t i = 0; i < n; ++i) x.at(i, j) = 0.0;
      active[j] = 0;  // zero rhs: the single-RHS path returns x = 0 here
    } else {
      any_active = true;
    }
  }
  if (!any_active) return reports;

  // Masked elementwise sweep over the interleaved block (i-outer, j-inner).
  const auto masked_rows = [&](auto&& f) {
    support::par::parallel_for(
        0, static_cast<std::int64_t>(n),
        [&](std::int64_t i) { f(static_cast<std::size_t>(i)); },
        {.enable = n > (1u << 14)});
  };

  MultiVector r(n, k), p(n, k), ap(n, k);
  if (options.project_constant) remove_mean_columns(x);
  a.apply(x, ap);
  masked_rows([&](std::size_t i) {
    for (std::size_t j = 0; j < k; ++j)
      if (active[j]) r.at(i, j) = rhs.at(i, j) - ap.at(i, j);
  });
  if (options.project_constant) remove_mean_columns(r, active);

  Vector alphas(k, 0.0), neg_alphas(k, 0.0);
  double alpha = 0.0;
  double beta = 0.0;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (it == 0) {
      masked_rows([&](std::size_t i) {
        for (std::size_t j = 0; j < k; ++j)
          if (active[j]) p.at(i, j) = r.at(i, j);
      });
      alpha = 1.0 / center;
    } else {
      const double half_alpha = half_width * alpha / 2.0;
      beta = half_alpha * half_alpha;
      alpha = 1.0 / (center - beta / alpha);
      masked_rows([&](std::size_t i) {
        for (std::size_t j = 0; j < k; ++j)
          if (active[j]) p.at(i, j) = r.at(i, j) + beta * p.at(i, j);
      });
    }
    for (std::size_t j = 0; j < k; ++j) {
      alphas[j] = alpha;
      neg_alphas[j] = -alpha;
    }
    column_axpy(alphas, p, x, active);
    a.apply(p, ap);
    if (options.project_constant) remove_mean_columns(ap, active);
    column_axpy(neg_alphas, ap, r, active);
    for (std::size_t j = 0; j < k; ++j)
      if (active[j]) ++reports[j].iterations;
  }
  const Vector r_norms = column_norms(r);
  for (std::size_t j = 0; j < k; ++j)
    if (active[j]) reports[j].relative_residual = r_norms[j] / b_norm[j];
  return reports;
}

}  // namespace spar::linalg
