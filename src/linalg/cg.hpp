// Conjugate gradient and preconditioned conjugate gradient.
//
// Laplacians are singular (nullspace = span{1} for connected graphs); pass
// project_constant = true to solve within range(L): the right-hand side and
// every iterate are kept mean-free, which is exactly applying the
// pseudoinverse. This is the workhorse behind effective-resistance
// approximation and behind the solver baselines; the Peng-Spielman chain is
// plugged in as the preconditioner (Section 4 of the paper).
#pragma once

#include <cstdint>

#include "linalg/operator.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::linalg {

struct CGOptions {
  double tolerance = 1e-8;       ///< relative residual ||r|| / ||b||
  std::size_t max_iterations = 10000;
  bool project_constant = false; ///< keep iterates orthogonal to all-ones
};

struct CGReport {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::uint64_t matvec_count = 0;
};

/// Solve A x = b. `x` carries the initial guess on entry, solution on exit.
CGReport conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                            std::span<double> x, const CGOptions& options = {});

/// Preconditioned CG; `m_inverse` applies the preconditioner (approximate
/// A^{-1}); must be symmetric positive (semi-)definite on the solve subspace.
CGReport preconditioned_cg(const LinearOperator& a, const LinearOperator& m_inverse,
                           std::span<const double> b, std::span<double> x,
                           const CGOptions& options = {});

}  // namespace spar::linalg
