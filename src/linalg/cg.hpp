// Conjugate gradient and preconditioned conjugate gradient.
//
// Laplacians are singular (nullspace = span{1} for connected graphs); pass
// project_constant = true to solve within range(L): the right-hand side and
// every iterate are kept mean-free, which is exactly applying the
// pseudoinverse. This is the workhorse behind effective-resistance
// approximation and behind the solver baselines; the Peng-Spielman chain is
// plugged in as the preconditioner (Section 4 of the paper).
#pragma once

#include <cstdint>

#include "linalg/operator.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::linalg {

struct CGOptions {
  double tolerance = 1e-8;       ///< relative residual ||r|| / ||b||
  std::size_t max_iterations = 10000;
  bool project_constant = false; ///< keep iterates orthogonal to all-ones
};

struct CGReport {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::uint64_t matvec_count = 0;
};

/// Solve A x = b. `x` carries the initial guess on entry, solution on exit.
CGReport conjugate_gradient(const LinearOperator& a, std::span<const double> b,
                            std::span<double> x, const CGOptions& options = {});

/// Preconditioned CG; `m_inverse` applies the preconditioner (approximate
/// A^{-1}); must be symmetric positive (semi-)definite on the solve subspace.
CGReport preconditioned_cg(const LinearOperator& a, const LinearOperator& m_inverse,
                           std::span<const double> b, std::span<double> x,
                           const CGOptions& options = {});

/// Per-column outcome of a blocked solve (mirrors CGReport).
struct BlockColumnStats {
  std::size_t iterations = 0;        ///< CG iterations this column ran
  double relative_residual = 0.0;    ///< ||r_j|| / ||b_j|| at stop
  bool converged = false;            ///< residual <= tolerance
};

/// Outcome of a blocked multi-RHS solve.
struct BlockCGReport {
  std::vector<BlockColumnStats> columns;  ///< one entry per right-hand side
  std::size_t iterations = 0;             ///< block iterations = max over columns
  std::uint64_t block_applies = 0;        ///< blocked operator applications of A
  /// True when every column converged.
  bool all_converged() const {
    for (const BlockColumnStats& c : columns)
      if (!c.converged) return false;
    return !columns.empty();
  }
};

/// Blocked CG: solves A x_j = b_j for every column j in lockstep, sharing
/// each operator traversal across columns. Columns that converge are frozen
/// (per-column convergence masking), so each column's iterate sequence -- and
/// final solution, bit for bit -- matches a single-RHS conjugate_gradient run
/// on that column. `x` carries initial guesses on entry, solutions on exit.
BlockCGReport blocked_conjugate_gradient(const BlockOperator& a, const MultiVector& b,
                                         MultiVector& x, const CGOptions& options = {});

/// Blocked preconditioned CG; `m_inverse` applies the (blocked)
/// preconditioner to every column. Same masking and bit-identity contract as
/// blocked_conjugate_gradient, relative to preconditioned_cg.
BlockCGReport blocked_pcg(const BlockOperator& a, const BlockOperator& m_inverse,
                          const MultiVector& b, MultiVector& x,
                          const CGOptions& options = {});

}  // namespace spar::linalg
