#include "linalg/eigen_iterative.hpp"

#include <cmath>

#include "linalg/dense.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::linalg {

namespace {

Vector random_unit_vector(std::size_t n, std::uint64_t seed, bool project_constant) {
  support::Rng rng(seed);
  Vector v(n);
  for (double& x : v) x = rng.normal();
  if (project_constant) remove_mean(v);
  const double nrm = norm2(v);
  SPAR_CHECK(nrm > 0.0, "random_unit_vector: degenerate draw");
  scale(1.0 / nrm, v);
  return v;
}

}  // namespace

PowerIterationResult power_iteration(const LinearOperator& a, std::uint64_t seed,
                                     double tolerance, std::size_t max_iterations,
                                     bool project_constant) {
  const std::size_t n = a.dim;
  Vector v = random_unit_vector(n, seed, project_constant);
  Vector av(n);
  PowerIterationResult result;
  double prev = 0.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    a.apply(v, av);
    if (project_constant) remove_mean(av);
    const double lambda = dot(v, av);  // Rayleigh quotient
    const double nrm = norm2(av);
    result.iterations = it + 1;
    result.eigenvalue = lambda;
    if (nrm == 0.0) {
      result.converged = true;
      return result;
    }
    scale(1.0 / nrm, av);
    std::swap(v, av);
    if (it > 0 && std::abs(lambda - prev) <= tolerance * std::max(1.0, std::abs(lambda))) {
      result.converged = true;
      return result;
    }
    prev = lambda;
  }
  return result;
}

LanczosResult lanczos_extreme(const LinearOperator& a, std::uint64_t seed,
                              std::size_t steps, bool project_constant) {
  const std::size_t n = a.dim;
  steps = std::min(steps, n);
  SPAR_CHECK(steps >= 1, "lanczos_extreme: need at least one step");

  std::vector<Vector> basis;
  basis.reserve(steps);
  basis.push_back(random_unit_vector(n, seed, project_constant));

  Vector alpha, beta;
  Vector w(n);
  for (std::size_t j = 0; j < steps; ++j) {
    a.apply(basis[j], w);
    if (project_constant) remove_mean(w);
    const double aj = dot(w, basis[j]);
    alpha.push_back(aj);
    axpy(-aj, basis[j], w);
    if (j > 0) axpy(-beta[j - 1], basis[j - 1], w);
    // Full reorthogonalization: Krylov bases lose orthogonality fast in
    // floating point and we need trustworthy extreme Ritz values.
    for (const Vector& q : basis) axpy(-dot(w, q), q, w);
    // Rounding in the reorthogonalization sweep reintroduces a component
    // along the all-ones direction; without re-projecting, deep Krylov
    // spaces resolve the Laplacian nullspace as a spurious ~0 Ritz value.
    if (project_constant) remove_mean(w);
    const double bj = norm2(w);
    if (j + 1 == steps || bj < 1e-13) {
      break;
    }
    beta.push_back(bj);
    Vector next = w;
    scale(1.0 / bj, next);
    basis.push_back(std::move(next));
  }

  const std::size_t k = alpha.size();
  DenseMatrix tri(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    tri.at(i, i) = alpha[i];
    if (i + 1 < k && i < beta.size()) {
      tri.at(i, i + 1) = beta[i];
      tri.at(i + 1, i) = beta[i];
    }
  }
  const auto eig = symmetric_eigen(tri);
  LanczosResult result;
  result.steps = k;
  result.min_eigenvalue = eig.eigenvalues.front();
  result.max_eigenvalue = eig.eigenvalues.back();
  return result;
}

}  // namespace spar::linalg
