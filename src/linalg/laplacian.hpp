// Laplacian operators built from graphs (Section 2 of the paper):
//   L(i,j) = -w_ij for i != j,   L(i,i) = sum_j w_ij.
//
// Two representations are provided:
//  * laplacian_matrix(g): explicit CSR form, for the solver's algebra.
//  * LaplacianOperator(g): matrix-free y = Lx via the edge list (two flops
//    per edge), plus the quadratic form x^T L x computed exactly as
//    sum_e w_e (x_u - x_v)^2; this is the form the sparsification certificate
//    uses because it is exact and embarrassingly parallel.
#pragma once

#include "graph/graph.hpp"
#include "linalg/csr_matrix.hpp"

namespace spar::linalg {

CSRMatrix laplacian_matrix(const graph::Graph& g);

/// Weighted degree of each vertex.
Vector degree_vector(const graph::Graph& g);

/// Adjacency matrix (positive off-diagonals) in CSR form.
CSRMatrix adjacency_matrix(const graph::Graph& g);

class LaplacianOperator {
 public:
  explicit LaplacianOperator(const graph::Graph& g) : g_(&g) {}

  std::size_t dimension() const { return g_->num_vertices(); }

  /// y = L x
  void apply(std::span<const double> x, std::span<double> y) const;
  Vector apply(std::span<const double> x) const;

  /// x^T L x = sum_e w_e (x_u - x_v)^2  (always >= 0).
  double quadratic_form(std::span<const double> x) const;

 private:
  const graph::Graph* g_;
  /// Per-edge flow buffer reused across apply() calls on the parallel path
  /// (avoids an O(m) allocation per CG iteration). Mutated under const:
  /// concurrent apply() calls on the SAME operator are not supported -- make
  /// one operator per thread (construction is a pointer copy).
  mutable std::vector<double> flow_scratch_;
};

/// Exact quadratic form without constructing an operator.
double laplacian_quadratic_form(const graph::Graph& g, std::span<const double> x);

}  // namespace spar::linalg
