// Dense vector kernels (OpenMP). These are the building blocks of the
// iterative solvers; all take std::span so callers keep ownership.
#pragma once

#include <span>
#include <vector>

namespace spar::linalg {

using Vector = std::vector<double>;

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x *= alpha
void scale(double alpha, std::span<double> x);
/// y = x
void copy(std::span<const double> x, std::span<double> y);
void fill(std::span<double> x, double value);

/// Subtract the mean: projects onto the space orthogonal to the all-ones
/// vector, i.e. onto range(L) for a connected graph Laplacian.
void remove_mean(std::span<double> x);

double mean(std::span<const double> x);

}  // namespace spar::linalg
