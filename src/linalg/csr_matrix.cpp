#include "linalg/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::linalg {

namespace {
namespace par = support::par;
}  // namespace

CSRMatrix CSRMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets, bool drop_zeros) {
  for (const Triplet& t : triplets)
    SPAR_CHECK(t.row < rows && t.col < cols, "from_triplets: index out of range");
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return std::tie(a.row, a.col) < std::tie(b.row, b.col);
  });
  CSRMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(rows + 1, 0);
  m.col_index_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    double sum = 0.0;
    std::size_t j = i;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (!(drop_zeros && sum == 0.0)) {
      m.col_index_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.offsets_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  return m;
}

CSRMatrix CSRMatrix::identity(std::size_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    t.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), 1.0});
  return from_triplets(n, n, std::move(t));
}

CSRMatrix CSRMatrix::diagonal(std::span<const double> d) {
  std::vector<Triplet> t;
  t.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    t.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), d[i]});
  return from_triplets(d.size(), d.size(), std::move(t), /*drop_zeros=*/false);
}

void CSRMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  SPAR_CHECK(x.size() == cols_ && y.size() == rows_, "multiply: size mismatch");
  par::parallel_for(
      0, static_cast<std::int64_t>(rows_),
      [&](std::int64_t r) {
        double sum = 0.0;
        for (std::size_t k = offsets_[static_cast<std::size_t>(r)];
             k < offsets_[static_cast<std::size_t>(r) + 1]; ++k)
          sum += values_[k] * x[col_index_[k]];
        y[static_cast<std::size_t>(r)] = sum;
      },
      {.enable = nnz() > (1u << 14)});
}

namespace {

// One row of the blocked SpMM at a compile-time column tile: TILE
// accumulators unroll/vectorize, and the next gathers are software-prefetched
// so their L3/DRAM latency hides behind the arithmetic (the gathers are what
// an SpMM is bound by once the block outgrows L2 -- measured 82 -> 22
// cycles/nz for a 16-wide block on the E13 instances, BENCH_pr5.json). Per
// column the
// accumulation order over the row is exactly the scalar kernel's; prefetch
// and unrolling change no arithmetic, so each output column stays
// bit-identical to a single-vector multiply.
template <std::size_t TILE>
inline void spmm_row_tile(const double* values, const std::uint32_t* cols,
                          std::size_t begin, std::size_t end, const double* xd,
                          std::size_t width, std::size_t j0, double* yr) {
  constexpr std::size_t kPrefetchDistance = 16;
  double acc[TILE] = {};
  for (std::size_t k = begin; k < end; ++k) {
    if (k + kPrefetchDistance < end) {
      const double* ahead = xd + cols[k + kPrefetchDistance] * width + j0;
      __builtin_prefetch(ahead);
      if constexpr (TILE * sizeof(double) > 64) __builtin_prefetch(ahead + 8);
    }
    const double v = values[k];
    const double* xc = xd + cols[k] * width + j0;
    for (std::size_t t = 0; t < TILE; ++t) acc[t] += v * xc[t];
  }
  for (std::size_t t = 0; t < TILE; ++t) yr[t] = acc[t];
}

}  // namespace

void CSRMatrix::multiply(const MultiVector& x, MultiVector& y) const {
  SPAR_CHECK(x.rows() == cols_ && y.rows() == rows_ && x.cols() == y.cols(),
             "multiply: block shape mismatch");
  const std::size_t width = x.cols();
  if (width == 0) return;
  // One traversal of the CSR structure serves every column: per nonzero, the
  // row-interleaved block hands all `width` values of x[col] in one or two
  // cache lines (this is what makes SpMM beat k SpMVs -- column-major blocks
  // would issue k independent gathers per nonzero and lose the win). Columns
  // are processed in fixed-width register tiles; per column the accumulation
  // order over a row is exactly multiply()'s, so each output column is
  // bit-identical to a single-vector multiply.
  const double* xd = x.data().data();
  double* yd = y.data().data();
  par::parallel_for(
      0, static_cast<std::int64_t>(rows_),
      [&](std::int64_t r) {
        const std::size_t row = static_cast<std::size_t>(r);
        const std::size_t begin = offsets_[row];
        const std::size_t end = offsets_[row + 1];
        double* yr = yd + row * width;
        std::size_t j0 = 0;
        for (; j0 + 16 <= width; j0 += 16)
          spmm_row_tile<16>(values_.data(), col_index_.data(), begin, end, xd,
                            width, j0, yr + j0);
        for (; j0 + 4 <= width; j0 += 4)
          spmm_row_tile<4>(values_.data(), col_index_.data(), begin, end, xd,
                           width, j0, yr + j0);
        for (; j0 < width; ++j0)
          spmm_row_tile<1>(values_.data(), col_index_.data(), begin, end, xd,
                           width, j0, yr + j0);
      },
      {.enable = nnz() > (1u << 14)});
}

Vector CSRMatrix::multiply(std::span<const double> x) const {
  Vector y(rows_);
  multiply(x, y);
  return y;
}

void CSRMatrix::multiply_add(std::span<const double> x, std::span<double> y,
                             double beta) const {
  SPAR_CHECK(x.size() == cols_ && y.size() == rows_, "multiply_add: size mismatch");
  par::parallel_for(
      0, static_cast<std::int64_t>(rows_),
      [&](std::int64_t r) {
        double sum = 0.0;
        for (std::size_t k = offsets_[static_cast<std::size_t>(r)];
             k < offsets_[static_cast<std::size_t>(r) + 1]; ++k)
          sum += values_[k] * x[col_index_[k]];
        y[static_cast<std::size_t>(r)] =
            sum + beta * y[static_cast<std::size_t>(r)];
      },
      {.enable = nnz() > (1u << 14)});
}

CSRMatrix CSRMatrix::multiply(const CSRMatrix& other) const {
  return multiply(other, 0, rows_);
}

CSRMatrix CSRMatrix::multiply(const CSRMatrix& other, std::size_t row_begin,
                              std::size_t row_end) const {
  SPAR_CHECK(cols_ == other.rows_, "SpGEMM: inner dimension mismatch");
  SPAR_CHECK(row_begin <= row_end && row_end <= rows_,
             "SpGEMM: row range out of bounds");
  const std::size_t block_rows = row_end - row_begin;
  CSRMatrix c;
  c.rows_ = block_rows;
  c.cols_ = other.cols_;
  c.offsets_.assign(block_rows + 1, 0);

  // Pass 1: count nnz per output row (Gustavson symbolic phase). Each worker
  // keeps one dense marker array, created lazily on first chunk it runs.
  // Marker stamps are global row ids, unique within the call.
  std::vector<std::size_t> row_nnz(block_rows, 0);
  {
    par::WorkerLocal<std::vector<std::int64_t>> markers;
    par::parallel_chunks(
        static_cast<std::int64_t>(row_begin), static_cast<std::int64_t>(row_end),
        [&](std::int64_t rb, std::int64_t re, std::int64_t /*chunk*/, int worker) {
          std::vector<std::int64_t>& marker = markers.local(
              worker, [&] { return std::vector<std::int64_t>(other.cols_, -1); });
          for (std::int64_t r = rb; r < re; ++r) {
            std::size_t count = 0;
            for (std::size_t ka = offsets_[static_cast<std::size_t>(r)];
                 ka < offsets_[static_cast<std::size_t>(r) + 1]; ++ka) {
              const std::uint32_t mid = col_index_[ka];
              for (std::size_t kb = other.offsets_[mid];
                   kb < other.offsets_[mid + 1]; ++kb) {
                const std::uint32_t col = other.col_index_[kb];
                if (marker[col] != r) {
                  marker[col] = r;
                  ++count;
                }
              }
            }
            row_nnz[static_cast<std::size_t>(r) - row_begin] = count;
          }
        },
        {.grain = 64});
  }
  for (std::size_t r = 0; r < block_rows; ++r)
    c.offsets_[r + 1] = c.offsets_[r] + row_nnz[r];
  c.col_index_.resize(c.offsets_[block_rows]);
  c.values_.resize(c.offsets_[block_rows]);

  // Pass 2: numeric phase with one dense accumulator per worker; output rows
  // are disjoint ranges of c, so writes never conflict.
  {
    struct Scratch {
      std::vector<double> accum;
      std::vector<std::int64_t> marker;
      explicit Scratch(std::size_t cols) : accum(cols, 0.0), marker(cols, -1) {}
    };
    par::WorkerLocal<Scratch> scratches;
    par::parallel_chunks(
        static_cast<std::int64_t>(row_begin), static_cast<std::int64_t>(row_end),
        [&](std::int64_t rb, std::int64_t re, std::int64_t /*chunk*/, int worker) {
          Scratch& scratch = scratches.local(worker, [&] { return Scratch(other.cols_); });
          std::vector<double>& accum = scratch.accum;
          std::vector<std::int64_t>& marker = scratch.marker;
          for (std::int64_t r = rb; r < re; ++r) {
            const std::size_t lr = static_cast<std::size_t>(r) - row_begin;
            std::size_t head = c.offsets_[lr];
            for (std::size_t ka = offsets_[static_cast<std::size_t>(r)];
                 ka < offsets_[static_cast<std::size_t>(r) + 1]; ++ka) {
              const std::uint32_t mid = col_index_[ka];
              const double va = values_[ka];
              for (std::size_t kb = other.offsets_[mid];
                   kb < other.offsets_[mid + 1]; ++kb) {
                const std::uint32_t col = other.col_index_[kb];
                if (marker[col] != r) {
                  marker[col] = r;
                  accum[col] = 0.0;
                  c.col_index_[head++] = col;
                }
                accum[col] += va * other.values_[kb];
              }
            }
            // Sort this row's columns for deterministic layout, then write values.
            std::sort(c.col_index_.begin() +
                          static_cast<std::ptrdiff_t>(c.offsets_[lr]),
                      c.col_index_.begin() + static_cast<std::ptrdiff_t>(head));
            for (std::size_t k = c.offsets_[lr]; k < head; ++k)
              c.values_[k] = accum[c.col_index_[k]];
          }
        },
        {.grain = 64});
  }
  return c;
}

std::vector<std::size_t> CSRMatrix::multiply_fill_bound(const CSRMatrix& other) const {
  SPAR_CHECK(cols_ == other.rows_, "multiply_fill_bound: inner dimension mismatch");
  std::vector<std::size_t> bound(rows_, 0);
  par::parallel_for(
      0, static_cast<std::int64_t>(rows_),
      [&](std::int64_t r) {
        std::size_t count = 0;
        for (std::size_t k = offsets_[static_cast<std::size_t>(r)];
             k < offsets_[static_cast<std::size_t>(r) + 1]; ++k) {
          const std::uint32_t mid = col_index_[k];
          count += other.offsets_[mid + 1] - other.offsets_[mid];
        }
        bound[static_cast<std::size_t>(r)] = count;
      },
      {.enable = nnz() > (1u << 14)});
  return bound;
}

Vector CSRMatrix::diagonal_vector() const {
  Vector d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r)
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k)
      if (col_index_[k] == r) d[r] += values_[k];
  return d;
}

CSRMatrix CSRMatrix::scaled_symmetric(std::span<const double> s) const {
  SPAR_CHECK(rows_ == cols_ && s.size() == rows_, "scaled_symmetric: size mismatch");
  CSRMatrix out = *this;
  par::parallel_for(0, static_cast<std::int64_t>(rows_), [&](std::int64_t r) {
    for (std::size_t k = offsets_[static_cast<std::size_t>(r)];
         k < offsets_[static_cast<std::size_t>(r) + 1]; ++k)
      out.values_[k] = s[static_cast<std::size_t>(r)] * values_[k] * s[col_index_[k]];
  });
  return out;
}

double CSRMatrix::symmetry_gap() const {
  const CSRMatrix t = transpose();
  const CSRMatrix diff = add(t, -1.0);
  double gap = 0.0;
  for (double v : diff.values_) gap = std::max(gap, std::abs(v));
  return gap;
}

double CSRMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return std::sqrt(sum);
}

CSRMatrix CSRMatrix::transpose() const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k)
      t.push_back({col_index_[k], static_cast<std::uint32_t>(r), values_[k]});
  return from_triplets(cols_, rows_, std::move(t), /*drop_zeros=*/false);
}

CSRMatrix CSRMatrix::add(const CSRMatrix& other, double alpha) const {
  SPAR_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "add: shape mismatch");
  std::vector<Triplet> t;
  t.reserve(nnz() + other.nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k)
      t.push_back({static_cast<std::uint32_t>(r), col_index_[k], values_[k]});
  for (std::size_t r = 0; r < other.rows_; ++r)
    for (std::size_t k = other.offsets_[r]; k < other.offsets_[r + 1]; ++k)
      t.push_back({static_cast<std::uint32_t>(r), other.col_index_[k],
                   alpha * other.values_[k]});
  return from_triplets(rows_, cols_, std::move(t));
}

}  // namespace spar::linalg
