// General sparse matrix in compressed sparse row form, with OpenMP SpMV and
// Gustavson SpGEMM. This is the algebraic substrate of the Peng-Spielman
// solver (forming A * D^{-1} * A) and of the Laplacian operators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/multivector.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::linalg {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

class CSRMatrix {
 public:
  CSRMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed; entries
  /// that cancel to exactly zero are kept (harmless) unless drop_zeros.
  static CSRMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets,
                                 bool drop_zeros = true);

  static CSRMatrix identity(std::size_t n);
  static CSRMatrix diagonal(std::span<const double> d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::size_t> row_offsets() const { return offsets_; }
  std::span<const std::uint32_t> col_indices() const { return col_index_; }
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  /// y = A x  (OpenMP over rows).
  void multiply(std::span<const double> x, std::span<double> y) const;
  Vector multiply(std::span<const double> x) const;

  /// Y = A X, blocked: one traversal of the CSR structure applies A to every
  /// column (the matrix data is streamed once instead of X.cols() times --
  /// the batched-solve hot path). Per column the row accumulation order is
  /// exactly multiply()'s, so each output column is bit-identical to a
  /// single-vector multiply of that column.
  void multiply(const MultiVector& x, MultiVector& y) const;

  /// y = A x + beta * y
  void multiply_add(std::span<const double> x, std::span<double> y, double beta) const;

  /// C = A * B (Gustavson; OpenMP over rows of A).
  CSRMatrix multiply(const CSRMatrix& other) const;

  /// Row slab of the product: C = A[row_begin, row_end) * B, with
  /// C.rows() == row_end - row_begin (row i of C is global row row_begin + i).
  /// Same deterministic Gustavson kernel as multiply(other) -- the full
  /// product's row r equals the slab row r - row_begin bit for bit -- so a
  /// huge product can be produced and consumed one bounded block at a time
  /// (the streamed-squaring path) instead of materialized whole.
  CSRMatrix multiply(const CSRMatrix& other, std::size_t row_begin,
                     std::size_t row_end) const;

  /// Per-row upper bound on the fill of (this * other): row r's Gustavson
  /// expansion size sum_{k in row r} nnz(B row col(k)), i.e. the count
  /// before duplicate-column merging. O(nnz(this)) total, no scratch -- cheap
  /// enough to run before every SpGEMM as an OOM guard / block planner. The
  /// bound is exact when no two expansion terms share a column.
  std::vector<std::size_t> multiply_fill_bound(const CSRMatrix& other) const;

  /// A's diagonal as a dense vector (zeros where absent).
  Vector diagonal_vector() const;

  /// Scales row i and column i by s[i]: returns diag(s) * A * diag(s).
  CSRMatrix scaled_symmetric(std::span<const double> s) const;

  /// Max |A - A^T| entry; 0 for exactly symmetric matrices.
  double symmetry_gap() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  CSRMatrix transpose() const;

  /// A + alpha * B (same shape).
  CSRMatrix add(const CSRMatrix& other, double alpha = 1.0) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> offsets_;       // size rows_+1
  std::vector<std::uint32_t> col_index_;   // size nnz
  std::vector<double> values_;             // size nnz
};

}  // namespace spar::linalg
