// Chebyshev semi-iteration for SPD(-on-subspace) operators with known
// spectral bounds [lambda_min, lambda_max].
//
// This is the classical building block of polynomial preconditioning in the
// Peng-Spielman style of solver: unlike CG it needs no inner products, so it
// parallelizes with O(1) global synchronizations per step -- the property the
// paper's parallel model cares about. Convergence factor per iteration is
// (sqrt(kappa)-1)/(sqrt(kappa)+1) with kappa = lambda_max/lambda_min.
#pragma once

#include "linalg/operator.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::linalg {

struct ChebyshevOptions {
  double lambda_min = 0.0;  ///< lower spectral bound (must be > 0)
  double lambda_max = 0.0;  ///< upper spectral bound (>= true lambda_max)
  std::size_t iterations = 50;
  bool project_constant = false;  ///< for singular Laplacians
};

struct ChebyshevReport {
  std::size_t iterations = 0;
  double relative_residual = 0.0;  ///< ||b - A x|| / ||b||
};

/// Approximates x = A^{-1} b; `x` carries the initial guess on entry.
ChebyshevReport chebyshev_solve(const LinearOperator& a, std::span<const double> b,
                                std::span<double> x, const ChebyshevOptions& options);

/// Blocked multi-RHS Chebyshev: every column advances through the same
/// three-term recurrence (the coefficients are data-independent, so they are
/// shared), with each blocked operator application serving all columns. Per
/// column the result is bit-identical to a single-vector chebyshev_solve.
std::vector<ChebyshevReport> chebyshev_solve(const BlockOperator& a,
                                             const MultiVector& b, MultiVector& x,
                                             const ChebyshevOptions& options);

}  // namespace spar::linalg
